// Quickstart: index the paper's Figure 1 document and run the queries the
// paper walks through ('XQL language', 'Soffer XQL', 'XQL Ricardo'),
// printing ranked, most-specific XML elements.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "xml/parser.h"

namespace {

constexpr const char* kFigure1Xml = R"(
<workshop date="28 July 2000">
  <title> XML and IR: A SIGIR 2000 Workshop </title>
  <editors> David Carmel, Yoelle Maarek, Aya Soffer </editors>
  <proceedings>
    <paper id="1">
      <title> XQL and Proximal Nodes </title>
      <author> Ricardo Baeza-Yates </author>
      <author> Gonzalo Navarro </author>
      <abstract> We consider the recently proposed language </abstract>
      <body>
        <section name="Introduction">
          Searching on structured text is more important
        </section>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">
            At first sight, the XQL query language looks
          </subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
        <cite xlink="paper/xmlql">A Query Language for XML</cite>
      </body>
    </paper>
    <paper id="2">
      <title> Querying XML in Xyleme </title>
      <body> xyleme supports XQL fragments </body>
    </paper>
  </proceedings>
</workshop>
)";

void RunQuery(xrank::core::XRankEngine* engine, const char* query) {
  std::printf("\nQuery: \"%s\"\n", query);
  auto response =
      engine->Query(query, /*m=*/5, xrank::index::IndexKind::kHdil);
  if (!response.ok()) {
    std::printf("  error: %s\n", response.status().ToString().c_str());
    return;
  }
  if (response->results.empty()) {
    std::printf("  (no results)\n");
    return;
  }
  for (const auto& result : response->results) {
    std::printf("  %-12s rank=%.6f  dewey=%s\n", result.element_tag.c_str(),
                result.rank, result.id.ToString().c_str());
    std::printf("    \"%s\"\n", result.snippet.c_str());
  }
}

}  // namespace

int main() {
  // 1. Parse the document.
  auto doc = xrank::xml::ParseDocument(kFigure1Xml, "figure1.xml");
  if (!doc.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }

  // 2. Build the engine: graph -> ElemRank -> HDIL index (Figure 2 of the
  // paper). Defaults follow the paper: d1=0.35, d2=0.25, d3=0.25,
  // convergence threshold 0.00002.
  std::vector<xrank::xml::Document> docs;
  docs.push_back(std::move(doc).value());
  xrank::core::EngineOptions options;
  auto engine = xrank::core::XRankEngine::Build(std::move(docs), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("Indexed %zu elements; ElemRank converged after %d iterations\n",
              (*engine)->graph().element_count(),
              (*engine)->elem_rank_result().iterations);

  // 3. The paper's running examples.
  // 'XQL language': the <subsection> (most specific) wins; its <section>
  // and <body> ancestors are suppressed; the <paper> with independent
  // occurrences also appears (Section 2.2).
  RunQuery(engine->get(), "XQL language");
  // 'Soffer XQL': keywords only meet at the <workshop> root — low ancestor
  // proximity shows up as a decayed rank (Section 1).
  RunQuery(engine->get(), "Soffer XQL");
  // 'XQL Ricardo': the Figure 6 walk-through.
  RunQuery(engine->get(), "XQL Ricardo");
  return 0;
}
