// Deep-document search over an XMark-like auction site: demonstrates the
// value of returning the most specific element in deeply nested XML, the
// 'stained mirror' anecdote of paper Section 5.2, and answer-node mapping.
//
// Usage: xmark_search [num_items]   (default 300)

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "datagen/xmark_gen.h"

namespace {

using xrank::core::EngineOptions;
using xrank::core::XRankEngine;
using xrank::index::IndexKind;

void Run(XRankEngine* engine, const std::vector<std::string>& keywords,
         const char* label) {
  std::printf("\nQuery (%s): ", label);
  for (const std::string& keyword : keywords) {
    std::printf("%s ", keyword.c_str());
  }
  std::printf("\n");
  auto response =
      engine->QueryKeywords(keywords, /*m=*/5, IndexKind::kHdil);
  if (!response.ok()) {
    std::printf("  error: %s\n", response.status().ToString().c_str());
    return;
  }
  for (const auto& result : response->results) {
    std::printf("  <%s> depth=%zu rank=%.7f\n", result.element_tag.c_str(),
                result.id.depth(), result.rank);
    std::printf("    \"%s\"\n", result.snippet.c_str());
  }
  if (response->results.empty()) std::printf("  (no results)\n");
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_items = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;

  xrank::datagen::XMarkOptions gen;
  gen.num_items = num_items;
  gen.num_people = num_items / 2;
  gen.num_open_auctions = num_items;
  gen.num_closed_auctions = num_items / 3;
  xrank::datagen::Corpus corpus = xrank::datagen::GenerateXMark(gen);

  // First engine: every element is an answer node (default).
  EngineOptions options;
  options.indexes = {IndexKind::kHdil};
  xrank::datagen::Corpus corpus_copy = xrank::datagen::GenerateXMark(gen);
  auto engine = XRankEngine::Build(std::move(corpus.documents), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("XMark document: %zu elements, %zu intra-document IDREF links\n",
              (*engine)->graph().element_count(),
              (*engine)->graph().total_hyperlink_count());

  // Deep planted terms: results come back as <text> leaves ~10 levels down,
  // not as the whole auction site.
  const auto& quad = corpus.planted.high_correlation[0];
  Run(engine->get(), {quad[0], quad[1]}, "deeply nested co-occurrence");

  // The 'stained mirror' shape: name word + description word of one item,
  // boosted by auction references to low-index items.
  Run(engine->get(), {quad[0]}, "single keyword, rank-ordered");

  // Second engine: answer nodes restricted to domain concepts — results are
  // mapped up to the nearest <item>/<person>/<open_auction> (Section 2.2).
  EngineOptions answer_options;
  answer_options.indexes = {IndexKind::kHdil};
  answer_options.answer_node_tags = {"item", "person", "open_auction",
                                     "closed_auction", "category", "site"};
  auto answer_engine =
      XRankEngine::Build(std::move(corpus_copy.documents), answer_options);
  if (!answer_engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 answer_engine.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- with answer nodes {item, person, auction, ...} ---");
  Run(answer_engine->get(), {quad[0], quad[1]},
      "same query, answer-node mapped");
  return 0;
}
