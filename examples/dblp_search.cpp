// Bibliography search over a DBLP-shaped corpus: builds all five index
// structures, runs the same query through each, and prints results plus the
// I/O statistics that distinguish them (paper Sections 4-5).
//
// Usage: dblp_search [num_papers]   (default 800)

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "datagen/dblp_gen.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace {

using xrank::core::EngineOptions;
using xrank::core::XRankEngine;
using xrank::index::IndexKind;

void Show(XRankEngine* engine, const std::vector<std::string>& keywords,
          IndexKind kind) {
  auto response = engine->QueryKeywords(keywords, /*m=*/5, kind);
  if (!response.ok()) {
    std::printf("  %-10s error: %s\n",
                std::string(xrank::index::IndexKindName(kind)).c_str(),
                response.status().ToString().c_str());
    return;
  }
  std::printf("  %-10s %2zu results, %6llu postings, %4llu rnd + %4llu seq "
              "reads, cost %8.1f%s\n",
              std::string(xrank::index::IndexKindName(kind)).c_str(),
              response->results.size(),
              static_cast<unsigned long long>(
                  response->stats.postings_scanned),
              static_cast<unsigned long long>(response->stats.random_reads),
              static_cast<unsigned long long>(
                  response->stats.sequential_reads),
              response->stats.io_cost,
              response->stats.switched_to_dil ? " (switched to DIL)" : "");
  for (size_t i = 0; i < response->results.size() && i < 3; ++i) {
    const auto& result = response->results[i];
    std::printf("      #%zu <%s> %s rank=%.6f\n", i + 1,
                result.element_tag.c_str(), result.document_uri.c_str(),
                result.rank);
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_papers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;

  xrank::datagen::DblpOptions gen;
  gen.num_papers = num_papers;
  xrank::datagen::Corpus corpus = xrank::datagen::GenerateDblp(gen);
  std::printf("Generated %zu DBLP-like publication documents\n",
              corpus.documents.size());

  EngineOptions options;
  options.indexes = {IndexKind::kNaiveId, IndexKind::kNaiveRank,
                     IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil};
  auto engine =
      XRankEngine::Build(std::move(corpus.documents), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("Graph: %zu elements, %zu hyperlinks; ElemRank: %d iterations\n",
              (*engine)->graph().element_count(),
              (*engine)->graph().total_hyperlink_count(),
              (*engine)->elem_rank_result().iterations);

  const auto& high = corpus.planted.high_correlation[0];
  const auto& low = corpus.planted.low_correlation[0];
  struct QuerySpec {
    const char* label;
    std::vector<std::string> keywords;
  };
  std::vector<QuerySpec> queries = {
      {"high-correlation pair", {high[0], high[1]}},
      {"low-correlation pair", {low[0], low[1]}},
      {"frequent single keyword", {"sel0"}},
  };
  for (const QuerySpec& spec : queries) {
    std::printf("\nQuery (%s): ", spec.label);
    for (const std::string& keyword : spec.keywords) {
      std::printf("%s ", keyword.c_str());
    }
    std::printf("\n");
    for (IndexKind kind :
         {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
          IndexKind::kRdil, IndexKind::kHdil}) {
      Show(engine->get(), spec.keywords, kind);
    }
  }
  return 0;
}
