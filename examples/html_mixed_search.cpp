// Mixed HTML + XML search: the paper's design goal (Sections 1, 2.4) is
// that XRANK degenerates gracefully to a Google-style engine on HTML —
// whole documents come back, ranked by hyperlink structure — while XML
// documents in the same collection return fine-grained elements.

#include <cstdio>

#include "core/engine.h"
#include "datagen/html_gen.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace {

using xrank::core::EngineOptions;
using xrank::core::XRankEngine;
using xrank::index::IndexKind;

constexpr const char* kXmlDoc = R"(
<report>
  <title>web archive quality report</title>
  <chapter>
    <heading>crawl coverage</heading>
    <para>the crawl reached most linked pages</para>
  </chapter>
</report>
)";

}  // namespace

int main() {
  // A small hyperlinked web of HTML pages...
  xrank::datagen::HtmlOptions gen;
  gen.num_pages = 50;
  xrank::datagen::Corpus web = xrank::datagen::GenerateHtml(gen);
  std::vector<xrank::xml::Document> html_docs;
  for (xrank::xml::Document& doc : web.documents) {
    // Round-trip through text to mimic a crawl.
    auto parsed =
        xrank::xml::ParseDocument(xrank::xml::Serialize(doc), doc.uri);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    html_docs.push_back(std::move(parsed).value());
  }
  // ...plus one structured XML report.
  auto xml_doc = xrank::xml::ParseDocument(kXmlDoc, "report.xml");
  if (!xml_doc.ok()) return 1;
  std::vector<xrank::xml::Document> xml_docs;
  xml_docs.push_back(std::move(xml_doc).value());

  EngineOptions options;
  options.indexes = {IndexKind::kHdil};
  auto engine = XRankEngine::Build(std::move(xml_docs), std::move(html_docs),
                                   options);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Mixed collection: %zu documents, %zu elements (HTML pages are single "
      "elements), %zu hyperlinks\n",
      (*engine)->graph().document_count(),
      (*engine)->graph().element_count(),
      (*engine)->graph().total_hyperlink_count());

  // An HTML query: results are whole pages, ordered by ElemRank ==
  // PageRank on the 2-level collection.
  const auto& quad = web.planted.high_correlation[0];
  auto html_response = (*engine)->QueryKeywords({quad[0], quad[1]}, 5,
                                                IndexKind::kHdil);
  if (!html_response.ok()) return 1;
  std::printf("\nHTML query '%s %s': whole pages, PageRank-style order\n",
              quad[0].c_str(), quad[1].c_str());
  for (const auto& result : html_response->results) {
    std::printf("  <%s> %s rank=%.7f\n", result.element_tag.c_str(),
                result.document_uri.c_str(), result.rank);
  }

  // An XML query over the same engine: a nested element comes back.
  auto xml_response =
      (*engine)->Query("crawl coverage", 5, IndexKind::kHdil);
  if (!xml_response.ok()) return 1;
  std::printf("\nXML query 'crawl coverage': fine-grained elements\n");
  for (const auto& result : xml_response->results) {
    std::printf("  <%s> %s dewey=%s rank=%.7f\n", result.element_tag.c_str(),
                result.document_uri.c_str(), result.id.ToString().c_str(),
                result.rank);
  }
  return 0;
}
