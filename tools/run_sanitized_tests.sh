#!/usr/bin/env bash
# Builds and runs the test suite under a sanitizer.
#
#   tools/run_sanitized_tests.sh [thread|address|undefined] [ctest args...]
#
# Defaults to thread (TSan), which must stay clean over the concurrent
# query and parallel build/ElemRank tests. Each sanitizer gets its own
# build directory (build-tsan, build-asan, build-ubsan).
#
# The configure below is plain, so CMake picks a compiler launcher up
# from the CMAKE_C_COMPILER_LAUNCHER / CMAKE_CXX_COMPILER_LAUNCHER
# environment — CI exports `ccache` there (cache keyed per sanitizer +
# compiler version, since sanitizer flags change every object file).

set -euo pipefail

SAN="${1:-thread}"
shift || true

case "$SAN" in
  thread)    DIR=build-tsan ;;
  address)   DIR=build-asan ;;
  undefined) DIR=build-ubsan ;;
  *)
    echo "usage: $0 [thread|address|undefined] [ctest args...]" >&2
    exit 2
    ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$DIR" -S . -DXRANK_SANITIZE="$SAN" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$DIR" -j "$(nproc)" --target xrank_tests

# second_deadlock_stack aids TSan lock-order reports; halt_on_error keeps
# CI signal crisp for ASan/UBSan.
case "$SAN" in
  thread)    export TSAN_OPTIONS="${TSAN_OPTIONS:-second_deadlock_stack=1}" ;;
  address)   export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" ;;
  undefined) export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}" ;;
esac

cd "$DIR"
ctest --output-on-failure "$@"
