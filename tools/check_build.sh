#!/usr/bin/env bash
# Tier-1 verification driver: configure with warnings-as-errors (-Wall
# -Wextra -Werror), build everything, and run the full test suite — plus
# the optional gates CI runs as separate jobs. Every gate reports one
# PASS/FAIL/SKIP line in the summary, later gates still run after a
# failure, and the script exits non-zero if ANY gate failed (an earlier
# version stopped at the first sub-script and could mask its exit code).
#
#   tools/check_build.sh [build-dir]
#
# Environment:
#   XRANK_BUILD_TYPE=...        CMake build type (default RelWithDebInfo)
#   XRANK_CHECK_FORMAT=1        also run the clang-format gate
#   XRANK_CHECK_ROBUSTNESS=1    also run the sanitized fault-injection/
#                               corruption gate (check_robustness.sh)

set -uo pipefail

DIR="${1:-build-check}"
BUILD_TYPE="${XRANK_BUILD_TYPE:-RelWithDebInfo}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

SUMMARY=()
FAILED=0
BUILD_OK=1

run_gate() {
  local name="$1"
  shift
  echo "=== gate: $name ==="
  "$@"
  local status=$?
  if [[ $status -eq 0 ]]; then
    SUMMARY+=("PASS  $name")
  else
    SUMMARY+=("FAIL  $name (exit $status)")
    FAILED=1
  fi
  return $status
}

skip_gate() {
  SUMMARY+=("SKIP  $1 ($2)")
}

if [[ "${XRANK_CHECK_FORMAT:-0}" == "1" ]]; then
  run_gate format tools/check_format.sh
else
  skip_gate format "set XRANK_CHECK_FORMAT=1 to enable"
fi

run_gate configure cmake -B "$DIR" -S . -DXRANK_WERROR=ON \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" || BUILD_OK=0

if [[ $BUILD_OK -eq 1 ]]; then
  run_gate build cmake --build "$DIR" -j "$(nproc)" || BUILD_OK=0
else
  skip_gate build "configure failed"
fi

if [[ $BUILD_OK -eq 1 ]]; then
  run_gate test bash -c "cd '$DIR' && ctest --output-on-failure -j \"\$(nproc)\""
else
  skip_gate test "build failed"
fi

if [[ "${XRANK_CHECK_ROBUSTNESS:-0}" == "1" ]]; then
  run_gate robustness tools/check_robustness.sh
else
  skip_gate robustness "set XRANK_CHECK_ROBUSTNESS=1 to enable"
fi

echo
echo "=== check_build summary ==="
for line in "${SUMMARY[@]}"; do
  echo "  $line"
done
if [[ $FAILED -ne 0 ]]; then
  echo "check_build: FAIL"
  exit 1
fi
echo "check_build: OK"
