#!/usr/bin/env bash
# Tier-1 verification: configure with warnings-as-errors (-Wall -Wextra
# -Werror), build everything, and run the full test suite. Fails on any
# compiler warning or test failure.
#
#   tools/check_build.sh [build-dir]

set -euo pipefail

DIR="${1:-build-check}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$DIR" -S . -DXRANK_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$DIR" -j "$(nproc)"
cd "$DIR"
ctest --output-on-failure -j "$(nproc)"
