#!/usr/bin/env bash
# Tier-1 verification: configure with warnings-as-errors (-Wall -Wextra
# -Werror), build everything, and run the full test suite. Fails on any
# compiler warning or test failure. Set XRANK_CHECK_ROBUSTNESS=1 to also
# run the sanitized fault-injection/corruption gate (check_robustness.sh).
#
#   tools/check_build.sh [build-dir]

set -euo pipefail

DIR="${1:-build-check}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$DIR" -S . -DXRANK_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$DIR" -j "$(nproc)"
(cd "$DIR" && ctest --output-on-failure -j "$(nproc)")

if [[ "${XRANK_CHECK_ROBUSTNESS:-0}" == "1" ]]; then
  tools/check_robustness.sh
fi
