#!/usr/bin/env bash
# Robustness gate: runs the fault-injection and corruption suites under
# AddressSanitizer and UndefinedBehaviorSanitizer. Injected faults must
# never produce a crash, hang, out-of-bounds access, or UB — only clean
# Status errors (or retried success) — and the sanitizers enforce exactly
# that over every failpoint schedule the tests drive.
#
#   tools/check_robustness.sh [extra ctest args...]
#
# Reuses run_sanitized_tests.sh (XRANK_SANITIZE build dirs build-asan /
# build-ubsan), filtered to the failure-path suites, then runs the
# process-kill crash-recovery harness (check_recovery.sh): SIGKILL inside
# every commit window of the live-update path, reopen, verify, and check
# acknowledged-operation durability.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

FILTER='CorruptionTest|FaultInjectionTest|LiveUpdateTest|BackoffTest|SafeStrErrorTest|CodecValidationTest|CodecPageTest|BitpackTest|DisjunctivePruningTest|DisjunctiveCodecPruningTest|DisjunctiveSkewTest|VbmwBlockTest|ReorderTest|ReorderCorruptionTest'

for SAN in address undefined; do
  echo "=== robustness suites under ${SAN} sanitizer ==="
  tools/run_sanitized_tests.sh "$SAN" -R "$FILTER" --output-on-failure "$@"
done

# Kill -9 inside every live-update commit window, reopen, verify, check
# acked-operation durability — against the instrumented binaries (the
# build dirs above cache XRANK_SANITIZE, so xrank_cli inherits it).
for DIR in build-asan build-ubsan; do
  echo "=== crash-recovery harness ($DIR) ==="
  tools/check_recovery.sh "$DIR"
done

echo "robustness check OK"
