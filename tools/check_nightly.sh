#!/usr/bin/env bash
# Nightly deep gate — the slow checks that would bloat per-PR CI:
#
#   1. Extended crash-recovery: check_recovery.sh re-runs with several
#      distinct randomized-skip seeds, so the kill -9 windows land on
#      different hits of each failpoint every night instead of the single
#      fixed-seed pass the PR pipeline runs.
#   2. Bench baseline diff: the deterministic benchmark reports —
#      bench_table1_space (index bytes) and bench_topk_sweep (cost-model
#      I/O units) — are regenerated and compared against the committed
#      BENCH_*.json baselines within a relative tolerance. Wall-clock
#      reports (bench_scaling) are host-dependent, so they are checked
#      for schema only: every baseline metric key must still be produced.
#      Fresh reports are left in the build directory for artifact upload.
#
#   tools/check_nightly.sh [build-dir]
#
# Environment:
#   XRANK_NIGHTLY_RECOVERY_RUNS  randomized-seed recovery passes (default 5)
#   XRANK_NIGHTLY_TOLERANCE      allowed relative drift for deterministic
#                                metrics (default 0.25)

set -euo pipefail

DIR="${1:-build-nightly}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

RECOVERY_RUNS="${XRANK_NIGHTLY_RECOVERY_RUNS:-5}"
TOLERANCE="${XRANK_NIGHTLY_TOLERANCE:-0.25}"

echo "=== extended crash-recovery (${RECOVERY_RUNS} randomized-seed passes) ==="
for ((i = 1; i <= RECOVERY_RUNS; ++i)); do
  SEED=$((20260808 + i * 7919))
  echo "--- recovery pass $i/${RECOVERY_RUNS} (seed $SEED) ---"
  XRANK_RECOVERY_SEED="$SEED" tools/check_recovery.sh "$DIR-recovery"
done

echo "=== bench baseline diff ==="
cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$DIR" -j "$(nproc)" --target bench_table1_space \
  --target bench_topk_sweep --target bench_scaling

"$DIR/bench/bench_table1_space" --reorder \
  --json "$DIR/BENCH_table1_space.json" > /dev/null
"$DIR/bench/bench_topk_sweep" --json "$DIR/BENCH_disjunctive.json" > /dev/null
"$DIR/bench/bench_scaling" --json "$DIR/BENCH_scaling.json" > /dev/null

python3 - "$TOLERANCE" "$DIR" <<'EOF'
import json, os, sys

tolerance = float(sys.argv[1])
build_dir = sys.argv[2]

# (baseline, compare values?) — table1_space and topk_sweep report
# deterministic quantities (bytes, cost-model units); scaling reports
# wall-clock, so only its metric schema is compared. Time-based keys
# inside otherwise-deterministic reports are host noise: schema only.
REPORTS = [
    ("BENCH_table1_space.json", True),
    ("BENCH_disjunctive.json", True),
    ("BENCH_scaling.json", False),
]
HOST_DEPENDENT = ("wall_ms", "seconds", "qps", "speedup", "throughput_x")

failures = 0
for name, compare_values in REPORTS:
    with open(name) as f:
        baseline = json.load(f)["metrics"]
    with open(os.path.join(build_dir, name)) as f:
        fresh = json.load(f)["metrics"]
    missing = sorted(set(baseline) - set(fresh))
    for key in missing:
        print(f"check_nightly: FAIL — {name}: baseline metric "
              f"'{key}' missing from fresh report")
        failures += 1
    # Schema drift in the other direction is just as much a failure: a
    # fresh metric with no committed baseline means the benchmark grew a
    # key nobody regenerated the BENCH_*.json for — the nightly diff
    # would silently stop covering it.
    unbaselined = sorted(set(fresh) - set(baseline))
    for key in unbaselined:
        print(f"check_nightly: FAIL — {name}: fresh metric '{key}' has no "
              f"committed baseline (regenerate {name})")
        failures += 1
    missing = missing + unbaselined
    drifted = 0
    if compare_values:
        for key, base in baseline.items():
            if key not in fresh:
                continue
            if any(key.endswith(s) or f"/{s}/" in key
                   for s in HOST_DEPENDENT):
                continue
            new = fresh[key]
            bound = tolerance * max(abs(base), 1e-9)
            if abs(new - base) > bound:
                print(f"check_nightly: FAIL — {name}: '{key}' drifted "
                      f"{base:.6g} -> {new:.6g} "
                      f"(tolerance {tolerance:.0%})")
                failures += 1
                drifted += 1
    mode = "values" if compare_values else "schema"
    print(f"check_nightly: {name}: {len(baseline)} baseline metrics, "
          f"{mode} checked, {len(missing)} missing, {drifted} drifted")

if failures:
    print(f"check_nightly: FAIL — {failures} baseline deviation(s)")
    sys.exit(1)
print("check_nightly: OK")
EOF
