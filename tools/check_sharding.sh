#!/usr/bin/env bash
# Sharded-serving gate: the document-sharded router must answer exactly
# like the monolithic engine, stay clean under TSan while queries race
# live ingest, and actually buy throughput from the fan-out.
#
#   tools/check_sharding.sh [build-dir]
#
# Three stages:
#   1. Release parity suite — sharding manifest round-trip/corruption,
#      router-vs-monolith bitwise parity across codecs, shard counts,
#      semantics, and aggregations, θ-forwarding efficacy, merged-stats
#      coherence, disk round-trip, live ingest, deadline contract.
#   2. TSan stress — concurrent scatters and queries racing tail-shard
#      ingest (reuses run_sanitized_tests.sh's build-tsan directory).
#   3. Perf gate — bench_scaling --sharding-only on the Zipf-skewed
#      corpus. On hosts with >= 4 hardware threads, 4 shards must deliver
#      >= 2x the single-shard throughput. On smaller hosts a parallel
#      scatter cannot speed anything up, so the gate relaxes to a sanity
#      bound: 4 shards must keep >= 0.3x single-shard throughput (the
#      fan-out machinery must not sink serving). Like check_perf.sh, the
#      thresholds are deliberately lax — they catch regressions, not
#      host-to-host variance.

set -euo pipefail

DIR="${1:-build-sharding}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

PARITY_FILTER='ShardingManifestTest|ShardingFileTest|ShardRouterParityTest|ShardRouterThetaTest|ShardRouterStatsTest|ShardRouterDiskTest|ShardRouterLiveTest|ShardRouterDeadlineTest'

echo "=== sharding parity suite (Release) ==="
cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$DIR" -j "$(nproc)" --target xrank_tests --target bench_scaling
( cd "$DIR" && ctest -R "$PARITY_FILTER" --output-on-failure )

echo "=== sharded-query stress under TSan ==="
tools/run_sanitized_tests.sh thread -R 'ShardRouterConcurrencyTest' \
  --output-on-failure

echo "=== sharded throughput gate ==="
JSON="$DIR/check_sharding_scaling.json"
"$DIR/bench/bench_scaling" --sharding-only --json "$JSON"

awk '
  /"hardware_threads"/                  { gsub(/[",]/, ""); hw = $2 }
  /"sharded\/shards=1\/qps"/            { gsub(/[",]/, ""); base = $2 }
  /"sharded\/shards=4\/qps"/            { gsub(/[",]/, ""); qps4 = $2 }
  /"sharded\/shards=4\/throughput_x"/   { gsub(/[",]/, ""); tx = $2 }
  /"sharded\/shards=4\/theta_raises"/   { gsub(/[",]/, ""); raises = $2 }
  END {
    if (hw == "" || base == "" || tx == "" || raises == "") {
      print "check_sharding: FAIL — sharded metrics missing from " FILENAME
      exit 2
    }
    printf "check_sharding: 1-shard %.1f QPS, 4-shard %.1f QPS (%.2fx) on %d hardware thread(s), %d theta raises\n", base, qps4, tx, hw, raises
    if (raises + 0 <= 0) {
      print "check_sharding: FAIL — forwarded theta never raised across shards"
      exit 1
    }
    if (hw + 0 >= 4) {
      if (tx + 0 < 2.0) {
        print "check_sharding: FAIL — 4-shard throughput below 2x single-shard (gate: 2.0x on >=4 hardware threads)"
        exit 1
      }
    } else if (tx + 0 < 0.3) {
      print "check_sharding: FAIL — 4-shard fan-out overhead sank serving below 0.3x single-shard"
      exit 1
    }
    print "check_sharding: OK"
  }
' "$JSON"
