// xrank_cli — index XML files and run interactive ranked keyword queries.
//
//   xrank_cli [query] [options] <file.xml ...>
//     --index=dil|rdil|hdil|naive-id|naive-rank   (default hdil)
//     --shards=N                                  (partition the corpus
//                                                  across N engine shards
//                                                  and serve scatter-gather
//                                                  top-k through the shard
//                                                  router; θ forwards
//                                                  between shards)
//     --disk-dir=DIR                              (with --shards: commit a
//                                                  sharded root under DIR —
//                                                  per-shard MANIFESTs plus
//                                                  a SHARDING file; when DIR
//                                                  already holds a SHARDING
//                                                  file the root is
//                                                  re-opened and validated
//                                                  instead of rebuilt)
//     --codec=varint|bp128|vgb                    (posting codec, default
//                                                  varint)
//     --quant-ranks=u8|u16                        (quantized ElemRanks;
//                                                  default lossless float)
//     --vbmw-lambda=MILLI                         (variable-sized list
//                                                  pages: close a page
//                                                  early when its rank
//                                                  waste exceeds
//                                                  MILLI/1000; 0 = dense)
//     --reorder=off|bp                            (build-time document
//                                                  reordering by recursive
//                                                  graph bisection: tighter
//                                                  d-gaps, denser pages,
//                                                  sharper block-max bounds;
//                                                  default off)
//     --reorder-min-partition=N --reorder-depth=N (BP recursion knobs; an
//                                                  Open must use the same
//                                                  values as the build)
//     --algorithm=auto|exhaustive|maxscore|       (disjunctive/mixed merge
//                 wand|bmw                         strategy; default auto)
//     --top=N                                     (default 10)
//     --disjunctive                               (OR semantics, DIL only)
//     --tfidf                                     (tf-idf posting ranks
//                                                  instead of ElemRank)
//     --answer-nodes=tag1,tag2,...                (Section 2.2 answer nodes)
//     --query="..."                               (one-shot; else REPL)
//     --trace                                     (per-stage timings and
//                                                  per-term counters after
//                                                  each query's results)
//     --json                                      (with --trace: emit the
//                                                  trace as JSON)
//
//   xrank_cli stats [--json] [options] <file.xml ...>
//     Builds the index (running --query first if given) and dumps the
//     process-wide metrics registry — query/IO/cache counters and latency
//     histograms — as a table, or as strict JSON with --json.
//
//   xrank_cli verify [--disk-dir=]<index-dir>
//     Offline integrity check of a committed index directory: validates the
//     MANIFEST, then every file's page count, per-page checksums, and
//     whole-file CRC — base index files and flushed live segments alike —
//     and finally reads the write-ahead log (a torn tail is reported but is
//     not damage: recovery truncates it). Reports the first bad page of
//     each damaged file. A sharded root (SHARDING file present) is verified
//     shard by shard after its partition manifest validates.
//
//   xrank_cli ingest --disk-dir=DIR [options] [--base=f.xml ...]
//             [--add=f.xml ...] [--delete=uri ...]
//     Live-update driver (and crash-recovery harness hook). Builds the base
//     index into DIR on the first run (--base files), re-opens it on later
//     runs, then applies --add/--delete in argv order with inline
//     maintenance. After every acknowledged operation an "ACK <op> <arg>"
//     line is written to stdout and flushed, so a harness that kill -9s the
//     process knows exactly which operations were durably acknowledged.
//       --flush-every=N      flush the delta after every N adds
//       --compact            merge all flushed segments at the end
//       --crash-at=NAME[:K]  arm failpoint NAME (skip first K hits) with
//                            the crash action — the process dies with
//                            status 137 at that commit-protocol window
//       --query="..."        run a query after ingest and print results
//
// Example:
//   ./build/tools/xrank_cli --top=5 corpus/*.xml
//   > xql language

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "core/shard_router.h"
#include "index/codec.h"
#include "index/manifest.h"
#include "query/query.h"
#include "query/trace.h"
#include "storage/wal.h"
#include "xml/parser.h"

namespace {

using xrank::core::EngineOptions;
using xrank::core::EngineResponse;
using xrank::core::ShardRouter;
using xrank::core::ShardRouterOptions;
using xrank::core::XRankEngine;
using xrank::index::IndexKind;

struct CliOptions {
  IndexKind kind = IndexKind::kHdil;
  xrank::index::PostingFormatSpec format;
  xrank::index::ReorderOptions reorder;
  xrank::query::MergeAlgorithm algorithm =
      xrank::query::MergeAlgorithm::kAuto;
  size_t top = 10;
  size_t shards = 0;  // 0 = monolithic engine, N >= 1 = shard router
  std::string disk_dir;
  bool disjunctive = false;
  bool tfidf = false;
  bool trace = false;
  bool json = false;
  std::vector<std::string> answer_nodes;
  std::string one_shot_query;
  std::vector<std::string> files;
};

bool ParseIndexKind(const std::string& name, IndexKind* kind) {
  if (name == "dil") {
    *kind = IndexKind::kDil;
  } else if (name == "rdil") {
    *kind = IndexKind::kRdil;
  } else if (name == "hdil") {
    *kind = IndexKind::kHdil;
  } else if (name == "naive-id") {
    *kind = IndexKind::kNaiveId;
  } else if (name == "naive-rank") {
    *kind = IndexKind::kNaiveRank;
  } else {
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options, int first = 1) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (xrank::StartsWith(arg, "--index=")) {
      if (!ParseIndexKind(arg.substr(8), &options->kind)) {
        std::fprintf(stderr, "unknown index kind '%s'\n", arg.c_str() + 8);
        return false;
      }
    } else if (xrank::StartsWith(arg, "--codec=")) {
      const xrank::index::PostingCodec* codec =
          xrank::index::FindPostingCodecByName(arg.substr(8));
      if (codec == nullptr) {
        std::fprintf(stderr, "unknown posting codec '%s'\n", arg.c_str() + 8);
        return false;
      }
      options->format.codec_id = codec->id();
    } else if (xrank::StartsWith(arg, "--quant-ranks=")) {
      std::string mode = arg.substr(14);
      if (mode == "u8") {
        options->format.ranks = xrank::index::RankEncoding::kQuantU8;
      } else if (mode == "u16") {
        options->format.ranks = xrank::index::RankEncoding::kQuantU16;
      } else {
        std::fprintf(stderr, "unknown rank quantization '%s'\n",
                     mode.c_str());
        return false;
      }
    } else if (xrank::StartsWith(arg, "--algorithm=")) {
      std::string name = arg.substr(12);
      if (name == "auto") {
        options->algorithm = xrank::query::MergeAlgorithm::kAuto;
      } else if (name == "exhaustive") {
        options->algorithm = xrank::query::MergeAlgorithm::kExhaustive;
      } else if (name == "maxscore") {
        options->algorithm = xrank::query::MergeAlgorithm::kMaxScore;
      } else if (name == "wand") {
        options->algorithm = xrank::query::MergeAlgorithm::kWand;
      } else if (name == "bmw") {
        options->algorithm = xrank::query::MergeAlgorithm::kBlockMaxWand;
      } else {
        std::fprintf(stderr, "unknown merge algorithm '%s'\n", name.c_str());
        return false;
      }
    } else if (xrank::StartsWith(arg, "--vbmw-lambda=")) {
      options->format.vbmw_lambda_milli = static_cast<uint32_t>(
          std::strtoul(arg.c_str() + 14, nullptr, 10));
    } else if (xrank::StartsWith(arg, "--reorder=")) {
      std::string mode = arg.substr(10);
      if (mode == "off") {
        options->reorder.algorithm = xrank::index::ReorderAlgorithm::kIdentity;
      } else if (mode == "bp") {
        options->reorder.algorithm = xrank::index::ReorderAlgorithm::kBp;
      } else {
        std::fprintf(stderr, "unknown reorder pass '%s'\n", mode.c_str());
        return false;
      }
    } else if (xrank::StartsWith(arg, "--reorder-min-partition=")) {
      options->reorder.min_partition = static_cast<uint32_t>(
          std::strtoul(arg.c_str() + 24, nullptr, 10));
      if (options->reorder.min_partition < 2) {
        std::fprintf(stderr, "--reorder-min-partition needs a value >= 2\n");
        return false;
      }
    } else if (xrank::StartsWith(arg, "--reorder-depth=")) {
      options->reorder.max_depth = static_cast<uint32_t>(
          std::strtoul(arg.c_str() + 16, nullptr, 10));
      if (options->reorder.max_depth == 0) {
        std::fprintf(stderr, "--reorder-depth needs a positive depth\n");
        return false;
      }
    } else if (xrank::StartsWith(arg, "--top=")) {
      options->top = std::strtoul(arg.c_str() + 6, nullptr, 10);
      if (options->top == 0) options->top = 10;
    } else if (xrank::StartsWith(arg, "--shards=")) {
      options->shards = std::strtoul(arg.c_str() + 9, nullptr, 10);
      if (options->shards == 0) {
        std::fprintf(stderr, "--shards needs a positive shard count\n");
        return false;
      }
    } else if (xrank::StartsWith(arg, "--disk-dir=")) {
      options->disk_dir = arg.substr(11);
    } else if (arg == "--disjunctive") {
      options->disjunctive = true;
    } else if (arg == "--tfidf") {
      options->tfidf = true;
    } else if (arg == "--trace") {
      options->trace = true;
    } else if (arg == "--json") {
      options->json = true;
    } else if (xrank::StartsWith(arg, "--answer-nodes=")) {
      for (auto piece : xrank::SplitString(arg.substr(15), ",")) {
        options->answer_nodes.emplace_back(piece);
      }
    } else if (xrank::StartsWith(arg, "--query=")) {
      options->one_shot_query = arg.substr(8);
    } else if (xrank::StartsWith(arg, "--")) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      options->files.push_back(arg);
    }
  }
  return !options->files.empty();
}

void PrintResponse(const EngineResponse& response) {
  if (response.results.empty()) {
    std::printf("  (no results)\n");
    return;
  }
  for (size_t i = 0; i < response.results.size(); ++i) {
    const auto& result = response.results[i];
    std::printf("  %2zu. <%s> %s  rank=%.7f  dewey=%s\n", i + 1,
                result.element_tag.c_str(), result.document_uri.c_str(),
                result.rank, result.id.ToString().c_str());
    std::printf("      \"%s\"\n", result.snippet.c_str());
  }
  std::printf("  [%llu postings, %llu random + %llu sequential reads, "
              "%llu blocks pruned, %llu block-cache hits, %.2f ms%s%s]\n",
              static_cast<unsigned long long>(
                  response.stats.postings_scanned),
              static_cast<unsigned long long>(response.stats.random_reads),
              static_cast<unsigned long long>(
                  response.stats.sequential_reads),
              static_cast<unsigned long long>(response.stats.blocks_pruned),
              static_cast<unsigned long long>(
                  response.stats.block_cache_hits),
              response.stats.wall_ms,
              response.stats.switched_to_dil ? ", switched to DIL" : "",
              response.stats.result_cache_hit ? ", result-cache hit" : "");
  if (!response.stats.algorithm.empty()) {
    std::printf("  [merge=%s, %llu docs skipped, %llu pivot advances]\n",
                response.stats.algorithm.c_str(),
                static_cast<unsigned long long>(response.stats.docs_skipped),
                static_cast<unsigned long long>(
                    response.stats.pivot_advances));
  }
}

// Verifies one committed engine directory (MANIFEST, data files, flushed
// segments, WAL), printing a line per file. Returns the number of damaged
// files; an unreadable MANIFEST counts as one.
int VerifyIndexDir(const std::string& dir) {
  auto manifest = xrank::index::ReadManifestFile(dir);
  if (!manifest.ok()) {
    std::printf("%s: %s\n", dir.c_str(),
                manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: MANIFEST lists %zu committed file(s)\n", dir.c_str(),
              manifest->entries.size());
  int damaged = 0;
  for (const auto& entry : manifest->entries) {
    xrank::storage::PageId first_bad = xrank::storage::kInvalidPage;
    xrank::Status status =
        xrank::index::VerifyManifestEntry(dir, entry, &first_bad);
    if (status.ok()) {
      // ParseManifest refuses unregistered codecs, so the lookup cannot miss.
      const xrank::index::PostingCodec* codec =
          xrank::index::FindPostingCodec(entry.format.codec_id);
      std::printf(
          "  %-16s %-10s %6u pages  crc %08x  codec %u (%s, %s ranks)  OK\n",
          entry.file.c_str(),
          std::string(xrank::index::IndexKindName(entry.kind)).c_str(),
          entry.page_count, entry.crc, entry.format.codec_id,
          std::string(codec->name()).c_str(),
          std::string(xrank::index::RankEncodingName(entry.format.ranks))
              .c_str());
      continue;
    }
    ++damaged;
    if (first_bad != xrank::storage::kInvalidPage) {
      std::printf("  %-16s DAMAGED (first bad page %u): %s\n",
                  entry.file.c_str(), first_bad,
                  status.ToString().c_str());
    } else {
      std::printf("  %-16s DAMAGED: %s\n", entry.file.c_str(),
                  status.ToString().c_str());
    }
  }
  // Flushed live segments: index pages plus the framed docs log, both
  // checked against the MANIFEST checksums.
  for (const auto& segment : manifest->segments) {
    xrank::Status status =
        xrank::index::VerifySegmentEntry(dir, segment, nullptr);
    if (status.ok()) {
      std::printf(
          "  %-16s segment  docs [%u, %u)  seqs [%llu, %llu]  "
          "crc %08x/%08x  OK\n",
          segment.index.file.c_str(), segment.doc_base,
          segment.doc_base + segment.doc_count,
          static_cast<unsigned long long>(segment.first_seq),
          static_cast<unsigned long long>(segment.last_seq),
          segment.index.crc, segment.docs_crc);
      continue;
    }
    ++damaged;
    std::printf("  %-16s DAMAGED: %s\n", segment.index.file.c_str(),
                status.ToString().c_str());
  }
  // The WAL is allowed to end in a torn record (a crash mid-append);
  // anything else — a bad CRC in the middle — is damage.
  auto wal = xrank::storage::ReadLogFile(
      dir + "/" + xrank::storage::kWalFileName, /*allow_torn_tail=*/true);
  if (!wal.ok()) {
    ++damaged;
    std::printf("  %-16s DAMAGED: %s\n", xrank::storage::kWalFileName,
                wal.status().ToString().c_str());
  } else if (wal->torn_tail) {
    std::printf("  %-16s %zu record(s), torn tail (%llu byte(s) will be "
                "truncated on recovery)  OK\n",
                xrank::storage::kWalFileName, wal->records.size(),
                static_cast<unsigned long long>(wal->dropped_bytes));
  } else {
    std::printf("  %-16s %zu record(s)  OK\n", xrank::storage::kWalFileName,
                wal->records.size());
  }
  return damaged;
}

// `xrank_cli verify <dir>`: offline integrity check of a committed index
// directory — or, when the directory holds a SHARDING file, of a whole
// sharded root: the partition manifest first, then every shard directory.
// Exit 0 when everything matches, 1 on any damage (reporting the first bad
// page per file), 2 on usage errors.
int RunVerify(int argc, char** argv) {
  std::string dir;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (xrank::StartsWith(arg, "--disk-dir=")) {
      dir = arg.substr(11);
    } else if (!xrank::StartsWith(arg, "--") && dir.empty()) {
      dir = arg;
    } else {
      dir.clear();
      break;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "usage: %s verify [--disk-dir=]<index-dir>\n",
                 argv[0]);
    return 2;
  }

  int damaged = 0;
  if (xrank::core::IsShardedRoot(dir)) {
    auto sharding = xrank::core::ReadShardingFile(dir);
    if (!sharding.ok()) {
      std::printf("%s/%s: %s\n", dir.c_str(),
                  xrank::core::kShardingFileName,
                  sharding.status().ToString().c_str());
      std::printf("verification FAILED: SHARDING file damaged\n");
      return 1;
    }
    std::printf("%s: sharded root, %zu shard(s)\n", dir.c_str(),
                sharding->shards.size());
    for (const auto& shard : sharding->shards) {
      std::printf("  %s  docs [%u, %u)\n", shard.dir.c_str(), shard.doc_base,
                  shard.doc_base + shard.doc_count);
    }
    for (const auto& shard : sharding->shards) {
      damaged += VerifyIndexDir(dir + "/" + shard.dir);
    }
  } else {
    damaged = VerifyIndexDir(dir);
  }
  if (damaged > 0) {
    std::printf("verification FAILED: %d file(s) damaged\n", damaged);
    return 1;
  }
  std::printf("verification OK\n");
  return 0;
}

// Reads a whole file into `out`; false (with errno intact) when unreadable.
bool ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// `xrank_cli ingest`: apply live updates to a disk-backed index directory,
// acknowledging each durable operation on stdout. The crash-recovery
// harness (tools/check_recovery.sh) drives this with --crash-at and
// compares the acknowledged operations against what a reopen serves.
int RunIngest(int argc, char** argv) {
  std::string dir;
  IndexKind kind = IndexKind::kDil;
  std::vector<std::string> base_files;
  // (operation, argument) in argv order: "add" -> file, "delete" -> uri,
  // "flush"/"compact" -> explicit maintenance.
  std::vector<std::pair<std::string, std::string>> ops;
  size_t flush_every = 0;
  bool compact = false;
  std::string query;
  size_t top = 10;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (xrank::StartsWith(arg, "--disk-dir=")) {
      dir = arg.substr(11);
    } else if (xrank::StartsWith(arg, "--index=")) {
      if (!ParseIndexKind(arg.substr(8), &kind)) {
        std::fprintf(stderr, "unknown index kind '%s'\n", arg.c_str() + 8);
        return 2;
      }
    } else if (xrank::StartsWith(arg, "--base=")) {
      base_files.push_back(arg.substr(7));
    } else if (xrank::StartsWith(arg, "--add=")) {
      ops.emplace_back("add", arg.substr(6));
    } else if (xrank::StartsWith(arg, "--delete=")) {
      ops.emplace_back("delete", arg.substr(9));
    } else if (arg == "--flush") {
      ops.emplace_back("flush", "");
    } else if (xrank::StartsWith(arg, "--flush-every=")) {
      flush_every = std::strtoul(arg.c_str() + 14, nullptr, 10);
    } else if (arg == "--compact") {
      compact = true;
    } else if (xrank::StartsWith(arg, "--crash-at=")) {
      std::string spec_text = arg.substr(11);
      xrank::fail::FailPointSpec spec;
      spec.action = xrank::fail::Action::kCrash;
      size_t colon = spec_text.rfind(':');
      if (colon != std::string::npos) {
        spec.skip = std::strtoull(spec_text.c_str() + colon + 1, nullptr, 10);
        spec_text.resize(colon);
      }
      if (spec_text.empty()) {
        std::fprintf(stderr, "--crash-at needs a failpoint name\n");
        return 2;
      }
      xrank::fail::FailPoints::Instance().Arm(spec_text, spec);
    } else if (xrank::StartsWith(arg, "--query=")) {
      query = arg.substr(8);
    } else if (xrank::StartsWith(arg, "--top=")) {
      top = std::strtoul(arg.c_str() + 6, nullptr, 10);
      if (top == 0) top = 10;
    } else {
      std::fprintf(stderr, "unknown ingest option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "usage: %s ingest --disk-dir=DIR [--base=f.xml ...] "
                 "[--add=f.xml ...] [--delete=uri ...] [--flush-every=N] "
                 "[--flush] [--compact] [--crash-at=NAME[:K]] "
                 "[--query=\"...\"]\n",
                 argv[0]);
    return 2;
  }

  std::vector<xrank::xml::Document> base_docs;
  for (const std::string& path : base_files) {
    auto doc = xrank::xml::ParseFile(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    base_docs.push_back(std::move(doc).value());
  }

  EngineOptions options;
  options.indexes = {kind};
  options.disk_dir = dir;
  // Inline maintenance: every flush/compaction happens at a deterministic
  // point in the operation stream, so --crash-at windows are reproducible.
  options.background_maintenance = false;

  // First run builds the base index; later runs re-open the directory
  // (MANIFEST present) and replay the WAL.
  std::string manifest_path =
      dir + "/" + std::string(xrank::index::kManifestFileName);
  bool reopen = false;
  if (std::FILE* f = std::fopen(manifest_path.c_str(), "rb")) {
    std::fclose(f);
    reopen = true;
  }
  auto engine = reopen ? XRankEngine::Open(std::move(base_docs), options)
                       : XRankEngine::Build(std::move(base_docs), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", reopen ? "open" : "build",
                 engine.status().ToString().c_str());
    return 1;
  }
  auto counters = (*engine)->update_counters();
  std::printf("OPEN %s docs=%zu live=%llu replayed=%llu\n",
              reopen ? "reopened" : "built",
              (*engine)->graph().document_count(),
              static_cast<unsigned long long>(counters.added_documents),
              static_cast<unsigned long long>(counters.wal_replayed_records));
  std::fflush(stdout);

  size_t adds_since_flush = 0;
  for (const auto& [op, operand] : ops) {
    xrank::Status status;
    if (op == "add") {
      std::string body;
      if (!ReadFileBytes(operand, &body)) {
        std::fprintf(stderr, "%s: cannot read\n", operand.c_str());
        return 1;
      }
      status = (*engine)->AddDocument(operand, body);
      if (status.ok()) ++adds_since_flush;
    } else if (op == "delete") {
      status = (*engine)->DeleteDocument(operand);
    } else if (op == "flush") {
      status = (*engine)->Flush();
      adds_since_flush = 0;
    }
    if (!status.ok()) {
      std::fprintf(stderr, "%s %s failed: %s\n", op.c_str(), operand.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    // The ack line is the harness contract: once printed, the operation
    // must survive any later crash.
    std::printf("ACK %s %s\n", op.c_str(), operand.c_str());
    std::fflush(stdout);
    if (flush_every > 0 && adds_since_flush >= flush_every) {
      status = (*engine)->Flush();
      if (!status.ok()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      adds_since_flush = 0;
      std::printf("ACK flush auto\n");
      std::fflush(stdout);
    }
  }
  if (compact) {
    xrank::Status status = (*engine)->CompactSegments();
    if (!status.ok()) {
      std::fprintf(stderr, "compact failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("ACK compact all\n");
    std::fflush(stdout);
  }

  counters = (*engine)->update_counters();
  std::printf("STATE live=%llu deleted=%zu segments=%llu delta=%llu\n",
              static_cast<unsigned long long>(counters.added_documents),
              (*engine)->deleted_document_count(),
              static_cast<unsigned long long>(counters.segment_count),
              static_cast<unsigned long long>(counters.delta_documents));
  if (!query.empty()) {
    auto response = (*engine)->Query(query, top, kind);
    if (!response.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("QUERY %s\n", query.c_str());
    PrintResponse(*response);
  }
  std::printf("DONE\n");
  std::fflush(stdout);
  return 0;
}

// Parses every --file into a document vector (error carries the path).
xrank::Result<std::vector<xrank::xml::Document>> ParseCliDocuments(
    const CliOptions& cli) {
  std::vector<xrank::xml::Document> docs;
  for (const std::string& path : cli.files) {
    auto doc = xrank::xml::ParseFile(path);
    if (!doc.ok()) {
      return xrank::Status(doc.status().code(),
                           path + ": " + std::string(doc.status().message()));
    }
    docs.push_back(std::move(doc).value());
  }
  return docs;
}

// Engine configuration shared by the monolithic and sharded paths (may
// rewrite cli->kind: --disjunctive forces DIL).
EngineOptions MakeEngineOptions(CliOptions* cli) {
  EngineOptions options;
  options.indexes = {cli->kind};
  options.answer_node_tags = cli->answer_nodes;
  if (cli->disjunctive) {
    options.scoring.semantics = xrank::query::QuerySemantics::kDisjunctive;
    if (cli->kind != IndexKind::kDil) {
      std::fprintf(stderr,
                   "note: --disjunctive requires --index=dil; switching\n");
      options.indexes = {IndexKind::kDil};
      cli->kind = IndexKind::kDil;
    }
  }
  if (cli->tfidf) {
    options.extraction.rank_source = xrank::index::RankSource::kTfIdf;
  }
  options.build.format = cli->format;
  options.build.reorder = cli->reorder;
  return options;
}

void PrintIndexedBanner(const CliOptions& cli, const XRankEngine& engine,
                        bool quiet) {
  const xrank::index::PostingCodec* codec =
      xrank::index::FindPostingCodec(cli.format.codec_id);
  std::fprintf(quiet ? stderr : stdout,
               "indexed %zu documents, %zu elements, %zu hyperlinks "
               "(%s, %s ranks, codec %u/%s, %s rank storage)\n",
               engine.graph().document_count(),
               engine.graph().element_count(),
               engine.graph().total_hyperlink_count(),
               std::string(xrank::index::IndexKindName(cli.kind)).c_str(),
               cli.tfidf ? "tf-idf" : "ElemRank", cli.format.codec_id,
               codec != nullptr ? std::string(codec->name()).c_str() : "?",
               std::string(xrank::index::RankEncodingName(cli.format.ranks))
                   .c_str());
}

// Shared by the query and stats subcommands: parse the files and build the
// engine. Progress goes to stderr when `quiet` (stats --json keeps stdout
// strictly JSON).
xrank::Result<std::unique_ptr<XRankEngine>> BuildEngineFromCli(
    CliOptions* cli, bool quiet) {
  auto docs = ParseCliDocuments(*cli);
  if (!docs.ok()) return docs.status();
  EngineOptions options = MakeEngineOptions(cli);
  if (cli->shards == 0) options.disk_dir = cli->disk_dir;
  auto engine = XRankEngine::Build(std::move(docs).value(), options);
  if (!engine.ok()) return engine.status();
  PrintIndexedBanner(*cli, **engine, quiet);
  return engine;
}

// The --shards=N path: build (or, when --disk-dir already holds a SHARDING
// file, re-open and validate) a document-sharded fleet behind the router.
xrank::Result<std::unique_ptr<ShardRouter>> BuildRouterFromCli(
    CliOptions* cli, bool quiet) {
  auto docs = ParseCliDocuments(*cli);
  if (!docs.ok()) return docs.status();
  ShardRouterOptions router_options;
  router_options.num_shards = cli->shards;
  router_options.engine = MakeEngineOptions(cli);
  router_options.root_dir = cli->disk_dir;
  bool reopen = !cli->disk_dir.empty() &&
                xrank::core::IsShardedRoot(cli->disk_dir);
  auto router =
      reopen ? ShardRouter::Open(std::move(docs).value(), router_options)
             : ShardRouter::Build(std::move(docs).value(), router_options);
  if (!router.ok()) return router.status();
  std::FILE* out = quiet ? stderr : stdout;
  std::fprintf(out, "%s sharded root: %zu shard(s)%s%s\n",
               reopen ? "reopened" : "built", (*router)->shard_count(),
               cli->disk_dir.empty() ? " (in-memory)" : " under ",
               cli->disk_dir.c_str());
  size_t documents = 0;
  size_t elements = 0;
  size_t hyperlinks = 0;
  for (size_t i = 0; i < (*router)->shard_count(); ++i) {
    const auto& shard = (*router)->shard(i);
    const auto& graph = (*router)->shard_engine(i).graph();
    documents += graph.document_count();
    elements += graph.element_count();
    hyperlinks += graph.total_hyperlink_count();
    std::fprintf(out, "  %s  docs [%u, %u)\n", shard.dir.c_str(),
                 shard.doc_base, shard.doc_base + shard.doc_count);
  }
  std::fprintf(out,
               "indexed %zu documents, %zu elements, %zu hyperlinks "
               "across the fleet (%s, %s ranks, codec %u)\n",
               documents, elements, hyperlinks,
               std::string(xrank::index::IndexKindName(cli->kind)).c_str(),
               cli->tfidf ? "tf-idf" : "ElemRank", cli->format.codec_id);
  return router;
}

void PrintUsage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [query] [--index=dil|rdil|hdil|naive-id|naive-rank] "
               "[--codec=varint|bp128|vgb] [--quant-ranks=u8|u16] "
               "[--vbmw-lambda=MILLI] [--reorder=off|bp] "
               "[--reorder-min-partition=N] [--reorder-depth=N] "
               "[--algorithm=auto|exhaustive|maxscore|wand|bmw] "
               "[--top=N] [--shards=N] [--disk-dir=DIR] "
               "[--disjunctive] [--tfidf] [--trace] [--json] "
               "[--answer-nodes=a,b] [--query=\"...\"] <file.xml ...>\n"
               "       %s stats [--json] [options] <file.xml ...>\n"
               "       %s verify [--disk-dir=]<index-dir-or-sharded-root>\n"
               "       %s ingest --disk-dir=DIR [--base=f.xml ...] "
               "[--add=f.xml ...] [--delete=uri ...] [--flush-every=N] "
               "[--compact] [--crash-at=NAME[:K]] [--query=\"...\"]\n",
               prog, prog, prog, prog);
}

// `xrank_cli stats`: build the index (monolithic or, with --shards=N, the
// sharded fleet), optionally run --query against it, then dump the
// process-wide metrics registry — router.* series included, so a sharded
// run's fan-out/θ/partial accounting lands in the same table.
int RunStats(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli, 2)) {
    PrintUsage(argv[0]);
    return 2;
  }
  std::unique_ptr<XRankEngine> engine;
  std::unique_ptr<ShardRouter> router;
  if (cli.shards > 0) {
    auto built = BuildRouterFromCli(&cli, /*quiet=*/cli.json);
    if (!built.ok()) {
      std::fprintf(stderr, "sharded build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    router = std::move(built).value();
  } else {
    auto built = BuildEngineFromCli(&cli, /*quiet=*/cli.json);
    if (!built.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    engine = std::move(built).value();
  }
  if (!cli.one_shot_query.empty()) {
    auto response =
        router != nullptr
            ? router->Query(cli.one_shot_query, cli.top, cli.kind)
            : engine->Query(cli.one_shot_query, cli.top, cli.kind);
    if (!response.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
  }
  auto snapshot = xrank::metrics::Registry::Instance().Snapshot();
  if (cli.json) {
    std::printf("%s\n", xrank::metrics::RenderJson(snapshot).c_str());
  } else {
    std::printf("%s", xrank::metrics::RenderTable(snapshot).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "verify") == 0) {
    return RunVerify(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "stats") == 0) {
    return RunStats(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "ingest") == 0) {
    return RunIngest(argc, argv);
  }
  int first_arg = 1;
  if (argc >= 2 && std::strcmp(argv[1], "query") == 0) first_arg = 2;
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli, first_arg)) {
    PrintUsage(argv[0]);
    return 2;
  }

  std::unique_ptr<XRankEngine> engine;
  std::unique_ptr<ShardRouter> router;
  if (cli.shards > 0) {
    auto built = BuildRouterFromCli(&cli, /*quiet=*/false);
    if (!built.ok()) {
      std::fprintf(stderr, "sharded build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    router = std::move(built).value();
  } else {
    auto built = BuildEngineFromCli(&cli, /*quiet=*/false);
    if (!built.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    engine = std::move(built).value();
  }

  auto run = [&](const std::string& query) {
    xrank::query::QueryTrace trace;
    xrank::query::QueryOptions query_options;
    query_options.algorithm = cli.algorithm;
    if (cli.trace) query_options.trace = &trace;
    auto response =
        router != nullptr
            ? router->Query(query, cli.top, cli.kind, query_options)
            : engine->Query(query, cli.top, cli.kind, query_options);
    if (!response.ok()) {
      std::printf("  error: %s\n", response.status().ToString().c_str());
      return;
    }
    PrintResponse(*response);
    if (router != nullptr) {
      auto counters = router->router_counters();
      std::printf("  [fleet: %zu shards, %llu shard queries, "
                  "%llu theta raises, %llu partial, %llu skipped]\n",
                  router->shard_count(),
                  static_cast<unsigned long long>(counters.shard_queries),
                  static_cast<unsigned long long>(counters.theta_raises),
                  static_cast<unsigned long long>(counters.partial_results),
                  static_cast<unsigned long long>(counters.shards_skipped));
    }
    if (cli.trace) {
      std::printf("%s", cli.json ? (trace.FormatJson() + "\n").c_str()
                                 : trace.FormatTable().c_str());
    }
  };

  if (!cli.one_shot_query.empty()) {
    run(cli.one_shot_query);
    return 0;
  }
  std::printf("enter keyword queries (blank line or EOF to quit):\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (xrank::StripWhitespace(line).empty()) break;
    run(line);
  }
  return 0;
}
