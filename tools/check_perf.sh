#!/usr/bin/env bash
# Serving-fast-path perf gate: builds Release, runs the scaling benchmark
# with a JSON report, and fails if 8 concurrent clients deliver less query
# throughput than a single client (i.e. the sharded pool + result cache
# stopped paying for their synchronization).
#
#   tools/check_perf.sh [build-dir]
#
# The threshold is deliberately lax (1.0x): it catches concurrency
# regressions, not host-to-host variance. BENCH_scaling.json in the repo
# root records the trajectory on the reference host.

set -euo pipefail

DIR="${1:-build-perf}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$DIR" -j "$(nproc)" --target bench_scaling --target bench_micro

# Micro-benchmark JSON (google-benchmark format + spliced metrics-registry
# snapshot) rides along as a CI artifact for throughput trajectory tracking;
# the gate below only reads the scaling report.
# Plain-double min_time: the "0.05s" suffix form needs google-benchmark
# >= 1.8, while the bare double parses everywhere.
"$DIR/bench/bench_micro" --json "$DIR/check_perf_micro.json" \
  --benchmark_min_time=0.05 > /dev/null

JSON="$DIR/check_perf_scaling.json"
"$DIR/bench/bench_scaling" --json "$JSON"

awk '
  /"dblp\/query\/clients=1\/qps"/  { gsub(/[",]/, ""); base = $2 }
  /"dblp\/query\/clients=8\/throughput_x"/ { gsub(/[",]/, ""); tx = $2 }
  END {
    if (base == "" || tx == "") {
      print "check_perf: FAIL — dblp query metrics missing from " FILENAME
      exit 2
    }
    printf "check_perf: dblp 1-client %.1f QPS, 8-client throughput %.2fx\n", base, tx
    if (tx + 0 < 1.0) {
      print "check_perf: FAIL — 8-client throughput below the 1-client baseline"
      exit 1
    }
    print "check_perf: OK"
  }
' "$JSON"
