#!/usr/bin/env bash
# Serving-fast-path perf gate: builds Release, runs the scaling benchmark
# with a JSON report, and fails if 8 concurrent clients deliver less query
# throughput than a single client (i.e. the sharded pool + result cache
# stopped paying for their synchronization).
#
#   tools/check_perf.sh [build-dir]
#
# The threshold is deliberately lax (1.0x): it catches concurrency
# regressions, not host-to-host variance. BENCH_scaling.json in the repo
# root records the trajectory on the reference host.

set -euo pipefail

DIR="${1:-build-perf}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$DIR" -j "$(nproc)" --target bench_scaling --target bench_micro \
  --target bench_topk_sweep

# Micro-benchmark JSON (google-benchmark format + spliced metrics-registry
# snapshot) rides along as a CI artifact for throughput trajectory tracking,
# and gates the block-max pruning fast path: the pruned conjunctive top-k
# merge must not be slower than the exhaustive merge on the skewed-rank
# corpus (it should be dramatically faster; 1.0x only catches the pruning
# machinery turning into pure overhead).
# Plain-double min_time: the "0.05s" suffix form needs google-benchmark
# >= 1.8, while the bare double parses everywhere.
MICRO_JSON="$DIR/check_perf_micro.json"
"$DIR/bench/bench_micro" --json "$MICRO_JSON" \
  --benchmark_min_time=0.05 > /dev/null

python3 - "$MICRO_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
times = {b["name"]: b["real_time"] for b in report["benchmarks"]}
exhaustive = times.get("BM_TopkMergeExhaustive")
pruned = times.get("BM_TopkMergePruned")
if exhaustive is None or pruned is None:
    print("check_perf: FAIL — TopkMerge benchmarks missing from", sys.argv[1])
    sys.exit(2)
speedup = exhaustive / pruned if pruned > 0 else 0.0
print(f"check_perf: pruned top-k merge {speedup:.2f}x vs exhaustive")
if speedup < 1.0:
    print("check_perf: FAIL — block-max pruning slower than exhaustive merge")
    sys.exit(1)

# Posting-codec gate: the bit-packed block codec must decode at >= 2x the
# varint baseline's throughput while spending no more bytes per posting
# (reference host: ~8x and ~0.76x; 2.0/1.0 only catch real regressions).
decode = {b["name"]: b for b in report["benchmarks"]
          if b["name"].startswith("BM_PostingDecode/")}
varint = decode.get("BM_PostingDecode/varint")
bp128 = decode.get("BM_PostingDecode/bp128")
if varint is None or bp128 is None:
    print("check_perf: FAIL — PostingDecode benchmarks missing from",
          sys.argv[1])
    sys.exit(2)
for name, row in sorted(decode.items()):
    if "bytes_per_posting" not in row:  # raw-stream rows (vgb_simd/_scalar)
        continue
    print(f"check_perf: {name.split('/')[1]} decode "
          f"{row['items_per_second'] / 1e6:.1f} M postings/s, "
          f"{row['bytes_per_posting']:.2f} bytes/posting")
ratio = bp128["items_per_second"] / varint["items_per_second"]
if ratio < 2.0:
    print(f"check_perf: FAIL — bp128 decode only {ratio:.2f}x varint "
          "(gate: 2.0x)")
    sys.exit(1)
if bp128["bytes_per_posting"] > varint["bytes_per_posting"]:
    print("check_perf: FAIL — bp128 spends more bytes per posting than "
          "varint")
    sys.exit(1)
print(f"check_perf: bp128 decode {ratio:.2f}x varint throughput, "
      f"{bp128['bytes_per_posting'] / varint['bytes_per_posting']:.2f}x "
      "bytes/posting")

# Disjunctive dynamic-pruning gate: on the skewed-rank corpus, MaxScore and
# block-max WAND must each finish the disjunctive top-10 at >= 2x the
# exhaustive merge (reference host: >100x; 2.0x only catches the pruning
# collapsing into a full scan). Plain WAND is ungated — list-level bounds
# legitimately cannot prune this corpus.
dis_exhaustive = times.get("BM_TopkDisjunctiveExhaustive")
for name, key in (("maxscore", "BM_TopkDisjunctiveMaxScore"),
                  ("bmw", "BM_TopkDisjunctiveBmw")):
    pruned_time = times.get(key)
    if dis_exhaustive is None or pruned_time is None:
        print("check_perf: FAIL — TopkDisjunctive benchmarks missing from",
              sys.argv[1])
        sys.exit(2)
    speedup = dis_exhaustive / pruned_time if pruned_time > 0 else 0.0
    print(f"check_perf: disjunctive {name} top-10 {speedup:.2f}x vs "
          "exhaustive (gate: 2.0x)")
    if speedup < 2.0:
        print(f"check_perf: FAIL — disjunctive {name} below 2x the "
              "exhaustive merge")
        sys.exit(1)

# SIMD group-varint gate: the dispatched kernel must decode the raw vgb
# gap stream at >= 1.5x the portable scalar reference (reference host:
# ~5x with SSSE3). Skipped when no SIMD kernel is compiled in (the rows
# then measure the same scalar code — simd_active=0).
simd = decode.get("BM_PostingDecode/vgb_simd")
scalar = decode.get("BM_PostingDecode/vgb_scalar")
if simd is None or scalar is None:
    print("check_perf: FAIL — vgb_simd/vgb_scalar rows missing from",
          sys.argv[1])
    sys.exit(2)
if simd.get("simd_active", 0) > 0:
    ratio = simd["items_per_second"] / scalar["items_per_second"]
    print(f"check_perf: group-varint SIMD decode {ratio:.2f}x scalar "
          "(gate: 1.5x)")
    if ratio < 1.5:
        print("check_perf: FAIL — SIMD group-varint decode below 1.5x the "
              "scalar reference")
        sys.exit(1)
else:
    print("check_perf: group-varint SIMD gate skipped (scalar-only host)")

# Document-reordering gates, on the clustered corpus whose doc ids are
# LCG-shuffled (identity layout) vs. BP-permuted: (a) bp128 must spend no
# more bytes per posting after reordering (reference host: 0.96x), and
# (b) block-max WAND disjunctive top-10 must be at least as fast on the
# reordered layout (reference host: ~2.3x — sharper block maxima skip
# nearly every block).
shuffled = next((b for b in report["benchmarks"]
                 if b["name"] == "BM_TopkDisjunctiveBmwShuffled"), None)
reordered = next((b for b in report["benchmarks"]
                  if b["name"] == "BM_TopkDisjunctiveBmwReordered"), None)
if shuffled is None or reordered is None:
    print("check_perf: FAIL — BmwShuffled/BmwReordered rows missing from",
          sys.argv[1])
    sys.exit(2)
bytes_ratio = (reordered["bp128_bytes_per_posting"] /
               shuffled["bp128_bytes_per_posting"])
print(f"check_perf: reordered bp128 {bytes_ratio:.3f}x identity "
      "bytes/posting (gate: <= 1.0x)")
if bytes_ratio > 1.0:
    print("check_perf: FAIL — BP reordering inflates bp128 bytes/posting "
          "on the clustered corpus")
    sys.exit(1)
bmw_speedup = (shuffled["real_time"] / reordered["real_time"]
               if reordered["real_time"] > 0 else 0.0)
print(f"check_perf: reordered BMW top-10 {bmw_speedup:.2f}x vs shuffled "
      "(gate: 1.0x)")
if bmw_speedup < 1.0:
    print("check_perf: FAIL — BMW slower on the reordered layout")
    sys.exit(1)
EOF

# Oracle parity in the Release job: bench_topk_sweep re-runs every pruned
# disjunctive query against the exhaustive (--safe) merge and exits
# nonzero if any result id or rank diverges. A small corpus scale keeps
# the gate fast; the parity check is scale-independent.
TOPK_JSON="$DIR/check_perf_topk.json"
XRANK_BENCH_SCALE="${XRANK_TOPK_SCALE:-0.1}" \
  "$DIR/bench/bench_topk_sweep" --json "$TOPK_JSON" > /dev/null
echo "check_perf: disjunctive pruned == exhaustive ids+ranks (topk sweep)"

JSON="$DIR/check_perf_scaling.json"
"$DIR/bench/bench_scaling" --json "$JSON"

awk '
  /"dblp\/query\/clients=1\/cold_qps"/  { gsub(/[",]/, ""); base = $2 }
  /"dblp\/query\/clients=8\/cold_qps"/  { gsub(/[",]/, ""); cold8 = $2 }
  /"dblp\/query\/clients=8\/throughput_x"/ { gsub(/[",]/, ""); tx = $2 }
  /"dblp\/query\/clients=8\/cold_result_cache_hit_rate"/ { gsub(/[",]/, ""); hit = $2 }
  END {
    if (base == "" || tx == "" || hit == "") {
      print "check_perf: FAIL — dblp query metrics missing from " FILENAME
      exit 2
    }
    printf "check_perf: dblp cold 1-client %.1f QPS, 8-client %.1f QPS (%.2fx), cold result-cache hit %.1f%%\n", base, cold8, tx, 100 * hit
    if (tx + 0 < 1.0) {
      print "check_perf: FAIL — 8-client cold throughput below the 1-client baseline"
      exit 1
    }
    if (hit + 0 > 0.05) {
      print "check_perf: FAIL — cold phase served from the result cache (methodology bug)"
      exit 1
    }
    print "check_perf: OK"
  }
' "$JSON"
