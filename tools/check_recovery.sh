#!/usr/bin/env bash
# Crash-recovery gate: kill the ingest process (SIGKILL via the kCrash
# failpoint action, exit 137) inside every commit window of the live-update
# path, then reopen the index directory and prove that
#
#   1. reopen succeeds (WAL replay + torn-tail truncation + segment chain),
#   2. `xrank_cli verify` finds no damaged files,
#   3. every operation the crashed run ACKed on stdout is still served:
#      acknowledged adds appear in query results, acknowledged deletes
#      do not (the ACK line is the durability contract).
#
# Unacknowledged operations may or may not survive — both are correct.
#
#   tools/check_recovery.sh [build-dir]
#
# Environment:
#   XRANK_RECOVERY_SEED=N   seed for the extra randomized skip-count pass
#                           (default 20260808; set for reproduction).

set -uo pipefail

DIR="${1:-build-recovery}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

SEED="${XRANK_RECOVERY_SEED:-20260808}"

cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || exit 1
cmake --build "$DIR" --target xrank_cli -j "$(nproc)" >/dev/null || exit 1
CLI="$DIR/tools/xrank_cli"
[[ -x "$CLI" ]] || { echo "missing $CLI"; exit 1; }

WORK="$(mktemp -d "${TMPDIR:-/tmp}/xrank_recovery.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# Small corpus: three base documents plus six live additions. Every
# document matches the probe query "shared", so presence/absence in the
# top-k is exactly the live/deleted set.
CORPUS="$WORK/corpus"
mkdir -p "$CORPUS"
for i in 1 2 3; do
  printf '<a><t>shared base doc%d</t></a>\n' "$i" > "$CORPUS/base$i.xml"
done
for i in 1 2 3 4 5 6; do
  printf '<a><t>shared live fresh%d</t></a>\n' "$i" > "$CORPUS/live$i.xml"
done

# The full operation stream a run tries to apply. --flush-every=2 turns
# adds 2/4/6 into flush commits, --compact merges the segments, and the
# delete exercises tombstone durability. A crash can land in any window.
ingest_ops() {
  local out_dir="$1"
  shift
  "$CLI" ingest "--disk-dir=$out_dir" --index=dil \
    "--base=$CORPUS/base1.xml" "--base=$CORPUS/base2.xml" \
    "--base=$CORPUS/base3.xml" \
    "--add=$CORPUS/live1.xml" "--add=$CORPUS/live2.xml" \
    "--add=$CORPUS/live3.xml" "--add=$CORPUS/live4.xml" \
    "--delete=$CORPUS/live2.xml" \
    "--add=$CORPUS/live5.xml" "--add=$CORPUS/live6.xml" \
    --flush-every=2 --compact "$@"
}

# Reopen passes the same base documents: the engine re-parses base XML on
# Open (the on-disk state is the index files, segments, and WAL).
reopen_query() {
  "$CLI" ingest "--disk-dir=$1" --index=dil \
    "--base=$CORPUS/base1.xml" "--base=$CORPUS/base2.xml" \
    "--base=$CORPUS/base3.xml" \
    --query=shared --top=32
}

# Extract the document URIs a query served: result lines look like
#   "  1. <t> /path/live1.xml  rank=0.1234567  dewey=..."
query_uris() {
  sed -n 's/^ *[0-9][0-9]*\. <[^>]*> \([^ ]*\) .*/\1/p' "$1" | sort -u
}

FAILURES=0
RUNS=0
CRASHES=0

check_one() {
  local label="$1" point="$2"
  local dir="$WORK/run_$RUNS"
  RUNS=$((RUNS + 1))
  local pre="$dir.pre.log" post="$dir.post.log" verify="$dir.verify.log"
  mkdir -p "$dir"

  ingest_ops "$dir" "--crash-at=$point" > "$pre" 2> "$dir.pre.err"
  local status=$?
  if [[ $status -eq 137 ]]; then
    CRASHES=$((CRASHES + 1))
  elif [[ $status -ne 0 ]]; then
    # A crash window may not be reached on this schedule (skip count past
    # the last hit) — that run simply completes. Any other exit is a bug.
    echo "FAIL [$label] ingest exited $status (want 137 or 0)"
    sed 's/^/    /' "$dir.pre.err"
    FAILURES=$((FAILURES + 1))
    return
  fi

  if ! reopen_query "$dir" > "$post" 2> "$dir.post.err"; then
    echo "FAIL [$label] reopen after crash failed"
    sed 's/^/    /' "$dir.post.err"
    FAILURES=$((FAILURES + 1))
    return
  fi
  if ! "$CLI" verify "--disk-dir=$dir" > "$verify" 2>&1; then
    echo "FAIL [$label] post-crash verify found damage"
    sed 's/^/    /' "$verify"
    FAILURES=$((FAILURES + 1))
    return
  fi

  # Durability contract: ACKed adds present, ACKed deletes absent. A
  # delete ACK supersedes the earlier add ACK for the same URI.
  local served
  served="$(query_uris "$post")"
  local ok=1
  local uri
  while read -r uri; do
    [[ -n "$uri" ]] || continue
    if ! grep -qx "$uri" <<< "$served"; then
      echo "FAIL [$label] acked add '$uri' missing after recovery"
      ok=0
    fi
  done < <(awk '$1 == "ACK" && $2 == "add" { add[$3] = 1 }
                $1 == "ACK" && $2 == "delete" { delete add[$3] }
                END { for (u in add) print u }' "$pre")
  while read -r uri; do
    [[ -n "$uri" ]] || continue
    if grep -qx "$uri" <<< "$served"; then
      echo "FAIL [$label] acked delete '$uri' still served after recovery"
      ok=0
    fi
  done < <(awk '$1 == "ACK" && $2 == "delete" { print $3 }' "$pre")
  if [[ $ok -eq 1 ]]; then
    local verdict="completed"
    [[ $status -eq 137 ]] && verdict="crashed + recovered"
    echo "ok   [$label] $verdict, $(wc -l <<< "$served") docs served"
  else
    FAILURES=$((FAILURES + 1))
  fi
}

# Baseline: the same stream with no fault must complete and serve all
# base docs plus live1..6 minus the deleted live2 (8 documents).
BASE_DIR="$WORK/baseline"
mkdir -p "$BASE_DIR"
ingest_ops "$BASE_DIR" --query=shared --top=32 > "$WORK/baseline.log" 2>&1 \
  || { echo "FAIL baseline ingest"; cat "$WORK/baseline.log"; exit 1; }
BASELINE_COUNT="$(query_uris "$WORK/baseline.log" | wc -l)"
if [[ "$BASELINE_COUNT" -ne 8 ]]; then
  echo "FAIL baseline served $BASELINE_COUNT docs, want 8"
  cat "$WORK/baseline.log"
  exit 1
fi
echo "ok   [baseline] no-fault run serves $BASELINE_COUNT docs"

# Every crash-capable failpoint in the update path, first hit.
POINTS=(
  wal.append
  wal.sync
  wal.torn_append
  wal.rewrite_rename
  segment_flush.before_rename
  segment_flush.before_manifest
  segment_compact.before_rename
  segment_compact.before_manifest
  manifest.rename
)
for point in "${POINTS[@]}"; do
  check_one "$point" "$point"
done

# Randomized skip counts: crash on a later hit of each point, so the
# window lands mid-stream (after some operations are already durable).
for point in wal.append wal.sync segment_flush.before_rename \
             segment_flush.before_manifest wal.rewrite_rename; do
  skip=$(( (SEED + RUNS * 2654435761) % 4 + 1 ))
  check_one "$point:$skip" "$point:$skip"
done

echo
echo "recovery check: $RUNS fault runs, $CRASHES crashed, $FAILURES failures"
if [[ $CRASHES -eq 0 ]]; then
  echo "FAIL no run actually crashed — failpoints not reached"
  exit 1
fi
[[ $FAILURES -eq 0 ]] || exit 1
echo "recovery check OK"
