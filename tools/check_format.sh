#!/usr/bin/env bash
# Format gate: clang-format --dry-run -Werror over every C++ source in the
# repo, against the checked-in .clang-format. Exits 0 with a SKIP message
# when clang-format is not installed (developer laptops without LLVM); CI
# installs it and gets the real check. Override the binary with
# CLANG_FORMAT=clang-format-18 etc.
#
#   tools/check_format.sh [clang-format args...]

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
  echo "check_format: SKIP — $CLANG_FORMAT not found (set CLANG_FORMAT or install clang-format)"
  exit 0
fi

mapfile -t FILES < <(find src tests bench tools examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) | sort)

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "check_format: FAIL — no sources found (run from the repo root?)"
  exit 2
fi

echo "check_format: checking ${#FILES[@]} files with $("$CLANG_FORMAT" --version)"
if "$CLANG_FORMAT" --dry-run -Werror "$@" "${FILES[@]}"; then
  echo "check_format: OK"
else
  echo "check_format: FAIL — run: $CLANG_FORMAT -i <files> to fix"
  exit 1
fi
