// Reproduces the Section 3.2 experiment: ElemRank computation cost on the
// DBLP-shaped and XMark-shaped corpora — convergence iterations and wall
// time under the paper's parameters (d1=0.35, d2=0.25, d3=0.25, threshold
// 0.00002) — plus the paper's observation that varying d1/d2/d3 "does not
// have a significant effect on convergence time", and an ablation over the
// four formula refinements of Section 3.1 (A2 in DESIGN.md).

#include "bench_util.h"
#include "common/timer.h"
#include "graph/builder.h"
#include "rank/elem_rank.h"

namespace xrank::bench {
namespace {

graph::XmlGraph BuildGraph(std::vector<xml::Document> docs) {
  graph::GraphBuilder builder;
  for (const xml::Document& doc : docs) {
    Status status = builder.AddDocument(doc);
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
  auto graph = std::move(builder).Finalize();
  if (!graph.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", graph.status().ToString().c_str());
    std::abort();
  }
  return std::move(graph).value();
}

void RunDataset(const char* name, const graph::XmlGraph& graph,
                JsonReport* report) {
  std::printf("\n%s: %zu elements, %zu hyperlinks, %zu documents\n", name,
              graph.element_count(), graph.total_hyperlink_count(),
              graph.document_count());

  // Paper settings.
  {
    rank::ElemRankOptions options;
    WallTimer timer;
    auto result = rank::ComputeElemRank(graph, options);
    double seconds = timer.ElapsedSeconds();
    std::printf("  paper parameters (d1=0.35 d2=0.25 d3=0.25, eps=2e-5): "
                "%d iterations, %.3f s, converged=%s\n",
                result->iterations, seconds,
                result->converged ? "yes" : "no");
    report->Add(std::string(name) + "/paper_params/iterations",
                result->iterations);
    report->Add(std::string(name) + "/paper_params/seconds", seconds);
  }

  // Sensitivity sweep over d1/d2/d3 (paper: convergence time insensitive).
  std::printf("  d1/d2/d3 sensitivity:  ");
  struct Params {
    double d1, d2, d3;
  };
  const Params sweep[] = {{0.35, 0.25, 0.25}, {0.6, 0.15, 0.1},
                          {0.1, 0.5, 0.25},   {0.1, 0.25, 0.5},
                          {0.28, 0.28, 0.28}};
  for (const Params& params : sweep) {
    rank::ElemRankOptions options;
    options.d1 = params.d1;
    options.d2 = params.d2;
    options.d3 = params.d3;
    WallTimer timer;
    auto result = rank::ComputeElemRank(graph, options);
    std::printf("(%.2f,%.2f,%.2f)->%d it/%.2fs  ", params.d1, params.d2,
                params.d3, result->iterations, timer.ElapsedSeconds());
  }
  std::printf("\n");

  // Ablation over the Section 3.1 formula refinements.
  std::printf("  formula ablation:      ");
  struct Variant {
    rank::Formula formula;
    const char* label;
  };
  const Variant variants[] = {
      {rank::Formula::kPageRankAdaptation, "pagerank-adapt"},
      {rank::Formula::kBidirectional, "bidirectional"},
      {rank::Formula::kDiscriminated, "discriminated"},
      {rank::Formula::kFinal, "final"},
  };
  for (const Variant& variant : variants) {
    rank::ElemRankOptions options;
    options.formula = variant.formula;
    WallTimer timer;
    auto result = rank::ComputeElemRank(graph, options);
    double seconds = timer.ElapsedSeconds();
    std::printf("%s->%d it/%.2fs  ", variant.label, result->iterations,
                seconds);
    report->Add(std::string(name) + "/formula=" + variant.label + "/seconds",
                seconds);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace xrank::bench

int main(int argc, char** argv) {
  using namespace xrank;
  using namespace xrank::bench;

  JsonReport report("bench_elemrank");
  argc = report.ParseFlag(argc, argv);
  (void)argc;

  std::printf("=== Section 3.2: ElemRank computation cost ===\n");
  std::printf("(paper: 143 MB DBLP in ~10 min, 113 MB XMark in ~5 min on a\n"
              " 2.8 GHz P4; our corpora are laptop-scale with the same "
              "shape)\n");
  {
    datagen::Corpus corpus = datagen::GenerateDblp(BenchDblpOptions());
    graph::XmlGraph graph = BuildGraph(Reparse(&corpus));
    RunDataset("DBLP-like", graph, &report);
  }
  {
    datagen::Corpus corpus = datagen::GenerateXMark(BenchXMarkOptions());
    graph::XmlGraph graph = BuildGraph(Reparse(&corpus));
    RunDataset("XMark-like", graph, &report);
  }
  return report.Write() ? 0 : 1;
}
