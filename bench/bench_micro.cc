// Micro-benchmarks (google-benchmark) for the hot primitives underneath
// the paper's algorithms: Dewey codecs and comparisons, B+-tree probes,
// posting-list scans, tokenization, minimal-window computation, and the
// Dewey-stack merge.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/bitpack.h"
#include "common/metrics.h"
#include "common/random.h"
#include "dewey/codec.h"
#include "index/analyzer.h"
#include "index/block_cache.h"
#include "index/codec.h"
#include "index/lexicon.h"
#include "index/posting.h"
#include "index/reorder.h"
#include "query/dewey_stack.h"
#include "query/dil_query.h"
#include "query/proximity.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/cost_model.h"
#include "storage/page_file.h"

namespace xrank {
namespace {

std::vector<dewey::DeweyId> MakeIds(size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<dewey::DeweyId> ids;
  ids.reserve(count);
  uint32_t doc = 0, a = 0, b = 0, c = 0;
  for (size_t i = 0; i < count; ++i) {
    c += 1 + static_cast<uint32_t>(rng.Uniform(3));
    if (c > 12) {
      c = 0;
      ++b;
    }
    if (b > 12) {
      b = 0;
      ++a;
    }
    if (a > 12) {
      a = 0;
      ++doc;
    }
    ids.push_back(dewey::DeweyId({doc, a, b, c}));
  }
  return ids;
}

void BM_DeweyEncode(benchmark::State& state) {
  auto ids = MakeIds(1024, 1);
  size_t i = 0;
  std::string buffer;
  for (auto _ : state) {
    buffer.clear();
    dewey::EncodeDeweyId(ids[i++ & 1023], &buffer);
    benchmark::DoNotOptimize(buffer);
  }
}
BENCHMARK(BM_DeweyEncode);

void BM_DeweyDecode(benchmark::State& state) {
  auto ids = MakeIds(1024, 2);
  std::vector<std::string> encoded;
  for (const auto& id : ids) {
    std::string buffer;
    dewey::EncodeDeweyId(id, &buffer);
    encoded.push_back(std::move(buffer));
  }
  size_t i = 0;
  for (auto _ : state) {
    size_t offset = 0;
    auto id = dewey::DecodeDeweyId(encoded[i++ & 1023], &offset);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_DeweyDecode);

void BM_DeweyCompare(benchmark::State& state) {
  auto ids = MakeIds(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    bool less = ids[i & 1023] < ids[(i + 7) & 1023];
    benchmark::DoNotOptimize(less);
    ++i;
  }
}
BENCHMARK(BM_DeweyCompare);

void BM_CommonPrefixLength(benchmark::State& state) {
  auto ids = MakeIds(1024, 4);
  size_t i = 0;
  for (auto _ : state) {
    size_t cpl = ids[i & 1023].CommonPrefixLength(ids[(i + 1) & 1023]);
    benchmark::DoNotOptimize(cpl);
    ++i;
  }
}
BENCHMARK(BM_CommonPrefixLength);

void BM_BtreeSeekCeil(benchmark::State& state) {
  auto file = storage::PageFile::CreateInMemory();
  storage::BtreeBuilder builder(file.get(), nullptr);
  auto ids = MakeIds(static_cast<size_t>(state.range(0)), 5);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (size_t i = 0; i < ids.size(); ++i) {
    (void)builder.Add(ids[i], i);
  }
  auto stats = builder.Finish();
  storage::BufferPool pool(file.get(), 4096, nullptr);
  storage::BtreeReader reader(&pool, stats->root);
  size_t i = 0;
  for (auto _ : state) {
    auto seek = reader.SeekCeil(ids[(i += 17) % ids.size()]);
    benchmark::DoNotOptimize(seek);
  }
}
BENCHMARK(BM_BtreeSeekCeil)->Arg(1000)->Arg(100000);

void BM_PostingListScan(benchmark::State& state) {
  auto file = storage::PageFile::CreateInMemory();
  index::PostingListWriter writer(file.get(), true);
  auto ids = MakeIds(10000, 6);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (const auto& id : ids) {
    index::Posting posting;
    posting.id = id;
    posting.elem_rank = 0.5f;
    posting.positions = {1, 5, 9};
    (void)writer.Add(posting);
  }
  auto extent = writer.Finish();
  storage::BufferPool pool(file.get(), 4096, nullptr);
  for (auto _ : state) {
    index::PostingListCursor cursor(&pool, *extent, true);
    index::Posting posting;
    size_t count = 0;
    while (*cursor.Next(&posting)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ids.size()));
}
BENCHMARK(BM_PostingListScan);

// Per-codec decode fixture: the same dblp-shaped 20k-posting list written
// through one codec, its pages snapshotted so the benchmark loop measures
// pure page decoding — the codec-specific cost — without buffer-pool
// traffic. check_perf.sh gates the bp128 row against the varint baseline.
struct CodecFixture {
  index::PostingFormat format;
  std::vector<storage::Page> pages;
  size_t posting_count = 0;
  double bytes_per_posting = 0.0;
};

CodecFixture* GetCodecFixture(const std::string& codec_name) {
  static auto* cache = new std::vector<std::pair<std::string, CodecFixture*>>;
  for (auto& entry : *cache) {
    if (entry.first == codec_name) return entry.second;
  }
  const index::PostingCodec* codec =
      index::FindPostingCodecByName(codec_name);
  if (codec == nullptr) return nullptr;
  auto ids = MakeIds(20000, 6);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  Random rng(10);
  std::vector<index::Posting> postings;
  postings.reserve(ids.size());
  for (const auto& id : ids) {
    index::Posting posting;
    posting.id = id;
    posting.elem_rank = 0.001f * static_cast<float>(1 + rng.Uniform(1000));
    uint32_t base = static_cast<uint32_t>(rng.Uniform(200));
    posting.positions = {base, base + 3, base + 11};
    postings.push_back(std::move(posting));
  }
  auto* fixture = new CodecFixture();
  fixture->format = index::MakeWriterFormat(
      codec,
      index::PostingFormatSpec{codec->id(), index::RankEncoding::kFloat32},
      postings, /*delta_encode_ids=*/true);
  auto file = storage::PageFile::CreateInMemory();
  index::PostingListWriter writer(file.get(), fixture->format);
  for (const auto& posting : postings) (void)writer.Add(posting);
  auto extent = writer.Finish();
  storage::BufferPool pool(file.get(), 4096, nullptr);
  fixture->pages.resize(extent->page_count);
  for (uint32_t p = 0; p < extent->page_count; ++p) {
    (void)pool.Read(extent->first_page + p, &fixture->pages[p]);
  }
  fixture->posting_count = postings.size();
  fixture->bytes_per_posting = static_cast<double>(extent->byte_count) /
                               static_cast<double>(postings.size());
  cache->emplace_back(codec_name, fixture);
  return fixture;
}

// Raw group-varint stream decode: a doc-gap-shaped u32 stream decoded
// through the dispatched kernel vs. the portable scalar reference — the
// primitive underneath vgb page decoding, isolated from Dewey
// reconstruction so the SIMD speedup is visible. check_perf.sh gates
// vgb_simd against vgb_scalar whenever a SIMD kernel is active (the
// simd_active counter; 0 means the host or XRANK_NO_SIMD forces scalar
// and the two rows measure the same code).
struct VgbStreamFixture {
  std::vector<uint8_t> encoded;  // 16-byte slack after the encoded extent
  size_t value_count = 0;
  size_t encoded_bytes = 0;
};

VgbStreamFixture* GetVgbStreamFixture() {
  static VgbStreamFixture* fixture = [] {
    auto* out = new VgbStreamFixture();
    Random rng(11);
    constexpr size_t kValues = 64 * 1024;
    std::vector<uint32_t> values(kValues);
    for (uint32_t& value : values) {
      // Byte-length mix of a delta stream: mostly 1-byte gaps, some 2-byte,
      // occasional wide jumps.
      uint64_t bucket = rng.Uniform(100);
      if (bucket < 70) {
        value = static_cast<uint32_t>(rng.Uniform(1u << 7));
      } else if (bucket < 95) {
        value = static_cast<uint32_t>(rng.Uniform(1u << 14));
      } else {
        value = static_cast<uint32_t>(rng.Uniform(1u << 28));
      }
    }
    for (size_t group = 0; group < values.size(); group += 4) {
      size_t in_group = std::min<size_t>(4, values.size() - group);
      uint8_t control = 0;
      size_t control_at = out->encoded.size();
      out->encoded.push_back(0);
      for (size_t j = 0; j < in_group; ++j) {
        uint32_t value = values[group + j];
        uint8_t length = value < (1u << 8)    ? 1
                         : value < (1u << 16) ? 2
                         : value < (1u << 24) ? 3
                                              : 4;
        control |= static_cast<uint8_t>((length - 1) << (2 * j));
        for (uint8_t b = 0; b < length; ++b) {
          out->encoded.push_back(static_cast<uint8_t>(value >> (8 * b)));
        }
      }
      out->encoded[control_at] = control;
    }
    out->value_count = kValues;
    out->encoded_bytes = out->encoded.size();
    out->encoded.resize(out->encoded.size() + 16);
    return out;
  }();
  return fixture;
}

void RunGroupVarintStreamDecode(benchmark::State& state, bool dispatched) {
  VgbStreamFixture* fixture = GetVgbStreamFixture();
  std::vector<uint32_t> out(fixture->value_count);
  const uint8_t* in = fixture->encoded.data();
  const uint8_t* in_end = fixture->encoded.data() + fixture->encoded.size();
  for (auto _ : state) {
    size_t consumed = 0;
    bool ok = dispatched
                  ? bitpack::UnpackGroupVarint(in, in_end,
                                               fixture->value_count,
                                               out.data(), &consumed)
                  : bitpack::UnpackGroupVarintPortable(in, in_end,
                                                       fixture->value_count,
                                                       out.data(), &consumed);
    if (!ok || consumed != fixture->encoded_bytes) {
      state.SkipWithError("group-varint stream decode failed");
      return;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture->value_count));
  state.counters["simd_active"] =
      std::strcmp(bitpack::GroupVarintKernelName(), "scalar") != 0 ? 1.0
                                                                   : 0.0;
}

void BM_PostingDecode(benchmark::State& state, const char* codec_name) {
  if (std::strcmp(codec_name, "vgb_simd") == 0) {
    return RunGroupVarintStreamDecode(state, /*dispatched=*/true);
  }
  if (std::strcmp(codec_name, "vgb_scalar") == 0) {
    return RunGroupVarintStreamDecode(state, /*dispatched=*/false);
  }
  CodecFixture* fixture = GetCodecFixture(codec_name);
  if (fixture == nullptr) {
    state.SkipWithError("codec not registered");
    return;
  }
  std::vector<index::Posting> block;
  for (auto _ : state) {
    size_t decoded = 0;
    for (const storage::Page& page : fixture->pages) {
      Status status =
          fixture->format.codec->DecodePage(page, fixture->format, &block);
      if (!status.ok()) {
        state.SkipWithError(status.ToString().c_str());
        return;
      }
      decoded += block.size();
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture->posting_count));
  state.counters["bytes_per_posting"] = fixture->bytes_per_posting;
}
BENCHMARK_CAPTURE(BM_PostingDecode, varint, "varint");
BENCHMARK_CAPTURE(BM_PostingDecode, bp128, "bp128");
BENCHMARK_CAPTURE(BM_PostingDecode, vgb, "vgb");
BENCHMARK_CAPTURE(BM_PostingDecode, vgb_simd, "vgb_simd");
BENCHMARK_CAPTURE(BM_PostingDecode, vgb_scalar, "vgb_scalar");

void BM_Tokenize(benchmark::State& state) {
  index::Analyzer analyzer;
  std::string text;
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    text += "word" + std::to_string(rng.Uniform(1000)) + " ";
  }
  for (auto _ : state) {
    uint32_t position = 0;
    auto tokens = analyzer.Tokenize(text, &position);
    benchmark::DoNotOptimize(tokens);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_Tokenize);

void BM_MinimalWindow(benchmark::State& state) {
  Random rng(8);
  std::vector<std::vector<uint32_t>> lists(3);
  for (auto& list : lists) {
    for (int i = 0; i < 64; ++i) {
      list.push_back(static_cast<uint32_t>(rng.Uniform(10000)));
    }
  }
  for (auto _ : state) {
    uint32_t window = query::MinimalWindowSize(lists);
    benchmark::DoNotOptimize(window);
  }
}
BENCHMARK(BM_MinimalWindow);

void BM_DeweyStackMerge(benchmark::State& state) {
  auto ids = MakeIds(10000, 9);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  query::ScoringOptions scoring;
  for (auto _ : state) {
    size_t emitted = 0;
    query::DeweyStackMerger merger(
        2, scoring, 1,
        [&](const query::CandidateResult&) { ++emitted; });
    for (size_t i = 0; i < ids.size(); ++i) {
      index::Posting posting;
      posting.id = ids[i];
      posting.elem_rank = 0.25f;
      posting.positions = {static_cast<uint32_t>(i)};
      merger.Add(i & 1, posting);
    }
    merger.Flush();
    benchmark::DoNotOptimize(emitted);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ids.size()));
}
BENCHMARK(BM_DeweyStackMerge);

// Two-term conjunctive corpus with skewed ElemRanks: both terms occur in
// every document (document-at-a-time skipping cannot help), the first few
// documents carry large ranks and the long tail is tiny — the regime where
// block-max pruning pays. Built once and shared across iterations.
struct SkewedIndex {
  std::unique_ptr<storage::PageFile> file;
  std::unique_ptr<storage::CostModel> cost_model;
  std::unique_ptr<storage::BufferPool> pool;
  index::Lexicon lexicon;
};

SkewedIndex* GetSkewedIndex() {
  static SkewedIndex* index = [] {
    auto* out = new SkewedIndex();
    out->file = storage::PageFile::CreateInMemory();
    constexpr uint32_t kDocs = 50000;
    const char* terms[] = {"hot", "cold"};
    for (uint32_t t = 0; t < 2; ++t) {
      index::PostingListWriter writer(out->file.get(),
                                      /*delta_encode_ids=*/true);
      for (uint32_t d = 0; d < kDocs; ++d) {
        index::Posting posting;
        posting.id = dewey::DeweyId{d, 1};
        posting.elem_rank = d < 16 ? 1000.0f - static_cast<float>(d)
                                   : 1.0f / static_cast<float>(d + 2);
        posting.positions = {t + 1};
        writer.Add(posting).status();
      }
      auto extent = writer.Finish();
      index::TermInfo info;
      info.list = *extent;
      info.skips = writer.TakeSkips();
      info.max_doc_rank = writer.max_doc_rank();
      out->lexicon.Add(terms[t], std::move(info));
    }
    out->cost_model = std::make_unique<storage::CostModel>();
    out->pool = std::make_unique<storage::BufferPool>(out->file.get(), 4096,
                                                      out->cost_model.get());
    return out;
  }();
  return index;
}

void RunTopkMerge(benchmark::State& state, bool use_skip_blocks,
                  bool use_pruning, index::BlockCache* cache) {
  SkewedIndex* idx = GetSkewedIndex();
  query::DilQueryProcessor processor(idx->pool.get(), &idx->lexicon,
                                     query::ScoringOptions{}, use_skip_blocks,
                                     cache, use_pruning);
  std::vector<std::string> keywords = {"hot", "cold"};
  uint64_t postings = 0;
  for (auto _ : state) {
    auto response = processor.Execute(keywords, 10);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    postings += response->stats.postings_scanned;
    benchmark::DoNotOptimize(response->results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(postings));
}

void BM_TopkMergeExhaustive(benchmark::State& state) {
  RunTopkMerge(state, /*use_skip_blocks=*/false, /*use_pruning=*/false,
               nullptr);
}
BENCHMARK(BM_TopkMergeExhaustive);

void BM_TopkMergePruned(benchmark::State& state) {
  RunTopkMerge(state, /*use_skip_blocks=*/true, /*use_pruning=*/true,
               nullptr);
}
BENCHMARK(BM_TopkMergePruned);

void BM_TopkMergePrunedCached(benchmark::State& state) {
  static index::BlockCache* cache = new index::BlockCache(32u << 20);
  RunTopkMerge(state, /*use_skip_blocks=*/true, /*use_pruning=*/true, cache);
}
BENCHMARK(BM_TopkMergePrunedCached);

// Disjunctive top-k over the same skewed corpus: the exhaustive merge must
// consume both full lists; MaxScore / WAND / block-max WAND prune on the
// score bounds instead. check_perf.sh gates the pruned rows against the
// exhaustive baseline.
void RunDisjunctiveTopk(benchmark::State& state,
                        query::MergeAlgorithm algorithm,
                        bool use_skip_blocks) {
  SkewedIndex* idx = GetSkewedIndex();
  query::ScoringOptions scoring;
  scoring.semantics = query::QuerySemantics::kDisjunctive;
  query::DilQueryProcessor processor(idx->pool.get(), &idx->lexicon, scoring,
                                     use_skip_blocks);
  std::vector<std::string> keywords = {"hot", "cold"};
  query::QueryOptions options;
  options.algorithm = algorithm;
  uint64_t postings = 0;
  for (auto _ : state) {
    auto response = processor.Execute(keywords, 10, options);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    postings += response->stats.postings_scanned;
    benchmark::DoNotOptimize(response->results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(postings));
}

void BM_TopkDisjunctiveExhaustive(benchmark::State& state) {
  RunDisjunctiveTopk(state, query::MergeAlgorithm::kExhaustive,
                     /*use_skip_blocks=*/false);
}
BENCHMARK(BM_TopkDisjunctiveExhaustive);

void BM_TopkDisjunctiveMaxScore(benchmark::State& state) {
  RunDisjunctiveTopk(state, query::MergeAlgorithm::kMaxScore,
                     /*use_skip_blocks=*/true);
}
BENCHMARK(BM_TopkDisjunctiveMaxScore);

void BM_TopkDisjunctiveWand(benchmark::State& state) {
  RunDisjunctiveTopk(state, query::MergeAlgorithm::kWand,
                     /*use_skip_blocks=*/true);
}
BENCHMARK(BM_TopkDisjunctiveWand);

void BM_TopkDisjunctiveBmw(benchmark::State& state) {
  RunDisjunctiveTopk(state, query::MergeAlgorithm::kBlockMaxWand,
                     /*use_skip_blocks=*/true);
}
BENCHMARK(BM_TopkDisjunctiveBmw);

// Clustered corpus in two physical doc-id layouts sharing one page file:
// "@id" assigns doc ids by an LCG shuffle (clusters scattered — the
// ingest-order worst case) and "@bp" applies the BP permutation computed
// from the shuffled postings. Every document carries the dense "hot" /
// "cold" pair the disjunctive query runs over plus its cluster's marker
// term (the structure BP exploits), and all the large ElemRanks live in
// cluster 0 — shuffled, every block-max is poisoned by a nearby hot
// document; reordered, the maxima collapse outside one contiguous id range
// and block-max WAND skips nearly everything. The fixture also re-encodes
// every list (markers included) under bp128 per layout, so the benchmark
// rows carry the space side of the reorder win as a counter.
// check_perf.sh gates reordered BMW time and reordered bp128
// bytes-per-posting against the shuffled rows.
struct ClusteredLayouts {
  std::unique_ptr<storage::PageFile> file;
  std::unique_ptr<storage::BufferPool> pool;
  index::Lexicon lexicon;  // "hot@id", "cold@id", "hot@bp", "cold@bp"
  double bp128_bytes_per_posting_id = 0.0;
  double bp128_bytes_per_posting_bp = 0.0;
};

ClusteredLayouts* GetClusteredLayouts() {
  static ClusteredLayouts* layouts = [] {
    auto* out = new ClusteredLayouts();
    out->file = storage::PageFile::CreateInMemory();
    constexpr uint32_t kClusters = 64;
    constexpr uint32_t kDocsPerCluster = 780;
    constexpr uint32_t kDocs = kClusters * kDocsPerCluster;
    // Random bijection identity -> shuffled physical id.
    std::vector<uint32_t> to_shuffled(kDocs);
    for (uint32_t d = 0; d < kDocs; ++d) to_shuffled[d] = d;
    Random rng(12);
    for (uint32_t i = kDocs; i > 1; --i) {
      std::swap(to_shuffled[i - 1],
                to_shuffled[static_cast<uint32_t>(rng.Uniform(i))]);
    }
    auto rank_of = [](uint32_t identity_doc) {
      return identity_doc < kDocsPerCluster
                 ? 1000.0f - 0.5f * static_cast<float>(identity_doc)
                 : 1.0f / static_cast<float>(identity_doc + 2);
    };
    std::map<std::string, std::vector<index::Posting>> shuffled;
    for (uint32_t identity_doc = 0; identity_doc < kDocs; ++identity_doc) {
      index::Posting posting;
      posting.id = dewey::DeweyId{to_shuffled[identity_doc], 1};
      posting.elem_rank = rank_of(identity_doc);
      posting.positions = {1};
      shuffled["hot"].push_back(posting);
      posting.positions = {2};
      shuffled["cold"].push_back(posting);
      posting.positions = {3};
      shuffled["m" + std::to_string(identity_doc / kDocsPerCluster)]
          .push_back(posting);
    }
    for (auto& [term, list] : shuffled) {
      std::sort(list.begin(), list.end(),
                [](const index::Posting& a, const index::Posting& b) {
                  return a.id < b.id;
                });
    }
    index::ReorderOptions reorder;
    reorder.algorithm = index::ReorderAlgorithm::kBp;
    index::DocPermutation perm =
        index::ComputeReorderPermutation(shuffled, kDocs, reorder);
    std::map<std::string, std::vector<index::Posting>> reordered = shuffled;
    for (auto& [term, list] : reordered) {
      for (index::Posting& posting : list) {
        std::vector<uint32_t> components = posting.id.components();
        components[0] = perm.ToPhysical(components[0]);
        posting.id.AssignComponents(components.data(), components.size());
      }
      std::sort(list.begin(), list.end(),
                [](const index::Posting& a, const index::Posting& b) {
                  return a.id < b.id;
                });
    }
    const index::PostingCodec* bp128 = index::FindPostingCodecByName("bp128");
    const std::pair<const char*,
                    const std::map<std::string, std::vector<index::Posting>>*>
        layouts_by_suffix[] = {{"@id", &shuffled}, {"@bp", &reordered}};
    for (const auto& [suffix, postings] : layouts_by_suffix) {
      // Queried lists: default (varint) format with skip/block-max data.
      for (const char* term : {"hot", "cold"}) {
        index::PostingListWriter writer(out->file.get(),
                                        /*delta_encode_ids=*/true);
        for (const index::Posting& posting : postings->at(term)) {
          writer.Add(posting).status();
        }
        auto extent = writer.Finish();
        index::TermInfo info;
        info.list = *extent;
        info.skips = writer.TakeSkips();
        info.max_doc_rank = writer.max_doc_rank();
        out->lexicon.Add(std::string(term) + suffix, std::move(info));
      }
      // Space side: every list (markers included) re-encoded under bp128.
      uint64_t used_bytes = 0, posting_count = 0;
      for (const auto& [term, list] : *postings) {
        index::PostingFormat format = index::MakeWriterFormat(
            bp128,
            index::PostingFormatSpec{bp128->id(),
                                     index::RankEncoding::kFloat32},
            list, /*delta_encode_ids=*/true);
        index::PostingListWriter writer(out->file.get(), format);
        for (const index::Posting& posting : list) {
          writer.Add(posting).status();
        }
        auto extent = writer.Finish();
        used_bytes += extent->byte_count;
        posting_count += list.size();
      }
      double bytes_per_posting = static_cast<double>(used_bytes) /
                                 static_cast<double>(posting_count);
      (std::strcmp(suffix, "@id") == 0 ? out->bp128_bytes_per_posting_id
                                       : out->bp128_bytes_per_posting_bp) =
          bytes_per_posting;
    }
    out->pool = std::make_unique<storage::BufferPool>(out->file.get(), 4096,
                                                      nullptr);
    return out;
  }();
  return layouts;
}

void RunClusteredBmw(benchmark::State& state, const char* suffix) {
  ClusteredLayouts* idx = GetClusteredLayouts();
  query::ScoringOptions scoring;
  scoring.semantics = query::QuerySemantics::kDisjunctive;
  query::DilQueryProcessor processor(idx->pool.get(), &idx->lexicon, scoring,
                                     /*use_skip_blocks=*/true);
  std::vector<std::string> keywords = {std::string("hot") + suffix,
                                       std::string("cold") + suffix};
  query::QueryOptions options;
  options.algorithm = query::MergeAlgorithm::kBlockMaxWand;
  uint64_t postings = 0;
  for (auto _ : state) {
    auto response = processor.Execute(keywords, 10, options);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    postings += response->stats.postings_scanned;
    benchmark::DoNotOptimize(response->results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(postings));
  state.counters["bp128_bytes_per_posting"] =
      std::strcmp(suffix, "@id") == 0 ? idx->bp128_bytes_per_posting_id
                                      : idx->bp128_bytes_per_posting_bp;
}

void BM_TopkDisjunctiveBmwShuffled(benchmark::State& state) {
  RunClusteredBmw(state, "@id");
}
BENCHMARK(BM_TopkDisjunctiveBmwShuffled);

void BM_TopkDisjunctiveBmwReordered(benchmark::State& state) {
  RunClusteredBmw(state, "@bp");
}
BENCHMARK(BM_TopkDisjunctiveBmwReordered);

}  // namespace
}  // namespace xrank

// Splices `,"xrank_metrics": {...}` (a metrics-registry snapshot) before
// the final '}' of the google-benchmark JSON file, so perf artifacts carry
// the counter/histogram context without fighting the library for the
// reporter.
static void AppendRegistryToJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  size_t close = content.find_last_of('}');
  if (close == std::string::npos) return;
  std::string registry = xrank::metrics::RenderJson(
      xrank::metrics::Registry::Instance().Snapshot());
  content.insert(close, ",\n\"xrank_metrics\": " + registry + "\n");
  f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

// Custom main so `--json <path>` (the flag shared by the bench binaries)
// maps onto google-benchmark's JSON reporter, and `--codec <name>` narrows
// the run to that codec's posting-decode row.
int main(int argc, char** argv) {
  std::vector<std::string> arg_storage;
  std::vector<char*> args;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && std::string(argv[i]) == "--json") {
      json_path = argv[i + 1];
      arg_storage.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      arg_storage.push_back("--benchmark_out_format=json");
      ++i;
      continue;
    }
    if (i + 1 < argc && std::string(argv[i]) == "--codec") {
      arg_storage.push_back(std::string("--benchmark_filter=BM_PostingDecode/") +
                            argv[i + 1] + "$");
      ++i;
      continue;
    }
    arg_storage.push_back(argv[i]);
  }
  args.reserve(arg_storage.size());
  for (std::string& arg : arg_storage) args.push_back(arg.data());
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) AppendRegistryToJson(json_path);
  return 0;
}
