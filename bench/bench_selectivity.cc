// Reproduces the Section 5.4 selectivity observation: the paper varied
// keyword selectivity and found it "not as interesting" — highly selective
// keywords are cheap for every approach, and the structural differences
// only matter for low-selectivity (long-list) keywords. This harness
// regenerates that evidence using the planted selectivity ladder (term
// sel<b> occurs in every 4^b-th paper).

#include "bench_util.h"

int main() {
  using namespace xrank;
  using namespace xrank::bench;

  datagen::DblpOptions gen = BenchDblpOptions();
  datagen::Corpus corpus = datagen::GenerateDblp(gen);
  auto engine = BuildEngine(Reparse(&corpus),
                            {index::IndexKind::kDil, index::IndexKind::kRdil,
                             index::IndexKind::kHdil});

  std::printf("=== Section 5.4: keyword selectivity sweep "
              "(2-keyword conjunctions, top-10, cold cache) ===\n\n");
  std::printf("selectivity ladder:");
  for (const auto& [term, freq] : corpus.planted.selectivity_terms) {
    std::printf("  %s~%zu docs", term.c_str(), freq);
  }
  std::printf("\n\n%-26s %14s %14s %14s\n", "Query (term x term)", "DIL cost",
              "RDIL cost", "HDIL cost");
  PrintRule(78);

  // Pair adjacent ladder rungs: (sel0,sel1) is the least selective, the
  // last pair the most selective.
  const auto& ladder = corpus.planted.selectivity_terms;
  for (size_t b = 0; b + 1 < ladder.size(); ++b) {
    std::vector<std::vector<std::string>> queries = {
        {ladder[b].first, ladder[b + 1].first}};
    std::printf("%-26s",
                (ladder[b].first + " x " + ladder[b + 1].first).c_str());
    for (index::IndexKind kind :
         {index::IndexKind::kDil, index::IndexKind::kRdil,
          index::IndexKind::kHdil}) {
      AveragedStats stats = RunQuerySet(engine.get(), queries, 10, kind);
      std::printf(" %14.1f", stats.io_cost);
    }
    std::printf("\n");
  }
  PrintRule(78);
  std::printf("\nExpected shape (paper Section 5.4): highly selective pairs\n"
              "(deep in the ladder) cost little under every approach — the\n"
              "approaches only separate on long lists, which do not model\n"
              "large document collections well.\n");
  return 0;
}
