// Reproduces the Section 5.2 ranking-quality anecdotes on synthetic
// analogues:
//  * 'gray' -> <author> elements of highly referenced papers rank high
//    (ElemRank propagating from cited papers into their sub-elements);
//  * 'author gray' -> title-only matches drop (two-dimensional proximity);
//  * 'stained mirror' -> an item whose <name> holds one keyword and whose
//    description holds the other, boosted by many auction references.

#include <algorithm>

#include "bench_util.h"

namespace xrank::bench {
namespace {

void Print(const core::EngineResponse& response, size_t limit = 5) {
  size_t shown = 0;
  for (const auto& result : response.results) {
    if (shown++ >= limit) break;
    std::printf("    <%s> %s rank=%.7f\n      \"%s\"\n",
                result.element_tag.c_str(), result.document_uri.c_str(),
                result.rank, result.snippet.c_str());
  }
  if (response.results.empty()) std::printf("    (no results)\n");
}

}  // namespace
}  // namespace xrank::bench

int main() {
  using namespace xrank;
  using namespace xrank::bench;

  std::printf("=== Section 5.2: quality-of-ranking anecdotes ===\n");

  // --- DBLP: the 'gray' anecdote. Find the most-cited paper and query for
  // one of its title terms.
  {
    datagen::DblpOptions gen = BenchDblpOptions();
    gen.num_papers = 800;
    datagen::Corpus corpus = datagen::GenerateDblp(gen);
    auto engine =
        BuildEngine(Reparse(&corpus), {index::IndexKind::kHdil});

    // Most-cited document = highest root ElemRank.
    const graph::XmlGraph& graph = engine->graph();
    uint32_t best_doc = 0;
    double best_rank = -1.0;
    for (uint32_t d = 0; d < graph.document_count(); ++d) {
      double rank = engine->elem_ranks()[graph.documents()[d].root];
      if (rank > best_rank) {
        best_rank = rank;
        best_doc = d;
      }
    }
    // First title word of that paper plays the role of 'gray'.
    graph::NodeId root = graph.documents()[best_doc].root;
    std::string title_text;
    for (graph::NodeId child : graph.node(root).element_children) {
      if (graph.name(child) == "title") title_text = graph.DirectText(child);
    }
    index::Analyzer analyzer;
    uint32_t position = 0;
    auto tokens = analyzer.Tokenize(title_text, &position);
    if (tokens.empty()) {
      std::fprintf(stderr, "no title tokens\n");
      return 1;
    }
    std::string gray = tokens[0].term;

    std::printf("\n[DBLP] most-cited paper: %s (root ElemRank %.6f)\n",
                graph.documents()[best_doc].uri.c_str(), best_rank);
    std::printf("  query '%s' (title word of that paper):\n", gray.c_str());
    auto one = engine->QueryKeywords({gray}, 5, index::IndexKind::kHdil);
    if (!one.ok()) return 1;
    Print(*one);
    bool cited_paper_on_top =
        !one->results.empty() &&
        one->results[0].document_uri == graph.documents()[best_doc].uri;
    std::printf("  -> element of the most-cited paper ranked first: %s\n",
                cited_paper_on_top ? "yes" : "no (see full list above)");

    std::printf("  query '%s sigmod' (two keywords, proximity engaged):\n",
                gray.c_str());
    auto two =
        engine->QueryKeywords({gray, "sigmod"}, 5, index::IndexKind::kHdil);
    if (!two.ok()) return 1;
    Print(*two);
  }

  // --- XMark: the 'stained mirror' anecdote with a planted pair living in
  // the name/description of an item referenced by many auctions.
  {
    datagen::XMarkOptions gen = BenchXMarkOptions();
    gen.num_items = 400;
    gen.num_people = 200;
    gen.num_open_auctions = 500;
    gen.num_closed_auctions = 150;
    datagen::Corpus corpus = datagen::GenerateXMark(gen);
    auto engine =
        BuildEngine(Reparse(&corpus), {index::IndexKind::kHdil});
    const auto& quad = corpus.planted.high_correlation[0];
    std::printf("\n[XMark] query '%s %s' (deep co-occurrence; items with\n"
                "  many auction references get higher ElemRanks):\n",
                quad[0].c_str(), quad[1].c_str());
    auto response =
        engine->QueryKeywords({quad[0], quad[1]}, 5, index::IndexKind::kHdil);
    if (!response.ok()) return 1;
    Print(*response);
    if (!response->results.empty()) {
      std::printf("  -> most specific result depth: %zu (document depth "
                  "~10)\n", response->results[0].id.depth());
    }
  }
  return 0;
}
