// Reproduces Figure 11: query performance vs. number of keywords under LOW
// keyword correlation, for DIL / RDIL / HDIL (the naive approaches are
// dropped after Figure 10, as in the paper).
//
// Paper's shape: RDIL degrades badly beyond one keyword (its B+-tree
// probes keep failing, so the threshold never clears); DIL's sequential
// scans win; HDIL tracks DIL with a small overhead because it starts in
// RDIL mode and then switches.

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace xrank;
  using namespace xrank::bench;

  datagen::DblpOptions gen = BenchQueryPerfOptions();
  datagen::Corpus corpus = datagen::GenerateDblp(gen);
  auto engine = BuildEngine(Reparse(&corpus),
                            {index::IndexKind::kDil, index::IndexKind::kRdil,
                             index::IndexKind::kHdil});

  constexpr size_t kTopM = 10;
  constexpr size_t kQueriesPerPoint = 3;
  std::printf("=== Figure 11: query cost vs #keywords, LOW correlation "
              "(top-%zu, cold cache) ===\n", kTopM);
  std::printf("corpus: %zu docs, %zu elements\n\n",
              engine->graph().document_count(),
              engine->graph().element_count());
  std::printf("%-12s", "Approach");
  for (int k = 1; k <= 4; ++k) std::printf("   %d kw (cost)", k);
  std::printf("      wall ms (1..4 kw)   HDIL switches\n");
  PrintRule(110);

  const index::IndexKind kinds[] = {index::IndexKind::kDil,
                                    index::IndexKind::kRdil,
                                    index::IndexKind::kHdil};
  for (index::IndexKind kind : kinds) {
    std::printf("%-12s", std::string(index::IndexKindName(kind)).c_str());
    std::string wall;
    std::string switches;
    for (size_t keywords = 1; keywords <= 4; ++keywords) {
      datagen::WorkloadOptions workload;
      workload.num_queries = kQueriesPerPoint;
      workload.num_keywords = keywords;
      workload.mode = datagen::CorrelationMode::kLow;
      workload.seed = 200 + keywords;
      auto queries = datagen::MakeQueries(corpus.planted, workload);
      AveragedStats stats = RunQuerySet(engine.get(), queries, kTopM, kind);
      std::printf(" %12.1f", stats.io_cost);
      wall += StringPrintf(" %7.2f", stats.wall_ms);
      if (kind == index::IndexKind::kHdil) {
        switches += StringPrintf(" %zu/%zu", stats.switched, stats.queries);
      }
    }
    std::printf("   %s   %s\n", wall.c_str(), switches.c_str());
  }
  PrintRule(110);
  std::printf(
      "\nExpected shape (paper Fig. 11): single-keyword queries favor the\n"
      "rank orders; with 2+ uncorrelated keywords RDIL pays for failed\n"
      "random probes while DIL's sequential scan wins; HDIL switches to DIL\n"
      "and tracks it with a small startup overhead.\n");
  return 0;
}
