// Reproduces Figure 10: query performance vs. number of keywords under
// HIGH keyword correlation, for all five approaches.
//
// Paper's shape: RDIL wins (B+-tree probes succeed, TA stops early);
// DIL must scan entire lists and loses; HDIL tracks RDIL (it may pay a
// small mis-estimation penalty around the DIL/RDIL crossover);
// Naive-ID is worse than DIL and Naive-Rank worse than RDIL (ancestor
// replication makes every list longer).

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace xrank;
  using namespace xrank::bench;

  datagen::DblpOptions gen = BenchQueryPerfOptions();
  datagen::Corpus corpus = datagen::GenerateDblp(gen);
  auto engine = BuildEngine(
      Reparse(&corpus),
      {index::IndexKind::kNaiveId, index::IndexKind::kNaiveRank,
       index::IndexKind::kDil, index::IndexKind::kRdil,
       index::IndexKind::kHdil});

  constexpr size_t kTopM = 10;
  constexpr size_t kQueriesPerPoint = 3;
  std::printf("=== Figure 10: query cost vs #keywords, HIGH correlation "
              "(top-%zu, cold cache) ===\n", kTopM);
  std::printf("corpus: %zu docs, %zu elements\n\n",
              engine->graph().document_count(),
              engine->graph().element_count());
  std::printf("%-12s", "Approach");
  for (int k = 1; k <= 4; ++k) std::printf("   %d kw (cost)", k);
  std::printf("      wall ms (1..4 kw)\n");
  PrintRule(96);

  const index::IndexKind kinds[] = {
      index::IndexKind::kNaiveId, index::IndexKind::kNaiveRank,
      index::IndexKind::kDil, index::IndexKind::kRdil,
      index::IndexKind::kHdil};
  for (index::IndexKind kind : kinds) {
    std::printf("%-12s", std::string(index::IndexKindName(kind)).c_str());
    std::string wall;
    for (size_t keywords = 1; keywords <= 4; ++keywords) {
      datagen::WorkloadOptions workload;
      workload.num_queries = kQueriesPerPoint;
      workload.num_keywords = keywords;
      workload.mode = datagen::CorrelationMode::kHigh;
      workload.seed = 100 + keywords;
      auto queries = datagen::MakeQueries(corpus.planted, workload);
      AveragedStats stats = RunQuerySet(engine.get(), queries, kTopM, kind);
      std::printf(" %12.1f", stats.io_cost);
      wall += StringPrintf(" %7.2f", stats.wall_ms);
    }
    std::printf("   %s\n", wall.c_str());
  }
  PrintRule(96);
  std::printf(
      "\nExpected shape (paper Fig. 10): RDIL lowest, HDIL tracking RDIL,\n"
      "DIL flat-but-higher (full scans), Naive-ID > DIL and Naive-Rank >\n"
      "RDIL from ancestor-replicated lists.\n");
  return 0;
}
