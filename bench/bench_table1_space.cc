// Reproduces Table 1: "Space Requirements for the Different Approaches" —
// inverted-list and auxiliary-index sizes of Naive-ID, Naive-Rank, DIL,
// RDIL and HDIL on the DBLP-shaped and XMark-shaped corpora — and sweeps
// the posting codecs (varint / bp128 / vgb) over the same corpora to
// report bytes-per-posting and used vs. on-disk list bytes per codec.
//
// Paper's numbers (143 MB DBLP / 113 MB XMark):
//              DBLP  Inv.List/Index      XMARK Inv.List/Index
//   Naive-ID   258MB / N/A               872MB / N/A
//   Naive-Rank 258MB / 217MB             872MB / 527MB
//   DIL        144MB / N/A               254MB / N/A
//   RDIL       144MB / 156MB             254MB / 209MB
//   HDIL       186MB / 7MB               307MB / 3.2MB
//
// The absolute sizes scale with corpus size; the *shape* to verify is:
// naive lists >> DIL lists (worse for deep XMark), RDIL index comparable to
// its list, HDIL index tiny, HDIL list slightly larger than DIL's.
//
// Flags: `--json <path>` writes the codec-sweep metrics; `--codec <name>`
// restricts the sweep to one registered codec; `--reorder` adds a second
// sweep per corpus with BP document reordering enabled (slug suffix
// `-bp`), so the report carries both layouts side by side.

#include "bench_util.h"
#include "common/string_util.h"
#include "index/codec.h"

namespace xrank::bench {
namespace {

void Report(const char* dataset, core::XRankEngine* engine,
            size_t input_bytes) {
  std::printf("\n%s (input: %s, %zu elements, %zu hyperlinks)\n", dataset,
              BytesToHuman(input_bytes).c_str(),
              engine->graph().element_count(),
              engine->graph().total_hyperlink_count());
  PrintRule(100);
  std::printf("%-12s %14s %14s %14s %14s %12s\n", "Approach", "Inv. List",
              "Index", "List file", "Entries", "List/input");
  PrintRule(100);
  const index::IndexKind kinds[] = {
      index::IndexKind::kNaiveId, index::IndexKind::kNaiveRank,
      index::IndexKind::kDil, index::IndexKind::kRdil,
      index::IndexKind::kHdil};
  for (index::IndexKind kind : kinds) {
    const index::IndexStats& stats = engine->index_stats(kind);
    bool has_index = kind == index::IndexKind::kNaiveRank ||
                     kind == index::IndexKind::kRdil ||
                     kind == index::IndexKind::kHdil;
    std::printf("%-12s %14s %14s %14s %14llu %11.2f%%\n",
                std::string(index::IndexKindName(kind)).c_str(),
                BytesToHuman(stats.list_bytes()).c_str(),
                has_index ? BytesToHuman(stats.index_bytes()).c_str() : "N/A",
                BytesToHuman(stats.list_file_bytes()).c_str(),
                static_cast<unsigned long long>(stats.entry_count),
                100.0 * static_cast<double>(stats.list_bytes()) /
                    static_cast<double>(input_bytes));
  }
  PrintRule(100);
}

size_t TotalBytes(const std::vector<xml::Document>& docs) {
  size_t total = 0;
  for (const xml::Document& doc : docs) {
    total += xml::Serialize(doc).size();
  }
  return total;
}

// Rebuilds the same corpus under every registered posting codec and reports
// the list bytes actually encoded ("used", the sum of ListExtent byte
// counts) next to the bytes the list file occupies on disk (whole pages,
// including per-list trailing-page padding), plus the headline
// bytes-per-posting figure that check_perf.sh tracks.
void CodecSweep(const char* dataset, const std::string& slug,
                datagen::Corpus* corpus,
                const std::vector<index::IndexKind>& kinds,
                const std::string& only_codec, bool reorder,
                JsonReport* json) {
  std::printf("\n%s — posting-codec space sweep (%s document order)\n",
              dataset, reorder ? "BP-reordered" : "identity");
  PrintRule(100);
  std::printf("%-8s %-12s %14s %14s %14s %16s\n", "Codec", "Approach",
              "List (used)", "List (disk)", "Entries", "Bytes/posting");
  PrintRule(100);
  for (const index::PostingCodec* codec : index::RegisteredPostingCodecs()) {
    if (!only_codec.empty() && only_codec != codec->name()) continue;
    core::EngineOptions options;
    options.build.format = index::PostingFormatSpec{
        codec->id(), index::RankEncoding::kFloat32};
    if (reorder) {
      options.build.reorder.algorithm = index::ReorderAlgorithm::kBp;
    }
    auto engine = BuildEngine(Reparse(corpus), kinds, options);
    for (index::IndexKind kind : kinds) {
      const index::IndexStats& stats = engine->index_stats(kind);
      double bytes_per_posting =
          stats.entry_count > 0
              ? static_cast<double>(stats.list_used_bytes) /
                    static_cast<double>(stats.entry_count)
              : 0.0;
      std::printf("%-8s %-12s %14s %14s %14llu %16.2f\n",
                  std::string(codec->name()).c_str(),
                  std::string(index::IndexKindName(kind)).c_str(),
                  BytesToHuman(stats.list_bytes()).c_str(),
                  BytesToHuman(stats.list_file_bytes()).c_str(),
                  static_cast<unsigned long long>(stats.entry_count),
                  bytes_per_posting);
      if (json != nullptr) {
        std::string prefix = slug + "/" + std::string(codec->name()) + "/" +
                             std::string(index::IndexKindName(kind));
        json->Add(prefix + "/list_used_bytes",
                  static_cast<double>(stats.list_used_bytes));
        json->Add(prefix + "/list_disk_bytes",
                  static_cast<double>(stats.list_file_bytes()));
        json->Add(prefix + "/bytes_per_posting", bytes_per_posting);
      }
    }
  }
  PrintRule(100);
}

}  // namespace
}  // namespace xrank::bench

int main(int argc, char** argv) {
  using namespace xrank;
  using namespace xrank::bench;

  JsonReport json("table1_space");
  argc = json.ParseFlag(argc, argv);
  std::string only_codec;
  bool reorder = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--codec" && i + 1 < argc) {
      only_codec = argv[i + 1];
      if (index::FindPostingCodecByName(only_codec) == nullptr) {
        std::fprintf(stderr, "error: unknown codec '%s'\n",
                     only_codec.c_str());
        return 2;
      }
      ++i;
    } else if (std::string(argv[i]) == "--reorder") {
      reorder = true;
    }
  }

  std::printf("=== Table 1: Space Requirements for the Different Approaches "
              "===\n");
  std::vector<index::IndexKind> all_kinds = {
      index::IndexKind::kNaiveId, index::IndexKind::kNaiveRank,
      index::IndexKind::kDil, index::IndexKind::kRdil,
      index::IndexKind::kHdil};

  {
    datagen::Corpus corpus = datagen::GenerateDblp(BenchDblpOptions());
    std::vector<xml::Document> docs = Reparse(&corpus);
    size_t input_bytes = TotalBytes(docs);
    auto engine = BuildEngine(std::move(docs), all_kinds);
    Report("DBLP-like", engine.get(), input_bytes);
    CodecSweep("DBLP-like", "dblp", &corpus, all_kinds, only_codec, false,
               &json);
    if (reorder) {
      CodecSweep("DBLP-like", "dblp-bp", &corpus, all_kinds, only_codec, true,
                 &json);
    }
  }
  {
    datagen::Corpus corpus = datagen::GenerateXMark(BenchXMarkOptions());
    std::vector<xml::Document> docs = Reparse(&corpus);
    size_t input_bytes = TotalBytes(docs);
    auto engine = BuildEngine(std::move(docs), all_kinds);
    Report("XMark-like", engine.get(), input_bytes);
    CodecSweep("XMark-like", "xmark", &corpus, all_kinds, only_codec, false,
               &json);
    if (reorder) {
      CodecSweep("XMark-like", "xmark-bp", &corpus, all_kinds, only_codec,
                 true, &json);
    }
  }

  std::printf(
      "\nShape checks vs. paper Table 1: naive lists exceed DIL lists (gap\n"
      "wider on the deeper XMark data); RDIL adds an index comparable to\n"
      "its list; HDIL's stored index is orders of magnitude smaller because\n"
      "the Dewey-ordered list serves as the B+-tree leaf level.\n");
  if (!json.Write()) return 1;
  return 0;
}
