// Thread-scaling benchmark for the parallel execution layer: ElemRank
// power iteration, posting extraction + physical index construction,
// concurrent query serving (each at 1/2/4/8 threads), and document-sharded
// serving through the shard router at 1/2/4/8/16 shards over a Zipf-skewed
// corpus. The parallel paths are deterministic — ElemRank results, index
// bytes, and sharded top-k answers are identical for every thread/shard
// count — so this harness measures pure wall-clock scaling.
//
// `--sharding-only` runs just the sharded section (the CI sharding lane's
// perf gate uses it; see tools/check_sharding.sh).
//
// Note: speedups only materialize on multi-core hosts; on a single
// hardware thread every configuration degenerates to sequential work plus
// scheduling overhead.

#include <atomic>
#include <thread>

#include "bench_util.h"
#include "common/timer.h"
#include "core/shard_router.h"
#include "graph/builder.h"
#include "index/dil_index.h"
#include "index/hdil_index.h"
#include "rank/elem_rank.h"

namespace xrank::bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

graph::XmlGraph BuildGraph(const std::vector<xml::Document>& docs) {
  graph::GraphBuilder builder;
  for (const xml::Document& doc : docs) {
    Status status = builder.AddDocument(doc);
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
  auto graph = std::move(builder).Finalize();
  if (!graph.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", graph.status().ToString().c_str());
    std::abort();
  }
  return std::move(graph).value();
}

template <typename Fn>
double TimeSeconds(Fn&& fn) {
  WallTimer timer;
  fn();
  return timer.ElapsedSeconds();
}

void RunElemRankScaling(const char* name, const graph::XmlGraph& graph,
                        JsonReport* report) {
  std::printf("\n%s ElemRank (n=%zu elements):\n", name,
              graph.element_count());
  double base = 0.0;
  for (int threads : kThreadCounts) {
    rank::ElemRankOptions options;
    options.num_threads = threads;
    rank::ElemRankResult result;
    double seconds = TimeSeconds([&] {
      auto computed = rank::ComputeElemRank(graph, options);
      if (!computed.ok()) {
        std::fprintf(stderr, "FATAL: %s\n",
                     computed.status().ToString().c_str());
        std::abort();
      }
      result = std::move(computed).value();
    });
    if (threads == 1) base = seconds;
    double speedup = seconds > 0 ? base / seconds : 0.0;
    std::printf("  threads=%d: %7.3f s (%d iterations, speedup %.2fx)\n",
                threads, seconds, result.iterations, speedup);
    report->Add(std::string(name) + "/elemrank/threads=" +
                    std::to_string(threads) + "/seconds",
                seconds);
    report->Add(std::string(name) + "/elemrank/threads=" +
                    std::to_string(threads) + "/speedup",
                speedup);
  }
}

void RunBuildScaling(const char* name, const graph::XmlGraph& graph,
                     const std::vector<double>& ranks, JsonReport* report) {
  std::printf("\n%s extraction + DIL + HDIL build:\n", name);
  double base = 0.0;
  for (int threads : kThreadCounts) {
    double seconds = TimeSeconds([&] {
      index::ExtractionOptions extraction;
      extraction.num_threads = threads;
      auto extracted = index::ExtractPostings(graph, ranks, extraction);
      if (!extracted.ok()) {
        std::fprintf(stderr, "FATAL: %s\n",
                     extracted.status().ToString().c_str());
        std::abort();
      }
      index::BuildOptions build;
      build.num_threads = threads;
      auto dil = index::BuildDilIndex(extracted->dewey_postings,
                                      storage::PageFile::CreateInMemory(),
                                      build);
      auto hdil = index::BuildHdilIndex(extracted->dewey_postings,
                                        storage::PageFile::CreateInMemory(),
                                        {}, build);
      if (!dil.ok() || !hdil.ok()) {
        std::fprintf(stderr, "FATAL: index build failed\n");
        std::abort();
      }
    });
    if (threads == 1) base = seconds;
    double speedup = seconds > 0 ? base / seconds : 0.0;
    std::printf("  threads=%d: %7.3f s (speedup %.2fx)\n", threads, seconds,
                speedup);
    report->Add(std::string(name) + "/build/threads=" +
                    std::to_string(threads) + "/seconds",
                seconds);
    report->Add(std::string(name) + "/build/threads=" +
                    std::to_string(threads) + "/speedup",
                speedup);
  }
}

// Each client walks its own disjoint slice of the query pool: the cold
// pass meets every query for the first time, so the result cache cannot
// shortcut it. (This layout replaces a methodology bug: the previous
// version cycled all clients through a pool of 8 distinct queries, so at
// clients>=2 nearly every query was a result-cache hit and the benchmark
// measured cache-lookup throughput, not query serving.) The warm pass then
// repeats the same slices to measure the cached fast path — the two are
// reported separately, and the scaling headline (throughput_x) uses cold.
void RunQueryScaling(const char* name, core::XRankEngine* engine,
                     const std::vector<std::vector<std::string>>& queries,
                     JsonReport* report) {
  constexpr size_t kQueriesPerThread = 32;
  std::printf("\n%s concurrent query serving (HDIL, %zu distinct queries, "
              "%zu per client; cold = first execution, warm = repeat):\n",
              name, queries.size(), kQueriesPerThread);
  double base_cold_qps = 0.0;
  for (int threads : kThreadCounts) {
    size_t total = static_cast<size_t>(threads) * kQueriesPerThread;
    if (total > queries.size()) {
      std::fprintf(stderr,
                   "FATAL: query pool (%zu) too small for %d clients\n",
                   queries.size(), threads);
      std::abort();
    }
    // Re-establish a cold baseline: earlier configurations warmed the
    // pool, block cache, and result cache with the same queries.
    engine->DropCaches();
    std::string prefix =
        std::string(name) + "/query/clients=" + std::to_string(threads);
    double cold_qps = 0.0;
    for (const char* phase : {"cold", "warm"}) {
      std::atomic<size_t> failures{0};
      core::XRankEngine::ServingCounters before =
          engine->serving_counters(index::IndexKind::kHdil);
      double seconds = TimeSeconds([&] {
        std::vector<std::thread> clients;
        clients.reserve(static_cast<size_t>(threads));
        for (int t = 0; t < threads; ++t) {
          clients.emplace_back([&, t] {
            size_t offset = static_cast<size_t>(t) * kQueriesPerThread;
            for (size_t q = 0; q < kQueriesPerThread; ++q) {
              auto response = engine->QueryKeywords(
                  queries[offset + q], 10, index::IndexKind::kHdil);
              if (!response.ok()) failures.fetch_add(1);
            }
          });
        }
        for (std::thread& client : clients) client.join();
      });
      if (failures.load() > 0) {
        std::fprintf(stderr, "FATAL: %zu concurrent queries failed\n",
                     failures.load());
        std::abort();
      }
      core::XRankEngine::ServingCounters after =
          engine->serving_counters(index::IndexKind::kHdil);
      uint64_t pool_hits = after.pool_hits - before.pool_hits;
      uint64_t pool_misses = after.pool_misses - before.pool_misses;
      uint64_t cache_hits =
          after.result_cache_hits - before.result_cache_hits;
      uint64_t cache_lookups =
          after.result_cache_lookups - before.result_cache_lookups;
      uint64_t block_hits =
          after.block_cache_hits - before.block_cache_hits;
      uint64_t block_lookups =
          after.block_cache_lookups - before.block_cache_lookups;
      double pool_hit_rate =
          pool_hits + pool_misses > 0
              ? static_cast<double>(pool_hits) /
                    static_cast<double>(pool_hits + pool_misses)
              : 0.0;
      double cache_hit_rate =
          cache_lookups > 0 ? static_cast<double>(cache_hits) /
                                  static_cast<double>(cache_lookups)
                            : 0.0;
      double block_hit_rate =
          block_lookups > 0 ? static_cast<double>(block_hits) /
                                  static_cast<double>(block_lookups)
                            : 0.0;
      double qps = seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
      if (phase[0] == 'c') cold_qps = qps;
      std::printf("  clients=%d %s: %8.1f QPS (%.3f s for %zu queries, "
                  "pool hit %.1f%%, result cache hit %.1f%%, block cache "
                  "hit %.1f%%)\n",
                  threads, phase, qps, seconds, total, 100.0 * pool_hit_rate,
                  100.0 * cache_hit_rate, 100.0 * block_hit_rate);
      report->Add(prefix + "/" + phase + "_qps", qps);
      report->Add(prefix + "/" + phase + "_pool_hit_rate", pool_hit_rate);
      report->Add(prefix + "/" + phase + "_result_cache_hit_rate",
                  cache_hit_rate);
      report->Add(prefix + "/" + phase + "_block_cache_hit_rate",
                  block_hit_rate);
    }
    if (threads == 1) base_cold_qps = cold_qps;
    double speedup = base_cold_qps > 0 ? cold_qps / base_cold_qps : 0.0;
    std::printf("  clients=%d: cold throughput %.2fx vs 1 client\n", threads,
                speedup);
    report->Add(prefix + "/throughput_x", speedup);
  }
}

// Corpus for the sharded-serving benchmark: per-document body size follows
// a Zipf-like 1/(rank+1) curve, with ranks interleaved across the doc-id
// space so every contiguous shard range draws the same skewed mix — the
// imbalance lives *inside* each shard's postings (long vs. short lists),
// which is what the forwarded θ prunes.
std::vector<xml::Document> MakeSkewedShardCorpus(size_t num_docs,
                                                 size_t max_sections) {
  std::vector<xml::Document> docs;
  docs.reserve(num_docs);
  for (size_t i = 0; i < num_docs; ++i) {
    size_t rank = i % 16;
    size_t sections = std::max<size_t>(1, max_sections / (rank + 1));
    std::string text = "<paper><title>alpha beta gamma</title>";
    for (size_t s = 0; s < sections; ++s) {
      text += "<sec><p>alpha beta filler" +
              std::to_string((i * 131 + s) % 97) + "</p></sec>";
    }
    text += "</paper>";
    auto parsed = xml::ParseDocument(
        text, "skew-" + std::to_string(i) + ".xml");
    if (!parsed.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   parsed.status().ToString().c_str());
      std::abort();
    }
    docs.push_back(std::move(parsed).value());
  }
  return docs;
}

// Document-sharded serving: the same corpus and query pool at every shard
// count, scatter-gather through the router (parallel scatter, θ forwarded
// between shards). Answers are bitwise-identical across shard counts; the
// benchmark reports throughput, per-shard-count speedup vs. the one-shard
// fleet, and how often the shared θ floor was raised.
void RunShardScaling(JsonReport* report) {
  constexpr size_t kShardCounts[] = {1, 2, 4, 8, 16};
  constexpr size_t kRounds = 4;
  const size_t num_docs =
      std::max<size_t>(64, static_cast<size_t>(256 * BenchScale()));

  std::vector<std::vector<std::string>> queries;
  queries.push_back({"alpha", "beta"});
  queries.push_back({"alpha", "gamma"});
  for (int k = 0; k < 14; ++k) {
    queries.push_back({"alpha", "filler" + std::to_string(k * 7)});
  }

  std::printf("\nsharded scatter-gather serving (DIL, disjunctive, "
              "%zu Zipf-skewed documents, %zu queries x %zu rounds):\n",
              num_docs, queries.size(), kRounds);
  double base_qps = 0.0;
  for (size_t shards : kShardCounts) {
    core::ShardRouterOptions options;
    options.num_shards = shards;
    options.engine.indexes = {index::IndexKind::kDil};
    options.engine.scoring.semantics = query::QuerySemantics::kDisjunctive;
    auto router =
        core::ShardRouter::Build(MakeSkewedShardCorpus(num_docs, 48),
                                 options);
    if (!router.ok()) {
      std::fprintf(stderr, "FATAL: sharded build failed: %s\n",
                   router.status().ToString().c_str());
      std::abort();
    }
    size_t total = queries.size() * kRounds;
    double seconds = TimeSeconds([&] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (const auto& keywords : queries) {
          auto response = (*router)->QueryKeywords(keywords, 10,
                                                   index::IndexKind::kDil);
          if (!response.ok()) {
            std::fprintf(stderr, "FATAL: sharded query failed: %s\n",
                         response.status().ToString().c_str());
            std::abort();
          }
        }
      }
    });
    double qps = seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
    if (shards == 1) base_qps = qps;
    double speedup = base_qps > 0 ? qps / base_qps : 0.0;
    auto counters = (*router)->router_counters();
    std::printf("  shards=%-2zu: %8.1f QPS (%.3f s for %zu queries, "
                "speedup %.2fx, %llu theta raises)\n",
                shards, qps, seconds, total, speedup,
                static_cast<unsigned long long>(counters.theta_raises));
    std::string prefix = "sharded/shards=" + std::to_string(shards);
    report->Add(prefix + "/qps", qps);
    report->Add(prefix + "/throughput_x", speedup);
    report->Add(prefix + "/theta_raises",
                static_cast<double>(counters.theta_raises));
  }
}

}  // namespace
}  // namespace xrank::bench

int main(int argc, char** argv) {
  using namespace xrank;
  using namespace xrank::bench;

  JsonReport report("bench_scaling");
  argc = report.ParseFlag(argc, argv);
  bool sharding_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sharding-only") sharding_only = true;
  }

  std::printf("=== Thread scaling: ElemRank / index build / query serving "
              "/ sharded serving ===\n");
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  report.Add("hardware_threads", std::thread::hardware_concurrency());

  if (sharding_only) {
    RunShardScaling(&report);
    report.SetRegistrySnapshot(
        metrics::RenderJson(metrics::Registry::Instance().Snapshot()));
    return report.Write() ? 0 : 1;
  }

  // The serving benchmark needs a large pool of *distinct* queries: with
  // the default 8 planted quadruple sets the pool collapses to 8 queries
  // regardless of WorkloadOptions::num_queries. 64 sets x {high,low}
  // correlation x {2,3} keywords = 256 distinct queries, enough for 8
  // clients x 32 disjoint queries each.
  auto dblp_options = BenchDblpOptions();
  dblp_options.planted_sets = 64;
  auto xmark_options = BenchXMarkOptions();
  xmark_options.planted_sets = 64;

  struct Dataset {
    const char* name;
    datagen::Corpus corpus;
  };
  Dataset datasets[] = {
      {"dblp", datagen::GenerateDblp(dblp_options)},
      {"xmark", datagen::GenerateXMark(xmark_options)},
  };

  for (Dataset& dataset : datasets) {
    std::vector<xml::Document> docs = Reparse(&dataset.corpus);
    graph::XmlGraph graph = BuildGraph(docs);

    RunElemRankScaling(dataset.name, graph, &report);

    rank::ElemRankOptions rank_options;
    auto ranks = rank::ComputeElemRank(graph, rank_options);
    if (!ranks.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", ranks.status().ToString().c_str());
      std::abort();
    }
    RunBuildScaling(dataset.name, graph, ranks->ranks, &report);

    std::vector<std::vector<std::string>> queries;
    for (auto mode :
         {datagen::CorrelationMode::kHigh, datagen::CorrelationMode::kLow}) {
      for (size_t keywords : {2u, 3u}) {
        datagen::WorkloadOptions workload;
        workload.num_queries = 64;  // == planted_sets: each quad once
        workload.num_keywords = keywords;
        workload.mode = mode;
        workload.seed =
            keywords * 7 + (mode == datagen::CorrelationMode::kHigh ? 1 : 2);
        auto batch = datagen::MakeQueries(dataset.corpus.planted, workload);
        queries.insert(queries.end(), batch.begin(), batch.end());
      }
    }
    // The serving benchmark measures the production fast path: warm
    // buffer pool and block cache (cold_cache_per_query off; RunQueryScaling
    // re-colds explicitly between configurations) plus the result cache.
    // The figure benches keep all of that off via BuildEngine's defaults.
    core::EngineOptions serving_options;
    serving_options.cold_cache_per_query = false;
    auto engine =
        BuildEngine(std::move(docs), {index::IndexKind::kHdil},
                    serving_options, /*result_cache_entries=*/1024);
    RunQueryScaling(dataset.name, engine.get(), queries, &report);
    PrintRule();
  }

  RunShardScaling(&report);
  PrintRule();

  report.SetRegistrySnapshot(
      metrics::RenderJson(metrics::Registry::Instance().Snapshot()));
  return report.Write() ? 0 : 1;
}
