// Ablation over the ranking-function design choices of Section 2.3.2
// (A1 in DESIGN.md): the decay parameter, the proximity mode, and the
// occurrence-aggregation function f (max vs sum). Measured on the Figure 1
// document where the paper's own examples give interpretable expectations.

#include "bench_util.h"

namespace xrank::bench {
namespace {

constexpr const char* kFigure1Xml = R"(
<workshop date="28 July 2000">
  <title> XML and IR: A SIGIR 2000 Workshop </title>
  <editors> David Carmel, Yoelle Maarek, Aya Soffer </editors>
  <proceedings>
    <paper id="1">
      <title> XQL and Proximal Nodes </title>
      <author> Ricardo Baeza-Yates </author>
      <author> Gonzalo Navarro </author>
      <abstract> We consider the recently proposed language </abstract>
      <body>
        <section name="Introduction">
          Searching on structured text is more important
        </section>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">
            At first sight, the XQL query language looks
          </subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
        <cite xlink="paper/xmlql">A Query Language for XML</cite>
      </body>
    </paper>
    <paper id="2">
      <title> Querying XML in Xyleme </title>
      <body> xyleme supports XQL fragments </body>
    </paper>
  </proceedings>
</workshop>
)";

std::unique_ptr<core::XRankEngine> EngineWithScoring(
    const query::ScoringOptions& scoring) {
  auto doc = xml::ParseDocument(kFigure1Xml, "figure1.xml");
  std::vector<xml::Document> docs;
  docs.push_back(std::move(doc).value());
  core::EngineOptions options;
  options.scoring = scoring;
  options.indexes = {index::IndexKind::kDil};
  auto engine = core::XRankEngine::Build(std::move(docs), options);
  return std::move(engine).value();
}

// Returns (rank of tag1, rank of tag2) for a query, 0 if absent.
std::pair<double, double> RanksOf(core::XRankEngine* engine,
                                  const char* query, const char* tag1,
                                  const char* tag2) {
  auto response = engine->Query(query, 20, index::IndexKind::kDil);
  double r1 = 0, r2 = 0;
  for (const auto& result : response->results) {
    if (result.element_tag == tag1 && r1 == 0) r1 = result.rank;
    if (result.element_tag == tag2 && r2 == 0) r2 = result.rank;
  }
  return {r1, r2};
}

}  // namespace
}  // namespace xrank::bench

int main() {
  using namespace xrank;
  using namespace xrank::bench;

  std::printf("=== Ablation: ranking-function design choices (Figure 1 "
              "document, query 'XQL language') ===\n\n");

  // 1. Decay sweep: the specificity premium of the <subsection> (direct
  // containment) over the <paper> (2 levels above its occurrences).
  std::printf("decay sweep  (subsection rank / paper rank — higher means\n"
              "specific results are favored more):\n");
  for (double decay : {0.25, 0.50, 0.80, 1.00}) {
    query::ScoringOptions scoring;
    scoring.decay = decay;
    auto engine = EngineWithScoring(scoring);
    auto [sub, paper] =
        RanksOf(engine.get(), "XQL language", "subsection", "paper");
    std::printf("  decay=%.2f  subsection=%.6f  paper=%.6f  ratio=%.2f\n",
                decay, sub, paper, paper > 0 ? sub / paper : 0.0);
  }

  // 2. Proximity mode: 'Soffer XQL' (keywords far apart, meet only at the
  // workshop root) vs 'XQL language' (adjacent in the subsection).
  std::printf("\nproximity mode (rank of the top result):\n");
  for (auto mode : {query::ProximityMode::kReciprocalWindow,
                    query::ProximityMode::kAlwaysOne}) {
    query::ScoringOptions scoring;
    scoring.proximity = mode;
    auto engine = EngineWithScoring(scoring);
    auto near = engine->Query("query language", 5, index::IndexKind::kDil);
    auto far = engine->Query("Ricardo searching", 5, index::IndexKind::kDil);
    double near_rank = near->results.empty() ? 0 : near->results[0].rank;
    double far_rank = far->results.empty() ? 0 : far->results[0].rank;
    std::printf("  %-18s adjacent-keywords=%.6f  distant-keywords=%.6f  "
                "(ratio %.1fx)\n",
                mode == query::ProximityMode::kReciprocalWindow
                    ? "1/window"
                    : "always-1",
                near_rank, far_rank,
                far_rank > 0 ? near_rank / far_rank : 0.0);
  }

  // 3. Aggregation f: 'xql' occurs in two sub-elements of paper 1 (its
  // title and the deep subsection); f=sum adds the decayed occurrences,
  // f=max keeps only the strongest.
  std::printf("\naggregation f (query 'xql navarro' — paper 1 aggregates "
              "two xql occurrences):\n");
  for (auto aggregation :
       {query::RankAggregation::kMax, query::RankAggregation::kSum}) {
    query::ScoringOptions scoring;
    scoring.aggregation = aggregation;
    auto engine = EngineWithScoring(scoring);
    auto response = engine->Query("xql navarro", 10, index::IndexKind::kDil);
    std::printf("  f=%-4s ",
                aggregation == query::RankAggregation::kMax ? "max" : "sum");
    for (const auto& result : response->results) {
      std::printf(" <%s>=%.6f", result.element_tag.c_str(), result.rank);
    }
    std::printf("\n");
  }
  std::printf("\nReading: decay<1 creates the specificity premium of\n"
              "Section 2.3.1; the 1/window proximity separates 'XQL\n"
              "language' from 'Soffer XQL' exactly as the paper's\n"
              "two-dimensional metric prescribes; f=sum inflates elements\n"
              "with many partial occurrences relative to f=max.\n");
  return 0;
}
