#ifndef XRANK_BENCH_BENCH_UTIL_H_
#define XRANK_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction harnesses. Each bench
// binary regenerates one table or figure of the paper; the primary metric
// is the deterministic I/O cost model (sequential-page-read units at a 50:1
// seek:scan ratio), with wall-clock time reported alongside.

#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"
#include "datagen/dblp_gen.h"
#include "datagen/workload.h"
#include "datagen/xmark_gen.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrank::bench {

// Benchmark-scale corpora. The paper used 143 MB DBLP / 113 MB XMark on a
// 2003 disk; these defaults generate laptop-scale corpora with the same
// structural shape (shallow + inter-document links vs. deep + intra-document
// links). Scale up with the env var XRANK_BENCH_SCALE (a multiplier).
inline double BenchScale() {
  const char* env = std::getenv("XRANK_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

inline datagen::DblpOptions BenchDblpOptions() {
  datagen::DblpOptions options;
  options.num_papers = static_cast<size_t>(2000 * BenchScale());
  options.vocabulary_size = 6000;
  options.high_corr_frequency = 0.10;
  options.low_corr_frequency = 0.06;
  options.low_corr_joint_papers = 2;
  return options;
}

// Profile for the query-performance figures: the paper's Figures 10/11 use
// common keywords whose inverted lists span many megabytes, so the planted
// terms are sprayed densely over a larger corpus (fewer planted sets keep
// each set's list long).
inline datagen::DblpOptions BenchQueryPerfOptions() {
  datagen::DblpOptions options;
  options.num_papers = static_cast<size_t>(50000 * BenchScale());
  options.vocabulary_size = 2000;
  options.abstract_words = 15;
  options.mean_citations = 2.0;
  options.planted_sets = 2;
  options.dense_plant_rate = 0.55;
  options.high_corr_frequency = 0.0;
  options.low_corr_frequency = 0.0;
  options.low_corr_joint_papers = 2;
  return options;
}

inline datagen::XMarkOptions BenchXMarkOptions() {
  datagen::XMarkOptions options;
  options.num_items = static_cast<size_t>(900 * BenchScale());
  options.num_people = options.num_items / 2;
  options.num_open_auctions = options.num_items;
  options.num_closed_auctions = options.num_items / 3;
  options.vocabulary_size = 6000;
  options.high_corr_frequency = 0.12;
  options.low_corr_frequency = 0.08;
  return options;
}

// Serializes generated documents and re-parses them through the XML
// pipeline (exactly what an ingesting system would see).
inline std::vector<xml::Document> Reparse(datagen::Corpus* corpus) {
  std::vector<xml::Document> docs;
  docs.reserve(corpus->documents.size());
  for (const xml::Document& doc : corpus->documents) {
    auto parsed = xml::ParseDocument(xml::Serialize(doc), doc.uri);
    if (!parsed.ok()) {
      std::fprintf(stderr, "FATAL: generated document failed to parse: %s\n",
                   parsed.status().ToString().c_str());
      std::abort();
    }
    docs.push_back(std::move(parsed).value());
  }
  return docs;
}

inline std::unique_ptr<core::XRankEngine> BuildEngine(
    std::vector<xml::Document> docs, std::vector<index::IndexKind> kinds,
    core::EngineOptions options = {}, size_t result_cache_entries = 0) {
  options.indexes = std::move(kinds);
  // The figure-reproduction benches measure the paper's per-query I/O:
  // cold_cache_per_query stays at its default (true) unless the caller's
  // options opt out, and the serving-path result cache defaults off here —
  // benches that study the serving fast path opt in explicitly.
  options.result_cache_entries = result_cache_entries;
  auto engine = core::XRankEngine::Build(std::move(docs), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "FATAL: engine build failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine).value();
}

struct AveragedStats {
  double io_cost = 0.0;
  double wall_ms = 0.0;
  double postings = 0.0;
  double random_reads = 0.0;
  double sequential_reads = 0.0;
  double results = 0.0;
  size_t switched = 0;
  size_t queries = 0;
};

// Runs a query set cold-cache and averages the statistics.
inline AveragedStats RunQuerySet(
    core::XRankEngine* engine,
    const std::vector<std::vector<std::string>>& queries, size_t m,
    index::IndexKind kind) {
  AveragedStats stats;
  for (const auto& keywords : queries) {
    auto response = engine->QueryKeywords(keywords, m, kind);
    if (!response.ok()) {
      std::fprintf(stderr, "FATAL: query failed: %s\n",
                   response.status().ToString().c_str());
      std::abort();
    }
    stats.io_cost += response->stats.io_cost;
    stats.wall_ms += response->stats.wall_ms;
    stats.postings += static_cast<double>(response->stats.postings_scanned);
    stats.random_reads += static_cast<double>(response->stats.random_reads);
    stats.sequential_reads +=
        static_cast<double>(response->stats.sequential_reads);
    stats.results += static_cast<double>(response->results.size());
    stats.switched += response->stats.switched_to_dil ? 1 : 0;
    ++stats.queries;
  }
  double n = stats.queries > 0 ? static_cast<double>(stats.queries) : 1.0;
  stats.io_cost /= n;
  stats.wall_ms /= n;
  stats.postings /= n;
  stats.random_reads /= n;
  stats.sequential_reads /= n;
  stats.results /= n;
  return stats;
}

inline void PrintRule(int width = 86) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// Machine-readable results for tracking the perf trajectory across
// revisions. Bench binaries accept `--json <path>` and write a flat JSON
// object {"bench": <name>, "metrics": {name: number, ...}}; the
// conventional path is BENCH_<name>.json in the invocation directory.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  // Metric names use '/' for grouping, e.g. "elemrank/threads=4/ms".
  void Add(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  // Attaches a process-wide metrics-registry snapshot (the RenderJson
  // output) to the report, written as a "registry" section so perf runs
  // carry their counter/histogram context alongside the headline numbers.
  void SetRegistrySnapshot(std::string registry_json) {
    registry_json_ = std::move(registry_json);
  }

  // Consumes a `--json <path>` argument pair from argv (in place) and
  // remembers the path. Returns argc with the pair removed. Call before
  // handing argv to any other flag parser. Exits with an error if --json
  // is given without a path.
  int ParseFlag(int argc, char** argv) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: --json requires a path argument\n");
          std::exit(2);
        }
        path_ = argv[i + 1];
        ++i;
        continue;
      }
      argv[out++] = argv[i];
    }
    return out;
  }

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  // Writes the report if --json was given. Returns false (with a message on
  // stderr) if the file cannot be written.
  bool Write() const {
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ERROR: cannot write JSON report to %s\n",
                   path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {\n",
                 bench_name_.c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %.6f%s\n", metrics_[i].first.c_str(),
                   metrics_[i].second, i + 1 < metrics_.size() ? "," : "");
    }
    if (registry_json_.empty()) {
      std::fprintf(f, "  }\n}\n");
    } else {
      std::fprintf(f, "  },\n  \"registry\": %s\n}\n",
                   registry_json_.c_str());
    }
    std::fclose(f);
    std::printf("JSON report written to %s\n", path_.c_str());
    return true;
  }

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::string registry_json_;
};

}  // namespace xrank::bench

#endif  // XRANK_BENCH_BENCH_UTIL_H_
