// Reproduces the Section 5.4 result-count experiment (reported in prose in
// the paper; the graph is in its technical-report version): varying the
// desired number of results m. DIL's cost is flat (it always scans the full
// lists); RDIL's cost grows with m because the threshold must fall further
// before it can stop.

#include "bench_util.h"

int main() {
  using namespace xrank;
  using namespace xrank::bench;

  datagen::DblpOptions gen = BenchQueryPerfOptions();
  datagen::Corpus corpus = datagen::GenerateDblp(gen);
  auto engine = BuildEngine(Reparse(&corpus),
                            {index::IndexKind::kDil, index::IndexKind::kRdil,
                             index::IndexKind::kHdil});

  datagen::WorkloadOptions workload;
  workload.num_queries = 6;
  workload.num_keywords = 2;
  workload.mode = datagen::CorrelationMode::kHigh;
  workload.seed = 300;
  auto queries = datagen::MakeQueries(corpus.planted, workload);

  const size_t ms[] = {1, 10, 50, 100, 250, 500};
  std::printf("=== Section 5.4: cost vs desired result count m "
              "(2 correlated keywords, cold cache) ===\n\n");
  std::printf("%-12s", "Approach");
  for (size_t m : ms) std::printf("   m=%-4zu cost", m);
  std::printf("\n");
  PrintRule(100);
  for (index::IndexKind kind :
       {index::IndexKind::kDil, index::IndexKind::kRdil,
        index::IndexKind::kHdil}) {
    std::printf("%-12s", std::string(index::IndexKindName(kind)).c_str());
    for (size_t m : ms) {
      AveragedStats stats = RunQuerySet(engine.get(), queries, m, kind);
      std::printf(" %12.1f", stats.io_cost);
    }
    std::printf("\n");
  }
  PrintRule(100);
  std::printf("\nExpected shape: DIL flat across m (always full scans);\n"
              "RDIL/HDIL grow with m as more of the rank-ordered lists must\n"
              "be consumed before the threshold guarantees the top-m.\n");
  return 0;
}
