// Reproduces the Section 5.4 result-count experiment (reported in prose in
// the paper; the graph is in its technical-report version): varying the
// desired number of results m. DIL's cost is flat (it always scans the full
// lists); RDIL's cost grows with m because the threshold must fall further
// before it can stop.
//
// A second sweep covers the disjunctive dynamic-pruning strategies
// (MaxScore / WAND / block-max WAND) against the exhaustive merge across
// k x term-count, verifying on every query that the pruned top-k is
// bitwise identical to the oracle — any mismatch fails the binary, so the
// perf gate doubles as a correctness gate.

#include "bench_util.h"

#include <cstdlib>

namespace {

using namespace xrank;
using namespace xrank::bench;

const char* AlgorithmFlagName(query::MergeAlgorithm algorithm) {
  switch (algorithm) {
    case query::MergeAlgorithm::kExhaustive:
      return "exhaustive";
    case query::MergeAlgorithm::kMaxScore:
      return "maxscore";
    case query::MergeAlgorithm::kWand:
      return "wand";
    case query::MergeAlgorithm::kBlockMaxWand:
      return "bmw";
    default:
      return "auto";
  }
}

// Fails the whole run when a pruned response differs from the oracle in
// any result id or rank: pruning must be invisible except in the counters.
void CheckParity(const core::EngineResponse& pruned,
                 const core::EngineResponse& oracle, const char* label) {
  bool same = pruned.results.size() == oracle.results.size();
  for (size_t i = 0; same && i < pruned.results.size(); ++i) {
    same = pruned.results[i].id == oracle.results[i].id &&
           pruned.results[i].rank == oracle.results[i].rank;
  }
  if (!same) {
    std::fprintf(stderr,
                 "FATAL: %s results diverge from the exhaustive oracle\n",
                 label);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("topk_sweep");
  argc = report.ParseFlag(argc, argv);
  (void)argc;
  (void)argv;

  datagen::DblpOptions gen = BenchQueryPerfOptions();
  datagen::Corpus corpus = datagen::GenerateDblp(gen);
  auto engine = BuildEngine(Reparse(&corpus),
                            {index::IndexKind::kDil, index::IndexKind::kRdil,
                             index::IndexKind::kHdil});

  datagen::WorkloadOptions workload;
  workload.num_queries = 6;
  workload.num_keywords = 2;
  workload.mode = datagen::CorrelationMode::kHigh;
  workload.seed = 300;
  auto queries = datagen::MakeQueries(corpus.planted, workload);

  const size_t ms[] = {1, 10, 50, 100, 250, 500};
  std::printf("=== Section 5.4: cost vs desired result count m "
              "(2 correlated keywords, cold cache) ===\n\n");
  std::printf("%-12s", "Approach");
  for (size_t m : ms) std::printf("   m=%-4zu cost", m);
  std::printf("\n");
  PrintRule(100);
  for (index::IndexKind kind :
       {index::IndexKind::kDil, index::IndexKind::kRdil,
        index::IndexKind::kHdil}) {
    std::string kind_name(index::IndexKindName(kind));
    std::printf("%-12s", kind_name.c_str());
    for (size_t m : ms) {
      AveragedStats stats = RunQuerySet(engine.get(), queries, m, kind);
      std::printf(" %12.1f", stats.io_cost);
      report.Add("m_sweep/" + kind_name + "/m=" + std::to_string(m) +
                     "/io_cost",
                 stats.io_cost);
    }
    std::printf("\n");
  }
  PrintRule(100);
  std::printf("\nExpected shape: DIL flat across m (always full scans);\n"
              "RDIL/HDIL grow with m as more of the rank-ordered lists must\n"
              "be consumed before the threshold guarantees the top-m.\n\n");

  // --- Disjunctive pruning sweep ------------------------------------------
  // Same corpus through a disjunctive-scoring DIL engine; every pruned run
  // is checked bitwise against the exhaustive oracle before its cost is
  // reported.
  core::EngineOptions disjunctive_options;
  disjunctive_options.scoring.semantics = query::QuerySemantics::kDisjunctive;
  auto dengine = BuildEngine(Reparse(&corpus), {index::IndexKind::kDil},
                             disjunctive_options);

  const query::MergeAlgorithm algorithms[] = {
      query::MergeAlgorithm::kExhaustive, query::MergeAlgorithm::kMaxScore,
      query::MergeAlgorithm::kWand, query::MergeAlgorithm::kBlockMaxWand};
  const size_t ks[] = {10, 100};
  const size_t term_counts[] = {2, 4};

  std::printf("=== Disjunctive top-k pruning: postings consumed per query "
              "(DIL, cold cache) ===\n\n");
  std::printf("%-22s", "Algorithm");
  for (size_t terms : term_counts) {
    for (size_t k : ks) std::printf("  t=%zu,k=%-3zu", terms, k);
  }
  std::printf("\n");
  PrintRule(70);
  for (query::MergeAlgorithm algorithm : algorithms) {
    const char* name = AlgorithmFlagName(algorithm);
    std::printf("%-22s", name);
    for (size_t terms : term_counts) {
      datagen::WorkloadOptions dw;
      dw.num_queries = 6;
      dw.num_keywords = terms;
      dw.mode = datagen::CorrelationMode::kHigh;
      dw.seed = 301;
      auto dqueries = datagen::MakeQueries(corpus.planted, dw);
      for (size_t k : ks) {
        double postings = 0.0, io_cost = 0.0, wall_ms = 0.0;
        for (const auto& keywords : dqueries) {
          query::QueryOptions options;
          options.algorithm = query::MergeAlgorithm::kExhaustive;
          auto oracle = dengine->QueryKeywords(keywords, k,
                                               index::IndexKind::kDil,
                                               options);
          if (!oracle.ok()) {
            std::fprintf(stderr, "FATAL: oracle query failed: %s\n",
                         oracle.status().ToString().c_str());
            return 1;
          }
          options.algorithm = algorithm;
          auto got = dengine->QueryKeywords(keywords, k,
                                            index::IndexKind::kDil, options);
          if (!got.ok()) {
            std::fprintf(stderr, "FATAL: %s query failed: %s\n", name,
                         got.status().ToString().c_str());
            return 1;
          }
          CheckParity(*got, *oracle, name);
          postings += static_cast<double>(got->stats.postings_scanned);
          io_cost += got->stats.io_cost;
          wall_ms += got->stats.wall_ms;
        }
        double n = static_cast<double>(dqueries.size());
        postings /= n;
        io_cost /= n;
        wall_ms /= n;
        std::printf(" %10.0f", postings);
        std::string prefix = std::string("disjunctive/") + name +
                             "/terms=" + std::to_string(terms) +
                             "/k=" + std::to_string(k);
        report.Add(prefix + "/postings", postings);
        report.Add(prefix + "/io_cost", io_cost);
        report.Add(prefix + "/wall_ms", wall_ms);
      }
    }
    std::printf("\n");
  }
  PrintRule(70);
  std::printf("\nEvery pruned row was verified bitwise against the "
              "exhaustive oracle.\nExpected shape: exhaustive flat in k; "
              "MaxScore/WAND/BMW consume fewer\npostings, with the gap "
              "narrowing as k grows (the threshold is weaker).\n");

  if (!report.Write()) return 1;
  return 0;
}
