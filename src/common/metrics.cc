#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/check.h"

namespace xrank::metrics {

std::vector<uint64_t> Histogram::SnapshotCounts() const {
  std::vector<uint64_t> counts(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::PercentileFromCounts(const std::vector<uint64_t>& counts,
                                       double p) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation, 1-based; p=0 maps to the first.
  double target = std::max(1.0, p / 100.0 * static_cast<double>(total));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    double lower =
        i == 0 ? 0.0 : static_cast<double>(BucketBound(i - 1));
    double upper = i < kNumFiniteBuckets
                       ? static_cast<double>(BucketBound(i))
                       : static_cast<double>(BucketBound(kNumFiniteBuckets - 1));
    if (cumulative + counts[i] >= target) {
      if (i >= kNumFiniteBuckets) return upper;  // overflow: clamp
      double within = target - static_cast<double>(cumulative);
      double fraction = within / static_cast<double>(counts[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative += counts[i];
  }
  // p == 100 with rounding: the last non-empty bucket's upper bound.
  for (size_t i = counts.size(); i-- > 0;) {
    if (counts[i] == 0) continue;
    return i < kNumFiniteBuckets
               ? static_cast<double>(BucketBound(i))
               : static_cast<double>(BucketBound(kNumFiniteBuckets - 1));
  }
  return 0.0;
}

HistogramSnapshot Histogram::TakeSnapshot() const {
  HistogramSnapshot snap;
  snap.bucket_counts = SnapshotCounts();
  snap.sum = sum();
  snap.count = 0;
  for (uint64_t c : snap.bucket_counts) snap.count += c;
  snap.p50 = PercentileFromCounts(snap.bucket_counts, 50.0);
  snap.p95 = PercentileFromCounts(snap.bucket_counts, 95.0);
  snap.p99 = PercentileFromCounts(snap.bucket_counts, 99.0);
  return snap;
}

uint64_t RegistrySnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* RegistrySnapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

Registry& Registry::Instance() {
  // Leaked on purpose: components cache metric pointers and may use them
  // from static destructors.
  static Registry* instance = new Registry();
  return *instance;
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  XRANK_CHECK(gauges_.find(name) == gauges_.end() &&
                  histograms_.find(name) == histograms_.end(),
              "metric name registered with a different type");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  XRANK_CHECK(counters_.find(name) == counters_.end() &&
                  histograms_.find(name) == histograms_.end(),
              "metric name registered with a different type");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  XRANK_CHECK(counters_.find(name) == counters_.end() &&
                  gauges_.find(name) == gauges_.end(),
              "metric name registered with a different type");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->TakeSnapshot());
  }
  return snap;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

namespace {

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<size_t>(n, sizeof(buffer) - 1));
}

// JSON string escaping for metric names (conservative: names are ASCII
// identifiers, but a stray quote/backslash must not corrupt the document).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string RenderTable(const RegistrySnapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      AppendF(&out, "  %-40s %12" PRIu64 "\n", name.c_str(), value);
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      AppendF(&out, "  %-40s %12" PRId64 "\n", name.c_str(), value);
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms (us):\n";
    AppendF(&out, "  %-40s %10s %10s %10s %10s %10s\n", "name", "count",
            "mean", "p50", "p95", "p99");
    for (const auto& [name, h] : snapshot.histograms) {
      double mean =
          h.count > 0
              ? static_cast<double>(h.sum) / static_cast<double>(h.count)
              : 0.0;
      AppendF(&out, "  %-40s %10" PRIu64 " %10.1f %10.1f %10.1f %10.1f\n",
              name.c_str(), h.count, mean, h.p50, h.p95, h.p99);
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string RenderJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, snapshot.counters[i].first);
    AppendF(&out, ": %" PRIu64, snapshot.counters[i].second);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, snapshot.gauges[i].first);
    AppendF(&out, ": %" PRId64, snapshot.gauges[i].second);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, name);
    AppendF(&out,
            ": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
            ", \"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}",
            h.count, h.sum, h.p50, h.p95, h.p99);
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace xrank::metrics
