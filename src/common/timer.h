#ifndef XRANK_COMMON_TIMER_H_
#define XRANK_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace xrank {

// Wall-clock stopwatch for the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xrank

#endif  // XRANK_COMMON_TIMER_H_
