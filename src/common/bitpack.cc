#include "common/bitpack.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#include <tmmintrin.h>
#define XRANK_BITPACK_SSE2 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define XRANK_BITPACK_NEON 1
#endif

namespace xrank::bitpack {

namespace {

// Scalar core shared by every dispatch path for non-byte-aligned widths.
// The bulk of the values take one unaligned little-endian 64-bit load each
// (any 32-bit value straddles at most 5 bytes, so an 8-byte load that fits
// before in_end always covers it); the last few values — where a full load
// would read past in_end — fall back to a byte-refilled u64 window, which
// never exceeds 39 significant bits (31 leftover + 8 new).
bool UnpackScalarCore(const uint8_t* in, const uint8_t* in_end, size_t n,
                      unsigned width, uint32_t* out) {
  if (width == 0) {
    std::memset(out, 0, n * sizeof(uint32_t));
    return true;
  }
  const uint32_t mask =
      width == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << width) - 1);
  size_t i = 0;
  if (width < 8) {
    // Eight consecutive values span exactly `width` bytes, so each group of
    // eight starts byte-aligned and fits one 64-bit load (8 * 7 = 56 bits).
    while (i + 8 <= n) {
      const uint8_t* p = in + (i >> 3) * width;
      if (p + sizeof(uint64_t) > in_end) break;
      uint64_t word;
      std::memcpy(&word, p, sizeof(word));
      out[i] = static_cast<uint32_t>(word) & mask;
      out[i + 1] = static_cast<uint32_t>(word >> width) & mask;
      out[i + 2] = static_cast<uint32_t>(word >> (2 * width)) & mask;
      out[i + 3] = static_cast<uint32_t>(word >> (3 * width)) & mask;
      out[i + 4] = static_cast<uint32_t>(word >> (4 * width)) & mask;
      out[i + 5] = static_cast<uint32_t>(word >> (5 * width)) & mask;
      out[i + 6] = static_cast<uint32_t>(word >> (6 * width)) & mask;
      out[i + 7] = static_cast<uint32_t>(word >> (7 * width)) & mask;
      i += 8;
    }
  }
  while (i < n) {
    size_t bit = i * width;
    const uint8_t* p = in + (bit >> 3);
    if (p + sizeof(uint64_t) > in_end) break;
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    out[i] = static_cast<uint32_t>(word >> (bit & 7)) & mask;
    ++i;
  }
  if (i == n) return true;
  size_t bit = i * width;
  const uint8_t* p = in + (bit >> 3);
  unsigned skip = static_cast<unsigned>(bit & 7);
  uint64_t window = 0;
  unsigned bits = 0;
  if (p < in_end) {
    window = static_cast<uint64_t>(*p++) >> skip;
    bits = 8 - skip;
  }
  for (; i < n; ++i) {
    while (bits < width) {
      if (p == in_end) return false;
      window |= static_cast<uint64_t>(*p++) << bits;
      bits += 8;
    }
    out[i] = static_cast<uint32_t>(window) & mask;
    window >>= width;
    bits -= width;
  }
  return true;
}

#if defined(XRANK_BITPACK_SSE2)

void Widen8Sse2(const uint8_t* in, size_t n, uint32_t* out) {
  size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 16 <= n; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    __m128i lo = _mm_unpacklo_epi8(v, zero);
    __m128i hi = _mm_unpackhi_epi8(v, zero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi16(lo, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_unpackhi_epi16(lo, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                     _mm_unpacklo_epi16(hi, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                     _mm_unpackhi_epi16(hi, zero));
  }
  for (; i < n; ++i) out[i] = in[i];
}

void Widen16Sse2(const uint8_t* in, size_t n, uint32_t* out) {
  size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 8 <= n; i += 8) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i * 2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi16(v, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_unpackhi_epi16(v, zero));
  }
  for (; i < n; ++i) {
    uint16_t v;
    std::memcpy(&v, in + i * 2, sizeof(v));
    out[i] = v;
  }
}

bool UnpackSse2(const uint8_t* in, const uint8_t* in_end, size_t n,
                unsigned width, uint32_t* out) {
  // Bounds were validated by UnpackBits; byte-aligned widths are
  // little-endian arrays, everything else takes the scalar core.
  switch (width) {
    case 8:
      Widen8Sse2(in, n, out);
      return true;
    case 16:
      Widen16Sse2(in, n, out);
      return true;
    case 32:
      std::memcpy(out, in, n * sizeof(uint32_t));
      return true;
    default:
      return UnpackScalarCore(in, in_end, n, width, out);
  }
}

#elif defined(XRANK_BITPACK_NEON)

void Widen8Neon(const uint8_t* in, size_t n, uint32_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(in + i);
    uint16x8_t lo = vmovl_u8(vget_low_u8(v));
    uint16x8_t hi = vmovl_u8(vget_high_u8(v));
    vst1q_u32(out + i, vmovl_u16(vget_low_u16(lo)));
    vst1q_u32(out + i + 4, vmovl_u16(vget_high_u16(lo)));
    vst1q_u32(out + i + 8, vmovl_u16(vget_low_u16(hi)));
    vst1q_u32(out + i + 12, vmovl_u16(vget_high_u16(hi)));
  }
  for (; i < n; ++i) out[i] = in[i];
}

void Widen16Neon(const uint8_t* in, size_t n, uint32_t* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint16x8_t v = vld1q_u16(reinterpret_cast<const uint16_t*>(in + i * 2));
    vst1q_u32(out + i, vmovl_u16(vget_low_u16(v)));
    vst1q_u32(out + i + 4, vmovl_u16(vget_high_u16(v)));
  }
  for (; i < n; ++i) {
    uint16_t v;
    std::memcpy(&v, in + i * 2, sizeof(v));
    out[i] = v;
  }
}

bool UnpackNeon(const uint8_t* in, const uint8_t* in_end, size_t n,
                unsigned width, uint32_t* out) {
  switch (width) {
    case 8:
      Widen8Neon(in, n, out);
      return true;
    case 16:
      Widen16Neon(in, n, out);
      return true;
    case 32:
      std::memcpy(out, in, n * sizeof(uint32_t));
      return true;
    default:
      return UnpackScalarCore(in, in_end, n, width, out);
  }
}

#endif

// --- group varint ----------------------------------------------------------

// Per-control-byte decode tables: a 16-byte shuffle mask scattering the
// group's 1-4 byte values into four little-endian 32-bit lanes (0xFF lanes
// zero-fill under PSHUFB/TBL), plus the group's total payload length.
struct GvTables {
  alignas(16) uint8_t shuffle[256][16];
  uint8_t len[256];
};

const GvTables& GetGvTables() {
  static const GvTables tables = [] {
    GvTables t{};
    for (unsigned ctrl = 0; ctrl < 256; ++ctrl) {
      uint8_t src = 0;
      for (unsigned j = 0; j < 4; ++j) {
        const unsigned len = ((ctrl >> (2 * j)) & 3) + 1;
        for (unsigned b = 0; b < 4; ++b) {
          t.shuffle[ctrl][j * 4 + b] =
              b < len ? static_cast<uint8_t>(src + b) : 0xFF;
        }
        src = static_cast<uint8_t>(src + len);
      }
      t.len[ctrl] = src;
    }
    return t;
  }();
  return tables;
}

// Scalar core; also the tail path of the SIMD kernels. Decodes n values
// starting at `in`, bounds-checked against in_end byte by byte.
bool GvScalarCore(const uint8_t* in, const uint8_t* in_end, size_t n,
                  uint32_t* out, size_t* consumed) {
  const uint8_t* p = in;
  size_t i = 0;
  while (i < n) {
    if (p >= in_end) return false;
    const uint8_t ctrl = *p++;
    const size_t k = n - i < 4 ? n - i : 4;
    for (size_t j = 0; j < k; ++j) {
      const unsigned len = ((ctrl >> (2 * j)) & 3) + 1;
      if (static_cast<size_t>(in_end - p) < len) return false;
      uint32_t v = 0;
      for (unsigned b = 0; b < len; ++b) {
        v |= static_cast<uint32_t>(p[b]) << (8 * b);
      }
      p += len;
      out[i + j] = v;
    }
    i += k;
  }
  if (consumed != nullptr) *consumed = static_cast<size_t>(p - in);
  return true;
}

#if defined(XRANK_BITPACK_SSE2)

#if defined(__GNUC__) || defined(__clang__)
__attribute__((target("ssse3")))
#endif
bool GvSsse3(const uint8_t* in, const uint8_t* in_end, size_t n,
             uint32_t* out, size_t* consumed) {
  const GvTables& t = GetGvTables();
  const uint8_t* p = in;
  size_t i = 0;
  // Full groups whose 16-byte payload load stays strictly inside the
  // readable buffer: one table lookup + PSHUFB each. Partial groups and the
  // last few bytes fall through to the scalar tail.
  while (i + 4 <= n && static_cast<size_t>(in_end - p) > 1 + 16) {
    const uint8_t ctrl = *p;
    const __m128i data =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 1));
    const __m128i shuf =
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.shuffle[ctrl]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_shuffle_epi8(data, shuf));
    p += 1 + t.len[ctrl];
    i += 4;
  }
  size_t tail_consumed = 0;
  if (!GvScalarCore(p, in_end, n - i, out + i, &tail_consumed)) return false;
  if (consumed != nullptr) {
    *consumed = static_cast<size_t>(p - in) + tail_consumed;
  }
  return true;
}

#elif defined(XRANK_BITPACK_NEON)

bool GvNeon(const uint8_t* in, const uint8_t* in_end, size_t n,
            uint32_t* out, size_t* consumed) {
  const GvTables& t = GetGvTables();
  const uint8_t* p = in;
  size_t i = 0;
  while (i + 4 <= n && static_cast<size_t>(in_end - p) > 1 + 16) {
    const uint8_t ctrl = *p;
    const uint8x16_t data = vld1q_u8(p + 1);
    const uint8x16_t shuf = vld1q_u8(t.shuffle[ctrl]);
    vst1q_u8(reinterpret_cast<uint8_t*>(out + i), vqtbl1q_u8(data, shuf));
    p += 1 + t.len[ctrl];
    i += 4;
  }
  size_t tail_consumed = 0;
  if (!GvScalarCore(p, in_end, n - i, out + i, &tail_consumed)) return false;
  if (consumed != nullptr) {
    *consumed = static_cast<size_t>(p - in) + tail_consumed;
  }
  return true;
}

#endif

using UnpackFn = bool (*)(const uint8_t*, const uint8_t*, size_t, unsigned,
                          uint32_t*);

struct Kernel {
  const char* name;
  UnpackFn fn;
};

Kernel PickKernel() {
  const char* no_simd = std::getenv("XRANK_NO_SIMD");
  if (no_simd != nullptr && no_simd[0] == '1') {
    return {"scalar", &UnpackScalarCore};
  }
#if defined(XRANK_BITPACK_SSE2)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("sse2")) return {"sse2", &UnpackSse2};
#else
  return {"sse2", &UnpackSse2};  // SSE2 is baseline on x86-64
#endif
#elif defined(XRANK_BITPACK_NEON)
  return {"neon", &UnpackNeon};  // NEON is baseline on aarch64
#endif
  return {"scalar", &UnpackScalarCore};
}

const Kernel& ActiveKernel() {
  static const Kernel kernel = PickKernel();
  return kernel;
}

using GvFn = bool (*)(const uint8_t*, const uint8_t*, size_t, uint32_t*,
                      size_t*);

struct GvKernel {
  const char* name;
  GvFn fn;
};

GvKernel PickGvKernel() {
  const char* no_simd = std::getenv("XRANK_NO_SIMD");
  if (no_simd != nullptr && no_simd[0] == '1') {
    return {"scalar", &GvScalarCore};
  }
#if defined(XRANK_BITPACK_SSE2)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("ssse3")) return {"ssse3", &GvSsse3};
#endif
#elif defined(XRANK_BITPACK_NEON)
  return {"neon", &GvNeon};  // NEON (with TBL) is baseline on aarch64
#endif
  return {"scalar", &GvScalarCore};
}

const GvKernel& ActiveGvKernel() {
  static const GvKernel kernel = PickGvKernel();
  return kernel;
}

}  // namespace

void PackBits(const uint32_t* in, size_t n, unsigned width, uint8_t* out) {
  if (width == 0) return;
  uint64_t window = 0;
  unsigned bits = 0;
  for (size_t i = 0; i < n; ++i) {
    window |= static_cast<uint64_t>(in[i]) << bits;
    bits += width;
    while (bits >= 8) {
      *out++ = static_cast<uint8_t>(window);
      window >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) *out = static_cast<uint8_t>(window);
}

bool UnpackBits(const uint8_t* in, const uint8_t* in_end, size_t n,
                unsigned width, uint32_t* out) {
  if (width > 32) return false;
  if (in > in_end ||
      PackedBytes(n, width) > static_cast<size_t>(in_end - in)) {
    return false;
  }
  return ActiveKernel().fn(in, in_end, n, width, out);
}

bool UnpackBitsPortable(const uint8_t* in, const uint8_t* in_end, size_t n,
                        unsigned width, uint32_t* out) {
  if (width > 32) return false;
  if (in > in_end ||
      PackedBytes(n, width) > static_cast<size_t>(in_end - in)) {
    return false;
  }
  return UnpackScalarCore(in, in_end, n, width, out);
}

const char* UnpackKernelName() { return ActiveKernel().name; }

bool UnpackGroupVarint(const uint8_t* in, const uint8_t* in_end, size_t n,
                       uint32_t* out, size_t* consumed) {
  if (in > in_end) return false;
  return ActiveGvKernel().fn(in, in_end, n, out, consumed);
}

bool UnpackGroupVarintPortable(const uint8_t* in, const uint8_t* in_end,
                               size_t n, uint32_t* out, size_t* consumed) {
  if (in > in_end) return false;
  return GvScalarCore(in, in_end, n, out, consumed);
}

const char* GroupVarintKernelName() { return ActiveGvKernel().name; }

}  // namespace xrank::bitpack
