#ifndef XRANK_COMMON_BITPACK_H_
#define XRANK_COMMON_BITPACK_H_

#include <cstddef>
#include <cstdint>

namespace xrank::bitpack {

// LSB-first sequential bit packing: value i occupies bits
// [i*width, (i+1)*width) of the output stream, low bits first within each
// byte. This is the payload layout of the bp128 posting codec's fixed-size
// blocks (see index/codec.cc); widths of 8/16/32 degenerate to little-endian
// byte arrays, which is what the SIMD fast paths exploit.

// Bytes needed to hold `n` values of `width` bits.
inline constexpr size_t PackedBytes(size_t n, unsigned width) {
  return (n * width + 7) / 8;
}

// Bits needed to represent v (0 for v == 0).
inline constexpr unsigned BitWidth(uint32_t v) {
  unsigned w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

// Packs n `width`-bit values into out, which must have room for
// PackedBytes(n, width) bytes. width <= 32 and every input must fit in
// `width` bits; callers derive `width` from the block maximum so both hold
// by construction. width == 0 writes nothing.
void PackBits(const uint32_t* in, size_t n, unsigned width, uint8_t* out);

// Unpacks n `width`-bit values from [in, in_end). Returns false (without
// touching out past the failure point) if width > 32 or the packed data
// would extend past in_end; neither the scalar nor the SIMD kernels ever
// read at or beyond in_end.
bool UnpackBits(const uint8_t* in, const uint8_t* in_end, size_t n,
                unsigned width, uint32_t* out);

// Always-scalar reference implementation of UnpackBits (same contract).
// Exposed so tests can cross-check the dispatched kernel against it.
bool UnpackBitsPortable(const uint8_t* in, const uint8_t* in_end, size_t n,
                        unsigned width, uint32_t* out);

// Name of the unpack kernel selected by runtime dispatch ("scalar", "sse2"
// or "neon"). Set XRANK_NO_SIMD=1 in the environment (before first use) to
// force the scalar kernel.
const char* UnpackKernelName();

// --- group varint (the "vgb" posting codec's stream layout) -----------------
//
// `n` values laid out in groups of 4: one control byte holding four 2-bit
// (byte length - 1) codes, then 1-4 little-endian bytes per value; a tail
// group (n % 4 != 0) stores control codes and bytes only for the values
// present. This is the streamvbyte/varint-GB layout, decoded with one
// per-group PSHUFB/TBL through a 256-entry shuffle table on SSSE3/NEON and
// byte-at-a-time otherwise.

// Decodes n values from [in, in_end). Returns false if the stream would
// extend past in_end (out may hold partially decoded values); on success
// *consumed (if non-null) receives the exact encoded byte count. The SIMD
// kernels may READ up to 16 bytes past the last encoded byte but never at
// or beyond in_end, so callers hand the full readable buffer (e.g. the
// whole page), not just the encoded extent.
bool UnpackGroupVarint(const uint8_t* in, const uint8_t* in_end, size_t n,
                       uint32_t* out, size_t* consumed);

// Always-scalar reference implementation (same contract); tests and benches
// cross-check the dispatched kernel against it.
bool UnpackGroupVarintPortable(const uint8_t* in, const uint8_t* in_end,
                               size_t n, uint32_t* out, size_t* consumed);

// "scalar", "ssse3" or "neon"; honors XRANK_NO_SIMD like UnpackKernelName.
const char* GroupVarintKernelName();

}  // namespace xrank::bitpack

#endif  // XRANK_COMMON_BITPACK_H_
