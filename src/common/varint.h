#ifndef XRANK_COMMON_VARINT_H_
#define XRANK_COMMON_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xrank {

// LEB128-style variable-length integer codec. Used by the Dewey ID codec and
// the on-disk posting formats: Dewey components are small sibling positions,
// so most encode in a single byte (the property Section 4.2.1 of the paper
// relies on for the "modest space overhead of Dewey IDs").

// Appends the encoding of v to *out.
void PutVarint32(std::string* out, uint32_t v);
void PutVarint64(std::string* out, uint64_t v);

// Number of bytes PutVarint32/64 would append.
int VarintLength32(uint32_t v);
int VarintLength64(uint64_t v);

// Decodes one varint from data starting at *offset, advancing *offset.
// Fails with Corruption if the input is truncated or overlong.
Result<uint32_t> GetVarint32(std::string_view data, size_t* offset);
Result<uint64_t> GetVarint64(std::string_view data, size_t* offset);

}  // namespace xrank

#endif  // XRANK_COMMON_VARINT_H_
