#ifndef XRANK_COMMON_RESULT_H_
#define XRANK_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace xrank {

// Result<T> holds either a value of type T or a non-OK Status. This is the
// value-returning counterpart of Status (Arrow's Result / absl::StatusOr).
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return value;` / `return Status::ParseError(...);`.
  Result(T value) : repr_(std::move(value)) {}             // NOLINT
  Result(Status status) : repr_(std::move(status)) {       // NOLINT
    XRANK_CHECK(!this->status().ok(),
                "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    XRANK_CHECK(ok(), "Result::value() on error: %s",
                status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T& value() & {
    XRANK_CHECK(ok(), "Result::value() on error: %s",
                status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T&& value() && {
    XRANK_CHECK(ok(), "Result::value() on error: %s",
                status().ToString().c_str());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

// XRANK_ASSIGN_OR_RETURN(lhs, expr): evaluates expr (a Result<T>), returns the
// error Status on failure, otherwise assigns the value to lhs.
#define XRANK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define XRANK_ASSIGN_OR_RETURN(lhs, expr) \
  XRANK_ASSIGN_OR_RETURN_IMPL(            \
      XRANK_CONCAT_(_xrank_result_, __LINE__), lhs, expr)

#define XRANK_CONCAT_INNER_(a, b) a##b
#define XRANK_CONCAT_(a, b) XRANK_CONCAT_INNER_(a, b)

}  // namespace xrank

#endif  // XRANK_COMMON_RESULT_H_
