#ifndef XRANK_COMMON_STATUS_H_
#define XRANK_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xrank {

// Error categories used across the library. Mirrors the Arrow/RocksDB Status
// idiom: library functions that can fail return Status (or Result<T>), never
// throw.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kIOError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
};

// Returns a stable human-readable name, e.g. "ParseError".
std::string_view StatusCodeName(StatusCode code);

// Status holds either success (cheap, no allocation) or an error code plus a
// message describing what failed.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "ParseError: unexpected '<' at line 3".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Propagates errors to the caller, Arrow-style.
#define XRANK_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::xrank::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace xrank

#endif  // XRANK_COMMON_STATUS_H_
