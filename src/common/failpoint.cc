#include "common/failpoint.h"

#include <map>
#include <mutex>

#include "common/random.h"

namespace xrank::fail {

struct FailPoints::Impl {
  struct Point {
    FailPointSpec spec;
    Random rng{0};
    uint64_t hits = 0;
    uint64_t triggers = 0;
  };
  mutable std::mutex mutex;
  std::map<std::string, Point, std::less<>> points;
};

FailPoints& FailPoints::Instance() {
  static FailPoints instance;
  return instance;
}

FailPoints::Impl* FailPoints::impl() const {
  static Impl impl;
  return &impl;
}

void FailPoints::Arm(std::string_view name, const FailPointSpec& spec) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  Impl::Point& point = i->points[std::string(name)];
  point.spec = spec;
  point.rng = Random(spec.seed);
  point.hits = 0;
  point.triggers = 0;
  armed_.store(i->points.size(), std::memory_order_release);
}

void FailPoints::Disarm(std::string_view name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  auto it = i->points.find(name);
  if (it != i->points.end()) i->points.erase(it);
  armed_.store(i->points.size(), std::memory_order_release);
}

void FailPoints::DisarmAll() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  i->points.clear();
  armed_.store(0, std::memory_order_release);
}

std::optional<FailPointHit> FailPoints::Evaluate(std::string_view name) {
  // Production fast path: one relaxed load when no point is armed.
  if (armed_.load(std::memory_order_acquire) == 0) return std::nullopt;
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  auto it = i->points.find(name);
  if (it == i->points.end()) return std::nullopt;
  Impl::Point& point = it->second;
  ++point.hits;
  if (point.hits <= point.spec.skip) return std::nullopt;
  if (point.spec.max_triggers >= 0 &&
      point.triggers >= static_cast<uint64_t>(point.spec.max_triggers)) {
    return std::nullopt;
  }
  if (point.spec.probability < 1.0 &&
      !point.rng.Bernoulli(point.spec.probability)) {
    return std::nullopt;
  }
  ++point.triggers;
  return FailPointHit{point.spec.action, point.rng.Next64()};
}

uint64_t FailPoints::hits(std::string_view name) const {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  auto it = i->points.find(name);
  return it == i->points.end() ? 0 : it->second.hits;
}

uint64_t FailPoints::triggers(std::string_view name) const {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  auto it = i->points.find(name);
  return it == i->points.end() ? 0 : it->second.triggers;
}

}  // namespace xrank::fail
