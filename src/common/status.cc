#include "common/status.h"

namespace xrank {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace xrank
