#include "common/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define XRANK_CRC32_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define XRANK_CRC32_ARM 1
#include <arm_acle.h>
#endif

namespace xrank {

namespace {

// Slicing-by-8 tables for the reflected Castagnoli polynomial. Table 0 is
// the classic byte-at-a-time table; table k advances a byte that is k
// positions deeper in the 8-byte word.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (size_t k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xFF] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

uint32_t Crc32cSoftware(const uint8_t* p, size_t size, uint32_t crc) {
  const Tables& tables = GetTables();
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    word ^= crc;  // little-endian: low 4 bytes absorb the running crc
    crc = tables.t[7][word & 0xFF] ^ tables.t[6][(word >> 8) & 0xFF] ^
          tables.t[5][(word >> 16) & 0xFF] ^ tables.t[4][(word >> 24) & 0xFF] ^
          tables.t[3][(word >> 32) & 0xFF] ^ tables.t[2][(word >> 40) & 0xFF] ^
          tables.t[1][(word >> 48) & 0xFF] ^ tables.t[0][(word >> 56) & 0xFF];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = tables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if defined(XRANK_CRC32_X86)

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const uint8_t* p,
                                                          size_t size,
                                                          uint32_t crc) {
  uint64_t crc64 = crc;
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (size-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

bool HardwareAvailable() { return __builtin_cpu_supports("sse4.2"); }

#elif defined(XRANK_CRC32_ARM)

uint32_t Crc32cHardware(const uint8_t* p, size_t size, uint32_t crc) {
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    crc = __crc32cd(crc, word);
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = __crc32cb(crc, *p++);
  }
  return crc;
}

bool HardwareAvailable() { return true; }

#else

uint32_t Crc32cHardware(const uint8_t* p, size_t size, uint32_t crc) {
  return Crc32cSoftware(p, size, crc);
}

bool HardwareAvailable() { return false; }

#endif

}  // namespace

bool Crc32cHardwareAccelerated() {
  static const bool available = HardwareAvailable();
  return available;
}

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;  // pre-invert; seed 0 starts the standard 0xFFFFFFFF
  crc = Crc32cHardwareAccelerated() ? Crc32cHardware(p, size, crc)
                                    : Crc32cSoftware(p, size, crc);
  return ~crc;
}

}  // namespace xrank
