#include "common/random.h"

#include "common/check.h"

namespace xrank {

uint64_t Random::Next64() {
  // splitmix64 (Steele, Lea, Flood 2014): fast, passes BigCrush, and a single
  // 64-bit word of state makes Fork() trivial.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Random::Uniform(uint64_t n) {
  XRANK_DCHECK(n > 0, "Uniform(0)");
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % n;
  }
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  XRANK_DCHECK(lo <= hi, "UniformRange lo > hi");
  return lo + Uniform(hi - lo + 1);
}

double Random::NextDouble() {
  // 53 random bits into the mantissa.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Random Random::Fork(uint64_t tag) {
  Random child(state_ ^ (tag * 0xD6E8FEB86659FD93ULL));
  child.Next64();
  return child;
}

}  // namespace xrank
