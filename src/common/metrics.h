#ifndef XRANK_COMMON_METRICS_H_
#define XRANK_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xrank::metrics {

// Process-wide observability primitives. Every component that wants a
// counter/gauge/histogram asks the Registry for one by name (slow path,
// mutex-guarded, typically once per component construction) and then
// mutates it lock-free through the returned pointer (hot path: one relaxed
// atomic op). Metric objects live for the process lifetime — pointers
// handed out by the Registry never dangle.
//
// The registry is the single aggregation point for what used to be ad-hoc
// counters (QueryStats, CostModel read counts, engine serving counters):
// those APIs stay per-instance for attribution, but every increment is also
// recorded here, so one Snapshot() shows the whole process.

// Monotonic counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous value (may go down).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> bucket_counts;  // size == Histogram::kNumBuckets
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Fixed-bucket histogram for latency-like values (canonically microseconds).
// Buckets are powers of two: bucket i holds values in (2^(i-1), 2^i] (bucket
// 0 holds [0, 1]), with a final overflow bucket for everything above the
// largest finite bound (~67 s in microseconds). Observations are a single
// relaxed fetch_add per bucket plus the sum/count updates; percentiles are
// computed on demand from a snapshot by linear interpolation inside the
// straddling bucket.
class Histogram {
 public:
  static constexpr size_t kNumFiniteBuckets = 27;  // bounds 2^0 .. 2^26
  static constexpr size_t kNumBuckets = kNumFiniteBuckets + 1;  // + overflow

  // Upper bound of finite bucket i (inclusive): 1 << i.
  static uint64_t BucketBound(size_t i) { return uint64_t{1} << i; }

  void Observe(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  // Percentile p in [0, 100] over everything observed so far. 0 when empty.
  double Percentile(double p) const {
    return PercentileFromCounts(SnapshotCounts(), p);
  }

  HistogramSnapshot TakeSnapshot() const;

  void Reset() {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

  // Percentile math over a raw bucket-count vector (exposed so tests can
  // probe bucket-edge behaviour without racing a live histogram).
  static double PercentileFromCounts(const std::vector<uint64_t>& counts,
                                     double p);

 private:
  static size_t BucketFor(uint64_t value) {
    for (size_t i = 0; i < kNumFiniteBuckets; ++i) {
      if (value <= BucketBound(i)) return i;
    }
    return kNumFiniteBuckets;  // overflow
  }

  std::vector<uint64_t> SnapshotCounts() const;

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

struct RegistrySnapshot {
  // All sorted by name (std::map iteration order).
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  // Convenience lookups for tests and benches; 0 / empty when absent.
  uint64_t counter(std::string_view name) const;
  const HistogramSnapshot* histogram(std::string_view name) const;
};

class Registry {
 public:
  // The process-wide instance. Constructed on first use, never destroyed
  // (metric pointers must stay valid through static teardown).
  static Registry& Instance();

  // Finds or creates the named metric. The returned pointer is stable for
  // the registry's lifetime. Asking for the same name with two different
  // types is a programming error and aborts.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Consistent-enough copy of every metric (each value is individually
  // atomic; the set of names is captured under the registration mutex).
  RegistrySnapshot Snapshot() const;

  // Zeroes every metric (names and pointers survive). Test/bench use only —
  // concurrent readers may observe partially reset values.
  void ResetForTest();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Human-readable table of a snapshot (counters, gauges, then histograms
// with count/mean/p50/p95/p99).
std::string RenderTable(const RegistrySnapshot& snapshot);

// Strict-JSON rendering:
//   {"counters": {...}, "gauges": {...},
//    "histograms": {"name": {"count":..,"sum":..,"p50":..,"p95":..,"p99":..}}}
std::string RenderJson(const RegistrySnapshot& snapshot);

}  // namespace xrank::metrics

#endif  // XRANK_COMMON_METRICS_H_
