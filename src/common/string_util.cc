#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace xrank {

std::string AsciiToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    out.push_back(c);
  }
  return out;
}

std::vector<std::string_view> SplitString(std::string_view s,
                                          std::string_view delims) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) pieces.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\n' ||
          s[begin] == '\r')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\n' ||
          s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string BytesToHuman(uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024ULL) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace xrank
