#ifndef XRANK_COMMON_THREAD_POOL_H_
#define XRANK_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xrank {

// Fixed-size worker pool for data-parallel loops. The pool spawns
// `num_threads - 1` workers; the calling thread acts as the last worker, so
// a pool of size 1 runs everything inline with no synchronization at all.
//
// Chunk assignment is deterministic: ParallelFor splits [begin, end) into
// fixed-size chunks of `grain` and statically assigns chunk c to worker
// c % thread_count(). Because chunk boundaries depend only on `grain` (not
// on the thread count), per-chunk reductions combined in chunk-index order
// produce results that are identical for every pool size.
//
// ParallelFor calls are not reentrant (a chunk function must not call back
// into the same pool) and the loop body must not throw.
class ThreadPool {
 public:
  // num_threads = 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size() + 1; }

  // Number of chunks ParallelFor(begin, end, grain, ...) will create; use it
  // to size per-chunk partial-result buffers.
  static size_t NumChunks(size_t begin, size_t end, size_t grain);

  // Runs fn(chunk_begin, chunk_end, chunk_index) over [begin, end) split
  // into chunks of `grain` elements (grain = 0 splits evenly across the
  // pool). Blocks until every chunk has run.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t worker_index);
  // Runs the chunks statically assigned to `worker_index` for the current
  // job (parameters copied out under the pool mutex by the caller).
  void RunChunks(size_t worker_index, size_t begin, size_t end, size_t grain,
                 size_t chunk_count,
                 const std::function<void(size_t, size_t, size_t)>& fn);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  uint64_t job_epoch_ = 0;
  std::atomic<size_t> pending_{0};

  // Current job, valid while pending_ > 0.
  const std::function<void(size_t, size_t, size_t)>* job_fn_ = nullptr;
  size_t job_begin_ = 0;
  size_t job_end_ = 0;
  size_t job_grain_ = 0;
  size_t job_chunk_count_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace xrank

#endif  // XRANK_COMMON_THREAD_POOL_H_
