#include "common/safe_strerror.h"

#include <string.h>

namespace xrank {

namespace {

// strerror_r has two incompatible signatures: the XSI form returns int
// (0 on success, always writing into the buffer) and the GNU form returns
// char* (which may point at static immutable storage instead of the
// buffer). Overload resolution on the actual return type picks the right
// adaptor without any feature-macro guessing. Exactly one overload is
// selected per platform; the other is intentionally unused.
[[maybe_unused]] const char* AdoptStrErrorResult(int rc, const char* buffer) {
  return rc == 0 ? buffer : nullptr;
}
[[maybe_unused]] const char* AdoptStrErrorResult(const char* result,
                                                 const char* /*buffer*/) {
  return result;
}

}  // namespace

std::string SafeStrError(int errnum) {
  char buffer[256];
  buffer[0] = '\0';
  const char* message =
      AdoptStrErrorResult(strerror_r(errnum, buffer, sizeof(buffer)), buffer);
  if (message != nullptr && message[0] != '\0') return message;
  return "error " + std::to_string(errnum);
}

}  // namespace xrank
