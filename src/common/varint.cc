#include "common/varint.h"

namespace xrank {

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutVarint32(std::string* out, uint32_t v) {
  PutVarint64(out, static_cast<uint64_t>(v));
}

int VarintLength64(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

int VarintLength32(uint32_t v) {
  return VarintLength64(static_cast<uint64_t>(v));
}

Result<uint64_t> GetVarint64(std::string_view data, size_t* offset) {
  uint64_t value = 0;
  int shift = 0;
  size_t pos = *offset;
  while (pos < data.size()) {
    uint8_t byte = static_cast<uint8_t>(data[pos]);
    ++pos;
    if (shift >= 63 && byte > 1) {
      return Status::Corruption("varint64 overflow");
    }
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *offset = pos;
      return value;
    }
    shift += 7;
    if (shift > 63) return Status::Corruption("varint64 too long");
  }
  return Status::Corruption("truncated varint64");
}

Result<uint32_t> GetVarint32(std::string_view data, size_t* offset) {
  size_t pos = *offset;
  XRANK_ASSIGN_OR_RETURN(uint64_t v, GetVarint64(data, &pos));
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *offset = pos;
  return static_cast<uint32_t>(v);
}

}  // namespace xrank
