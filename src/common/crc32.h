#ifndef XRANK_COMMON_CRC32_H_
#define XRANK_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xrank {

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum used by every on-disk page header and by the index MANIFEST.
// Uses the SSE4.2 / ARMv8 CRC instructions when the target supports them
// and a slicing-by-8 table otherwise; both produce identical values.
//
// `seed` chains incremental computation: Crc32c(b, Crc32c(a)) equals
// Crc32c(a+b). The seed is the *finalized* CRC of the preceding bytes (the
// pre/post inversion is handled internally), so 0 is the correct seed for
// the first chunk.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

// True when this build dispatches to a hardware CRC instruction (exposed so
// tests can assert the two paths agree on machines that have both).
bool Crc32cHardwareAccelerated();

}  // namespace xrank

#endif  // XRANK_COMMON_CRC32_H_
