#ifndef XRANK_COMMON_RANDOM_H_
#define XRANK_COMMON_RANDOM_H_

#include <cstdint>

namespace xrank {

// Deterministic, seedable PRNG (splitmix64 core). Every generator in the
// repository takes an explicit seed so datasets, workloads and experiments
// are exactly reproducible across runs and machines.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  // Uniform over [0, 2^64).
  uint64_t Next64();

  // Uniform over [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform over [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  // Uniform real in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Fork an independent stream; forks with different tags are decorrelated.
  Random Fork(uint64_t tag);

 private:
  uint64_t state_;
};

}  // namespace xrank

#endif  // XRANK_COMMON_RANDOM_H_
