#ifndef XRANK_COMMON_BACKOFF_H_
#define XRANK_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/status.h"

namespace xrank {

// Bounded exponential backoff for transient I/O failures. The disk
// PageFile wraps each syscall in RetryWithBackoff so short-lived faults
// (EINTR, injected transients from the failpoint registry, a briefly
// overloaded device) are absorbed instead of failing the whole build or
// query; persistent faults still surface after `max_attempts` tries, so
// the worst-case added latency is bounded and small.
struct BackoffPolicy {
  int max_attempts = 4;  // total attempts, including the first
  std::chrono::microseconds initial_delay{100};
  double multiplier = 4.0;
  std::chrono::microseconds max_delay{5000};
};

// Calls `op` (returning Status) up to `policy.max_attempts` times, sleeping
// between attempts, while `retryable(status)` holds. Returns the first
// success or the last failure.
template <typename Op, typename RetryablePred>
Status RetryWithBackoff(const BackoffPolicy& policy, const Op& op,
                        const RetryablePred& retryable) {
  std::chrono::microseconds delay = policy.initial_delay;
  Status status;
  for (int attempt = 0; attempt < std::max(policy.max_attempts, 1);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(delay);
      delay = std::min(
          policy.max_delay,
          std::chrono::microseconds(static_cast<int64_t>(
              static_cast<double>(delay.count()) * policy.multiplier)));
    }
    status = op();
    if (status.ok() || !retryable(status)) return status;
  }
  return status;
}

// Default predicate: only plain I/O errors are worth retrying — corruption
// and out-of-range reads are deterministic and fail identically every time.
inline bool IsTransientIoError(const Status& status) {
  return status.code() == StatusCode::kIOError;
}

template <typename Op>
Status RetryWithBackoff(const BackoffPolicy& policy, const Op& op) {
  return RetryWithBackoff(policy, op, IsTransientIoError);
}

}  // namespace xrank

#endif  // XRANK_COMMON_BACKOFF_H_
