#ifndef XRANK_COMMON_BACKOFF_H_
#define XRANK_COMMON_BACKOFF_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/status.h"

namespace xrank {

// Bounded exponential backoff for transient I/O failures. The disk
// PageFile wraps each syscall in RetryWithBackoff so short-lived faults
// (EINTR, injected transients from the failpoint registry, a briefly
// overloaded device) are absorbed instead of failing the whole build or
// query; persistent faults still surface after `max_attempts` tries, so
// the worst-case added latency is bounded and small.
struct BackoffPolicy {
  int max_attempts = 4;  // total attempts, including the first
  std::chrono::microseconds initial_delay{100};
  double multiplier = 4.0;
  std::chrono::microseconds max_delay{5000};
  // Decorrelated jitter (the AWS architecture-blog variant): each delay is
  // drawn uniformly from [initial_delay, min(max_delay, 3 * previous)].
  // Without it, N writers that hit the same transient fault at the same
  // instant retry in lockstep and collide again on every attempt; jitter
  // spreads the herd. Disable only for tests that assert exact delays.
  bool decorrelated_jitter = true;
  // 0 seeds each retry loop from a process-wide counter (every loop gets an
  // independent stream); non-zero fixes the stream for reproducible tests.
  uint64_t jitter_seed = 0;
};

// The delay schedule of one retry loop, exposed separately so the bounds
// are unit-testable without sleeping. Every delay returned is within
// [policy.initial_delay, policy.max_delay] whether or not jitter is on.
class BackoffDelays {
 public:
  explicit BackoffDelays(const BackoffPolicy& policy)
      : policy_(policy), delay_(policy.initial_delay) {
    uint64_t seed = policy.jitter_seed;
    if (seed == 0) {
      static std::atomic<uint64_t> counter{0x9E3779B97F4A7C15ull};
      seed = counter.fetch_add(0xBF58476D1CE4E5B9ull,
                               std::memory_order_relaxed);
    }
    state_ = seed;
  }

  // Delay to sleep before the next attempt; advances the schedule.
  std::chrono::microseconds Next() {
    std::chrono::microseconds current = Clamp(delay_);
    if (policy_.decorrelated_jitter) {
      // next ~ U[initial, min(max, 3 * current)]
      int64_t lo = policy_.initial_delay.count();
      int64_t hi = std::min<int64_t>(policy_.max_delay.count(),
                                     3 * std::max<int64_t>(current.count(), 1));
      if (hi < lo) hi = lo;
      current = Clamp(std::chrono::microseconds(
          lo + static_cast<int64_t>(NextRandom() %
                                    static_cast<uint64_t>(hi - lo + 1))));
      delay_ = current;
    } else {
      delay_ = Clamp(std::chrono::microseconds(static_cast<int64_t>(
          static_cast<double>(current.count()) * policy_.multiplier)));
    }
    return current;
  }

 private:
  std::chrono::microseconds Clamp(std::chrono::microseconds d) const {
    return std::min(policy_.max_delay, std::max(policy_.initial_delay, d));
  }

  uint64_t NextRandom() {
    // splitmix64: one multiply-xor-shift chain per draw, no allocation.
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  BackoffPolicy policy_;
  std::chrono::microseconds delay_;
  uint64_t state_ = 0;
};

// Calls `op` (returning Status) up to `policy.max_attempts` times, sleeping
// between attempts, while `retryable(status)` holds. Returns the first
// success or the last failure.
template <typename Op, typename RetryablePred>
Status RetryWithBackoff(const BackoffPolicy& policy, const Op& op,
                        const RetryablePred& retryable) {
  BackoffDelays delays(policy);
  Status status;
  for (int attempt = 0; attempt < std::max(policy.max_attempts, 1);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(delays.Next());
    }
    status = op();
    if (status.ok() || !retryable(status)) return status;
  }
  return status;
}

// Default predicate: only plain I/O errors are worth retrying — corruption
// and out-of-range reads are deterministic and fail identically every time.
inline bool IsTransientIoError(const Status& status) {
  return status.code() == StatusCode::kIOError;
}

template <typename Op>
Status RetryWithBackoff(const BackoffPolicy& policy, const Op& op) {
  return RetryWithBackoff(policy, op, IsTransientIoError);
}

}  // namespace xrank

#endif  // XRANK_COMMON_BACKOFF_H_
