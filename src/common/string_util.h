#ifndef XRANK_COMMON_STRING_UTIL_H_
#define XRANK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xrank {

// ASCII lower-casing (the analyzer and data generators only emit ASCII).
std::string AsciiToLower(std::string_view s);

// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitString(std::string_view s,
                                          std::string_view delims);

// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// true if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// "1.5 MB", "312 KB", "97 B" — used by the Table 1 space report.
std::string BytesToHuman(uint64_t bytes);

// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace xrank

#endif  // XRANK_COMMON_STRING_UTIL_H_
