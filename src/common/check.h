#ifndef XRANK_COMMON_CHECK_H_
#define XRANK_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking. XRANK_CHECK is always on; XRANK_DCHECK compiles away in
// NDEBUG builds. These guard programmer errors (broken invariants), not
// recoverable conditions — recoverable failures use Status.

#define XRANK_CHECK(cond, ...)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "XRANK_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                      \
      std::fprintf(stderr, "  " __VA_ARGS__);                             \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define XRANK_DCHECK(cond, ...) \
  do {                          \
  } while (false)
#else
#define XRANK_DCHECK(cond, ...) XRANK_CHECK(cond, __VA_ARGS__)
#endif

#endif  // XRANK_COMMON_CHECK_H_
