#ifndef XRANK_COMMON_FAILPOINT_H_
#define XRANK_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace xrank::fail {

// What an armed failpoint injects at the instrumented call site. The site
// decides how to realize the action (return an error Status, tear a write,
// flip a bit); the registry only decides *whether* this hit triggers.
enum class Action {
  kError,     // the operation reports a failure without side effects
  kTornWrite, // a write persists only a prefix of the payload
  kBitFlip,   // the payload is silently corrupted by one flipped bit
  kCrash,     // the process dies on the spot (as if SIGKILLed) — the
              // crash-recovery harness arms this at commit-protocol
              // windows and asserts that reopen finds a consistent state
};

// Trigger schedule of one failpoint. Scripted control comes from
// `skip` (ignore the first N hits) and `max_triggers` (then stop firing —
// this is how tests model transient faults that a retry policy must
// absorb); probabilistic control from `probability` with a seeded
// per-point RNG, so sweeps are reproducible.
struct FailPointSpec {
  Action action = Action::kError;
  uint64_t skip = 0;           // ignore this many hits first
  int64_t max_triggers = -1;   // fire at most this often; -1 = unlimited
  double probability = 1.0;    // per-hit trigger probability after `skip`
  uint64_t seed = 0x5EEDF417;  // RNG stream for `probability` and kBitFlip
};

// Returned to the call site when a failpoint fires.
struct FailPointHit {
  Action action;
  uint64_t random;  // per-trigger random value (bit/byte selection)
};

// Process-wide failpoint registry (RocksDB SyncPoint / kernel failpoint
// idiom). Call sites are strings like "page_file.read"; tests arm them
// with a spec and production code pays one relaxed atomic load per site
// when nothing is armed.
//
// Thread safety: all methods may be called concurrently.
class FailPoints {
 public:
  static FailPoints& Instance();

  // Arms (or re-arms, resetting hit counts) the named point.
  void Arm(std::string_view name, const FailPointSpec& spec);
  // Disarms one point / every point. Disarming clears counters.
  void Disarm(std::string_view name);
  void DisarmAll();

  // Evaluated by instrumented code: nullopt when the point is unarmed or
  // its schedule does not fire on this hit.
  std::optional<FailPointHit> Evaluate(std::string_view name);

  // Observability for tests: how often the named point was hit/fired.
  uint64_t hits(std::string_view name) const;
  uint64_t triggers(std::string_view name) const;

 private:
  FailPoints() = default;
  struct Impl;
  Impl* impl() const;
  // Fast path: number of armed points; 0 means Evaluate returns instantly.
  std::atomic<uint64_t> armed_{0};
};

// Realizes a kCrash-scheduled hit: the process exits immediately with
// status 137 (the SIGKILL convention) — no atexit handlers, no stream
// flushes, no destructors, exactly the state a power cut leaves behind.
// Call sites that participate in a commit protocol evaluate their failpoint
// and pass the hit through here before mapping other actions onto errors.
inline void DieIfCrashRequested(const std::optional<FailPointHit>& hit) {
  if (hit.has_value() && hit->action == Action::kCrash) std::_Exit(137);
}

// RAII arming for tests: disarms (and clears counters) on scope exit.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string name, const FailPointSpec& spec)
      : name_(std::move(name)) {
    FailPoints::Instance().Arm(name_, spec);
  }
  ~ScopedFailPoint() { FailPoints::Instance().Disarm(name_); }
  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

  uint64_t triggers() const { return FailPoints::Instance().triggers(name_); }
  uint64_t hits() const { return FailPoints::Instance().hits(name_); }

 private:
  std::string name_;
};

}  // namespace xrank::fail

#endif  // XRANK_COMMON_FAILPOINT_H_
