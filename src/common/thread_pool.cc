#include "common/thread_pool.h"

#include <algorithm>

namespace xrank {

namespace {

size_t ResolveThreadCount(int num_threads) {
  if (num_threads > 0) return static_cast<size_t>(num_threads);
  size_t hardware = std::thread::hardware_concurrency();
  return std::max<size_t>(1, hardware);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  size_t count = ResolveThreadCount(num_threads);
  workers_.reserve(count - 1);
  for (size_t i = 0; i + 1 < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::NumChunks(size_t begin, size_t end, size_t grain) {
  if (end <= begin) return 0;
  size_t n = end - begin;
  if (grain == 0) grain = n;  // resolved against the pool in ParallelFor
  return (n + grain - 1) / grain;
}

void ThreadPool::RunChunks(
    size_t worker_index, size_t begin, size_t end, size_t grain,
    size_t chunk_count, const std::function<void(size_t, size_t, size_t)>& fn) {
  size_t stride = thread_count();
  for (size_t c = worker_index; c < chunk_count; c += stride) {
    size_t chunk_begin = begin + c * grain;
    size_t chunk_end = std::min(end, chunk_begin + grain);
    fn(chunk_begin, chunk_end, c);
  }
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (end <= begin) return;
  size_t n = end - begin;
  if (grain == 0) grain = (n + thread_count() - 1) / thread_count();
  size_t chunk_count = (n + grain - 1) / grain;

  // Inline fast path: no workers to wake, or a single chunk (worker 0 —
  // the caller's stride starts at chunk 0 either way).
  if (workers_.empty() || chunk_count == 1) {
    RunChunks(0, begin, end, grain, chunk_count, fn);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    job_chunk_count_ = chunk_count;
    pending_.store(workers_.size(), std::memory_order_relaxed);
    ++job_epoch_;
  }
  work_cv_.notify_all();

  // The caller is the last worker.
  RunChunks(workers_.size(), begin, end, grain, chunk_count, fn);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock,
                [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t, size_t, size_t)>* fn;
    size_t begin, end, grain, chunk_count;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = job_epoch_;
      fn = job_fn_;
      begin = job_begin_;
      end = job_end_;
      grain = job_grain_;
      chunk_count = job_chunk_count_;
    }
    RunChunks(worker_index, begin, end, grain, chunk_count, *fn);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

}  // namespace xrank
