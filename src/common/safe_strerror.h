#ifndef XRANK_COMMON_SAFE_STRERROR_H_
#define XRANK_COMMON_SAFE_STRERROR_H_

#include <string>

namespace xrank {

// Thread-safe strerror. The classic strerror(errno) returns a pointer to
// internal static storage that another thread's concurrent failure can
// rewrite mid-read — under concurrent I/O errors (the exact situation in
// which error strings are being built) the reported message can interleave
// two unrelated errors. This wraps strerror_r, which formats into a
// caller-owned buffer, and degrades to "error <n>" when even that fails.
std::string SafeStrError(int errnum);

}  // namespace xrank

#endif  // XRANK_COMMON_SAFE_STRERROR_H_
