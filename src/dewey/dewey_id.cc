#include "dewey/dewey_id.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "common/string_util.h"

namespace xrank::dewey {

Result<DeweyId> DeweyId::FromString(std::string_view text) {
  if (text.empty()) return DeweyId();
  std::vector<uint32_t> components;
  for (std::string_view piece : SplitString(text, ".")) {
    uint64_t value = 0;
    if (piece.empty() || piece.size() > 10) {
      return Status::InvalidArgument("bad Dewey component: '" +
                                     std::string(text) + "'");
    }
    for (char c : piece) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad Dewey component: '" +
                                       std::string(text) + "'");
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    if (value > UINT32_MAX) {
      return Status::InvalidArgument("Dewey component overflow in '" +
                                     std::string(text) + "'");
    }
    components.push_back(static_cast<uint32_t>(value));
  }
  return DeweyId(std::move(components));
}

uint32_t DeweyId::document_id() const {
  XRANK_DCHECK(!empty(), "document_id() of empty DeweyId");
  return components_[0];
}

DeweyId DeweyId::Prefix(size_t len) const {
  XRANK_DCHECK(len <= depth(), "Prefix length out of range");
  return DeweyId(
      std::vector<uint32_t>(components_.begin(), components_.begin() + len));
}

DeweyId DeweyId::Parent() const {
  XRANK_DCHECK(!empty(), "Parent() of empty DeweyId");
  return Prefix(depth() - 1);
}

DeweyId DeweyId::Child(uint32_t position) const {
  std::vector<uint32_t> components = components_;
  components.push_back(position);
  return DeweyId(std::move(components));
}

bool DeweyId::IsPrefixOf(const DeweyId& other) const {
  if (depth() > other.depth()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

size_t DeweyId::CommonPrefixLength(const DeweyId& other) const {
  size_t limit = std::min(depth(), other.depth());
  size_t i = 0;
  while (i < limit && components_[i] == other.components_[i]) ++i;
  return i;
}

std::strong_ordering DeweyId::operator<=>(const DeweyId& other) const {
  size_t limit = std::min(depth(), other.depth());
  for (size_t i = 0; i < limit; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] <=> other.components_[i];
    }
  }
  return depth() <=> other.depth();
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

size_t DeweyId::Hash() const {
  // FNV-1a over the component words.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (uint32_t c : components_) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return static_cast<size_t>(h);
}

std::ostream& operator<<(std::ostream& os, const DeweyId& id) {
  return os << id.ToString();
}

}  // namespace xrank::dewey
