#include "dewey/codec.h"

#include "common/varint.h"

namespace xrank::dewey {

void EncodeDeweyId(const DeweyId& id, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(id.depth()));
  for (uint32_t c : id.components()) PutVarint32(out, c);
}

size_t EncodedDeweyIdLength(const DeweyId& id) {
  size_t len = static_cast<size_t>(
      VarintLength32(static_cast<uint32_t>(id.depth())));
  for (uint32_t c : id.components()) {
    len += static_cast<size_t>(VarintLength32(c));
  }
  return len;
}

Result<DeweyId> DecodeDeweyId(std::string_view data, size_t* offset) {
  size_t pos = *offset;
  XRANK_ASSIGN_OR_RETURN(uint32_t depth, GetVarint32(data, &pos));
  if (depth > 1u << 20) return Status::Corruption("absurd Dewey depth");
  std::vector<uint32_t> components;
  components.reserve(depth);
  for (uint32_t i = 0; i < depth; ++i) {
    XRANK_ASSIGN_OR_RETURN(uint32_t c, GetVarint32(data, &pos));
    components.push_back(c);
  }
  *offset = pos;
  return DeweyId(std::move(components));
}

void EncodeDeweyIdDelta(const DeweyId& previous, const DeweyId& id,
                        std::string* out) {
  size_t lcp = previous.CommonPrefixLength(id);
  PutVarint32(out, static_cast<uint32_t>(lcp));
  PutVarint32(out, static_cast<uint32_t>(id.depth() - lcp));
  for (size_t i = lcp; i < id.depth(); ++i) {
    PutVarint32(out, id.component(i));
  }
}

size_t EncodedDeweyIdDeltaLength(const DeweyId& previous, const DeweyId& id) {
  size_t lcp = previous.CommonPrefixLength(id);
  size_t len = static_cast<size_t>(VarintLength32(static_cast<uint32_t>(lcp)));
  len += static_cast<size_t>(
      VarintLength32(static_cast<uint32_t>(id.depth() - lcp)));
  for (size_t i = lcp; i < id.depth(); ++i) {
    len += static_cast<size_t>(VarintLength32(id.component(i)));
  }
  return len;
}

Result<DeweyId> DecodeDeweyIdDelta(const DeweyId& previous,
                                   std::string_view data, size_t* offset) {
  size_t pos = *offset;
  XRANK_ASSIGN_OR_RETURN(uint32_t lcp, GetVarint32(data, &pos));
  XRANK_ASSIGN_OR_RETURN(uint32_t suffix_len, GetVarint32(data, &pos));
  if (lcp > previous.depth()) {
    return Status::Corruption("Dewey delta lcp exceeds previous depth");
  }
  std::vector<uint32_t> components(previous.components().begin(),
                                   previous.components().begin() + lcp);
  components.reserve(lcp + suffix_len);
  for (uint32_t i = 0; i < suffix_len; ++i) {
    XRANK_ASSIGN_OR_RETURN(uint32_t c, GetVarint32(data, &pos));
    components.push_back(c);
  }
  *offset = pos;
  return DeweyId(std::move(components));
}

}  // namespace xrank::dewey
