#ifndef XRANK_DEWEY_CODEC_H_
#define XRANK_DEWEY_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "dewey/dewey_id.h"

namespace xrank::dewey {

// On-disk Dewey ID codecs.
//
// Raw form: varint(depth) ++ varint(component)... — each component is the
// *relative* sibling position, so most components fit in one byte (the paper
// relies on this in Section 4.2.1).
//
// Prefix-delta form (used inside Dewey-ordered inverted lists, where adjacent
// IDs share long prefixes): varint(lcp-with-previous) ++ varint(#suffix) ++
// varint(suffix component)....

// Appends the raw encoding of `id` to *out.
void EncodeDeweyId(const DeweyId& id, std::string* out);

// Number of bytes EncodeDeweyId would append.
size_t EncodedDeweyIdLength(const DeweyId& id);

// Decodes a raw-encoded ID starting at *offset, advancing *offset.
Result<DeweyId> DecodeDeweyId(std::string_view data, size_t* offset);

// Appends the prefix-delta encoding of `id` relative to `previous` to *out.
void EncodeDeweyIdDelta(const DeweyId& previous, const DeweyId& id,
                        std::string* out);

// Number of bytes EncodeDeweyIdDelta would append.
size_t EncodedDeweyIdDeltaLength(const DeweyId& previous, const DeweyId& id);

// Decodes a prefix-delta-encoded ID given the previously decoded ID.
Result<DeweyId> DecodeDeweyIdDelta(const DeweyId& previous,
                                   std::string_view data, size_t* offset);

}  // namespace xrank::dewey

#endif  // XRANK_DEWEY_CODEC_H_
