#ifndef XRANK_DEWEY_DEWEY_ID_H_
#define XRANK_DEWEY_DEWEY_ID_H_

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xrank::dewey {

// A Dewey ID identifies an XML element by the path of sibling positions from
// the document root (paper Section 4.2, Figure 3). By convention the first
// component is the document id, so IDs are unique across a collection and
// document-granularity deletion can filter on the first component (paper
// Section 4.5).
//
// Key property: the ID of an ancestor is a prefix of the ID of a descendant,
// so ancestor/descendant relationships are implicit and the deepest common
// ancestor of two elements is their longest common prefix.
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<uint32_t> components)
      : components_(std::move(components)) {}
  DeweyId(std::initializer_list<uint32_t> components)
      : components_(components) {}

  // Parses "5.0.3.0" style strings (as printed by ToString).
  static Result<DeweyId> FromString(std::string_view text);

  const std::vector<uint32_t>& components() const { return components_; }

  // Replaces the components in place, reusing the vector's capacity (hot
  // posting-decode paths rebuild IDs into recycled Posting buffers).
  void AssignComponents(const uint32_t* data, size_t count) {
    components_.assign(data, data + count);
  }

  // Replaces the components with `prefix` followed by `suffix`, in one
  // resize — the prefix-delta decode paths stitch a shared ancestor prefix
  // to a fresh suffix without an intermediate buffer. `prefix` and `suffix`
  // must not alias this ID's own storage.
  void AssignParts(const uint32_t* prefix, size_t prefix_len,
                   const uint32_t* suffix, size_t suffix_len) {
    components_.resize(prefix_len + suffix_len);
    uint32_t* dst = components_.data();
    for (size_t i = 0; i < prefix_len; ++i) dst[i] = prefix[i];
    dst += prefix_len;
    for (size_t i = 0; i < suffix_len; ++i) dst[i] = suffix[i];
  }
  size_t depth() const { return components_.size(); }
  bool empty() const { return components_.empty(); }
  uint32_t component(size_t i) const { return components_[i]; }

  // Document id = first component. Requires !empty().
  uint32_t document_id() const;

  // The ID truncated to its first `len` components. len <= depth().
  DeweyId Prefix(size_t len) const;

  // Parent element's ID. Requires depth() >= 1; the parent of a root ("d")
  // is the empty ID.
  DeweyId Parent() const;

  // This ID extended with one more component.
  DeweyId Child(uint32_t position) const;

  // True if *this is a (not necessarily proper) prefix of `other`, i.e.
  // *this identifies `other` or one of its ancestors.
  bool IsPrefixOf(const DeweyId& other) const;

  // Number of leading components shared with `other` — the depth of the
  // deepest common ancestor.
  size_t CommonPrefixLength(const DeweyId& other) const;

  // Lexicographic comparison; this is document order within a document and
  // document-id order across documents.
  std::strong_ordering operator<=>(const DeweyId& other) const;
  bool operator==(const DeweyId& other) const = default;

  // "5.0.3.0"; the empty ID prints as "".
  std::string ToString() const;

  // For hash containers.
  size_t Hash() const;

 private:
  std::vector<uint32_t> components_;
};

struct DeweyIdHash {
  size_t operator()(const DeweyId& id) const { return id.Hash(); }
};

std::ostream& operator<<(std::ostream& os, const DeweyId& id);

}  // namespace xrank::dewey

#endif  // XRANK_DEWEY_DEWEY_ID_H_
