#ifndef XRANK_RANK_HITS_H_
#define XRANK_RANK_HITS_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace xrank::rank {

// Element-granularity HITS (Kleinberg) over the hyperlinked XML graph —
// the paper's footnote 1 notes that its containment-edge refinements "also
// work for query-dependent algorithms like HITS": authority flows forward
// along hyperlinks AND bidirectionally along containment (an important
// paper lends authority to its sections, and a workshop aggregates the
// authority of its papers), while hub scores flow along reverse hyperlinks
// as in classic HITS.
struct HitsOptions {
  // Relative weight of containment edges vs hyperlink edges when mixing
  // authority flow (mirrors d2/d1 discrimination in the ElemRank formula).
  double containment_weight = 0.4;
  double convergence_threshold = 1e-6;  // L∞ on the authority vector
  int max_iterations = 200;
};

struct HitsResult {
  // Per graph node; value nodes score 0. Each vector is L2-normalized.
  std::vector<double> authorities;
  std::vector<double> hubs;
  int iterations = 0;
  bool converged = false;
};

Result<HitsResult> ComputeHits(const graph::XmlGraph& graph,
                               const HitsOptions& options);

}  // namespace xrank::rank

#endif  // XRANK_RANK_HITS_H_
