#include "rank/hits.h"

#include <algorithm>
#include <cmath>

namespace xrank::rank {

namespace {

using graph::kInvalidNode;
using graph::NodeId;
using graph::XmlGraph;

void Normalize(std::vector<double>* values) {
  double sum_squares = 0.0;
  for (double v : *values) sum_squares += v * v;
  if (sum_squares <= 0.0) return;
  double norm = std::sqrt(sum_squares);
  for (double& v : *values) v /= norm;
}

}  // namespace

Result<HitsResult> ComputeHits(const XmlGraph& graph,
                               const HitsOptions& options) {
  size_t n = graph.node_count();
  if (graph.element_count() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  if (options.containment_weight < 0.0 || options.containment_weight > 1.0) {
    return Status::InvalidArgument("containment_weight must be in [0,1]");
  }
  double cw = options.containment_weight;
  double hw = 1.0 - cw;

  // Reverse hyperlink adjacency (who points at me) for the authority step.
  std::vector<std::vector<NodeId>> in_links(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.hyperlinks(u)) in_links[v].push_back(u);
  }

  HitsResult result;
  result.authorities.assign(n, 0.0);
  result.hubs.assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    if (graph.is_element(u)) {
      result.authorities[u] = 1.0;
      result.hubs[u] = 1.0;
    }
  }
  Normalize(&result.authorities);
  Normalize(&result.hubs);

  std::vector<double> next_authorities(n, 0.0);
  std::vector<double> next_hubs(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Authority: hubs that link here (classic), plus bidirectional
    // containment coupling (parent <-> children).
    for (NodeId u = 0; u < n; ++u) {
      if (!graph.is_element(u)) continue;
      double from_links = 0.0;
      for (NodeId v : in_links[u]) from_links += result.hubs[v];
      double from_containment = 0.0;
      const auto& data = graph.node(u);
      if (data.parent != kInvalidNode) {
        from_containment += result.authorities[data.parent];
      }
      for (NodeId child : data.element_children) {
        from_containment += result.authorities[child];
      }
      next_authorities[u] = hw * from_links + cw * from_containment;
    }
    // Hub: authorities I point at (classic HITS direction only).
    for (NodeId u = 0; u < n; ++u) {
      if (!graph.is_element(u)) continue;
      double total = 0.0;
      for (NodeId v : graph.hyperlinks(u)) total += result.authorities[v];
      next_hubs[u] = total;
    }
    Normalize(&next_authorities);
    Normalize(&next_hubs);

    double delta = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      delta = std::max(delta,
                       std::fabs(next_authorities[u] - result.authorities[u]));
    }
    result.authorities.swap(next_authorities);
    result.hubs.swap(next_hubs);
    result.iterations = iter + 1;
    if (delta < options.convergence_threshold) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace xrank::rank
