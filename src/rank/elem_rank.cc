#include "rank/elem_rank.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xrank::rank {

namespace {

using graph::kInvalidNode;
using graph::NodeId;
using graph::XmlGraph;

// Precomputed per-element structural facts shared by all formula variants.
struct ElementFacts {
  std::vector<NodeId> elements;        // all element node ids
  std::vector<uint32_t> out_links;     // N_h(u)
  std::vector<uint32_t> child_count;   // N_c(u), element children only
  std::vector<uint8_t> has_parent;     // document roots have none
  std::vector<double> jump_weight;     // random-jump distribution over nodes
};

ElementFacts CollectFacts(const XmlGraph& graph, Formula formula) {
  ElementFacts facts;
  size_t n = graph.node_count();
  facts.out_links.assign(n, 0);
  facts.child_count.assign(n, 0);
  facts.has_parent.assign(n, 0);
  facts.jump_weight.assign(n, 0.0);
  double nd = static_cast<double>(graph.document_count());
  for (NodeId u = 0; u < n; ++u) {
    if (!graph.is_element(u)) continue;
    facts.elements.push_back(u);
    const auto& data = graph.node(u);
    facts.out_links[u] = static_cast<uint32_t>(graph.hyperlinks(u).size());
    facts.child_count[u] =
        static_cast<uint32_t>(data.element_children.size());
    facts.has_parent[u] = data.parent != kInvalidNode ? 1 : 0;
    if (formula == Formula::kFinal) {
      // (1 - d1 - d2 - d3) mass is spread as 1/(N_d · N_de(v)): uniform over
      // documents, then uniform within the document (paper final formula).
      double nde =
          static_cast<double>(graph.documents()[data.document].element_count);
      facts.jump_weight[u] = 1.0 / (nd * nde);
    } else {
      facts.jump_weight[u] = 1.0;  // normalized below
    }
  }
  if (formula != Formula::kFinal && !facts.elements.empty()) {
    double uniform = 1.0 / static_cast<double>(facts.elements.size());
    for (NodeId u : facts.elements) facts.jump_weight[u] = uniform;
  }
  return facts;
}

// One push-style iteration. `navigation` is the total probability of
// following edges (d for the early variants, d1+d2+d3 for the final one);
// mass that cannot be pushed anywhere (dangling) is redistributed through
// the jump distribution, preserving Σ ranks = 1.
void Iterate(const XmlGraph& graph, const ElemRankOptions& options,
             const ElementFacts& facts, const std::vector<double>& src,
             std::vector<double>* dst) {
  double navigation;
  switch (options.formula) {
    case Formula::kPageRankAdaptation:
    case Formula::kBidirectional:
      navigation = options.d;
      break;
    case Formula::kDiscriminated:
      navigation = options.d1 + options.d2;
      break;
    case Formula::kFinal:
      navigation = options.d1 + options.d2 + options.d3;
      break;
  }
  double base = 1.0 - navigation;

  std::fill(dst->begin(), dst->end(), 0.0);
  double dangling = 0.0;

  for (NodeId u : facts.elements) {
    double rank = src[u];
    if (rank == 0.0) continue;
    const auto& data = graph.node(u);
    const auto& links = graph.hyperlinks(u);
    uint32_t nh = facts.out_links[u];
    uint32_t nc = facts.child_count[u];
    bool parent = facts.has_parent[u] != 0;

    switch (options.formula) {
      case Formula::kPageRankAdaptation: {
        // All edges directed forward; out-degree = N_h + N_c.
        uint32_t out = nh + nc;
        if (out == 0) {
          dangling += navigation * rank;
          break;
        }
        double share = navigation * rank / out;
        for (NodeId v : links) (*dst)[v] += share;
        for (NodeId v : data.element_children) (*dst)[v] += share;
        break;
      }
      case Formula::kBidirectional: {
        // E = HE ∪ CE ∪ CE⁻¹, uniform weight 1/(N_h + N_c + 1). The paper's
        // formula uses the +1 denominator unconditionally; when a root has
        // no parent the reverse-containment share becomes dangling mass.
        double share = navigation * rank / (nh + nc + 1);
        for (NodeId v : links) (*dst)[v] += share;
        for (NodeId v : data.element_children) (*dst)[v] += share;
        if (parent) {
          (*dst)[data.parent] += share;
        } else {
          dangling += share;
        }
        if (nh == 0 && nc == 0 && !parent) {
          // Isolated single element: everything dangles.
          dangling += navigation * rank - share;
        }
        break;
      }
      case Formula::kDiscriminated: {
        // d1 over hyperlinks, d2 over containment (forward + reverse,
        // denominator N_c + 1).
        double rank_d1 = options.d1 * rank;
        if (nh > 0) {
          double share = rank_d1 / nh;
          for (NodeId v : links) (*dst)[v] += share;
        } else {
          dangling += rank_d1;
        }
        double share = options.d2 * rank / (nc + 1);
        for (NodeId v : data.element_children) (*dst)[v] += share;
        if (parent) {
          (*dst)[data.parent] += share;
        } else {
          dangling += share;
        }
        break;
      }
      case Formula::kFinal: {
        // Proportional re-split of d1+d2+d3 among available alternatives
        // (paper Section 3.1, last paragraph).
        double available = 0.0;
        if (nh > 0) available += options.d1;
        if (nc > 0) available += options.d2;
        if (parent) available += options.d3;
        if (available == 0.0) {
          dangling += navigation * rank;
          break;
        }
        double scale = navigation / available;
        if (nh > 0) {
          double share = options.d1 * scale * rank / nh;
          for (NodeId v : links) (*dst)[v] += share;
        }
        if (nc > 0) {
          double share = options.d2 * scale * rank / nc;
          for (NodeId v : data.element_children) (*dst)[v] += share;
        }
        if (parent) {
          (*dst)[data.parent] += options.d3 * scale * rank;
        }
        break;
      }
    }
  }

  // Random-jump mass plus redistributed dangling mass.
  double jump_mass = base + dangling;
  for (NodeId u : facts.elements) {
    (*dst)[u] += jump_mass * facts.jump_weight[u];
  }
}

}  // namespace

Result<ElemRankResult> ComputeElemRank(const XmlGraph& graph,
                                       const ElemRankOptions& options) {
  if (graph.element_count() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  double navigation;
  switch (options.formula) {
    case Formula::kPageRankAdaptation:
    case Formula::kBidirectional:
      navigation = options.d;
      break;
    case Formula::kDiscriminated:
      navigation = options.d1 + options.d2;
      break;
    case Formula::kFinal:
      navigation = options.d1 + options.d2 + options.d3;
      break;
  }
  if (navigation <= 0.0 || navigation >= 1.0) {
    return Status::InvalidArgument(
        "navigation probability must be in (0,1); got " +
        std::to_string(navigation));
  }
  if (options.d1 < 0 || options.d2 < 0 || options.d3 < 0) {
    return Status::InvalidArgument("negative navigation probability");
  }

  ElementFacts facts = CollectFacts(graph, options.formula);
  size_t n = graph.node_count();
  std::vector<double> current(n, 0.0);
  std::vector<double> next(n, 0.0);
  double uniform = 1.0 / static_cast<double>(facts.elements.size());
  for (NodeId u : facts.elements) current[u] = uniform;

  ElemRankResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Iterate(graph, options, facts, current, &next);
    double delta = 0.0;
    for (NodeId u : facts.elements) {
      delta = std::max(delta, std::fabs(next[u] - current[u]));
    }
    current.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.convergence_threshold) {
      result.converged = true;
      break;
    }
  }
  result.ranks = std::move(current);
  return result;
}

}  // namespace xrank::rank
