#include "rank/elem_rank.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"

namespace xrank::rank {

namespace {

using graph::kInvalidNode;
using graph::NodeId;
using graph::XmlGraph;

// Precomputed per-element structural facts shared by all formula variants.
struct ElementFacts {
  std::vector<NodeId> elements;        // all element node ids
  std::vector<uint32_t> out_links;     // N_h(u)
  std::vector<uint32_t> child_count;   // N_c(u), element children only
  std::vector<uint8_t> has_parent;     // document roots have none
  std::vector<double> jump_weight;     // random-jump distribution over nodes

  // Pull-style CSR over the constant edge coefficients: for destination v,
  // entries [in_begin[v], in_begin[v+1]) hold (source, weight) pairs, and
  // dst[v] = Σ weight · src[source] + jump_mass · jump_weight[v]. The
  // coefficients are fixed across iterations because they depend only on
  // the graph structure and the navigation probabilities, never on ranks.
  std::vector<uint32_t> in_begin;      // node_count + 1
  std::vector<NodeId> in_src;
  std::vector<double> in_weight;
  // Per-source dangling coefficient: dangling = Σ dangling_coeff[u] · src[u].
  std::vector<double> dangling_coeff;
};

ElementFacts CollectFacts(const XmlGraph& graph, Formula formula) {
  ElementFacts facts;
  size_t n = graph.node_count();
  facts.out_links.assign(n, 0);
  facts.child_count.assign(n, 0);
  facts.has_parent.assign(n, 0);
  facts.jump_weight.assign(n, 0.0);
  double nd = static_cast<double>(graph.document_count());
  for (NodeId u = 0; u < n; ++u) {
    if (!graph.is_element(u)) continue;
    facts.elements.push_back(u);
    const auto& data = graph.node(u);
    facts.out_links[u] = static_cast<uint32_t>(graph.hyperlinks(u).size());
    facts.child_count[u] =
        static_cast<uint32_t>(data.element_children.size());
    facts.has_parent[u] = data.parent != kInvalidNode ? 1 : 0;
    if (formula == Formula::kFinal) {
      // (1 - d1 - d2 - d3) mass is spread as 1/(N_d · N_de(v)): uniform over
      // documents, then uniform within the document (paper final formula).
      double nde =
          static_cast<double>(graph.documents()[data.document].element_count);
      facts.jump_weight[u] = 1.0 / (nd * nde);
    } else {
      facts.jump_weight[u] = 1.0;  // normalized below
    }
  }
  if (formula != Formula::kFinal && !facts.elements.empty()) {
    double uniform = 1.0 / static_cast<double>(facts.elements.size());
    for (NodeId u : facts.elements) facts.jump_weight[u] = uniform;
  }
  return facts;
}

// Flattens the per-node edge shares of the push loop into the pull CSR.
// Edges are staged in the push loop's emission order (hyperlinks, children,
// parent, ascending u) and placed with a stable counting sort, so each
// destination accumulates its sources in the same order the push-style
// iteration adds them.
void BuildPullCsr(const XmlGraph& graph, const ElemRankOptions& options,
                  double navigation, ElementFacts* facts) {
  size_t n = graph.node_count();
  struct Edge {
    NodeId dst;
    NodeId src;
    double weight;
  };
  std::vector<Edge> edges;
  facts->dangling_coeff.assign(n, 0.0);

  for (NodeId u : facts->elements) {
    const auto& data = graph.node(u);
    const auto& links = graph.hyperlinks(u);
    uint32_t nh = facts->out_links[u];
    uint32_t nc = facts->child_count[u];
    bool parent = facts->has_parent[u] != 0;
    double& dangling = facts->dangling_coeff[u];

    switch (options.formula) {
      case Formula::kPageRankAdaptation: {
        uint32_t out = nh + nc;
        if (out == 0) {
          dangling = navigation;
          break;
        }
        double share = navigation / out;
        for (NodeId v : links) edges.push_back({v, u, share});
        for (NodeId v : data.element_children) edges.push_back({v, u, share});
        break;
      }
      case Formula::kBidirectional: {
        double share = navigation / (nh + nc + 1);
        for (NodeId v : links) edges.push_back({v, u, share});
        for (NodeId v : data.element_children) edges.push_back({v, u, share});
        if (parent) {
          edges.push_back({data.parent, u, share});
        } else {
          dangling += share;
        }
        if (nh == 0 && nc == 0 && !parent) {
          dangling += navigation - share;
        }
        break;
      }
      case Formula::kDiscriminated: {
        if (nh > 0) {
          double share = options.d1 / nh;
          for (NodeId v : links) edges.push_back({v, u, share});
        } else {
          dangling += options.d1;
        }
        double share = options.d2 / (nc + 1);
        for (NodeId v : data.element_children) edges.push_back({v, u, share});
        if (parent) {
          edges.push_back({data.parent, u, share});
        } else {
          dangling += share;
        }
        break;
      }
      case Formula::kFinal: {
        double available = 0.0;
        if (nh > 0) available += options.d1;
        if (nc > 0) available += options.d2;
        if (parent) available += options.d3;
        if (available == 0.0) {
          dangling = navigation;
          break;
        }
        double scale = navigation / available;
        if (nh > 0) {
          double share = options.d1 * scale / nh;
          for (NodeId v : links) edges.push_back({v, u, share});
        }
        if (nc > 0) {
          double share = options.d2 * scale / nc;
          for (NodeId v : data.element_children) edges.push_back({v, u, share});
        }
        if (parent) {
          edges.push_back({data.parent, u, options.d3 * scale});
        }
        break;
      }
    }
  }

  facts->in_begin.assign(n + 1, 0);
  for (const Edge& edge : edges) ++facts->in_begin[edge.dst + 1];
  for (size_t v = 0; v < n; ++v) facts->in_begin[v + 1] += facts->in_begin[v];
  facts->in_src.resize(edges.size());
  facts->in_weight.resize(edges.size());
  std::vector<uint32_t> cursor(facts->in_begin.begin(),
                               facts->in_begin.end() - 1);
  for (const Edge& edge : edges) {
    uint32_t pos = cursor[edge.dst]++;
    facts->in_src[pos] = edge.src;
    facts->in_weight[pos] = edge.weight;
  }
}

// One push-style iteration — the exact sequential reference path
// (num_threads == 1). `navigation` is the total probability of following
// edges (d for the early variants, d1+d2+d3 for the final one); mass that
// cannot be pushed anywhere (dangling) is redistributed through the jump
// distribution, preserving Σ ranks = 1.
void Iterate(const XmlGraph& graph, const ElemRankOptions& options,
             double navigation, const ElementFacts& facts,
             const std::vector<double>& src, std::vector<double>* dst) {
  double base = 1.0 - navigation;

  std::fill(dst->begin(), dst->end(), 0.0);
  double dangling = 0.0;

  for (NodeId u : facts.elements) {
    double rank = src[u];
    if (rank == 0.0) continue;
    const auto& data = graph.node(u);
    const auto& links = graph.hyperlinks(u);
    uint32_t nh = facts.out_links[u];
    uint32_t nc = facts.child_count[u];
    bool parent = facts.has_parent[u] != 0;

    switch (options.formula) {
      case Formula::kPageRankAdaptation: {
        // All edges directed forward; out-degree = N_h + N_c.
        uint32_t out = nh + nc;
        if (out == 0) {
          dangling += navigation * rank;
          break;
        }
        double share = navigation * rank / out;
        for (NodeId v : links) (*dst)[v] += share;
        for (NodeId v : data.element_children) (*dst)[v] += share;
        break;
      }
      case Formula::kBidirectional: {
        // E = HE ∪ CE ∪ CE⁻¹, uniform weight 1/(N_h + N_c + 1). The paper's
        // formula uses the +1 denominator unconditionally; when a root has
        // no parent the reverse-containment share becomes dangling mass.
        double share = navigation * rank / (nh + nc + 1);
        for (NodeId v : links) (*dst)[v] += share;
        for (NodeId v : data.element_children) (*dst)[v] += share;
        if (parent) {
          (*dst)[data.parent] += share;
        } else {
          dangling += share;
        }
        if (nh == 0 && nc == 0 && !parent) {
          // Isolated single element: everything dangles.
          dangling += navigation * rank - share;
        }
        break;
      }
      case Formula::kDiscriminated: {
        // d1 over hyperlinks, d2 over containment (forward + reverse,
        // denominator N_c + 1).
        double rank_d1 = options.d1 * rank;
        if (nh > 0) {
          double share = rank_d1 / nh;
          for (NodeId v : links) (*dst)[v] += share;
        } else {
          dangling += rank_d1;
        }
        double share = options.d2 * rank / (nc + 1);
        for (NodeId v : data.element_children) (*dst)[v] += share;
        if (parent) {
          (*dst)[data.parent] += share;
        } else {
          dangling += share;
        }
        break;
      }
      case Formula::kFinal: {
        // Proportional re-split of d1+d2+d3 among available alternatives
        // (paper Section 3.1, last paragraph).
        double available = 0.0;
        if (nh > 0) available += options.d1;
        if (nc > 0) available += options.d2;
        if (parent) available += options.d3;
        if (available == 0.0) {
          dangling += navigation * rank;
          break;
        }
        double scale = navigation / available;
        if (nh > 0) {
          double share = options.d1 * scale * rank / nh;
          for (NodeId v : links) (*dst)[v] += share;
        }
        if (nc > 0) {
          double share = options.d2 * scale * rank / nc;
          for (NodeId v : data.element_children) (*dst)[v] += share;
        }
        if (parent) {
          (*dst)[data.parent] += options.d3 * scale * rank;
        }
        break;
      }
    }
  }

  // Random-jump mass plus redistributed dangling mass.
  double jump_mass = base + dangling;
  for (NodeId u : facts.elements) {
    (*dst)[u] += jump_mass * facts.jump_weight[u];
  }
}

// Chunk size for the parallel passes. Fixed (independent of the thread
// count) so per-chunk partial reductions combine identically however many
// workers the pool has.
constexpr size_t kPullGrain = 4096;

// One pull-style iteration over the CSR: every destination node is computed
// wholly inside one chunk (no write sharing, no atomics); the dangling and
// L∞-delta reductions go through per-chunk partials combined in chunk
// order. Returns the L∞ delta against `src`.
double IteratePull(ThreadPool* pool, const ElementFacts& facts, double base,
                   const std::vector<double>& src, std::vector<double>* dst) {
  size_t n = src.size();
  size_t chunk_count = ThreadPool::NumChunks(0, n, kPullGrain);

  // Pass 1: dangling mass.
  std::vector<double> dangling_partial(chunk_count, 0.0);
  pool->ParallelFor(0, n, kPullGrain,
                    [&](size_t chunk_begin, size_t chunk_end, size_t chunk) {
                      double sum = 0.0;
                      for (size_t u = chunk_begin; u < chunk_end; ++u) {
                        sum += facts.dangling_coeff[u] * src[u];
                      }
                      dangling_partial[chunk] = sum;
                    });
  double dangling = 0.0;
  for (double partial : dangling_partial) dangling += partial;
  double jump_mass = base + dangling;

  // Pass 2: pull each destination's incoming mass and fold in the jump
  // mass; value nodes have no in-edges and zero jump weight, so they stay
  // at exactly 0.
  std::vector<double> delta_partial(chunk_count, 0.0);
  pool->ParallelFor(
      0, n, kPullGrain,
      [&](size_t chunk_begin, size_t chunk_end, size_t chunk) {
        double delta = 0.0;
        for (size_t v = chunk_begin; v < chunk_end; ++v) {
          double sum = 0.0;
          for (uint32_t k = facts.in_begin[v]; k < facts.in_begin[v + 1];
               ++k) {
            sum += facts.in_weight[k] * src[facts.in_src[k]];
          }
          sum += jump_mass * facts.jump_weight[v];
          (*dst)[v] = sum;
          delta = std::max(delta, std::fabs(sum - src[v]));
        }
        delta_partial[chunk] = delta;
      });
  double delta = 0.0;
  for (double partial : delta_partial) delta = std::max(delta, partial);
  return delta;
}

}  // namespace

Result<ElemRankResult> ComputeElemRank(const XmlGraph& graph,
                                       const ElemRankOptions& options) {
  if (graph.element_count() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  double navigation = 0.0;
  switch (options.formula) {
    case Formula::kPageRankAdaptation:
    case Formula::kBidirectional:
      navigation = options.d;
      break;
    case Formula::kDiscriminated:
      navigation = options.d1 + options.d2;
      break;
    case Formula::kFinal:
      navigation = options.d1 + options.d2 + options.d3;
      break;
  }
  if (navigation <= 0.0 || navigation >= 1.0) {
    return Status::InvalidArgument(
        "navigation probability must be in (0,1); got " +
        std::to_string(navigation));
  }
  if (options.d1 < 0 || options.d2 < 0 || options.d3 < 0) {
    return Status::InvalidArgument("negative navigation probability");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }

  ElementFacts facts = CollectFacts(graph, options.formula);
  bool legacy = options.num_threads == 1;
  std::unique_ptr<ThreadPool> pool;
  if (!legacy) {
    BuildPullCsr(graph, options, navigation, &facts);
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }

  size_t n = graph.node_count();
  std::vector<double> current(n, 0.0);
  std::vector<double> next(n, 0.0);
  double uniform = 1.0 / static_cast<double>(facts.elements.size());
  for (NodeId u : facts.elements) current[u] = uniform;

  ElemRankResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double delta;
    if (legacy) {
      Iterate(graph, options, navigation, facts, current, &next);
      delta = 0.0;
      for (NodeId u : facts.elements) {
        delta = std::max(delta, std::fabs(next[u] - current[u]));
      }
    } else {
      delta = IteratePull(pool.get(), facts, 1.0 - navigation, current, &next);
    }
    current.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.convergence_threshold) {
      result.converged = true;
      break;
    }
  }
  result.ranks = std::move(current);
  return result;
}

}  // namespace xrank::rank
