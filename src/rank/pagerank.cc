#include "rank/pagerank.h"

#include <algorithm>
#include <cmath>

namespace xrank::rank {

Result<PageRankResult> ComputePageRank(
    const std::vector<std::vector<uint32_t>>& adjacency,
    const PageRankOptions& options) {
  size_t n = adjacency.size();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (options.d <= 0.0 || options.d >= 1.0) {
    return Status::InvalidArgument("damping must be in (0,1)");
  }
  for (const auto& targets : adjacency) {
    for (uint32_t v : targets) {
      if (v >= n) return Status::InvalidArgument("edge target out of range");
    }
  }

  std::vector<double> current(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  PageRankResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (size_t u = 0; u < n; ++u) {
      double push = options.d * current[u];
      if (adjacency[u].empty()) {
        dangling += push;
        continue;
      }
      double share = push / static_cast<double>(adjacency[u].size());
      for (uint32_t v : adjacency[u]) next[v] += share;
    }
    double jump = (1.0 - options.d + dangling) / static_cast<double>(n);
    double delta = 0.0;
    for (size_t u = 0; u < n; ++u) {
      next[u] += jump;
      delta = std::max(delta, std::fabs(next[u] - current[u]));
    }
    current.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.convergence_threshold) {
      result.converged = true;
      break;
    }
  }
  result.ranks = std::move(current);
  return result;
}

}  // namespace xrank::rank
