#ifndef XRANK_RANK_ELEM_RANK_H_
#define XRANK_RANK_ELEM_RANK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace xrank::rank {

// The four refinements of Section 3.1, in paper order. Each retains the
// previous behaviour for HTML (2-level) documents while changing how
// containment edges carry rank.
enum class Formula {
  // Straight PageRank adaptation: every edge (HE ∪ CE) is a directed
  // hyperlink; p(v) = (1-d)/N_e + d Σ p(u)/(N_h(u)+N_c(u)).
  kPageRankAdaptation,
  // Adds reverse containment edges: E = HE ∪ CE ∪ CE⁻¹ with uniform
  // out-weight 1/(N_h+N_c+1).
  kBidirectional,
  // Separates hyperlink probability d1 from containment probability d2;
  // containment (forward+reverse) split over N_c+1.
  kDiscriminated,
  // Final ElemRank: d1 hyperlinks / N_h, d2 forward containment / N_c,
  // d3 reverse containment (undivided, aggregating), random-jump mass
  // scaled by 1/(N_d · N_de(v)).
  kFinal,
};

struct ElemRankOptions {
  Formula formula = Formula::kFinal;
  // Paper Section 3.2 settings.
  double d1 = 0.35;
  double d2 = 0.25;
  double d3 = 0.25;
  // Damping for the first two variants (standard PageRank d).
  double d = 0.85;
  // L∞ convergence threshold on the rank vector (paper: 0.00002).
  double convergence_threshold = 0.00002;
  int max_iterations = 500;
  // Worker threads for the power iteration. 0 = hardware concurrency;
  // 1 = the exact legacy push-style loop (the sequential reference path).
  // Any value >= 2 (and 0) runs the pull-style CSR path, whose results are
  // identical for every thread count (chunk boundaries depend only on the
  // grain, and per-chunk partials are combined in chunk order).
  int num_threads = 0;
};

struct ElemRankResult {
  // One entry per graph node; value nodes have rank 0 (paper: e(v) of a
  // value node is 0). Ranks sum to ~1 over all elements.
  std::vector<double> ranks;
  int iterations = 0;
  bool converged = false;
  double final_delta = 0.0;
};

// Runs the power iteration until the L∞ delta drops below the threshold.
// Fails on invalid probability settings (e.g. d1+d2+d3 >= 1) or an empty
// graph.
Result<ElemRankResult> ComputeElemRank(const graph::XmlGraph& graph,
                                       const ElemRankOptions& options);

}  // namespace xrank::rank

#endif  // XRANK_RANK_ELEM_RANK_H_
