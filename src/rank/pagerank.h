#ifndef XRANK_RANK_PAGERANK_H_
#define XRANK_RANK_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace xrank::rank {

// Standalone PageRank over an arbitrary directed graph, used (a) as the
// reference implementation that ElemRank must match on 2-level document
// collections (the paper's design goal of generalizing Google, Section 1)
// and (b) for HTML-only experiments.
struct PageRankOptions {
  double d = 0.85;
  double convergence_threshold = 0.00002;
  int max_iterations = 500;
};

struct PageRankResult {
  std::vector<double> ranks;
  int iterations = 0;
  bool converged = false;
  double final_delta = 0.0;
};

// adjacency[u] lists the out-neighbours of u; node count = adjacency.size().
// Dangling nodes redistribute their mass uniformly.
Result<PageRankResult> ComputePageRank(
    const std::vector<std::vector<uint32_t>>& adjacency,
    const PageRankOptions& options);

}  // namespace xrank::rank

#endif  // XRANK_RANK_PAGERANK_H_
