#include "core/engine.h"

#include <algorithm>
#include <array>
#include <set>
#include <string_view>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "core/result_cache.h"
#include "index/dil_index.h"
#include "index/manifest.h"
#include "index/naive_index.h"
#include "index/rdil_index.h"
#include "query/dil_query.h"
#include "query/naive_query.h"
#include "query/rdil_query.h"

namespace xrank::core {

namespace {

std::string IndexFileName(index::IndexKind kind) {
  return std::string(index::IndexKindName(kind)) + ".xrank";
}

// Disk-backed builders write to `<name>.xrank.tmp`; CommitToDisk renames
// the temp files to their final names and seals them in the MANIFEST, so a
// crash mid-build never leaves a half-written file under a committed name.
Result<std::unique_ptr<storage::PageFile>> MakePageFile(
    const EngineOptions& options, index::IndexKind kind) {
  if (options.disk_dir.empty()) {
    return storage::PageFile::CreateInMemory();
  }
  std::string path =
      options.disk_dir + "/" + IndexFileName(kind) + ".tmp";
  return storage::PageFile::CreateOnDisk(path);
}

// Registry handles for the serving path, resolved once per process (the
// registry outlives every engine). These aggregate what the per-engine /
// per-pool counters attribute: the registry is the process-wide view.
struct EngineMetrics {
  metrics::Counter* queries = nullptr;
  metrics::Counter* errors = nullptr;
  metrics::Counter* deadline_exceeded = nullptr;
  metrics::Counter* partial = nullptr;
  metrics::Counter* cache_hit = nullptr;
  metrics::Counter* postings_scanned = nullptr;
  metrics::Counter* pages_skipped = nullptr;
  metrics::Counter* blocks_pruned = nullptr;
  metrics::Counter* docs_skipped = nullptr;
  metrics::Counter* pivot_advances = nullptr;
  metrics::Counter* block_cache_hits = nullptr;
  metrics::Counter* btree_probes = nullptr;
  metrics::Counter* hash_probes = nullptr;
  metrics::Counter* rounds = nullptr;
  metrics::Counter* switched_to_dil = nullptr;
  metrics::Counter* sequential_reads = nullptr;
  metrics::Counter* random_reads = nullptr;
  metrics::Counter* slow_queries = nullptr;
  metrics::Gauge* slow_query_log_size = nullptr;
  metrics::Histogram* latency_us = nullptr;
  // Per-strategy query counts (query.algorithm.<name>), pre-resolved for
  // every label QueryStats::algorithm can carry so the per-query path does
  // no string concatenation or registry lookup.
  std::array<std::pair<std::string_view, metrics::Counter*>, 5> algorithm{};

  static const EngineMetrics& Get() {
    static const EngineMetrics* m = [] {
      auto& registry = metrics::Registry::Instance();
      auto* em = new EngineMetrics();
      em->queries = registry.GetCounter("query.count");
      em->errors = registry.GetCounter("query.errors");
      em->deadline_exceeded = registry.GetCounter("query.deadline_exceeded");
      em->partial = registry.GetCounter("query.partial");
      em->cache_hit = registry.GetCounter("query.result_cache_hit");
      em->postings_scanned = registry.GetCounter("query.postings_scanned");
      em->pages_skipped = registry.GetCounter("query.pages_skipped");
      em->blocks_pruned = registry.GetCounter("query.blocks_pruned");
      em->docs_skipped = registry.GetCounter("query.docs_skipped");
      em->pivot_advances = registry.GetCounter("query.pivot_advances");
      em->block_cache_hits = registry.GetCounter("query.block_cache_hits");
      em->btree_probes = registry.GetCounter("query.btree_probes");
      em->hash_probes = registry.GetCounter("query.hash_probes");
      em->rounds = registry.GetCounter("query.rounds");
      em->switched_to_dil = registry.GetCounter("query.switched_to_dil");
      em->sequential_reads = registry.GetCounter("query.sequential_reads");
      em->random_reads = registry.GetCounter("query.random_reads");
      size_t slot = 0;
      for (std::string_view name :
           {"daat", "exhaustive", "maxscore", "wand", "bmw"}) {
        em->algorithm[slot++] = {
            name, registry.GetCounter("query.algorithm." + std::string(name))};
      }
      em->slow_queries = registry.GetCounter("engine.slow_queries");
      em->slow_query_log_size =
          registry.GetGauge("engine.slow_query_log_entries");
      em->latency_us = registry.GetHistogram("query.latency_us");
      return em;
    }();
    return *m;
  }
};

// Folds one finished query's stats into the registry. This is the "one
// source of truth" bridge: QueryStats keeps its per-query API, and every
// field also lands here so a registry snapshot diff reproduces it.
void RecordQueryMetrics(const query::QueryStats& stats) {
  const EngineMetrics& m = EngineMetrics::Get();
  m.queries->Increment();
  m.postings_scanned->Increment(stats.postings_scanned);
  m.pages_skipped->Increment(stats.pages_skipped);
  m.blocks_pruned->Increment(stats.blocks_pruned);
  m.docs_skipped->Increment(stats.docs_skipped);
  m.pivot_advances->Increment(stats.pivot_advances);
  if (!stats.algorithm.empty()) {
    bool matched = false;
    for (const auto& [name, counter] : m.algorithm) {
      if (name == stats.algorithm) {
        counter->Increment();
        matched = true;
        break;
      }
    }
    if (!matched) {
      // A label outside the fixed set (shouldn't happen) still counts;
      // registry lookup off the pre-resolved path.
      metrics::Registry::Instance()
          .GetCounter("query.algorithm." + stats.algorithm)
          ->Increment();
    }
  }
  m.block_cache_hits->Increment(stats.block_cache_hits);
  m.btree_probes->Increment(stats.btree_probes);
  m.hash_probes->Increment(stats.hash_probes);
  m.rounds->Increment(stats.rounds);
  m.sequential_reads->Increment(stats.sequential_reads);
  m.random_reads->Increment(stats.random_reads);
  if (stats.switched_to_dil) m.switched_to_dil->Increment();
  if (stats.partial) m.partial->Increment();
  if (stats.result_cache_hit) m.cache_hit->Increment();
  m.latency_us->Observe(static_cast<uint64_t>(stats.wall_ms * 1e3));
}

// Feeds each trace span into its per-stage latency histogram
// (query.stage.<name>_us). Only runs for traced queries; the name lookup
// takes the registry mutex, which is fine off the hot path.
void RecordStageMetrics(const query::QueryTrace& trace) {
  auto& registry = metrics::Registry::Instance();
  for (const query::QueryTrace::Span& span : trace.spans()) {
    registry.GetHistogram("query.stage." + span.name + "_us")
        ->Observe(static_cast<uint64_t>(span.duration_us));
  }
}

}  // namespace

// Out of line: ResultCache is only forward-declared in the header.
XRankEngine::~XRankEngine() = default;

Result<std::unique_ptr<XRankEngine>> XRankEngine::Build(
    std::vector<xml::Document> documents, const EngineOptions& options) {
  return Build(std::move(documents), {}, options);
}

Status XRankEngine::PrepareBase(
    const std::vector<xml::Document>& documents,
    const std::vector<xml::Document>& html_documents) {
  analyzer_ = index::Analyzer(options_.extraction.analyzer);
  if (options_.result_cache_entries > 0) {
    result_cache_ = std::make_unique<ResultCache>(
        options_.result_cache_entries);
  }
  if (options_.block_cache_bytes > 0) {
    block_cache_ =
        std::make_unique<index::BlockCache>(options_.block_cache_bytes);
  }

  // 1. Graph construction (Section 2.1 data model).
  graph::GraphBuilder builder(options_.graph);
  for (const xml::Document& doc : documents) {
    XRANK_RETURN_NOT_OK(builder.AddDocument(doc));
  }
  for (const xml::Document& doc : html_documents) {
    XRANK_RETURN_NOT_OK(builder.AddHtmlDocument(doc));
  }
  XRANK_ASSIGN_OR_RETURN(graph_, std::move(builder).Finalize());

  // 2. ElemRank computation (Section 3).
  XRANK_ASSIGN_OR_RETURN(elem_rank_result_,
                         rank::ComputeElemRank(graph_, options_.elem_rank));
  elem_ranks_ = elem_rank_result_.ranks;
  return Status::OK();
}

Result<std::unique_ptr<XRankEngine>> XRankEngine::Build(
    std::vector<xml::Document> documents,
    std::vector<xml::Document> html_documents, const EngineOptions& options) {
  auto engine = std::unique_ptr<XRankEngine>(new XRankEngine());
  engine->options_ = options;
  XRANK_RETURN_NOT_OK(engine->PrepareBase(documents, html_documents));

  // 3. Posting extraction (shared by every physical index).
  bool need_naive = false;
  for (index::IndexKind kind : options.indexes) {
    need_naive = need_naive || kind == index::IndexKind::kNaiveId ||
                 kind == index::IndexKind::kNaiveRank;
  }
  index::ExtractionOptions extraction = options.extraction;
  extraction.build_naive = need_naive;
  XRANK_ASSIGN_OR_RETURN(
      index::ExtractionResult extracted,
      index::ExtractPostings(engine->graph_, engine->elem_ranks_, extraction));
  engine->ordinal_to_dewey_ = std::move(extracted.ordinal_to_dewey);

  // 4. Physical index construction (Section 4), into temp files when
  // disk-backed.
  for (index::IndexKind kind : options.indexes) {
    XRANK_ASSIGN_OR_RETURN(IndexInstance instance,
                           engine->BuildInstance(kind, extracted));
    engine->indexes_.emplace(kind, std::move(instance));
  }

  // 5. Crash-safe commit: rename temp files and seal them in the MANIFEST.
  XRANK_RETURN_NOT_OK(engine->CommitToDisk());
  return engine;
}

Status XRankEngine::CommitToDisk() {
  if (options_.disk_dir.empty()) return Status::OK();
  auto& failpoints = fail::FailPoints::Instance();

  // Make every temp file durable before exposing it under its final name.
  for (auto& [kind, instance] : indexes_) {
    XRANK_RETURN_NOT_OK(instance.built.file->Sync());
  }
  if (failpoints.Evaluate("index_commit.before_rename")) {
    return Status::IOError(
        "injected crash before index rename: temp files written, nothing "
        "committed");
  }
  index::Manifest manifest;
  for (auto& [kind, instance] : indexes_) {
    std::string name = IndexFileName(kind);
    XRANK_RETURN_NOT_OK(
        index::RenameFile(options_.disk_dir + "/" + name + ".tmp",
                          options_.disk_dir + "/" + name));
    index::ManifestEntry entry;
    entry.file = std::move(name);
    entry.kind = kind;
    entry.page_count = instance.built.file->page_count();
    entry.format = instance.built.lexicon.format_spec();
    // Reading back through the disk page file re-verifies every page's own
    // header checksum while computing the whole-file CRC.
    XRANK_ASSIGN_OR_RETURN(entry.crc,
                           index::ChecksumPageFile(*instance.built.file));
    manifest.entries.push_back(std::move(entry));
  }
  if (failpoints.Evaluate("index_commit.before_manifest")) {
    return Status::IOError(
        "injected crash before MANIFEST write: index files renamed but not "
        "committed");
  }
  // The MANIFEST rename inside is the atomic commit point; it also fsyncs
  // the directory, making the data-file renames above durable.
  return index::WriteManifestFile(options_.disk_dir, manifest);
}

Result<std::unique_ptr<XRankEngine>> XRankEngine::Open(
    std::vector<xml::Document> documents, const EngineOptions& options) {
  if (options.disk_dir.empty()) {
    return Status::InvalidArgument("Open requires a disk_dir");
  }
  auto engine = std::unique_ptr<XRankEngine>(new XRankEngine());
  engine->options_ = options;
  XRANK_RETURN_NOT_OK(engine->PrepareBase(documents, {}));

  XRANK_ASSIGN_OR_RETURN(index::Manifest manifest,
                         index::ReadManifestFile(options.disk_dir));
  if (manifest.entries.empty()) {
    return Status::Corruption("MANIFEST in '" + options.disk_dir +
                              "' lists no index files");
  }

  bool need_naive = false;
  engine->options_.indexes.clear();
  for (const index::ManifestEntry& entry : manifest.entries) {
    if (options.verify_on_open) {
      storage::PageId first_bad = storage::kInvalidPage;
      Status verified =
          index::VerifyManifestEntry(options.disk_dir, entry, &first_bad);
      if (!verified.ok()) return verified;
    }
    std::string path = options.disk_dir + "/" + entry.file;
    XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageFile> file,
                           storage::PageFile::OpenOnDisk(path));
    if (file->page_count() != entry.page_count) {
      return Status::Corruption(
          "'" + path + "' has " + std::to_string(file->page_count()) +
          " pages, MANIFEST expects " + std::to_string(entry.page_count));
    }
    XRANK_ASSIGN_OR_RETURN(index::BuiltIndex built,
                           index::OpenIndex(std::move(file)));
    if (built.kind != entry.kind) {
      return Status::Corruption(
          "'" + path + "' holds a " +
          std::string(index::IndexKindName(built.kind)) +
          " index, MANIFEST expects " +
          std::string(index::IndexKindName(entry.kind)));
    }
    if (!(built.lexicon.format_spec() == entry.format)) {
      return Status::Corruption(
          "'" + path + "' was written with posting codec " +
          std::to_string(built.lexicon.format_spec().codec_id) +
          " / rank encoding " +
          std::to_string(
              static_cast<uint32_t>(built.lexicon.format_spec().ranks)) +
          ", MANIFEST expects codec " + std::to_string(entry.format.codec_id) +
          " / rank encoding " +
          std::to_string(static_cast<uint32_t>(entry.format.ranks)));
    }
    IndexInstance instance;
    instance.built = std::move(built);
    instance.cost_model =
        std::make_unique<storage::CostModel>(options.cost);
    instance.pool = std::make_unique<storage::BufferPool>(
        instance.built.file.get(), options.buffer_pool_pages,
        instance.cost_model.get(), options.buffer_pool_shards);
    need_naive = need_naive || entry.kind == index::IndexKind::kNaiveId ||
                 entry.kind == index::IndexKind::kNaiveRank;
    engine->options_.indexes.push_back(entry.kind);
    engine->indexes_.emplace(entry.kind, std::move(instance));
  }

  // Naive result IDs are element ordinals; re-derive the ordinal map from
  // the graph (it is not persisted). Non-naive engines skip the pass.
  if (need_naive) {
    index::ExtractionOptions extraction = engine->options_.extraction;
    extraction.build_naive = true;
    XRANK_ASSIGN_OR_RETURN(
        index::ExtractionResult extracted,
        index::ExtractPostings(engine->graph_, engine->elem_ranks_,
                               extraction));
    engine->ordinal_to_dewey_ = std::move(extracted.ordinal_to_dewey);
  }
  return engine;
}

Result<XRankEngine::IndexInstance> XRankEngine::BuildInstance(
    index::IndexKind kind, const index::ExtractionResult& extracted) {
  XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageFile> file,
                         MakePageFile(options_, kind));
  index::BuiltIndex built;
  switch (kind) {
    case index::IndexKind::kDil: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildDilIndex(extracted.dewey_postings,
                                      std::move(file), options_.build));
      break;
    }
    case index::IndexKind::kRdil: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildRdilIndex(extracted.dewey_postings,
                                       std::move(file), options_.build));
      break;
    }
    case index::IndexKind::kHdil: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildHdilIndex(extracted.dewey_postings,
                                       std::move(file), options_.hdil,
                                       options_.build));
      break;
    }
    case index::IndexKind::kNaiveId: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildNaiveIdIndex(extracted.naive_postings,
                                          std::move(file), options_.build));
      break;
    }
    case index::IndexKind::kNaiveRank: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildNaiveRankIndex(extracted.naive_postings,
                                            std::move(file), options_.build));
      break;
    }
  }
  IndexInstance instance;
  instance.built = std::move(built);
  instance.cost_model = std::make_unique<storage::CostModel>(options_.cost);
  instance.pool = std::make_unique<storage::BufferPool>(
      instance.built.file.get(), options_.buffer_pool_pages,
      instance.cost_model.get(), options_.buffer_pool_shards);
  return instance;
}

Status XRankEngine::DeleteDocument(std::string_view uri) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  for (uint32_t doc = 0; doc < graph_.documents().size(); ++doc) {
    if (graph_.documents()[doc].uri == uri) {
      deleted_documents_.insert(doc);
      // Cached responses may contain the tombstoned document.
      if (result_cache_ != nullptr) result_cache_->Clear();
      if (block_cache_ != nullptr) block_cache_->Clear();
      return Status::OK();
    }
  }
  return Status::NotFound("no document with uri '" + std::string(uri) + "'");
}

void XRankEngine::DropCaches() {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  for (auto& [kind, instance] : indexes_) {
    instance.pool->DropCache();
    instance.cost_model->ResetStreams();
  }
  if (result_cache_ != nullptr) result_cache_->Clear();
  if (block_cache_ != nullptr) block_cache_->Clear();
}

Status XRankEngine::CompactDeletions() {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  if (deleted_documents_.empty()) return Status::OK();
  bool need_naive = false;
  for (const auto& [kind, instance] : indexes_) {
    need_naive = need_naive || kind == index::IndexKind::kNaiveId ||
                 kind == index::IndexKind::kNaiveRank;
  }
  index::ExtractionOptions extraction = options_.extraction;
  extraction.build_naive = need_naive;
  extraction.exclude_documents.assign(deleted_documents_.begin(),
                                      deleted_documents_.end());
  XRANK_ASSIGN_OR_RETURN(
      index::ExtractionResult extracted,
      index::ExtractPostings(graph_, elem_ranks_, extraction));

  std::map<index::IndexKind, IndexInstance> rebuilt;
  for (const auto& [kind, instance] : indexes_) {
    XRANK_ASSIGN_OR_RETURN(IndexInstance fresh,
                           BuildInstance(kind, extracted));
    rebuilt.emplace(kind, std::move(fresh));
  }
  indexes_ = std::move(rebuilt);
  // Compaction renumbers naive element ordinals.
  ordinal_to_dewey_ = std::move(extracted.ordinal_to_dewey);
  // Cached stats (and naive ordinal mappings) refer to the old physical
  // indexes. The block cache's file-id keys would already keep stale
  // entries from aliasing the rebuilt files; clearing also returns the
  // memory.
  if (result_cache_ != nullptr) result_cache_->Clear();
  if (block_cache_ != nullptr) block_cache_->Clear();
  // Re-commit so the on-disk MANIFEST matches the compacted files. A crash
  // before the new MANIFEST rename leaves a checksum mismatch that Open
  // reports instead of serving torn state.
  return CommitToDisk();
}

bool XRankEngine::has_index(index::IndexKind kind) const {
  return indexes_.find(kind) != indexes_.end();
}

const index::IndexStats& XRankEngine::index_stats(
    index::IndexKind kind) const {
  static const index::IndexStats kEmpty;
  auto it = indexes_.find(kind);
  if (it == indexes_.end()) return kEmpty;
  return it->second.built.stats;
}

Result<double> XRankEngine::ElemRankOf(const dewey::DeweyId& id) const {
  XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph_.FindByDewey(id));
  return elem_ranks_[node];
}

Result<dewey::DeweyId> XRankEngine::MapToAnswerNode(
    const dewey::DeweyId& id) const {
  if (options_.answer_node_tags.empty()) return id;
  dewey::DeweyId current = id;
  while (!current.empty()) {
    XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph_.FindByDewey(current));
    std::string_view tag = graph_.name(node);
    for (const std::string& answer_tag : options_.answer_node_tags) {
      if (tag == answer_tag) return current;
    }
    current = current.Parent();
  }
  return Status::NotFound("no answer node above " + id.ToString());
}

Result<EngineResponse> XRankEngine::Decorate(query::QueryResponse response,
                                             index::IndexKind kind,
                                             size_t m) {
  EngineResponse out;
  out.stats = response.stats;
  bool naive = kind == index::IndexKind::kNaiveId ||
               kind == index::IndexKind::kNaiveRank;
  // Answer-node mapping can send several raw results to one ancestor; keep
  // the best-ranked representative.
  std::set<dewey::DeweyId> emitted;
  for (query::RankedResult& raw : response.results) {
    if (out.results.size() >= m) break;
    dewey::DeweyId id = raw.id;
    if (naive) {
      uint32_t ordinal = id.component(0);
      if (ordinal >= ordinal_to_dewey_.size()) {
        return Status::Internal("naive ordinal out of range");
      }
      id = ordinal_to_dewey_[ordinal];
    }
    // Tombstoned documents: the first Dewey component is the document id
    // (Section 4.5), so deleted documents filter in O(1).
    if (!deleted_documents_.empty() &&
        deleted_documents_.count(id.document_id()) > 0) {
      continue;
    }
    Result<dewey::DeweyId> mapped = MapToAnswerNode(id);
    if (!mapped.ok()) continue;  // no answer node covers this result
    id = mapped.value();
    if (!emitted.insert(id).second) continue;  // ancestor already emitted

    XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph_.FindByDewey(id));
    EngineResult result;
    result.id = id;
    result.rank = raw.rank;
    result.element_tag = std::string(graph_.name(node));
    result.document_uri = graph_.documents()[graph_.node(node).document].uri;
    std::string text = graph_.DeepText(node);
    if (text.size() > 120) {
      text.resize(117);
      text += "...";
    }
    result.snippet = std::move(text);
    out.results.push_back(std::move(result));
  }
  return out;
}

Result<EngineResponse> XRankEngine::QueryKeywords(
    const std::vector<std::string>& keywords, size_t m,
    index::IndexKind kind) {
  return QueryKeywords(keywords, m, kind, options_.query);
}

Result<EngineResponse> XRankEngine::QueryKeywords(
    const std::vector<std::string>& keywords, size_t m, index::IndexKind kind,
    const query::QueryOptions& query_options) {
  WallTimer wall;
  // Shared against DeleteDocument/CompactDeletions; concurrent queries all
  // hold the lock in shared mode and proceed in parallel.
  std::shared_lock<std::shared_mutex> state_lock(state_mutex_);
  auto it = indexes_.find(kind);
  if (it == indexes_.end()) {
    return Status::InvalidArgument(
        std::string(index::IndexKindName(kind)) + " index was not built");
  }
  IndexInstance& instance = it->second;

  std::vector<std::string> normalized;
  normalized.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    std::string term = analyzer_.NormalizeKeyword(keyword);
    if (term.empty()) {
      return Status::InvalidArgument("keyword '" + keyword +
                                     "' normalizes to nothing");
    }
    normalized.push_back(std::move(term));
  }

  // With the slow-query log armed and no caller-supplied trace, trace the
  // query internally so the log always has a per-stage breakdown.
  query::QueryTrace* trace = query_options.trace;
  std::unique_ptr<query::QueryTrace> local_trace;
  if (trace == nullptr && options_.slow_query_ms != 0) {
    local_trace = std::make_unique<query::QueryTrace>();
    trace = local_trace.get();
  }
  if (trace != nullptr) {
    std::string text;
    for (const std::string& term : normalized) {
      if (!text.empty()) text += ' ';
      text += term;
    }
    trace->set_query_text(std::move(text));
    trace->set_index_kind(std::string(index::IndexKindName(kind)));
  }
  query::QueryOptions exec_options = query_options;
  exec_options.trace = trace;
  const EngineMetrics& metrics = EngineMetrics::Get();

  // Fast path: a repeated (terms, m, kind) query is answered from the
  // result cache without touching the index. Writers invalidate the cache
  // under the exclusive lock, so anything found here is current.
  std::string cache_key;
  if (result_cache_ != nullptr) {
    query::ScopedSpan cache_span(trace, "cache");
    cache_key = ResultCache::MakeKey(normalized, m, kind);
    EngineResponse cached;
    if (result_cache_->Lookup(cache_key, &cached)) {
      // A hit does no index work; the miss's execution stats would be
      // misleading here.
      cached.stats = query::QueryStats{};
      cached.stats.result_cache_hit = true;
      cache_span.End();
      RecordQueryMetrics(cached.stats);
      if (trace != nullptr) RecordStageMetrics(*trace);
      return cached;
    }
  }

  // All queries share the instance's sharded pool. Cold-cache mode (the
  // paper's experimental setup) evicts it at each query start — under
  // serial queries this reproduces the private-pool-per-query statistics
  // exactly, without the per-query allocation.
  storage::BufferPool* pool = instance.pool.get();
  if (options_.cold_cache_per_query) {
    pool->DropCache();
    instance.cost_model->ResetStreams();
    // Pre-decoded pages would defeat the cold-cache measurement the same
    // way warm pool pages would.
    if (block_cache_ != nullptr) block_cache_->Clear();
  }

  // With pending deletions, over-fetch so post-filtering can still fill m
  // results (bounded approximation until CompactDeletions runs).
  size_t fetch_m = deleted_documents_.empty() ? m : m * 2 + 64;

  const index::Lexicon* lexicon = &instance.built.lexicon;
  auto run = [&]() -> Result<query::QueryResponse> {
    switch (kind) {
      case index::IndexKind::kDil: {
        query::DilQueryProcessor processor(pool, lexicon, options_.scoring,
                                           /*use_skip_blocks=*/true,
                                           block_cache_.get());
        return processor.Execute(normalized, fetch_m, exec_options);
      }
      case index::IndexKind::kRdil: {
        query::RdilQueryProcessor processor(pool, lexicon, options_.scoring);
        return processor.Execute(normalized, fetch_m, exec_options);
      }
      case index::IndexKind::kHdil: {
        query::HdilQueryProcessor processor(pool, lexicon, options_.scoring,
                                            options_.hdil_strategy,
                                            block_cache_.get());
        return processor.Execute(normalized, fetch_m, exec_options);
      }
      case index::IndexKind::kNaiveId: {
        query::NaiveIdQueryProcessor processor(pool, lexicon,
                                               options_.scoring);
        return processor.Execute(normalized, fetch_m, exec_options);
      }
      case index::IndexKind::kNaiveRank: {
        query::NaiveRankQueryProcessor processor(pool, lexicon,
                                                 options_.scoring);
        return processor.Execute(normalized, fetch_m, exec_options);
      }
    }
    return Status::Internal("unreachable index kind");
  };
  Result<query::QueryResponse> executed = run();
  if (!executed.ok()) {
    metrics.queries->Increment();
    metrics.errors->Increment();
    if (executed.status().code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_queries_.fetch_add(1, std::memory_order_relaxed);
      metrics.deadline_exceeded->Increment();
    }
    return executed.status();
  }
  query::QueryResponse response = std::move(executed).value();
  if (response.stats.partial) {
    partial_result_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  Result<EngineResponse> decorate_result = [&] {
    query::ScopedSpan span(trace, "decorate");
    return Decorate(std::move(response), kind, m);
  }();
  XRANK_RETURN_NOT_OK(decorate_result.status());
  EngineResponse decorated = std::move(decorate_result).value();
  // A partial response reflects this query's budget, not the index: caching
  // it would serve truncated results to later unconstrained queries.
  if (result_cache_ != nullptr && !decorated.stats.partial) {
    result_cache_->Insert(cache_key, decorated);
  }
  RecordQueryMetrics(decorated.stats);
  if (trace != nullptr) RecordStageMetrics(*trace);

  double wall_ms = wall.ElapsedSeconds() * 1e3;
  if (options_.slow_query_ms != 0 && trace != nullptr &&
      wall_ms >= static_cast<double>(options_.slow_query_ms)) {
    SlowQueryEntry entry;
    entry.query = trace->query_text();
    entry.kind = kind;
    entry.wall_ms = wall_ms;
    // Copy, not move: a caller-supplied trace stays theirs to render.
    entry.trace = *trace;
    RecordSlowQuery(std::move(entry));
  }
  return decorated;
}

void XRankEngine::RecordSlowQuery(SlowQueryEntry entry) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  std::lock_guard<std::mutex> lock(slow_query_mutex_);
  if (options_.slow_query_log_entries == 0) return;
  if (slow_query_ring_.size() < options_.slow_query_log_entries) {
    slow_query_ring_.push_back(std::move(entry));
  } else {
    slow_query_ring_[slow_query_next_] = std::move(entry);
    slow_query_next_ = (slow_query_next_ + 1) % slow_query_ring_.size();
  }
  ++slow_query_total_;
  metrics.slow_queries->Increment();
  metrics.slow_query_log_size->Set(
      static_cast<int64_t>(slow_query_ring_.size()));
}

std::vector<XRankEngine::SlowQueryEntry> XRankEngine::slow_queries() const {
  std::lock_guard<std::mutex> lock(slow_query_mutex_);
  std::vector<SlowQueryEntry> out;
  out.reserve(slow_query_ring_.size());
  // slow_query_next_ is the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < slow_query_ring_.size(); ++i) {
    out.push_back(
        slow_query_ring_[(slow_query_next_ + i) % slow_query_ring_.size()]);
  }
  return out;
}

uint64_t XRankEngine::slow_query_count() const {
  std::lock_guard<std::mutex> lock(slow_query_mutex_);
  return slow_query_total_;
}

XRankEngine::ServingCounters XRankEngine::serving_counters(
    index::IndexKind kind) const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  ServingCounters counters;
  auto it = indexes_.find(kind);
  if (it != indexes_.end()) {
    counters.pool_hits = it->second.pool->hits();
    counters.pool_misses = it->second.pool->misses();
  }
  if (result_cache_ != nullptr) {
    counters.result_cache_hits = result_cache_->hits();
    counters.result_cache_lookups = result_cache_->lookups();
  }
  if (block_cache_ != nullptr) {
    counters.block_cache_hits = block_cache_->hits();
    counters.block_cache_lookups = block_cache_->lookups();
  }
  counters.deadline_exceeded_queries =
      deadline_exceeded_queries_.load(std::memory_order_relaxed);
  counters.partial_result_queries =
      partial_result_queries_.load(std::memory_order_relaxed);
  return counters;
}

Result<EngineResponse> XRankEngine::QueryWithPath(
    std::string_view query_text, size_t m, index::IndexKind kind,
    const std::vector<std::string>& path) {
  if (path.empty()) return Query(query_text, m, kind);
  // Over-fetch, then keep results whose tag chain ends with `path`.
  XRANK_ASSIGN_OR_RETURN(EngineResponse raw,
                         Query(query_text, m * 4 + 64, kind));
  EngineResponse out;
  out.stats = raw.stats;
  for (core::EngineResult& result : raw.results) {
    if (out.results.size() >= m) break;
    dewey::DeweyId current = result.id;
    bool matches = true;
    for (size_t i = path.size(); i-- > 0;) {
      if (current.empty()) {
        matches = false;
        break;
      }
      XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph_.FindByDewey(current));
      if (graph_.name(node) != path[i]) {
        matches = false;
        break;
      }
      current = current.Parent();
    }
    if (matches) out.results.push_back(std::move(result));
  }
  return out;
}

Result<EngineResponse> XRankEngine::Query(std::string_view query_text,
                                          size_t m, index::IndexKind kind) {
  return Query(query_text, m, kind, options_.query);
}

Result<EngineResponse> XRankEngine::Query(
    std::string_view query_text, size_t m, index::IndexKind kind,
    const query::QueryOptions& query_options) {
  std::vector<std::string> keywords;
  {
    query::ScopedSpan span(query_options.trace, "parse");
    uint32_t position = 0;
    for (index::Analyzer::Token& token :
         analyzer_.Tokenize(query_text, &position)) {
      keywords.push_back(std::move(token.term));
    }
  }
  if (keywords.empty()) {
    return Status::InvalidArgument("query contains no keywords");
  }
  return QueryKeywords(keywords, m, kind, query_options);
}

}  // namespace xrank::core
