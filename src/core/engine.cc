#include "core/engine.h"

#include <algorithm>
#include <set>

#include "core/result_cache.h"
#include "index/dil_index.h"
#include "index/naive_index.h"
#include "index/rdil_index.h"
#include "query/dil_query.h"
#include "query/naive_query.h"
#include "query/rdil_query.h"

namespace xrank::core {

namespace {

Result<std::unique_ptr<storage::PageFile>> MakePageFile(
    const EngineOptions& options, index::IndexKind kind) {
  if (options.disk_dir.empty()) {
    return storage::PageFile::CreateInMemory();
  }
  std::string path = options.disk_dir + "/" +
                     std::string(index::IndexKindName(kind)) + ".xrank";
  return storage::PageFile::CreateOnDisk(path);
}

}  // namespace

// Out of line: ResultCache is only forward-declared in the header.
XRankEngine::~XRankEngine() = default;

Result<std::unique_ptr<XRankEngine>> XRankEngine::Build(
    std::vector<xml::Document> documents, const EngineOptions& options) {
  return Build(std::move(documents), {}, options);
}

Result<std::unique_ptr<XRankEngine>> XRankEngine::Build(
    std::vector<xml::Document> documents,
    std::vector<xml::Document> html_documents, const EngineOptions& options) {
  auto engine = std::unique_ptr<XRankEngine>(new XRankEngine());
  engine->options_ = options;
  engine->analyzer_ = index::Analyzer(options.extraction.analyzer);
  if (options.result_cache_entries > 0) {
    engine->result_cache_ =
        std::make_unique<ResultCache>(options.result_cache_entries);
  }

  // 1. Graph construction (Section 2.1 data model).
  graph::GraphBuilder builder(options.graph);
  for (const xml::Document& doc : documents) {
    XRANK_RETURN_NOT_OK(builder.AddDocument(doc));
  }
  for (const xml::Document& doc : html_documents) {
    XRANK_RETURN_NOT_OK(builder.AddHtmlDocument(doc));
  }
  XRANK_ASSIGN_OR_RETURN(engine->graph_, std::move(builder).Finalize());

  // 2. ElemRank computation (Section 3).
  XRANK_ASSIGN_OR_RETURN(
      engine->elem_rank_result_,
      rank::ComputeElemRank(engine->graph_, options.elem_rank));
  engine->elem_ranks_ = engine->elem_rank_result_.ranks;

  // 3. Posting extraction (shared by every physical index).
  bool need_naive = false;
  for (index::IndexKind kind : options.indexes) {
    need_naive = need_naive || kind == index::IndexKind::kNaiveId ||
                 kind == index::IndexKind::kNaiveRank;
  }
  index::ExtractionOptions extraction = options.extraction;
  extraction.build_naive = need_naive;
  XRANK_ASSIGN_OR_RETURN(
      index::ExtractionResult extracted,
      index::ExtractPostings(engine->graph_, engine->elem_ranks_, extraction));
  engine->ordinal_to_dewey_ = std::move(extracted.ordinal_to_dewey);

  // 4. Physical index construction (Section 4).
  for (index::IndexKind kind : options.indexes) {
    XRANK_ASSIGN_OR_RETURN(IndexInstance instance,
                           engine->BuildInstance(kind, extracted));
    engine->indexes_.emplace(kind, std::move(instance));
  }
  return engine;
}

Result<XRankEngine::IndexInstance> XRankEngine::BuildInstance(
    index::IndexKind kind, const index::ExtractionResult& extracted) {
  XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageFile> file,
                         MakePageFile(options_, kind));
  index::BuiltIndex built;
  switch (kind) {
    case index::IndexKind::kDil: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildDilIndex(extracted.dewey_postings,
                                      std::move(file), options_.build));
      break;
    }
    case index::IndexKind::kRdil: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildRdilIndex(extracted.dewey_postings,
                                       std::move(file), options_.build));
      break;
    }
    case index::IndexKind::kHdil: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildHdilIndex(extracted.dewey_postings,
                                       std::move(file), options_.hdil,
                                       options_.build));
      break;
    }
    case index::IndexKind::kNaiveId: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildNaiveIdIndex(extracted.naive_postings,
                                          std::move(file)));
      break;
    }
    case index::IndexKind::kNaiveRank: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildNaiveRankIndex(extracted.naive_postings,
                                            std::move(file)));
      break;
    }
  }
  IndexInstance instance;
  instance.built = std::move(built);
  instance.cost_model = std::make_unique<storage::CostModel>(options_.cost);
  instance.pool = std::make_unique<storage::BufferPool>(
      instance.built.file.get(), options_.buffer_pool_pages,
      instance.cost_model.get(), options_.buffer_pool_shards);
  return instance;
}

Status XRankEngine::DeleteDocument(std::string_view uri) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  for (uint32_t doc = 0; doc < graph_.documents().size(); ++doc) {
    if (graph_.documents()[doc].uri == uri) {
      deleted_documents_.insert(doc);
      // Cached responses may contain the tombstoned document.
      if (result_cache_ != nullptr) result_cache_->Clear();
      return Status::OK();
    }
  }
  return Status::NotFound("no document with uri '" + std::string(uri) + "'");
}

Status XRankEngine::CompactDeletions() {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  if (deleted_documents_.empty()) return Status::OK();
  bool need_naive = false;
  for (const auto& [kind, instance] : indexes_) {
    need_naive = need_naive || kind == index::IndexKind::kNaiveId ||
                 kind == index::IndexKind::kNaiveRank;
  }
  index::ExtractionOptions extraction = options_.extraction;
  extraction.build_naive = need_naive;
  extraction.exclude_documents.assign(deleted_documents_.begin(),
                                      deleted_documents_.end());
  XRANK_ASSIGN_OR_RETURN(
      index::ExtractionResult extracted,
      index::ExtractPostings(graph_, elem_ranks_, extraction));

  std::map<index::IndexKind, IndexInstance> rebuilt;
  for (const auto& [kind, instance] : indexes_) {
    XRANK_ASSIGN_OR_RETURN(IndexInstance fresh,
                           BuildInstance(kind, extracted));
    rebuilt.emplace(kind, std::move(fresh));
  }
  indexes_ = std::move(rebuilt);
  // Compaction renumbers naive element ordinals.
  ordinal_to_dewey_ = std::move(extracted.ordinal_to_dewey);
  // Cached stats (and naive ordinal mappings) refer to the old physical
  // indexes.
  if (result_cache_ != nullptr) result_cache_->Clear();
  return Status::OK();
}

bool XRankEngine::has_index(index::IndexKind kind) const {
  return indexes_.find(kind) != indexes_.end();
}

const index::IndexStats& XRankEngine::index_stats(
    index::IndexKind kind) const {
  static const index::IndexStats kEmpty;
  auto it = indexes_.find(kind);
  if (it == indexes_.end()) return kEmpty;
  return it->second.built.stats;
}

Result<double> XRankEngine::ElemRankOf(const dewey::DeweyId& id) const {
  XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph_.FindByDewey(id));
  return elem_ranks_[node];
}

Result<dewey::DeweyId> XRankEngine::MapToAnswerNode(
    const dewey::DeweyId& id) const {
  if (options_.answer_node_tags.empty()) return id;
  dewey::DeweyId current = id;
  while (!current.empty()) {
    XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph_.FindByDewey(current));
    std::string_view tag = graph_.name(node);
    for (const std::string& answer_tag : options_.answer_node_tags) {
      if (tag == answer_tag) return current;
    }
    current = current.Parent();
  }
  return Status::NotFound("no answer node above " + id.ToString());
}

Result<EngineResponse> XRankEngine::Decorate(query::QueryResponse response,
                                             index::IndexKind kind,
                                             size_t m) {
  EngineResponse out;
  out.stats = response.stats;
  bool naive = kind == index::IndexKind::kNaiveId ||
               kind == index::IndexKind::kNaiveRank;
  // Answer-node mapping can send several raw results to one ancestor; keep
  // the best-ranked representative.
  std::set<dewey::DeweyId> emitted;
  for (query::RankedResult& raw : response.results) {
    if (out.results.size() >= m) break;
    dewey::DeweyId id = raw.id;
    if (naive) {
      uint32_t ordinal = id.component(0);
      if (ordinal >= ordinal_to_dewey_.size()) {
        return Status::Internal("naive ordinal out of range");
      }
      id = ordinal_to_dewey_[ordinal];
    }
    // Tombstoned documents: the first Dewey component is the document id
    // (Section 4.5), so deleted documents filter in O(1).
    if (!deleted_documents_.empty() &&
        deleted_documents_.count(id.document_id()) > 0) {
      continue;
    }
    Result<dewey::DeweyId> mapped = MapToAnswerNode(id);
    if (!mapped.ok()) continue;  // no answer node covers this result
    id = mapped.value();
    if (!emitted.insert(id).second) continue;  // ancestor already emitted

    XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph_.FindByDewey(id));
    EngineResult result;
    result.id = id;
    result.rank = raw.rank;
    result.element_tag = std::string(graph_.name(node));
    result.document_uri = graph_.documents()[graph_.node(node).document].uri;
    std::string text = graph_.DeepText(node);
    if (text.size() > 120) {
      text.resize(117);
      text += "...";
    }
    result.snippet = std::move(text);
    out.results.push_back(std::move(result));
  }
  return out;
}

Result<EngineResponse> XRankEngine::QueryKeywords(
    const std::vector<std::string>& keywords, size_t m,
    index::IndexKind kind) {
  // Shared against DeleteDocument/CompactDeletions; concurrent queries all
  // hold the lock in shared mode and proceed in parallel.
  std::shared_lock<std::shared_mutex> state_lock(state_mutex_);
  auto it = indexes_.find(kind);
  if (it == indexes_.end()) {
    return Status::InvalidArgument(
        std::string(index::IndexKindName(kind)) + " index was not built");
  }
  IndexInstance& instance = it->second;

  std::vector<std::string> normalized;
  normalized.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    std::string term = analyzer_.NormalizeKeyword(keyword);
    if (term.empty()) {
      return Status::InvalidArgument("keyword '" + keyword +
                                     "' normalizes to nothing");
    }
    normalized.push_back(std::move(term));
  }

  // Fast path: a repeated (terms, m, kind) query is answered from the
  // result cache without touching the index. Writers invalidate the cache
  // under the exclusive lock, so anything found here is current.
  std::string cache_key;
  if (result_cache_ != nullptr) {
    cache_key = ResultCache::MakeKey(normalized, m, kind);
    EngineResponse cached;
    if (result_cache_->Lookup(cache_key, &cached)) {
      // A hit does no index work; the miss's execution stats would be
      // misleading here.
      cached.stats = query::QueryStats{};
      cached.stats.result_cache_hit = true;
      return cached;
    }
  }

  // All queries share the instance's sharded pool. Cold-cache mode (the
  // paper's experimental setup) evicts it at each query start — under
  // serial queries this reproduces the private-pool-per-query statistics
  // exactly, without the per-query allocation.
  storage::BufferPool* pool = instance.pool.get();
  if (options_.cold_cache_per_query) {
    pool->DropCache();
    instance.cost_model->ResetStreams();
  }

  // With pending deletions, over-fetch so post-filtering can still fill m
  // results (bounded approximation until CompactDeletions runs).
  size_t fetch_m = deleted_documents_.empty() ? m : m * 2 + 64;

  query::QueryResponse response;
  const index::Lexicon* lexicon = &instance.built.lexicon;
  switch (kind) {
    case index::IndexKind::kDil: {
      query::DilQueryProcessor processor(pool, lexicon, options_.scoring);
      XRANK_ASSIGN_OR_RETURN(response,
                             processor.Execute(normalized, fetch_m));
      break;
    }
    case index::IndexKind::kRdil: {
      query::RdilQueryProcessor processor(pool, lexicon, options_.scoring);
      XRANK_ASSIGN_OR_RETURN(response,
                             processor.Execute(normalized, fetch_m));
      break;
    }
    case index::IndexKind::kHdil: {
      query::HdilQueryProcessor processor(pool, lexicon, options_.scoring,
                                          options_.hdil_strategy);
      XRANK_ASSIGN_OR_RETURN(response,
                             processor.Execute(normalized, fetch_m));
      break;
    }
    case index::IndexKind::kNaiveId: {
      query::NaiveIdQueryProcessor processor(pool, lexicon, options_.scoring);
      XRANK_ASSIGN_OR_RETURN(response,
                             processor.Execute(normalized, fetch_m));
      break;
    }
    case index::IndexKind::kNaiveRank: {
      query::NaiveRankQueryProcessor processor(pool, lexicon,
                                               options_.scoring);
      XRANK_ASSIGN_OR_RETURN(response,
                             processor.Execute(normalized, fetch_m));
      break;
    }
  }
  XRANK_ASSIGN_OR_RETURN(EngineResponse decorated,
                         Decorate(std::move(response), kind, m));
  if (result_cache_ != nullptr) {
    result_cache_->Insert(cache_key, decorated);
  }
  return decorated;
}

XRankEngine::ServingCounters XRankEngine::serving_counters(
    index::IndexKind kind) const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  ServingCounters counters;
  auto it = indexes_.find(kind);
  if (it != indexes_.end()) {
    counters.pool_hits = it->second.pool->hits();
    counters.pool_misses = it->second.pool->misses();
  }
  if (result_cache_ != nullptr) {
    counters.result_cache_hits = result_cache_->hits();
    counters.result_cache_lookups = result_cache_->lookups();
  }
  return counters;
}

Result<EngineResponse> XRankEngine::QueryWithPath(
    std::string_view query_text, size_t m, index::IndexKind kind,
    const std::vector<std::string>& path) {
  if (path.empty()) return Query(query_text, m, kind);
  // Over-fetch, then keep results whose tag chain ends with `path`.
  XRANK_ASSIGN_OR_RETURN(EngineResponse raw,
                         Query(query_text, m * 4 + 64, kind));
  EngineResponse out;
  out.stats = raw.stats;
  for (core::EngineResult& result : raw.results) {
    if (out.results.size() >= m) break;
    dewey::DeweyId current = result.id;
    bool matches = true;
    for (size_t i = path.size(); i-- > 0;) {
      if (current.empty()) {
        matches = false;
        break;
      }
      XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph_.FindByDewey(current));
      if (graph_.name(node) != path[i]) {
        matches = false;
        break;
      }
      current = current.Parent();
    }
    if (matches) out.results.push_back(std::move(result));
  }
  return out;
}

Result<EngineResponse> XRankEngine::Query(std::string_view query_text,
                                          size_t m, index::IndexKind kind) {
  std::vector<std::string> keywords;
  uint32_t position = 0;
  for (index::Analyzer::Token& token :
       analyzer_.Tokenize(query_text, &position)) {
    keywords.push_back(std::move(token.term));
  }
  if (keywords.empty()) {
    return Status::InvalidArgument("query contains no keywords");
  }
  return QueryKeywords(keywords, m, kind);
}

}  // namespace xrank::core
