#include "core/engine.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <set>
#include <string_view>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "core/result_cache.h"
#include "index/dil_index.h"
#include "index/naive_index.h"
#include "index/rdil_index.h"
#include "query/dil_query.h"
#include "query/naive_query.h"
#include "query/rdil_query.h"
#include "xml/parser.h"

namespace xrank::core {

namespace {

std::string IndexFileName(index::IndexKind kind) {
  return std::string(index::IndexKindName(kind)) + ".xrank";
}

// Flushed-segment basenames encode the WAL seq range the segment covers, so
// a re-flush after a crash (same pending records, same range) regenerates
// the same name and atomically replaces any half-committed predecessor.
std::string SegmentBaseName(uint64_t first_seq, uint64_t last_seq) {
  return "seg-" + std::to_string(first_seq) + "-" + std::to_string(last_seq);
}

// Disk-backed builders write to `<name>.xrank.tmp`; CommitBaseLocked renames
// the temp files to their final names and seals them in the MANIFEST, so a
// crash mid-build never leaves a half-written file under a committed name.
Result<std::unique_ptr<storage::PageFile>> MakePageFile(
    const EngineOptions& options, index::IndexKind kind) {
  if (options.disk_dir.empty()) {
    return storage::PageFile::CreateInMemory();
  }
  std::string path =
      options.disk_dir + "/" + IndexFileName(kind) + ".tmp";
  return storage::PageFile::CreateOnDisk(path);
}

// Registry handles for the serving path, resolved once per process (the
// registry outlives every engine). These aggregate what the per-engine /
// per-pool counters attribute: the registry is the process-wide view.
struct EngineMetrics {
  metrics::Counter* queries = nullptr;
  metrics::Counter* errors = nullptr;
  metrics::Counter* deadline_exceeded = nullptr;
  metrics::Counter* partial = nullptr;
  metrics::Counter* cache_hit = nullptr;
  metrics::Counter* postings_scanned = nullptr;
  metrics::Counter* pages_skipped = nullptr;
  metrics::Counter* blocks_pruned = nullptr;
  metrics::Counter* docs_skipped = nullptr;
  metrics::Counter* pivot_advances = nullptr;
  metrics::Counter* block_cache_hits = nullptr;
  metrics::Counter* btree_probes = nullptr;
  metrics::Counter* hash_probes = nullptr;
  metrics::Counter* rounds = nullptr;
  metrics::Counter* switched_to_dil = nullptr;
  metrics::Counter* sequential_reads = nullptr;
  metrics::Counter* random_reads = nullptr;
  metrics::Counter* slow_queries = nullptr;
  metrics::Gauge* slow_query_log_size = nullptr;
  metrics::Histogram* latency_us = nullptr;
  // Per-strategy query counts (query.algorithm.<name>), pre-resolved for
  // every label QueryStats::algorithm can carry so the per-query path does
  // no string concatenation or registry lookup.
  std::array<std::pair<std::string_view, metrics::Counter*>, 5> algorithm{};

  static const EngineMetrics& Get() {
    static const EngineMetrics* m = [] {
      auto& registry = metrics::Registry::Instance();
      auto* em = new EngineMetrics();
      em->queries = registry.GetCounter("query.count");
      em->errors = registry.GetCounter("query.errors");
      em->deadline_exceeded = registry.GetCounter("query.deadline_exceeded");
      em->partial = registry.GetCounter("query.partial");
      em->cache_hit = registry.GetCounter("query.result_cache_hit");
      em->postings_scanned = registry.GetCounter("query.postings_scanned");
      em->pages_skipped = registry.GetCounter("query.pages_skipped");
      em->blocks_pruned = registry.GetCounter("query.blocks_pruned");
      em->docs_skipped = registry.GetCounter("query.docs_skipped");
      em->pivot_advances = registry.GetCounter("query.pivot_advances");
      em->block_cache_hits = registry.GetCounter("query.block_cache_hits");
      em->btree_probes = registry.GetCounter("query.btree_probes");
      em->hash_probes = registry.GetCounter("query.hash_probes");
      em->rounds = registry.GetCounter("query.rounds");
      em->switched_to_dil = registry.GetCounter("query.switched_to_dil");
      em->sequential_reads = registry.GetCounter("query.sequential_reads");
      em->random_reads = registry.GetCounter("query.random_reads");
      size_t slot = 0;
      for (std::string_view name :
           {"daat", "exhaustive", "maxscore", "wand", "bmw"}) {
        em->algorithm[slot++] = {
            name, registry.GetCounter("query.algorithm." + std::string(name))};
      }
      em->slow_queries = registry.GetCounter("engine.slow_queries");
      em->slow_query_log_size =
          registry.GetGauge("engine.slow_query_log_entries");
      em->latency_us = registry.GetHistogram("query.latency_us");
      return em;
    }();
    return *m;
  }
};

// Registry handles for the live-update path (update.* series).
struct UpdateMetrics {
  metrics::Counter* wal_appends = nullptr;
  metrics::Counter* wal_replayed = nullptr;
  metrics::Counter* wal_dropped_bytes = nullptr;
  metrics::Counter* add_documents = nullptr;
  metrics::Counter* delete_documents = nullptr;
  metrics::Counter* flushes = nullptr;
  metrics::Counter* compactions = nullptr;
  metrics::Counter* backpressure_waits = nullptr;
  metrics::Histogram* backpressure_us = nullptr;

  static const UpdateMetrics& Get() {
    static const UpdateMetrics* m = [] {
      auto& registry = metrics::Registry::Instance();
      auto* um = new UpdateMetrics();
      um->wal_appends = registry.GetCounter("update.wal_appends");
      um->wal_replayed = registry.GetCounter("update.wal_replayed_records");
      um->wal_dropped_bytes =
          registry.GetCounter("update.wal_dropped_bytes");
      um->add_documents = registry.GetCounter("update.add_documents");
      um->delete_documents = registry.GetCounter("update.delete_documents");
      um->flushes = registry.GetCounter("update.flushes");
      um->compactions = registry.GetCounter("update.compactions");
      um->backpressure_waits =
          registry.GetCounter("update.backpressure_waits");
      um->backpressure_us = registry.GetHistogram("update.backpressure_us");
      return um;
    }();
    return *m;
  }
};

// Folds one finished query's stats into the registry. This is the "one
// source of truth" bridge: QueryStats keeps its per-query API, and every
// field also lands here so a registry snapshot diff reproduces it.
void RecordQueryMetrics(const query::QueryStats& stats) {
  const EngineMetrics& m = EngineMetrics::Get();
  m.queries->Increment();
  m.postings_scanned->Increment(stats.postings_scanned);
  m.pages_skipped->Increment(stats.pages_skipped);
  m.blocks_pruned->Increment(stats.blocks_pruned);
  m.docs_skipped->Increment(stats.docs_skipped);
  m.pivot_advances->Increment(stats.pivot_advances);
  if (!stats.algorithm.empty()) {
    bool matched = false;
    for (const auto& [name, counter] : m.algorithm) {
      if (name == stats.algorithm) {
        counter->Increment();
        matched = true;
        break;
      }
    }
    if (!matched) {
      // A label outside the fixed set (shouldn't happen) still counts;
      // registry lookup off the pre-resolved path.
      metrics::Registry::Instance()
          .GetCounter("query.algorithm." + stats.algorithm)
          ->Increment();
    }
  }
  m.block_cache_hits->Increment(stats.block_cache_hits);
  m.btree_probes->Increment(stats.btree_probes);
  m.hash_probes->Increment(stats.hash_probes);
  m.rounds->Increment(stats.rounds);
  m.sequential_reads->Increment(stats.sequential_reads);
  m.random_reads->Increment(stats.random_reads);
  if (stats.switched_to_dil) m.switched_to_dil->Increment();
  if (stats.partial) m.partial->Increment();
  if (stats.result_cache_hit) m.cache_hit->Increment();
  m.latency_us->Observe(static_cast<uint64_t>(stats.wall_ms * 1e3));
}

// Feeds each trace span into its per-stage latency histogram
// (query.stage.<name>_us). Only runs for traced queries; the name lookup
// takes the registry mutex, which is fine off the hot path.
void RecordStageMetrics(const query::QueryTrace& trace) {
  auto& registry = metrics::Registry::Instance();
  for (const query::QueryTrace::Span& span : trace.spans()) {
    registry.GetHistogram("query.stage." + span.name + "_us")
        ->Observe(static_cast<uint64_t>(span.duration_us));
  }
}

// Segment scans fold into the merged per-query stats via
// query::MergeQueryStats (shared with the shard router's gather); the base
// index's algorithm label and cache/switch flags are kept.
using query::MergeQueryStats;

// Maps a segment-local Dewey ID into the global document-id space (the
// first component is the document id; everything below is unchanged).
dewey::DeweyId RebaseUp(const dewey::DeweyId& local, uint32_t doc_base) {
  if (doc_base == 0) return local;
  std::vector<uint32_t> components = local.components();
  components[0] += doc_base;
  return dewey::DeweyId(std::move(components));
}

dewey::DeweyId RebaseDown(const dewey::DeweyId& global, uint32_t doc_base) {
  if (doc_base == 0) return global;
  std::vector<uint32_t> components = global.components();
  components[0] -= doc_base;
  return dewey::DeweyId(std::move(components));
}

// Replaces the document (first) component — the identity<->physical remap
// for base-corpus Dewey ids under a build-time document reordering.
dewey::DeweyId WithDocComponent(const dewey::DeweyId& id, uint32_t doc) {
  if (id.empty() || id.component(0) == doc) return id;
  std::vector<uint32_t> components = id.components();
  components[0] = doc;
  return dewey::DeweyId(std::move(components));
}

bool SeqCovered(uint64_t seq,
                const std::vector<std::pair<uint64_t, uint64_t>>& covered) {
  for (const auto& [first, last] : covered) {
    if (seq >= first && seq <= last) return true;
  }
  return false;
}

// Durable resolution handle a DeleteDocument WAL record carries in its
// body, so replay re-applies the delete to exactly the document it hit at
// runtime even after compactions renumber global ids:
//   "base:<doc>" — a base-corpus document (base ids are stable forever)
//   "seq:<seq>"  — a live-added document, by its AddDocument seq (stable
//                  under every flush/compaction; resolves to nothing — a
//                  clean no-op — once a compaction drops the document)
std::string BaseDeleteHandle(uint32_t doc) {
  return "base:" + std::to_string(doc);
}
std::string SeqDeleteHandle(uint64_t seq) {
  return "seq:" + std::to_string(seq);
}
bool ParseDeleteHandle(std::string_view body, bool* is_base,
                       uint64_t* value) {
  std::string_view digits;
  if (body.rfind("base:", 0) == 0) {
    *is_base = true;
    digits = body.substr(5);
  } else if (body.rfind("seq:", 0) == 0) {
    *is_base = false;
    digits = body.substr(4);
  } else {
    return false;
  }
  if (digits.empty()) return false;
  uint64_t parsed = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = parsed;
  return true;
}

}  // namespace

XRankEngine::~XRankEngine() { StopMaintenanceThread(); }

const index::LiveSegment* XRankEngine::LiveState::SegmentForDoc(
    uint32_t global_doc) const {
  for (const auto& segment : segments) {
    if (segment->ContainsGlobalDoc(global_doc)) return segment.get();
  }
  if (delta != nullptr && delta->ContainsGlobalDoc(global_doc)) {
    return delta.get();
  }
  return nullptr;
}

std::shared_ptr<const XRankEngine::LiveState> XRankEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(live_mutex_);
  return live_;
}

void XRankEngine::Publish(std::shared_ptr<LiveState> next) {
  std::lock_guard<std::mutex> lock(live_mutex_);
  next->epoch = (live_ != nullptr) ? live_->epoch + 1 : 1;
  live_ = std::move(next);
}

index::LiveSegmentOptions XRankEngine::SegmentOptions() const {
  index::LiveSegmentOptions options;
  options.graph = options_.graph;
  options.elem_rank = options_.elem_rank;
  options.extraction = options_.extraction;
  options.build = options_.build;
  // Live delta/segment builds are always identity-ordered: their documents
  // arrive incrementally, so no BP pass runs and their format spec must not
  // claim one (segment lexicons are validated against the manifest entry).
  options.build.reorder = index::ReorderOptions{};
  options.build.format.reorder_id = 0;
  options.cost = options_.cost;
  options.buffer_pool_pages = options_.segment_pool_pages;
  options.buffer_pool_shards = options_.buffer_pool_shards;
  return options;
}

Result<std::unique_ptr<XRankEngine>> XRankEngine::Build(
    std::vector<xml::Document> documents, const EngineOptions& options) {
  return Build(std::move(documents), {}, options);
}

Status XRankEngine::PrepareBase(
    const std::vector<xml::Document>& documents,
    const std::vector<xml::Document>& html_documents) {
  // Pre-register the update.* series so registry dumps (xrank_cli stats)
  // show them at zero before the first live update.
  (void)UpdateMetrics::Get();
  analyzer_ = index::Analyzer(options_.extraction.analyzer);
  if (options_.result_cache_entries > 0) {
    result_cache_ = std::make_unique<ResultCache>(
        options_.result_cache_entries);
  }
  if (options_.block_cache_bytes > 0) {
    block_cache_ =
        std::make_unique<index::BlockCache>(options_.block_cache_bytes);
  }

  // 1. Graph construction (Section 2.1 data model).
  graph::GraphBuilder builder(options_.graph);
  for (const xml::Document& doc : documents) {
    XRANK_RETURN_NOT_OK(builder.AddDocument(doc));
  }
  for (const xml::Document& doc : html_documents) {
    XRANK_RETURN_NOT_OK(builder.AddHtmlDocument(doc));
  }
  XRANK_ASSIGN_OR_RETURN(graph_, std::move(builder).Finalize());
  base_doc_count_ = static_cast<uint32_t>(graph_.document_count());

  // 2. ElemRank computation (Section 3) — or injection, when the caller
  // (the shard router) already computed ranks over a larger graph this
  // corpus is a contiguous slice of.
  if (!options_.precomputed_elem_ranks.empty()) {
    if (options_.precomputed_elem_ranks.size() != graph_.node_count()) {
      return Status::InvalidArgument(
          "precomputed_elem_ranks holds " +
          std::to_string(options_.precomputed_elem_ranks.size()) +
          " entries but the graph has " + std::to_string(graph_.node_count()) +
          " nodes");
    }
    elem_rank_result_ = rank::ElemRankResult{};
    elem_rank_result_.ranks = options_.precomputed_elem_ranks;
    elem_rank_result_.converged = true;
    elem_ranks_ = elem_rank_result_.ranks;
    return Status::OK();
  }
  XRANK_ASSIGN_OR_RETURN(elem_rank_result_,
                         rank::ComputeElemRank(graph_, options_.elem_rank));
  elem_ranks_ = elem_rank_result_.ranks;
  return Status::OK();
}

Result<std::unique_ptr<XRankEngine>> XRankEngine::Build(
    std::vector<xml::Document> documents,
    std::vector<xml::Document> html_documents, const EngineOptions& options) {
  auto engine = std::unique_ptr<XRankEngine>(new XRankEngine());
  engine->options_ = options;
  XRANK_RETURN_NOT_OK(engine->PrepareBase(documents, html_documents));

  // 3. Posting extraction (shared by every physical index).
  bool need_naive = false;
  for (index::IndexKind kind : options.indexes) {
    need_naive = need_naive || kind == index::IndexKind::kNaiveId ||
                 kind == index::IndexKind::kNaiveRank;
  }
  index::ExtractionOptions extraction = options.extraction;
  extraction.build_naive = need_naive;
  XRANK_ASSIGN_OR_RETURN(
      index::ExtractionResult extracted,
      index::ExtractPostings(engine->graph_, engine->elem_ranks_, extraction));

  // 3b. Optional document reordering (index/reorder.h): permute the global
  // doc ids before any physical index is built. The graph and ElemRank stay
  // in ingest order; queries return physical ids.
  if (engine->options_.build.reorder.enabled()) {
    engine->doc_perm_ = index::ComputeReorderPermutation(
        extracted.dewey_postings, engine->base_doc_count_,
        engine->options_.build.reorder);
  }
  engine->options_.build.format.reorder_id =
      engine->doc_perm_.empty() ? 0 : engine->options_.build.reorder.id();
  index::ApplyDocPermutation(engine->doc_perm_, &extracted);

  // 4. Physical index construction (Section 4), into temp files when
  // disk-backed.
  auto base = std::make_shared<BaseState>();
  base->ordinal_to_dewey = std::move(extracted.ordinal_to_dewey);
  for (index::IndexKind kind : options.indexes) {
    XRANK_ASSIGN_OR_RETURN(IndexInstance instance,
                           engine->BuildInstance(kind, extracted));
    base->indexes.emplace(kind, std::move(instance));
  }

  // 5. Crash-safe commit: rename temp files and seal them in the MANIFEST.
  XRANK_RETURN_NOT_OK(engine->CommitBaseLocked(base->indexes));

  auto state = std::make_shared<LiveState>();
  state->base = std::move(base);
  state->tombstones = std::make_shared<const std::set<uint32_t>>();
  engine->Publish(std::move(state));
  return engine;
}

Status XRankEngine::CommitBaseLocked(
    std::map<index::IndexKind, IndexInstance>& indexes) {
  if (options_.disk_dir.empty()) return Status::OK();
  auto& failpoints = fail::FailPoints::Instance();

  // Make every temp file durable before exposing it under its final name.
  for (auto& [kind, instance] : indexes) {
    XRANK_RETURN_NOT_OK(instance.built.file->Sync());
  }
  if (auto hit = failpoints.Evaluate("index_commit.before_rename")) {
    fail::DieIfCrashRequested(hit);
    return Status::IOError(
        "injected crash before index rename: temp files written, nothing "
        "committed");
  }
  std::vector<index::ManifestEntry> entries;
  for (auto& [kind, instance] : indexes) {
    std::string name = IndexFileName(kind);
    XRANK_RETURN_NOT_OK(
        index::RenameFile(options_.disk_dir + "/" + name + ".tmp",
                          options_.disk_dir + "/" + name));
    index::ManifestEntry entry;
    entry.file = std::move(name);
    entry.kind = kind;
    entry.page_count = instance.built.file->page_count();
    entry.format = instance.built.lexicon.format_spec();
    // Reading back through the disk page file re-verifies every page's own
    // header checksum while computing the whole-file CRC.
    XRANK_ASSIGN_OR_RETURN(entry.crc,
                           index::ChecksumPageFile(*instance.built.file));
    entries.push_back(std::move(entry));
  }
  if (auto hit = failpoints.Evaluate("index_commit.before_manifest")) {
    fail::DieIfCrashRequested(hit);
    return Status::IOError(
        "injected crash before MANIFEST write: index files renamed but not "
        "committed");
  }
  // The MANIFEST rename inside is the atomic commit point; it also fsyncs
  // the directory, making the data-file renames above durable. Committed
  // live-update segments ride along unchanged.
  index::Manifest next_manifest = manifest_;
  next_manifest.entries = std::move(entries);
  XRANK_RETURN_NOT_OK(index::WriteManifestFile(options_.disk_dir,
                                               next_manifest));
  manifest_ = std::move(next_manifest);
  return Status::OK();
}

Result<std::unique_ptr<XRankEngine>> XRankEngine::Open(
    std::vector<xml::Document> documents, const EngineOptions& options) {
  if (options.disk_dir.empty()) {
    return Status::InvalidArgument("Open requires a disk_dir");
  }
  auto engine = std::unique_ptr<XRankEngine>(new XRankEngine());
  engine->options_ = options;
  XRANK_RETURN_NOT_OK(engine->PrepareBase(documents, {}));

  XRANK_ASSIGN_OR_RETURN(index::Manifest manifest,
                         index::ReadManifestFile(options.disk_dir));
  if (manifest.entries.empty()) {
    return Status::Corruption("MANIFEST in '" + options.disk_dir +
                              "' lists no index files");
  }
  engine->manifest_ = manifest;

  auto base = std::make_shared<BaseState>();
  bool need_naive = false;
  engine->options_.indexes.clear();
  for (const index::ManifestEntry& entry : manifest.entries) {
    if (options.verify_on_open) {
      storage::PageId first_bad = storage::kInvalidPage;
      Status verified =
          index::VerifyManifestEntry(options.disk_dir, entry, &first_bad);
      if (!verified.ok()) return verified;
    }
    std::string path = options.disk_dir + "/" + entry.file;
    XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageFile> file,
                           storage::PageFile::OpenOnDisk(path));
    if (file->page_count() != entry.page_count) {
      return Status::Corruption(
          "'" + path + "' has " + std::to_string(file->page_count()) +
          " pages, MANIFEST expects " + std::to_string(entry.page_count));
    }
    XRANK_ASSIGN_OR_RETURN(index::BuiltIndex built,
                           index::OpenIndex(std::move(file)));
    if (built.kind != entry.kind) {
      return Status::Corruption(
          "'" + path + "' holds a " +
          std::string(index::IndexKindName(built.kind)) +
          " index, MANIFEST expects " +
          std::string(index::IndexKindName(entry.kind)));
    }
    if (!(built.lexicon.format_spec() == entry.format)) {
      return Status::Corruption(
          "'" + path + "' was written with posting codec " +
          std::to_string(built.lexicon.format_spec().codec_id) +
          " / rank encoding " +
          std::to_string(
              static_cast<uint32_t>(built.lexicon.format_spec().ranks)) +
          ", MANIFEST expects codec " + std::to_string(entry.format.codec_id) +
          " / rank encoding " +
          std::to_string(static_cast<uint32_t>(entry.format.ranks)));
    }
    IndexInstance instance;
    instance.built = std::move(built);
    instance.cost_model =
        std::make_unique<storage::CostModel>(options.cost);
    instance.pool = std::make_unique<storage::BufferPool>(
        instance.built.file.get(), options.buffer_pool_pages,
        instance.cost_model.get(), options.buffer_pool_shards);
    need_naive = need_naive || entry.kind == index::IndexKind::kNaiveId ||
                 entry.kind == index::IndexKind::kNaiveRank;
    engine->options_.indexes.push_back(entry.kind);
    base->indexes.emplace(entry.kind, std::move(instance));
  }

  // Reorder pass recorded on disk: every base entry must agree (the
  // permutation is a property of the whole build, not one index kind).
  uint32_t reorder_id = manifest.entries.front().format.reorder_id;
  for (const index::ManifestEntry& entry : manifest.entries) {
    if (entry.format.reorder_id != reorder_id) {
      return Status::Corruption(
          "MANIFEST entries disagree on the document-reorder pass: '" +
          manifest.entries.front().file + "' has id " +
          std::to_string(reorder_id) + ", '" + entry.file + "' has id " +
          std::to_string(entry.format.reorder_id));
    }
  }
  if (reorder_id != index::kReorderIdentity) {
    // Re-derive the identical permutation (the pass is deterministic; the
    // caller must open with the same reorder knobs the index was built
    // with — the defaults unless overridden).
    engine->options_.build.reorder.algorithm =
        static_cast<index::ReorderAlgorithm>(reorder_id);
  } else {
    engine->options_.build.reorder = index::ReorderOptions{};
  }
  engine->options_.build.format.reorder_id = reorder_id;

  // Naive result IDs are element ordinals; re-derive the ordinal map from
  // the graph (it is not persisted). A reordered engine additionally
  // recomputes its document permutation from the identity-order extraction.
  if (need_naive || reorder_id != index::kReorderIdentity) {
    index::ExtractionOptions extraction = engine->options_.extraction;
    extraction.build_naive = need_naive;
    XRANK_ASSIGN_OR_RETURN(
        index::ExtractionResult extracted,
        index::ExtractPostings(engine->graph_, engine->elem_ranks_,
                               extraction));
    if (reorder_id != index::kReorderIdentity) {
      engine->doc_perm_ = index::ComputeReorderPermutation(
          extracted.dewey_postings, engine->base_doc_count_,
          engine->options_.build.reorder);
      index::ApplyDocPermutation(engine->doc_perm_, &extracted);
    }
    if (need_naive) {
      base->ordinal_to_dewey = std::move(extracted.ordinal_to_dewey);
    }
  }

  auto state = std::make_shared<LiveState>();
  state->base = std::move(base);
  state->tombstones = std::make_shared<const std::set<uint32_t>>();

  // Committed live segments: contiguous global-id ranges continuing past
  // the base corpus.
  index::LiveSegmentOptions segment_options = engine->SegmentOptions();
  uint32_t expected_base = engine->base_doc_count_;
  for (const index::SegmentManifestEntry& entry : manifest.segments) {
    if (entry.doc_base != expected_base) {
      return Status::Corruption(
          "segment '" + entry.index.file + "' starts at document " +
          std::to_string(entry.doc_base) + ", expected " +
          std::to_string(expected_base));
    }
    XRANK_ASSIGN_OR_RETURN(
        std::shared_ptr<index::LiveSegment> segment,
        index::OpenLiveSegment(options.disk_dir, entry, segment_options,
                               options.verify_on_open));
    expected_base += segment->doc_count();
    state->segments.push_back(std::move(segment));
  }

  // WAL replay: re-apply every acknowledged add/delete a crash interrupted.
  XRANK_RETURN_NOT_OK(engine->ReplayWalLocked(state.get()));
  XRANK_RETURN_NOT_OK(engine->OpenWalLocked());
  engine->Publish(std::move(state));
  return engine;
}

Status XRankEngine::OpenWalLocked() {
  if (options_.disk_dir.empty() || wal_ != nullptr) return Status::OK();
  XRANK_ASSIGN_OR_RETURN(
      wal_, storage::LogWriter::Open(
                options_.disk_dir + "/" + storage::kWalFileName,
                /*truncate=*/false));
  return Status::OK();
}

Status XRankEngine::ReplayWalLocked(LiveState* state) {
  const UpdateMetrics& metrics = UpdateMetrics::Get();
  const std::string path = options_.disk_dir + "/" + storage::kWalFileName;
  XRANK_ASSIGN_OR_RETURN(storage::LogReadResult read,
                         storage::ReadLogFile(path, /*allow_torn_tail=*/true));
  if (read.torn_tail) {
    // The only legal tear: a crash mid-append. Everything before it is
    // intact; cut the file back to the last record boundary.
    XRANK_RETURN_NOT_OK(storage::TruncateLogFile(path, read.valid_bytes));
    wal_dropped_bytes_.fetch_add(read.dropped_bytes,
                                 std::memory_order_relaxed);
    metrics.wal_dropped_bytes->Increment(read.dropped_bytes);
  }
  if (read.records.empty()) return Status::OK();
  wal_replayed_records_.fetch_add(read.records.size(),
                                  std::memory_order_relaxed);
  metrics.wal_replayed->Increment(read.records.size());

  std::vector<std::pair<uint64_t, uint64_t>> covered;
  for (const auto& segment : state->segments) {
    covered.emplace_back(segment->first_seq, segment->last_seq);
  }

  auto tombstones = std::make_shared<std::set<uint32_t>>(*state->tombstones);
  std::vector<storage::LogRecord> pending;  // adds not yet in any segment
  std::vector<size_t> pending_deletes;      // indexes into `pending`
  uint64_t max_seq = 0;
  for (const storage::LogRecord& record : read.records) {
    max_seq = std::max(max_seq, record.seq);
    if (record.type == storage::LogRecord::Type::kAddDocument) {
      // A committed segment already covers this add (the crash hit between
      // segment commit and WAL rewrite); replay is idempotent.
      if (!SeqCovered(record.seq, covered)) pending.push_back(record);
      continue;
    }
    bool is_base = false;
    uint64_t value = 0;
    if (!ParseDeleteHandle(record.body, &is_base, &value)) {
      return Status::Corruption("WAL delete record (seq " +
                                std::to_string(record.seq) +
                                ") carries an unparseable handle");
    }
    if (is_base) {
      // Base delete handles carry the stable IDENTITY doc id; the tombstone
      // set filters on PHYSICAL ids (the first Dewey component of results).
      if (value < base_doc_count_) {
        tombstones->insert(
            doc_perm_.ToPhysical(static_cast<uint32_t>(value)));
      }
      continue;
    }
    // Live-added document, by AddDocument seq: in a committed segment, in
    // the still-pending adds, or already compacted away (clean no-op).
    bool resolved = false;
    for (const auto& segment : state->segments) {
      for (uint32_t i = 0; i < segment->doc_count(); ++i) {
        if (segment->sources[i].seq == value) {
          tombstones->insert(segment->doc_base + i);
          resolved = true;
          break;
        }
      }
      if (resolved) break;
    }
    if (resolved) continue;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].seq == value) {
        pending_deletes.push_back(i);
        break;
      }
    }
  }
  next_seq_ = max_seq + 1;
  wal_records_ = std::move(read.records);

  if (!pending.empty()) {
    uint32_t delta_base = base_doc_count_;
    for (const auto& segment : state->segments) {
      delta_base += segment->doc_count();
    }
    for (size_t index : pending_deletes) {
      tombstones->insert(delta_base + static_cast<uint32_t>(index));
    }
    XRANK_ASSIGN_OR_RETURN(
        std::shared_ptr<index::LiveSegment> delta,
        index::BuildLiveSegment(std::move(pending), delta_base,
                                SegmentOptions(),
                                storage::PageFile::CreateInMemory()));
    state->delta = std::move(delta);
  }
  state->tombstones = std::move(tombstones);
  return Status::OK();
}

Status XRankEngine::AppendWalLocked(const storage::LogRecord& record) {
  if (options_.disk_dir.empty()) return Status::OK();
  XRANK_RETURN_NOT_OK(OpenWalLocked());
  const uint64_t durable_bytes = wal_->file_bytes();
  Status appended = wal_->Append(record);
  if (appended.ok()) appended = wal_->Sync();
  if (!appended.ok()) {
    // The record is not acknowledged, so it must not survive: a failed
    // append may have left a torn frame (and a failed fsync an undurable
    // one) — cut the file back to the last acknowledged boundary so later
    // appends and recovery read a clean log.
    const std::string path = wal_->path();
    wal_.reset();
    (void)storage::TruncateLogFile(path, durable_bytes);
    return appended;
  }
  wal_records_.push_back(record);
  wal_appends_.fetch_add(1, std::memory_order_relaxed);
  UpdateMetrics::Get().wal_appends->Increment();
  return Status::OK();
}

Status XRankEngine::RewriteWalLocked(
    const std::vector<std::pair<uint64_t, uint64_t>>& covered) {
  if (options_.disk_dir.empty()) return Status::OK();
  const std::string path = options_.disk_dir + "/" + storage::kWalFileName;
  const std::string tmp_path = path + ".tmp";
  // Delete records always stay: their handles resolve precisely (or no-op),
  // so replaying them is always safe, and keeping them preserves tombstones
  // on base documents across every restart.
  std::vector<storage::LogRecord> keep;
  for (const storage::LogRecord& record : wal_records_) {
    if (record.type == storage::LogRecord::Type::kAddDocument &&
        SeqCovered(record.seq, covered)) {
      continue;
    }
    keep.push_back(record);
  }
  wal_.reset();  // release the live file before replacing it
  {
    XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::LogWriter> writer,
                           storage::LogWriter::Open(tmp_path,
                                                    /*truncate=*/true));
    for (const storage::LogRecord& record : keep) {
      XRANK_RETURN_NOT_OK(writer->Append(record));
    }
    XRANK_RETURN_NOT_OK(writer->Sync());
  }
  // Crash window: the tmp file exists but the WAL is the old one — replay
  // skips the covered records via the manifest seq ranges, so both sides of
  // the rename recover to the same state.
  if (auto hit = fail::FailPoints::Instance().Evaluate("wal.rewrite_rename")) {
    fail::DieIfCrashRequested(hit);
    return Status::IOError("injected crash before WAL rewrite rename");
  }
  XRANK_RETURN_NOT_OK(index::RenameFile(tmp_path, path));
  XRANK_RETURN_NOT_OK(index::SyncDirectory(options_.disk_dir));
  wal_records_ = std::move(keep);
  return OpenWalLocked();
}

Status XRankEngine::AddDocument(std::string_view uri,
                                std::string_view xml_text) {
  // Parse outside the lock: a malformed document must not reach the WAL.
  XRANK_ASSIGN_OR_RETURN(
      xml::Document parsed,
      xml::ParseDocument(xml_text, std::string(uri)));
  (void)parsed;

  const UpdateMetrics& metrics = UpdateMetrics::Get();
  std::unique_lock<std::mutex> lock(update_mutex_);
  if (options_.background_maintenance && !maintenance_thread_.joinable()) {
    maintenance_thread_ = std::thread(&XRankEngine::MaintenanceLoop, this);
  }

  // Backpressure: a full delta slows producers down instead of failing
  // them — wait for the background flush to drain it.
  auto delta_count = [this] {
    auto state = Snapshot();
    return state->delta != nullptr ? state->delta->doc_count() : 0u;
  };
  bool waited = false;
  WallTimer wait_timer;
  while (delta_count() >= options_.max_delta_documents) {
    if (!options_.background_maintenance) {
      XRANK_RETURN_NOT_OK(FlushLocked());
      continue;
    }
    if (!waited) {
      waited = true;
      wait_timer.Reset();
      backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
      metrics.backpressure_waits->Increment();
    }
    RequestMaintenance();
    backpressure_cv_.wait(lock, [&] {
      if (delta_count() < options_.max_delta_documents) return true;
      std::lock_guard<std::mutex> ml(maintenance_mutex_);
      return !maintenance_status_.ok();
    });
    if (delta_count() >= options_.max_delta_documents) {
      std::lock_guard<std::mutex> ml(maintenance_mutex_);
      if (!maintenance_status_.ok()) return maintenance_status_;
    }
  }
  if (waited) {
    uint64_t waited_us =
        static_cast<uint64_t>(wait_timer.ElapsedSeconds() * 1e6);
    backpressure_us_total_.fetch_add(waited_us, std::memory_order_relaxed);
    metrics.backpressure_us->Observe(waited_us);
  }

  auto state = Snapshot();
  if (ResolveLiveUri(*state, uri).has_value()) {
    return Status::InvalidArgument("document with uri '" + std::string(uri) +
                                   "' already exists");
  }

  storage::LogRecord record;
  record.type = storage::LogRecord::Type::kAddDocument;
  record.seq = next_seq_;
  record.uri = std::string(uri);
  record.body = std::string(xml_text);
  // Durability before visibility: the fsynced WAL record is the commit
  // point of the add.
  XRANK_RETURN_NOT_OK(AppendWalLocked(record));
  ++next_seq_;

  std::vector<storage::LogRecord> sources;
  uint32_t delta_base;
  if (state->delta != nullptr) {
    sources = state->delta->sources;
    delta_base = state->delta->doc_base;
  } else {
    delta_base = base_doc_count_;
    for (const auto& segment : state->segments) {
      delta_base += segment->doc_count();
    }
  }
  sources.push_back(std::move(record));
  XRANK_ASSIGN_OR_RETURN(
      std::shared_ptr<index::LiveSegment> delta,
      index::BuildLiveSegment(std::move(sources), delta_base,
                              SegmentOptions(),
                              storage::PageFile::CreateInMemory()));
  std::shared_ptr<const index::LiveSegment> retired = state->delta;
  auto next = std::make_shared<LiveState>(*state);
  next->delta = std::move(delta);
  next->content_seq = state->content_seq + 1;
  bool request_flush =
      next->delta->doc_count() >= options_.flush_delta_documents;
  Publish(std::move(next));
  if (retired != nullptr && block_cache_ != nullptr) {
    block_cache_->EraseFile(retired->built.file->file_id());
  }
  metrics.add_documents->Increment();
  if (request_flush) {
    if (options_.background_maintenance) {
      RequestMaintenance();
    } else {
      XRANK_RETURN_NOT_OK(FlushLocked());
    }
  }
  return Status::OK();
}

std::optional<std::pair<uint32_t, std::string>> XRankEngine::ResolveLiveUri(
    const LiveState& state, std::string_view uri) const {
  const std::set<uint32_t>& tombstones = *state.tombstones;
  auto live = [&](uint32_t global) { return tombstones.count(global) == 0; };
  if (state.delta != nullptr) {
    if (std::optional<uint32_t> local = state.delta->FindUri(uri)) {
      uint32_t global = state.delta->doc_base + *local;
      if (live(global)) {
        return std::make_pair(
            global, SeqDeleteHandle(state.delta->sources[*local].seq));
      }
    }
  }
  for (auto it = state.segments.rbegin(); it != state.segments.rend(); ++it) {
    if (std::optional<uint32_t> local = (*it)->FindUri(uri)) {
      uint32_t global = (*it)->doc_base + *local;
      if (live(global)) {
        return std::make_pair(global,
                              SeqDeleteHandle((*it)->sources[*local].seq));
      }
    }
  }
  // Base documents: the graph is in identity order; tombstones and the
  // returned global id are in the physical (reordered) space, while the
  // durable delete handle keeps the stable identity id.
  for (uint32_t doc = 0; doc < base_doc_count_; ++doc) {
    uint32_t physical = doc_perm_.ToPhysical(doc);
    if (graph_.documents()[doc].uri == uri && live(physical)) {
      return std::make_pair(physical, BaseDeleteHandle(doc));
    }
  }
  return std::nullopt;
}

Status XRankEngine::DeleteDocument(std::string_view uri) {
  std::unique_lock<std::mutex> lock(update_mutex_);
  auto state = Snapshot();
  std::optional<std::pair<uint32_t, std::string>> resolved =
      ResolveLiveUri(*state, uri);
  if (!resolved.has_value()) {
    return Status::NotFound("no document with uri '" + std::string(uri) +
                            "'");
  }
  storage::LogRecord record;
  record.type = storage::LogRecord::Type::kDeleteDocument;
  record.seq = next_seq_;
  record.uri = std::string(uri);
  record.body = resolved->second;
  XRANK_RETURN_NOT_OK(AppendWalLocked(record));
  ++next_seq_;

  auto tombstones = std::make_shared<std::set<uint32_t>>(*state->tombstones);
  tombstones->insert(resolved->first);
  auto next = std::make_shared<LiveState>(*state);
  next->tombstones = std::move(tombstones);
  // The content version advances, so cached responses that may contain the
  // tombstoned document stop being looked up — no cache sweep needed.
  next->content_seq = state->content_seq + 1;
  Publish(std::move(next));
  UpdateMetrics::Get().delete_documents->Increment();
  return Status::OK();
}

Status XRankEngine::Flush() {
  std::unique_lock<std::mutex> lock(update_mutex_);
  return FlushLocked();
}

Status XRankEngine::FlushLocked() {
  auto state = Snapshot();
  if (state->delta == nullptr) return Status::OK();
  const UpdateMetrics& metrics = UpdateMetrics::Get();
  auto& failpoints = fail::FailPoints::Instance();
  std::shared_ptr<const index::LiveSegment> flushed;
  Status wal_status;

  if (options_.disk_dir.empty()) {
    // In-memory engines: the delta already is a self-contained segment.
    flushed = state->delta;
  } else {
    const index::LiveSegment& delta = *state->delta;
    const std::string& dir = options_.disk_dir;
    const std::string name = SegmentBaseName(delta.first_seq, delta.last_seq);
    const std::string index_tmp = dir + "/" + name + ".xrank.tmp";
    const std::string docs_tmp = dir + "/" + name + ".docs.tmp";
    const std::string index_final = dir + "/" + name + ".xrank";
    const std::string docs_final = dir + "/" + name + ".docs";

    // Rebuild the delta's index into an on-disk page file (same sources,
    // same per-document ranks — bitwise the same postings).
    XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageFile> file,
                           storage::PageFile::CreateOnDisk(index_tmp));
    XRANK_ASSIGN_OR_RETURN(
        std::shared_ptr<index::LiveSegment> segment,
        index::BuildLiveSegment(delta.sources, delta.doc_base,
                                SegmentOptions(), std::move(file)));
    {
      XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::LogWriter> docs,
                             storage::LogWriter::Open(docs_tmp,
                                                      /*truncate=*/true));
      for (const storage::LogRecord& record : segment->sources) {
        XRANK_RETURN_NOT_OK(docs->Append(record));
      }
      XRANK_RETURN_NOT_OK(docs->Sync());
    }
    XRANK_RETURN_NOT_OK(segment->built.file->Sync());
    // Crash window: temp files only — reopen replays the WAL, nothing lost.
    if (auto hit = failpoints.Evaluate("segment_flush.before_rename")) {
      fail::DieIfCrashRequested(hit);
      return Status::IOError(
          "injected crash before segment rename: temp files written, "
          "nothing committed");
    }
    XRANK_RETURN_NOT_OK(index::RenameFile(index_tmp, index_final));
    XRANK_RETURN_NOT_OK(index::RenameFile(docs_tmp, docs_final));

    index::SegmentManifestEntry entry;
    entry.index.file = name + ".xrank";
    entry.index.kind = index::IndexKind::kDil;
    entry.index.page_count = segment->built.file->page_count();
    entry.index.format = segment->built.lexicon.format_spec();
    XRANK_ASSIGN_OR_RETURN(entry.index.crc,
                           index::ChecksumPageFile(*segment->built.file));
    entry.docs_file = name + ".docs";
    XRANK_ASSIGN_OR_RETURN(auto docs_sum, storage::ChecksumFile(docs_final));
    entry.docs_bytes = docs_sum.first;
    entry.docs_crc = docs_sum.second;
    entry.doc_base = segment->doc_base;
    entry.doc_count = segment->doc_count();
    entry.first_seq = segment->first_seq;
    entry.last_seq = segment->last_seq;

    // Crash window: files renamed but no MANIFEST — reopen ignores the
    // stray files, replays the WAL, and the next flush re-renames over
    // them (same name, same content).
    if (auto hit = failpoints.Evaluate("segment_flush.before_manifest")) {
      fail::DieIfCrashRequested(hit);
      return Status::IOError(
          "injected crash before segment MANIFEST commit: segment files "
          "renamed but not committed");
    }
    index::Manifest next_manifest = manifest_;
    next_manifest.segments.push_back(std::move(entry));
    XRANK_RETURN_NOT_OK(index::WriteManifestFile(dir, next_manifest));
    manifest_ = std::move(next_manifest);

    // Crash window: segment committed, WAL still holds the covered adds —
    // replay skips them via the manifest seq range (idempotent). A plain
    // rewrite failure is reported, but the flush itself has committed.
    wal_status =
        RewriteWalLocked({{segment->first_seq, segment->last_seq}});
    flushed = std::move(segment);
  }

  std::shared_ptr<const index::LiveSegment> retired = state->delta;
  auto next = std::make_shared<LiveState>(*state);
  next->segments.push_back(flushed);
  next->delta = nullptr;
  // content_seq unchanged: a flush regroups identical content, so every
  // cached response stays valid (and warm).
  Publish(std::move(next));
  if (retired != flushed && block_cache_ != nullptr) {
    block_cache_->EraseFile(retired->built.file->file_id());
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  metrics.flushes->Increment();
  backpressure_cv_.notify_all();
  return wal_status;
}

Status XRankEngine::CompactSegments() {
  std::unique_lock<std::mutex> lock(update_mutex_);
  return CompactSegmentsLocked();
}

Status XRankEngine::CompactSegmentsLocked() {
  auto state = Snapshot();
  if (state->segments.empty()) return Status::OK();
  const UpdateMetrics& metrics = UpdateMetrics::Get();
  auto& failpoints = fail::FailPoints::Instance();
  const std::set<uint32_t>& tombstones = *state->tombstones;

  std::vector<storage::LogRecord> merged;
  std::vector<std::pair<uint64_t, uint64_t>> old_spans;
  uint64_t dropped = 0;
  for (const auto& segment : state->segments) {
    old_spans.emplace_back(segment->first_seq, segment->last_seq);
    for (uint32_t i = 0; i < segment->doc_count(); ++i) {
      if (tombstones.count(segment->doc_base + i) > 0) {
        ++dropped;
        continue;
      }
      merged.push_back(segment->sources[i]);
    }
  }
  if (state->segments.size() < 2 && dropped == 0) return Status::OK();

  const uint32_t doc_base = base_doc_count_;
  std::shared_ptr<const index::LiveSegment> compacted;
  index::SegmentManifestEntry entry;
  std::string new_index_name;
  std::string new_docs_name;

  if (!merged.empty()) {
    if (options_.disk_dir.empty()) {
      XRANK_ASSIGN_OR_RETURN(
          std::shared_ptr<index::LiveSegment> segment,
          index::BuildLiveSegment(std::move(merged), doc_base,
                                  SegmentOptions(),
                                  storage::PageFile::CreateInMemory()));
      compacted = std::move(segment);
    } else {
      const std::string& dir = options_.disk_dir;
      const std::string name = SegmentBaseName(merged.front().seq,
                                               merged.back().seq);
      const std::string index_tmp = dir + "/" + name + ".xrank.tmp";
      const std::string docs_tmp = dir + "/" + name + ".docs.tmp";
      new_index_name = name + ".xrank";
      new_docs_name = name + ".docs";
      XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageFile> file,
                             storage::PageFile::CreateOnDisk(index_tmp));
      XRANK_ASSIGN_OR_RETURN(
          std::shared_ptr<index::LiveSegment> segment,
          index::BuildLiveSegment(std::move(merged), doc_base,
                                  SegmentOptions(), std::move(file)));
      {
        XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::LogWriter> docs,
                               storage::LogWriter::Open(docs_tmp,
                                                        /*truncate=*/true));
        for (const storage::LogRecord& record : segment->sources) {
          XRANK_RETURN_NOT_OK(docs->Append(record));
        }
        XRANK_RETURN_NOT_OK(docs->Sync());
      }
      XRANK_RETURN_NOT_OK(segment->built.file->Sync());
      // Crash window: temp files only; the committed segments still serve.
      if (auto hit = failpoints.Evaluate("segment_compact.before_rename")) {
        fail::DieIfCrashRequested(hit);
        return Status::IOError(
            "injected crash before compaction rename: temp files written, "
            "old segments still committed");
      }
      // The merged name can collide with a retired segment's (compacting a
      // single segment in place); rename replaces it atomically and the
      // already-open old page file stays readable until the swap.
      XRANK_RETURN_NOT_OK(
          index::RenameFile(index_tmp, dir + "/" + new_index_name));
      XRANK_RETURN_NOT_OK(
          index::RenameFile(docs_tmp, dir + "/" + new_docs_name));
      entry.index.file = new_index_name;
      entry.index.kind = index::IndexKind::kDil;
      entry.index.page_count = segment->built.file->page_count();
      entry.index.format = segment->built.lexicon.format_spec();
      XRANK_ASSIGN_OR_RETURN(entry.index.crc,
                             index::ChecksumPageFile(*segment->built.file));
      entry.docs_file = new_docs_name;
      XRANK_ASSIGN_OR_RETURN(auto docs_sum,
                             storage::ChecksumFile(dir + "/" + new_docs_name));
      entry.docs_bytes = docs_sum.first;
      entry.docs_crc = docs_sum.second;
      entry.doc_base = segment->doc_base;
      entry.doc_count = segment->doc_count();
      entry.first_seq = segment->first_seq;
      entry.last_seq = segment->last_seq;
      compacted = std::move(segment);
    }
  }

  Status wal_status;
  if (!options_.disk_dir.empty()) {
    // Crash window: merged files renamed, MANIFEST still lists the old
    // segments — reopen serves the old ones (their files are untouched
    // unless the merged name replaced one 1:1, in which case the content
    // is identical by construction).
    if (auto hit = failpoints.Evaluate("segment_compact.before_manifest")) {
      fail::DieIfCrashRequested(hit);
      return Status::IOError(
          "injected crash before compaction MANIFEST commit: merged files "
          "renamed but old segments still committed");
    }
    index::Manifest next_manifest = manifest_;
    std::vector<index::SegmentManifestEntry> retired_entries =
        std::move(next_manifest.segments);
    next_manifest.segments.clear();
    if (compacted != nullptr) next_manifest.segments.push_back(entry);
    XRANK_RETURN_NOT_OK(
        index::WriteManifestFile(options_.disk_dir, next_manifest));
    manifest_ = std::move(next_manifest);
    // Retired segment files: best-effort unlink after the commit point.
    for (const index::SegmentManifestEntry& old_entry : retired_entries) {
      if (old_entry.index.file != new_index_name) {
        std::remove(
            (options_.disk_dir + "/" + old_entry.index.file).c_str());
      }
      if (old_entry.docs_file != new_docs_name) {
        std::remove((options_.disk_dir + "/" + old_entry.docs_file).c_str());
      }
    }
    // Adds covered by the retired spans live in the merged segment (or
    // were deliberately dropped); they must not replay.
    wal_status = RewriteWalLocked(old_spans);
  }

  // Remap tombstones: base ids are untouched; segment-range tombstones
  // died with their documents; delta-range ids shift down by the number of
  // dropped documents.
  uint32_t old_delta_base = base_doc_count_;
  for (const auto& segment : state->segments) {
    old_delta_base += segment->doc_count();
  }
  const uint32_t new_delta_base =
      doc_base + (compacted != nullptr ? compacted->doc_count() : 0);
  auto remapped = std::make_shared<std::set<uint32_t>>();
  for (uint32_t t : tombstones) {
    if (t < base_doc_count_) {
      remapped->insert(t);
    } else if (t >= old_delta_base) {
      remapped->insert(t - old_delta_base + new_delta_base);
    }
  }

  // The delta's documents renumber when documents were dropped below them;
  // rebuild it (it is small) at its new doc_base.
  std::shared_ptr<const index::LiveSegment> delta = state->delta;
  std::shared_ptr<const index::LiveSegment> retired_delta;
  if (delta != nullptr && new_delta_base != old_delta_base) {
    retired_delta = delta;
    XRANK_ASSIGN_OR_RETURN(
        std::shared_ptr<index::LiveSegment> rebuilt,
        index::BuildLiveSegment(delta->sources, new_delta_base,
                                SegmentOptions(),
                                storage::PageFile::CreateInMemory()));
    delta = std::move(rebuilt);
  }

  auto next = std::make_shared<LiveState>(*state);
  next->segments.clear();
  if (compacted != nullptr) next->segments.push_back(compacted);
  next->delta = std::move(delta);
  next->tombstones = std::move(remapped);
  // Dropping documents renumbers global ids in query results; cached
  // responses would hand out the old numbering.
  if (dropped > 0) next->content_seq = state->content_seq + 1;
  Publish(std::move(next));

  if (block_cache_ != nullptr) {
    for (const auto& segment : state->segments) {
      if (segment != compacted) {
        block_cache_->EraseFile(segment->built.file->file_id());
      }
    }
    if (retired_delta != nullptr) {
      block_cache_->EraseFile(retired_delta->built.file->file_id());
    }
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  metrics.compactions->Increment();
  return wal_status;
}

Status XRankEngine::CompactDeletions() {
  std::unique_lock<std::mutex> lock(update_mutex_);
  return CompactDeletionsLocked();
}

Status XRankEngine::CompactDeletionsLocked() {
  auto state = Snapshot();
  // Tombstones are physical ids; extraction walks the identity-ordered
  // graph, so its exclusion list maps back through the permutation.
  std::vector<uint32_t> excluded;
  for (uint32_t t : *state->tombstones) {
    if (t < base_doc_count_) excluded.push_back(doc_perm_.ToIdentity(t));
  }
  if (excluded.empty()) return Status::OK();
  auto& failpoints = fail::FailPoints::Instance();

  bool need_naive = false;
  for (const auto& [kind, instance] : state->base->indexes) {
    need_naive = need_naive || kind == index::IndexKind::kNaiveId ||
                 kind == index::IndexKind::kNaiveRank;
  }
  index::ExtractionOptions extraction = options_.extraction;
  extraction.build_naive = need_naive;
  extraction.exclude_documents = std::move(excluded);
  XRANK_ASSIGN_OR_RETURN(
      index::ExtractionResult extracted,
      index::ExtractPostings(graph_, elem_ranks_, extraction));
  // Reapply the ORIGINAL build-time permutation (computed over the full
  // corpus, so a later Open re-derives it identically): surviving documents
  // keep their physical ids, excluded ones simply contribute no postings.
  index::ApplyDocPermutation(doc_perm_, &extracted);

  // Rebuild off to the side; the serving snapshot is untouched until the
  // publish below, so a crash or failure here loses nothing.
  auto base = std::make_shared<BaseState>();
  base->ordinal_to_dewey = std::move(extracted.ordinal_to_dewey);
  for (const auto& [kind, instance] : state->base->indexes) {
    // Crash window (one evaluation per index kind): a kill between per-kind
    // rebuilds leaves temp files only — the committed index still serves.
    if (auto hit = failpoints.Evaluate("compact.rebuild")) {
      fail::DieIfCrashRequested(hit);
      return Status::IOError(
          "injected failure between compaction index rebuilds");
    }
    XRANK_ASSIGN_OR_RETURN(IndexInstance fresh, BuildInstance(kind, extracted));
    base->indexes.emplace(kind, std::move(fresh));
  }
  // Re-commit so the on-disk MANIFEST matches the compacted files (segment
  // entries ride along unchanged). A crash before the new MANIFEST rename
  // leaves a checksum mismatch that Open reports instead of serving torn
  // state.
  XRANK_RETURN_NOT_OK(CommitBaseLocked(base->indexes));

  auto next = std::make_shared<LiveState>(*state);
  next->base = base;
  // Results are unchanged (the tombstone filter already hid the deleted
  // documents), so cached responses stay valid — content_seq is untouched
  // and the tombstone set intentionally survives: it keeps filtering,
  // harmlessly, now that the postings are gone.
  Publish(std::move(next));
  if (block_cache_ != nullptr) {
    for (const auto& [kind, instance] : state->base->indexes) {
      block_cache_->EraseFile(instance.built.file->file_id());
    }
  }
  return Status::OK();
}

void XRankEngine::RequestMaintenance() {
  std::lock_guard<std::mutex> lock(maintenance_mutex_);
  maintenance_requested_ = true;
  maintenance_cv_.notify_one();
}

Status XRankEngine::MaintainOnce() {
  std::unique_lock<std::mutex> lock(update_mutex_);
  auto state = Snapshot();
  if (state->delta != nullptr &&
      state->delta->doc_count() >= options_.flush_delta_documents) {
    XRANK_RETURN_NOT_OK(FlushLocked());
    state = Snapshot();
  }
  if (options_.compact_segment_count > 0 &&
      state->segments.size() >= options_.compact_segment_count) {
    XRANK_RETURN_NOT_OK(CompactSegmentsLocked());
  }
  return Status::OK();
}

void XRankEngine::MaintenanceLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(maintenance_mutex_);
      maintenance_cv_.wait(lock, [this] {
        return maintenance_stop_ || maintenance_requested_;
      });
      if (maintenance_stop_) return;
      maintenance_requested_ = false;
      maintenance_active_ = true;
    }
    Status status = MaintainOnce();
    {
      std::lock_guard<std::mutex> lock(maintenance_mutex_);
      maintenance_active_ = false;
      // Sticky: a failure stays visible (to WaitForMaintenance and blocked
      // producers) until a later pass succeeds.
      maintenance_status_ = std::move(status);
      maintenance_idle_cv_.notify_all();
    }
    backpressure_cv_.notify_all();
  }
}

Status XRankEngine::WaitForMaintenance() {
  std::unique_lock<std::mutex> lock(maintenance_mutex_);
  maintenance_idle_cv_.wait(lock, [this] {
    return !maintenance_requested_ && !maintenance_active_;
  });
  return maintenance_status_;
}

void XRankEngine::StopMaintenanceThread() {
  {
    std::lock_guard<std::mutex> lock(maintenance_mutex_);
    maintenance_stop_ = true;
    maintenance_cv_.notify_all();
  }
  if (maintenance_thread_.joinable()) maintenance_thread_.join();
}

Result<XRankEngine::IndexInstance> XRankEngine::BuildInstance(
    index::IndexKind kind, const index::ExtractionResult& extracted) {
  XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageFile> file,
                         MakePageFile(options_, kind));
  index::BuiltIndex built;
  switch (kind) {
    case index::IndexKind::kDil: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildDilIndex(extracted.dewey_postings,
                                      std::move(file), options_.build));
      break;
    }
    case index::IndexKind::kRdil: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildRdilIndex(extracted.dewey_postings,
                                       std::move(file), options_.build));
      break;
    }
    case index::IndexKind::kHdil: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildHdilIndex(extracted.dewey_postings,
                                       std::move(file), options_.hdil,
                                       options_.build));
      break;
    }
    case index::IndexKind::kNaiveId: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildNaiveIdIndex(extracted.naive_postings,
                                          std::move(file), options_.build));
      break;
    }
    case index::IndexKind::kNaiveRank: {
      XRANK_ASSIGN_OR_RETURN(
          built, index::BuildNaiveRankIndex(extracted.naive_postings,
                                            std::move(file), options_.build));
      break;
    }
  }
  IndexInstance instance;
  instance.built = std::move(built);
  instance.cost_model = std::make_unique<storage::CostModel>(options_.cost);
  instance.pool = std::make_unique<storage::BufferPool>(
      instance.built.file.get(), options_.buffer_pool_pages,
      instance.cost_model.get(), options_.buffer_pool_shards);
  return instance;
}

void XRankEngine::DropCaches() {
  auto state = Snapshot();
  for (const auto& [kind, instance] : state->base->indexes) {
    instance.pool->DropCache();
    instance.cost_model->ResetStreams();
  }
  for (const auto& segment : state->segments) {
    segment->pool->DropCache();
    segment->cost_model->ResetStreams();
  }
  if (state->delta != nullptr) {
    state->delta->pool->DropCache();
    state->delta->cost_model->ResetStreams();
  }
  if (result_cache_ != nullptr) result_cache_->Clear();
  if (block_cache_ != nullptr) block_cache_->Clear();
}

size_t XRankEngine::deleted_document_count() const {
  return Snapshot()->tombstones->size();
}

XRankEngine::UpdateCounters XRankEngine::update_counters() const {
  auto state = Snapshot();
  UpdateCounters counters;
  counters.wal_appends = wal_appends_.load(std::memory_order_relaxed);
  counters.wal_replayed_records =
      wal_replayed_records_.load(std::memory_order_relaxed);
  counters.wal_dropped_bytes =
      wal_dropped_bytes_.load(std::memory_order_relaxed);
  counters.flushes = flushes_.load(std::memory_order_relaxed);
  counters.compactions = compactions_.load(std::memory_order_relaxed);
  counters.backpressure_waits =
      backpressure_waits_.load(std::memory_order_relaxed);
  counters.backpressure_us_total =
      backpressure_us_total_.load(std::memory_order_relaxed);
  counters.segment_count = state->segments.size();
  counters.delta_documents =
      state->delta != nullptr ? state->delta->doc_count() : 0;
  counters.added_documents = counters.delta_documents;
  for (const auto& segment : state->segments) {
    counters.added_documents += segment->doc_count();
  }
  counters.content_seq = state->content_seq;
  counters.epoch = state->epoch;
  return counters;
}

bool XRankEngine::has_index(index::IndexKind kind) const {
  auto state = Snapshot();
  return state->base->indexes.find(kind) != state->base->indexes.end();
}

const index::IndexStats& XRankEngine::index_stats(
    index::IndexKind kind) const {
  static const index::IndexStats kEmpty;
  auto state = Snapshot();
  auto it = state->base->indexes.find(kind);
  if (it == state->base->indexes.end()) return kEmpty;
  return it->second.built.stats;
}

Result<double> XRankEngine::ElemRankOf(const dewey::DeweyId& id) const {
  auto state = Snapshot();
  if (!id.empty() && id.document_id() >= base_doc_count_) {
    const index::LiveSegment* segment = state->SegmentForDoc(id.document_id());
    if (segment == nullptr) {
      return Status::NotFound("no live document " +
                              std::to_string(id.document_id()));
    }
    XRANK_ASSIGN_OR_RETURN(
        graph::NodeId node,
        segment->graph.FindByDewey(RebaseDown(id, segment->doc_base)));
    return segment->elem_ranks[node];
  }
  // Base ids arrive in the physical (query-result) space; the graph is in
  // identity order.
  dewey::DeweyId identity = id;
  if (!doc_perm_.empty() && !id.empty()) {
    identity = WithDocComponent(id, doc_perm_.ToIdentity(id.component(0)));
  }
  XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph_.FindByDewey(identity));
  return elem_ranks_[node];
}

Result<dewey::DeweyId> XRankEngine::MapToAnswerNode(
    const graph::XmlGraph& graph, const dewey::DeweyId& id) const {
  if (options_.answer_node_tags.empty()) return id;
  dewey::DeweyId current = id;
  while (!current.empty()) {
    XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph.FindByDewey(current));
    std::string_view tag = graph.name(node);
    for (const std::string& answer_tag : options_.answer_node_tags) {
      if (tag == answer_tag) return current;
    }
    current = current.Parent();
  }
  return Status::NotFound("no answer node above " + id.ToString());
}

Result<EngineResponse> XRankEngine::Decorate(const LiveState& state,
                                             std::vector<RawHit> hits,
                                             query::QueryStats stats,
                                             size_t m) {
  EngineResponse out;
  out.stats = std::move(stats);
  const std::set<uint32_t>& tombstones = *state.tombstones;
  // Answer-node mapping can send several raw results to one ancestor; keep
  // the best-ranked representative.
  std::set<dewey::DeweyId> emitted;
  for (RawHit& raw : hits) {
    if (out.results.size() >= m) break;
    // Tombstoned documents: the first Dewey component is the document id
    // (Section 4.5), so deleted documents filter in O(1).
    if (!tombstones.empty() &&
        tombstones.count(raw.global_id.document_id()) > 0) {
      continue;
    }
    const graph::XmlGraph& graph =
        raw.segment != nullptr ? raw.segment->graph : graph_;
    const uint32_t doc_base =
        raw.segment != nullptr ? raw.segment->doc_base : 0;
    Result<dewey::DeweyId> mapped = MapToAnswerNode(graph, raw.local_id);
    if (!mapped.ok()) continue;  // no answer node covers this result
    dewey::DeweyId local = std::move(mapped).value();
    dewey::DeweyId global = RebaseUp(local, doc_base);
    // Base-hit local ids are graph-facing (identity order); emitted ids are
    // physical, matching the reordered indexes.
    if (raw.segment == nullptr && !doc_perm_.empty() && !local.empty()) {
      global = WithDocComponent(local, doc_perm_.ToPhysical(local.component(0)));
    }
    if (!emitted.insert(global).second) continue;  // ancestor already emitted

    XRANK_ASSIGN_OR_RETURN(graph::NodeId node, graph.FindByDewey(local));
    EngineResult result;
    result.id = std::move(global);
    result.rank = raw.rank;
    result.element_tag = std::string(graph.name(node));
    result.document_uri = graph.documents()[graph.node(node).document].uri;
    std::string text = graph.DeepText(node);
    if (text.size() > 120) {
      text.resize(117);
      text += "...";
    }
    result.snippet = std::move(text);
    out.results.push_back(std::move(result));
  }
  return out;
}

Result<EngineResponse> XRankEngine::QueryKeywords(
    const std::vector<std::string>& keywords, size_t m,
    index::IndexKind kind) {
  return QueryKeywordsSnapshot(Snapshot(), keywords, m, kind, options_.query);
}

Result<EngineResponse> XRankEngine::QueryKeywords(
    const std::vector<std::string>& keywords, size_t m, index::IndexKind kind,
    const query::QueryOptions& query_options) {
  return QueryKeywordsSnapshot(Snapshot(), keywords, m, kind, query_options);
}

Result<EngineResponse> XRankEngine::QueryKeywordsSnapshot(
    const std::shared_ptr<const LiveState>& state,
    const std::vector<std::string>& keywords, size_t m, index::IndexKind kind,
    const query::QueryOptions& query_options) {
  WallTimer wall;
  auto it = state->base->indexes.find(kind);
  if (it == state->base->indexes.end()) {
    return Status::InvalidArgument(
        std::string(index::IndexKindName(kind)) + " index was not built");
  }
  const IndexInstance& instance = it->second;

  std::vector<std::string> normalized;
  normalized.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    std::string term = analyzer_.NormalizeKeyword(keyword);
    if (term.empty()) {
      return Status::InvalidArgument("keyword '" + keyword +
                                     "' normalizes to nothing");
    }
    normalized.push_back(std::move(term));
  }

  // With the slow-query log armed and no caller-supplied trace, trace the
  // query internally so the log always has a per-stage breakdown.
  query::QueryTrace* trace = query_options.trace;
  std::unique_ptr<query::QueryTrace> local_trace;
  if (trace == nullptr && options_.slow_query_ms != 0) {
    local_trace = std::make_unique<query::QueryTrace>();
    trace = local_trace.get();
  }
  if (trace != nullptr) {
    std::string text;
    for (const std::string& term : normalized) {
      if (!text.empty()) text += ' ';
      text += term;
    }
    trace->set_query_text(std::move(text));
    trace->set_index_kind(std::string(index::IndexKindName(kind)));
  }
  query::QueryOptions exec_options = query_options;
  exec_options.trace = trace;
  const EngineMetrics& metrics = EngineMetrics::Get();

  // Fast path: a repeated (terms, m, kind) query is answered from the
  // result cache without touching the index. Keys embed the snapshot's
  // content version, so anything found here is current by construction.
  // A fleet query (shared θ attached) bypasses the cache both ways: its
  // response may be truncated below the fleet threshold, and a cached
  // standalone response would defeat the θ forwarding it exists for.
  const bool use_result_cache =
      result_cache_ != nullptr && query_options.shared_threshold == nullptr;
  std::string cache_key;
  if (use_result_cache) {
    query::ScopedSpan cache_span(trace, "cache");
    cache_key = ResultCache::MakeKey(normalized, m, kind, state->content_seq);
    EngineResponse cached;
    if (result_cache_->Lookup(cache_key, &cached)) {
      // A hit does no index work; the miss's execution stats would be
      // misleading here.
      cached.stats = query::QueryStats{};
      cached.stats.result_cache_hit = true;
      cache_span.End();
      RecordQueryMetrics(cached.stats);
      if (trace != nullptr) RecordStageMetrics(*trace);
      return cached;
    }
  }

  // All queries share the instance's sharded pool. Cold-cache mode (the
  // paper's experimental setup) evicts it at each query start — under
  // serial queries this reproduces the private-pool-per-query statistics
  // exactly, without the per-query allocation.
  storage::BufferPool* pool = instance.pool.get();
  if (options_.cold_cache_per_query) {
    pool->DropCache();
    instance.cost_model->ResetStreams();
    for (const auto& segment : state->segments) {
      segment->pool->DropCache();
      segment->cost_model->ResetStreams();
    }
    if (state->delta != nullptr) {
      state->delta->pool->DropCache();
      state->delta->cost_model->ResetStreams();
    }
    // Pre-decoded pages would defeat the cold-cache measurement the same
    // way warm pool pages would.
    if (block_cache_ != nullptr) block_cache_->Clear();
  }

  // With tombstones or live documents in play, over-fetch so the post-
  // filter and the cross-segment merge can still fill m results.
  const bool plain = state->tombstones->empty() && !state->HasLiveDocs();
  size_t fetch_m = plain ? m : m * 2 + 64;

  const index::Lexicon* lexicon = &instance.built.lexicon;
  auto run = [&]() -> Result<query::QueryResponse> {
    switch (kind) {
      case index::IndexKind::kDil: {
        query::DilQueryProcessor processor(pool, lexicon, options_.scoring,
                                           /*use_skip_blocks=*/true,
                                           block_cache_.get());
        return processor.Execute(normalized, fetch_m, exec_options);
      }
      case index::IndexKind::kRdil: {
        query::RdilQueryProcessor processor(pool, lexicon, options_.scoring);
        return processor.Execute(normalized, fetch_m, exec_options);
      }
      case index::IndexKind::kHdil: {
        query::HdilQueryProcessor processor(pool, lexicon, options_.scoring,
                                            options_.hdil_strategy,
                                            block_cache_.get());
        return processor.Execute(normalized, fetch_m, exec_options);
      }
      case index::IndexKind::kNaiveId: {
        query::NaiveIdQueryProcessor processor(pool, lexicon,
                                               options_.scoring);
        return processor.Execute(normalized, fetch_m, exec_options);
      }
      case index::IndexKind::kNaiveRank: {
        query::NaiveRankQueryProcessor processor(pool, lexicon,
                                                 options_.scoring);
        return processor.Execute(normalized, fetch_m, exec_options);
      }
    }
    return Status::Internal("unreachable index kind");
  };
  Result<query::QueryResponse> executed = run();
  if (!executed.ok()) {
    metrics.queries->Increment();
    metrics.errors->Increment();
    if (executed.status().code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_queries_.fetch_add(1, std::memory_order_relaxed);
      metrics.deadline_exceeded->Increment();
    }
    return executed.status();
  }
  query::QueryResponse response = std::move(executed).value();
  query::QueryStats stats = std::move(response.stats);

  // Merge the base results with every live segment's (each segment is a
  // self-contained DIL index; its ranks are regrouping-invariant, so one
  // global rank-descending sort is a correct merged ordering).
  const bool naive = kind == index::IndexKind::kNaiveId ||
                     kind == index::IndexKind::kNaiveRank;
  const std::vector<dewey::DeweyId>& ordinal_to_dewey =
      state->base->ordinal_to_dewey;
  std::vector<RawHit> hits;
  hits.reserve(response.results.size());
  for (query::RankedResult& raw : response.results) {
    RawHit hit;
    hit.rank = raw.rank;
    if (naive) {
      uint32_t ordinal = raw.id.component(0);
      if (ordinal >= ordinal_to_dewey.size()) {
        return Status::Internal("naive ordinal out of range");
      }
      hit.local_id = ordinal_to_dewey[ordinal];
    } else {
      hit.local_id = std::move(raw.id);
    }
    // Base indexes store PHYSICAL doc ids; the graph stays in identity
    // order, so graph-facing local_id remaps the document component back.
    hit.global_id = hit.local_id;
    if (!doc_perm_.empty() && !hit.local_id.empty()) {
      hit.local_id = WithDocComponent(
          hit.local_id, doc_perm_.ToIdentity(hit.local_id.component(0)));
    }
    hits.push_back(std::move(hit));
  }
  if (state->HasLiveDocs()) {
    query::ScopedSpan span(trace, "segments");
    std::vector<const index::LiveSegment*> scans;
    for (const auto& segment : state->segments) scans.push_back(segment.get());
    if (state->delta != nullptr) scans.push_back(state->delta.get());
    // Segment scans must not re-enter the caller's trace spans.
    query::QueryOptions segment_options = exec_options;
    segment_options.trace = nullptr;
    for (const index::LiveSegment* segment : scans) {
      query::DilQueryProcessor processor(
          segment->pool.get(), &segment->built.lexicon, options_.scoring,
          /*use_skip_blocks=*/true, block_cache_.get());
      Result<query::QueryResponse> scanned =
          processor.Execute(normalized, fetch_m, segment_options);
      if (!scanned.ok()) {
        metrics.queries->Increment();
        metrics.errors->Increment();
        if (scanned.status().code() == StatusCode::kDeadlineExceeded) {
          deadline_exceeded_queries_.fetch_add(1, std::memory_order_relaxed);
          metrics.deadline_exceeded->Increment();
        }
        return scanned.status();
      }
      query::QueryResponse segment_response = std::move(scanned).value();
      MergeQueryStats(&stats, segment_response.stats);
      for (query::RankedResult& raw : segment_response.results) {
        RawHit hit;
        hit.rank = raw.rank;
        hit.local_id = std::move(raw.id);
        hit.global_id = RebaseUp(hit.local_id, segment->doc_base);
        hit.segment = segment;
        hits.push_back(std::move(hit));
      }
    }
    // Same ordering contract as the per-index top-k heaps: rank
    // descending, Dewey id ascending on ties.
    std::sort(hits.begin(), hits.end(),
              [](const RawHit& a, const RawHit& b) {
                if (a.rank != b.rank) return a.rank > b.rank;
                return a.global_id < b.global_id;
              });
  }
  if (stats.partial) {
    partial_result_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  Result<EngineResponse> decorate_result = [&] {
    query::ScopedSpan span(trace, "decorate");
    return Decorate(*state, std::move(hits), std::move(stats), m);
  }();
  XRANK_RETURN_NOT_OK(decorate_result.status());
  EngineResponse decorated = std::move(decorate_result).value();
  // A partial response reflects this query's budget, not the index: caching
  // it would serve truncated results to later unconstrained queries. The
  // same goes for θ-truncated fleet responses (use_result_cache above).
  if (use_result_cache && !decorated.stats.partial) {
    result_cache_->Insert(cache_key, decorated);
  }
  RecordQueryMetrics(decorated.stats);
  if (trace != nullptr) RecordStageMetrics(*trace);

  double wall_ms = wall.ElapsedSeconds() * 1e3;
  if (options_.slow_query_ms != 0 && trace != nullptr &&
      wall_ms >= static_cast<double>(options_.slow_query_ms)) {
    SlowQueryEntry entry;
    entry.query = trace->query_text();
    entry.kind = kind;
    entry.wall_ms = wall_ms;
    // Copy, not move: a caller-supplied trace stays theirs to render.
    entry.trace = *trace;
    RecordSlowQuery(std::move(entry));
  }
  return decorated;
}

void XRankEngine::RecordSlowQuery(SlowQueryEntry entry) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  std::lock_guard<std::mutex> lock(slow_query_mutex_);
  if (options_.slow_query_log_entries == 0) return;
  if (slow_query_ring_.size() < options_.slow_query_log_entries) {
    slow_query_ring_.push_back(std::move(entry));
  } else {
    slow_query_ring_[slow_query_next_] = std::move(entry);
    slow_query_next_ = (slow_query_next_ + 1) % slow_query_ring_.size();
  }
  ++slow_query_total_;
  metrics.slow_queries->Increment();
  metrics.slow_query_log_size->Set(
      static_cast<int64_t>(slow_query_ring_.size()));
}

std::vector<XRankEngine::SlowQueryEntry> XRankEngine::slow_queries() const {
  std::lock_guard<std::mutex> lock(slow_query_mutex_);
  std::vector<SlowQueryEntry> out;
  out.reserve(slow_query_ring_.size());
  // slow_query_next_ is the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < slow_query_ring_.size(); ++i) {
    out.push_back(
        slow_query_ring_[(slow_query_next_ + i) % slow_query_ring_.size()]);
  }
  return out;
}

uint64_t XRankEngine::slow_query_count() const {
  std::lock_guard<std::mutex> lock(slow_query_mutex_);
  return slow_query_total_;
}

XRankEngine::ServingCounters XRankEngine::serving_counters(
    index::IndexKind kind) const {
  auto state = Snapshot();
  ServingCounters counters;
  auto it = state->base->indexes.find(kind);
  if (it != state->base->indexes.end()) {
    counters.pool_hits = it->second.pool->hits();
    counters.pool_misses = it->second.pool->misses();
  }
  if (result_cache_ != nullptr) {
    counters.result_cache_hits = result_cache_->hits();
    counters.result_cache_lookups = result_cache_->lookups();
  }
  if (block_cache_ != nullptr) {
    counters.block_cache_hits = block_cache_->hits();
    counters.block_cache_lookups = block_cache_->lookups();
  }
  counters.deadline_exceeded_queries =
      deadline_exceeded_queries_.load(std::memory_order_relaxed);
  counters.partial_result_queries =
      partial_result_queries_.load(std::memory_order_relaxed);
  return counters;
}

Result<EngineResponse> XRankEngine::QueryWithPath(
    std::string_view query_text, size_t m, index::IndexKind kind,
    const std::vector<std::string>& path) {
  if (path.empty()) return Query(query_text, m, kind);
  // Over-fetch, then keep results whose tag chain ends with `path`.
  XRANK_ASSIGN_OR_RETURN(EngineResponse raw,
                         Query(query_text, m * 4 + 64, kind));
  auto state = Snapshot();
  EngineResponse out;
  out.stats = raw.stats;
  for (core::EngineResult& result : raw.results) {
    if (out.results.size() >= m) break;
    const graph::XmlGraph* graph = &graph_;
    uint32_t doc_base = 0;
    if (!result.id.empty() && result.id.document_id() >= base_doc_count_) {
      const index::LiveSegment* segment =
          state->SegmentForDoc(result.id.document_id());
      if (segment == nullptr) continue;  // regrouped away under our feet
      graph = &segment->graph;
      doc_base = segment->doc_base;
    }
    dewey::DeweyId current = RebaseDown(result.id, doc_base);
    // Base results carry physical doc ids; the tag-chain walk reads the
    // identity-ordered graph.
    if (doc_base == 0 && !doc_perm_.empty() && !current.empty()) {
      current = WithDocComponent(current,
                                 doc_perm_.ToIdentity(current.component(0)));
    }
    bool matches = true;
    for (size_t i = path.size(); i-- > 0;) {
      if (current.empty()) {
        matches = false;
        break;
      }
      Result<graph::NodeId> node = graph->FindByDewey(current);
      if (!node.ok() || graph->name(node.value()) != path[i]) {
        matches = false;
        break;
      }
      current = current.Parent();
    }
    if (matches) out.results.push_back(std::move(result));
  }
  return out;
}

Result<EngineResponse> XRankEngine::Query(std::string_view query_text,
                                          size_t m, index::IndexKind kind) {
  return Query(query_text, m, kind, options_.query);
}

Result<EngineResponse> XRankEngine::Query(
    std::string_view query_text, size_t m, index::IndexKind kind,
    const query::QueryOptions& query_options) {
  std::vector<std::string> keywords;
  {
    query::ScopedSpan span(query_options.trace, "parse");
    uint32_t position = 0;
    for (index::Analyzer::Token& token :
         analyzer_.Tokenize(query_text, &position)) {
      keywords.push_back(std::move(token.term));
    }
  }
  if (keywords.empty()) {
    return Status::InvalidArgument("query contains no keywords");
  }
  return QueryKeywords(keywords, m, kind, query_options);
}

}  // namespace xrank::core
