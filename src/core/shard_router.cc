#include "core/shard_router.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "common/crc32.h"
#include "common/metrics.h"
#include "common/safe_strerror.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "graph/builder.h"
#include "index/manifest.h"
#include "query/result_heap.h"
#include "query/trace.h"
#include "rank/elem_rank.h"

namespace xrank::core {

namespace {

constexpr char kShardingHeader[] = "xrank-sharding v1";

// Router-level metrics series, registered once (same pattern as the
// engine's query.* series in core/engine.cc).
struct RouterMetrics {
  metrics::Counter* queries = nullptr;
  metrics::Counter* shard_queries = nullptr;
  metrics::Counter* errors = nullptr;
  metrics::Counter* partial = nullptr;
  metrics::Counter* deadline_exceeded = nullptr;
  metrics::Counter* shards_skipped = nullptr;
  metrics::Counter* theta_raises = nullptr;
  metrics::Histogram* query_us = nullptr;

  static const RouterMetrics& Get() {
    static const RouterMetrics* instance = [] {
      auto* rm = new RouterMetrics();
      metrics::Registry& registry = metrics::Registry::Instance();
      rm->queries = registry.GetCounter("router.queries");
      rm->shard_queries = registry.GetCounter("router.shard_queries");
      rm->errors = registry.GetCounter("router.errors");
      rm->partial = registry.GetCounter("router.partial");
      rm->deadline_exceeded = registry.GetCounter("router.deadline_exceeded");
      rm->shards_skipped = registry.GetCounter("router.shards_skipped");
      rm->theta_raises = registry.GetCounter("router.theta_raises");
      rm->query_us = registry.GetHistogram("router.query_us");
      return rm;
    }();
    return *instance;
  }
};

Result<uint64_t> ParseU64(std::string_view token, const char* what) {
  uint64_t value = 0;
  if (token.empty()) return Status::Corruption(std::string(what) + " missing");
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::Corruption("bad " + std::string(what) + " '" +
                                std::string(token) + "' in SHARDING");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

// Same doc-id rebase as the engine's live segments: the first Dewey
// component is the document id, everything below it is unchanged.
dewey::DeweyId RebaseUp(const dewey::DeweyId& local, uint32_t doc_base) {
  if (doc_base == 0) return local;
  std::vector<uint32_t> components = local.components();
  components[0] += doc_base;
  return dewey::DeweyId(std::move(components));
}

Status MakeDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create directory '" + path +
                           "': " + SafeStrError(errno));
  }
  return Status::OK();
}

// Durable small-file write: tmp + fsync + rename + directory fsync — the
// MANIFEST commit idiom (index/manifest.h) applied to the SHARDING file.
Status WriteFileDurably(const std::string& dir, const std::string& name,
                        const std::string& blob) {
  std::string tmp_path = dir + "/" + name + ".tmp";
  std::string final_path = dir + "/" + name;
  int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create '" + tmp_path +
                           "': " + SafeStrError(errno));
  }
  size_t written = 0;
  while (written < blob.size()) {
    ssize_t n = ::write(fd, blob.data() + written, blob.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IOError("write of '" + tmp_path +
                                      "' failed: " + SafeStrError(errno));
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IOError("fsync of '" + tmp_path +
                                    "' failed: " + SafeStrError(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  XRANK_RETURN_NOT_OK(index::RenameFile(tmp_path, final_path));
  return index::SyncDirectory(dir);
}

}  // namespace

std::string ShardDirName(size_t shard_index) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "shard-%04zu", shard_index);
  return buffer;
}

std::string SerializeShardingManifest(const ShardingManifest& manifest) {
  std::string out(kShardingHeader);
  out += "\n";
  for (size_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardDescriptor& shard = manifest.shards[i];
    char line[256];
    std::snprintf(line, sizeof(line), "shard %zu dir %s base %u count %u\n", i,
                  shard.dir.c_str(), shard.doc_base, shard.doc_count);
    out += line;
  }
  if (manifest.reorder_id != 0) {
    char line[64];
    std::snprintf(line, sizeof(line), "reorder %u\n", manifest.reorder_id);
    out += line;
  }
  char commit[64];
  std::snprintf(commit, sizeof(commit), "commit %u\n", Crc32c(out));
  out += commit;
  return out;
}

Result<ShardingManifest> ParseShardingManifest(std::string_view text) {
  size_t commit_pos = text.rfind("\ncommit ");
  if (commit_pos == std::string_view::npos) {
    return Status::Corruption("SHARDING has no commit trailer");
  }
  std::string_view body = text.substr(0, commit_pos + 1);
  std::string_view trailer = text.substr(commit_pos + 1);
  if (!StartsWith(trailer, "commit ") || trailer.back() != '\n') {
    return Status::Corruption("malformed SHARDING commit trailer");
  }
  XRANK_ASSIGN_OR_RETURN(
      uint64_t stored_crc,
      ParseU64(trailer.substr(7, trailer.size() - 8), "commit crc"));
  uint32_t computed = Crc32c(body);
  if (stored_crc != computed) {
    return Status::Corruption("SHARDING checksum mismatch (stored " +
                              std::to_string(stored_crc) + ", computed " +
                              std::to_string(computed) + ")");
  }

  ShardingManifest manifest;
  bool saw_header = false;
  for (std::string_view line : SplitString(body, "\n")) {
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kShardingHeader) {
        return Status::Corruption("bad SHARDING header '" + std::string(line) +
                                  "'");
      }
      saw_header = true;
      continue;
    }
    std::vector<std::string_view> tokens = SplitString(line, " ");
    if (tokens.size() == 2 && tokens[0] == "reorder") {
      XRANK_ASSIGN_OR_RETURN(uint64_t reorder_id,
                             ParseU64(tokens[1], "reorder id"));
      if (reorder_id > index::kMaxReorderId) {
        return Status::Corruption(
            "SHARDING records unknown document-reorder pass id " +
            std::to_string(reorder_id));
      }
      manifest.reorder_id = static_cast<uint32_t>(reorder_id);
      continue;
    }
    if (tokens.size() != 8 || tokens[0] != "shard" || tokens[2] != "dir" ||
        tokens[4] != "base" || tokens[6] != "count") {
      return Status::Corruption("malformed SHARDING line '" +
                                std::string(line) + "'");
    }
    XRANK_ASSIGN_OR_RETURN(uint64_t index, ParseU64(tokens[1], "shard index"));
    if (index != manifest.shards.size()) {
      return Status::Corruption("SHARDING shard indexes out of order (got " +
                                std::to_string(index) + ", expected " +
                                std::to_string(manifest.shards.size()) + ")");
    }
    ShardDescriptor shard;
    shard.dir = std::string(tokens[3]);
    XRANK_ASSIGN_OR_RETURN(uint64_t base, ParseU64(tokens[5], "doc base"));
    shard.doc_base = static_cast<uint32_t>(base);
    XRANK_ASSIGN_OR_RETURN(uint64_t count, ParseU64(tokens[7], "doc count"));
    shard.doc_count = static_cast<uint32_t>(count);
    manifest.shards.push_back(std::move(shard));
  }
  if (manifest.shards.empty()) {
    return Status::Corruption("SHARDING describes no shards");
  }
  // The partition must be a contiguous cover starting at document 0 —
  // the invariant the global<->local Dewey rebase relies on.
  uint32_t expected_base = 0;
  for (const ShardDescriptor& shard : manifest.shards) {
    if (shard.doc_base != expected_base) {
      return Status::Corruption(
          "SHARDING partition not contiguous: shard '" + shard.dir +
          "' starts at " + std::to_string(shard.doc_base) + ", expected " +
          std::to_string(expected_base));
    }
    if (shard.doc_count == 0) {
      return Status::Corruption("SHARDING shard '" + shard.dir + "' is empty");
    }
    expected_base += shard.doc_count;
  }
  return manifest;
}

Status WriteShardingFile(const std::string& root_dir,
                         const ShardingManifest& manifest) {
  return WriteFileDurably(root_dir, kShardingFileName,
                          SerializeShardingManifest(manifest));
}

Result<ShardingManifest> ReadShardingFile(const std::string& root_dir) {
  std::string path = root_dir + "/" + kShardingFileName;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no SHARDING in '" + root_dir +
                              "': not a committed sharded root");
    }
    return Status::IOError("cannot open '" + path +
                           "': " + SafeStrError(errno));
  }
  std::string blob;
  char buffer[4096];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IOError("read of '" + path +
                                      "' failed: " + SafeStrError(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    blob.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return ParseShardingManifest(blob);
}

bool IsShardedRoot(const std::string& root_dir) {
  struct stat st;
  return ::stat((root_dir + "/" + kShardingFileName).c_str(), &st) == 0;
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Build(
    std::vector<xml::Document> documents, const ShardRouterOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (documents.empty()) {
    return Status::InvalidArgument("cannot shard an empty corpus");
  }
  if (options.num_shards > documents.size()) {
    return Status::InvalidArgument(
        "cannot split " + std::to_string(documents.size()) +
        " documents into " + std::to_string(options.num_shards) +
        " shards (every shard needs at least one document)");
  }
  ShardingManifest manifest;
  const size_t total = documents.size();
  for (size_t i = 0; i < options.num_shards; ++i) {
    // pisa-style even split: shard i owns [i*N/S, (i+1)*N/S).
    const size_t begin = i * total / options.num_shards;
    const size_t end = (i + 1) * total / options.num_shards;
    ShardDescriptor shard;
    shard.dir = ShardDirName(i);
    shard.doc_base = static_cast<uint32_t>(begin);
    shard.doc_count = static_cast<uint32_t>(end - begin);
    manifest.shards.push_back(std::move(shard));
  }
  manifest.reorder_id = options.engine.build.reorder.enabled()
                            ? options.engine.build.reorder.id()
                            : index::kReorderIdentity;
  return Assemble(std::move(documents), options, std::move(manifest),
                  /*open_existing=*/false);
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Open(
    std::vector<xml::Document> documents, const ShardRouterOptions& options) {
  if (options.root_dir.empty()) {
    return Status::InvalidArgument("Open requires root_dir");
  }
  XRANK_ASSIGN_OR_RETURN(ShardingManifest manifest,
                         ReadShardingFile(options.root_dir));
  uint32_t total = 0;
  for (const ShardDescriptor& shard : manifest.shards) {
    total += shard.doc_count;
  }
  if (total != documents.size()) {
    return Status::InvalidArgument(
        "SHARDING covers " + std::to_string(total) + " documents but " +
        std::to_string(documents.size()) + " were provided");
  }
  return Assemble(std::move(documents), options, std::move(manifest),
                  /*open_existing=*/true);
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Assemble(
    std::vector<xml::Document> documents, const ShardRouterOptions& options,
    ShardingManifest manifest, bool open_existing) {
  auto router = std::unique_ptr<ShardRouter>(new ShardRouter());
  router->options_ = options;

  // Global graph + ElemRank, exactly as a monolithic build would compute
  // them (cross-shard hyperlinks resolve here, and the kFinal random-jump
  // mass sees the full corpus-wide document count).
  graph::GraphBuilder builder(options.engine.graph);
  for (const xml::Document& doc : documents) {
    XRANK_RETURN_NOT_OK(builder.AddDocument(doc));
  }
  XRANK_ASSIGN_OR_RETURN(graph::XmlGraph global_graph,
                         std::move(builder).Finalize());
  XRANK_ASSIGN_OR_RETURN(
      rank::ElemRankResult global_ranks,
      rank::ComputeElemRank(global_graph, options.engine.elem_rank));

  // Graph nodes are created document-by-document, so each document owns a
  // contiguous node range and a shard's rank slice is one subarray.
  const size_t total_docs = documents.size();
  std::vector<size_t> doc_node_start(total_docs + 1, 0);
  size_t next_doc = 0;
  for (size_t id = 0; id < global_graph.node_count(); ++id) {
    const uint32_t doc = global_graph.node(id).document;
    if (doc + 1 < next_doc) {
      return Status::Internal(
          "graph nodes are not grouped by document (node " +
          std::to_string(id) + " belongs to document " + std::to_string(doc) +
          " after document " + std::to_string(next_doc) + " started)");
    }
    while (next_doc <= doc) doc_node_start[next_doc++] = id;
  }
  while (next_doc <= total_docs) {
    doc_node_start[next_doc++] = global_graph.node_count();
  }

  // Optional global document reordering: the BP permutation is computed
  // over the IDENTITY-order corpus (the graph and ElemRank above are
  // float-summation-order sensitive, so they never see permuted input),
  // then documents and the per-document rank slices are gathered into
  // physical order BEFORE the contiguous split — so shard-local builds run
  // identity-ordered on pre-permuted docs and the scatter-gather top-k
  // stays bitwise-identical to the reordered monolithic engine.
  if (manifest.reorder_id != index::kReorderIdentity) {
    index::ReorderOptions reorder = options.engine.build.reorder;
    reorder.algorithm =
        static_cast<index::ReorderAlgorithm>(manifest.reorder_id);
    index::ExtractionOptions extraction = options.engine.extraction;
    extraction.build_naive = false;
    extraction.exclude_documents.clear();
    XRANK_ASSIGN_OR_RETURN(
        index::ExtractionResult extracted,
        index::ExtractPostings(global_graph, global_ranks.ranks, extraction));
    index::DocPermutation perm = index::ComputeReorderPermutation(
        extracted.dewey_postings, static_cast<uint32_t>(total_docs), reorder);
    if (!perm.empty()) {
      std::vector<xml::Document> permuted_docs;
      permuted_docs.reserve(total_docs);
      std::vector<double> permuted_ranks;
      permuted_ranks.reserve(global_ranks.ranks.size());
      std::vector<size_t> permuted_starts(total_docs + 1, 0);
      for (size_t p = 0; p < total_docs; ++p) {
        const uint32_t old_doc = perm.new_to_old[p];
        permuted_docs.push_back(std::move(documents[old_doc]));
        permuted_ranks.insert(
            permuted_ranks.end(),
            global_ranks.ranks.begin() +
                static_cast<ptrdiff_t>(doc_node_start[old_doc]),
            global_ranks.ranks.begin() +
                static_cast<ptrdiff_t>(doc_node_start[old_doc + 1]));
        permuted_starts[p + 1] = permuted_ranks.size();
      }
      documents = std::move(permuted_docs);
      global_ranks.ranks = std::move(permuted_ranks);
      doc_node_start = std::move(permuted_starts);
    } else if (!open_existing) {
      // Nothing to reorder (tiny corpus); commit the truth.
      manifest.reorder_id = index::kReorderIdentity;
    }
  }

  const bool disk_backed = !options.root_dir.empty();
  if (disk_backed && !open_existing) {
    XRANK_RETURN_NOT_OK(MakeDirectory(options.root_dir));
  }

  for (const ShardDescriptor& shard : manifest.shards) {
    EngineOptions shard_options = options.engine;
    // A hyperlink across a shard boundary dangles inside the shard's local
    // graph; its rank contribution is already in the global slice.
    shard_options.graph.ignore_dangling_links = true;
    // The global permutation (if any) already happened above; each shard
    // builds identity-ordered over its pre-permuted slice, and its headers
    // record no reorder pass (the SHARDING file carries it for the root).
    shard_options.build.reorder = index::ReorderOptions{};
    shard_options.build.format.reorder_id = 0;
    const size_t node_begin = doc_node_start[shard.doc_base];
    const size_t node_end = doc_node_start[shard.doc_base + shard.doc_count];
    shard_options.precomputed_elem_ranks.assign(
        global_ranks.ranks.begin() + static_cast<ptrdiff_t>(node_begin),
        global_ranks.ranks.begin() + static_cast<ptrdiff_t>(node_end));
    shard_options.disk_dir =
        disk_backed ? options.root_dir + "/" + shard.dir : "";

    std::vector<xml::Document> shard_documents;
    shard_documents.reserve(shard.doc_count);
    for (uint32_t d = 0; d < shard.doc_count; ++d) {
      shard_documents.push_back(std::move(documents[shard.doc_base + d]));
    }

    Result<std::unique_ptr<XRankEngine>> engine = [&] {
      if (open_existing) {
        return XRankEngine::Open(std::move(shard_documents), shard_options);
      }
      if (disk_backed) {
        Status made = MakeDirectory(shard_options.disk_dir);
        if (!made.ok()) {
          return Result<std::unique_ptr<XRankEngine>>(made);
        }
      }
      return XRankEngine::Build(std::move(shard_documents), shard_options);
    }();
    if (!engine.ok()) {
      return Status(engine.status().code(),
                    "shard '" + shard.dir + "': " + engine.status().message());
    }
    if (engine.value()->graph().document_count() != shard.doc_count) {
      return Status::Internal(
          "shard '" + shard.dir + "' serves " +
          std::to_string(engine.value()->graph().document_count()) +
          " documents, expected " + std::to_string(shard.doc_count));
    }
    router->shards_.push_back(Shard{std::move(engine).value()});
  }
  router->manifest_ = std::move(manifest);

  // Commit point for a disk-backed build: every shard directory already
  // committed its own MANIFEST; the root SHARDING file lands last, so a
  // crash anywhere earlier leaves no committed sharded root.
  if (disk_backed && !open_existing) {
    XRANK_RETURN_NOT_OK(
        WriteShardingFile(options.root_dir, router->manifest_));
  }

  size_t threads = options.scatter_threads > 0 ? options.scatter_threads
                                               : router->shards_.size();
  threads = std::min(threads, router->shards_.size());
  router->pool_ = std::make_unique<ThreadPool>(static_cast<int>(threads));
  return router;
}

Result<EngineResponse> ShardRouter::Query(std::string_view query_text,
                                          size_t m, index::IndexKind kind) {
  return Query(query_text, m, kind, query::QueryOptions{});
}

Result<EngineResponse> ShardRouter::Query(
    std::string_view query_text, size_t m, index::IndexKind kind,
    const query::QueryOptions& query_options,
    std::vector<query::QueryStats>* per_shard_stats) {
  std::string text(query_text);
  return Scatter(
      [&text, m, kind](XRankEngine& engine,
                       const query::QueryOptions& shard_options) {
        return engine.Query(text, m, kind, shard_options);
      },
      m, query_options, per_shard_stats);
}

Result<EngineResponse> ShardRouter::QueryKeywords(
    const std::vector<std::string>& keywords, size_t m,
    index::IndexKind kind) {
  return QueryKeywords(keywords, m, kind, query::QueryOptions{});
}

Result<EngineResponse> ShardRouter::QueryKeywords(
    const std::vector<std::string>& keywords, size_t m, index::IndexKind kind,
    const query::QueryOptions& query_options,
    std::vector<query::QueryStats>* per_shard_stats) {
  return Scatter(
      [&keywords, m, kind](XRankEngine& engine,
                           const query::QueryOptions& shard_options) {
        return engine.QueryKeywords(keywords, m, kind, shard_options);
      },
      m, query_options, per_shard_stats);
}

Result<EngineResponse> ShardRouter::Scatter(
    const std::function<Result<EngineResponse>(XRankEngine&,
                                               const query::QueryOptions&)>&
        run_query,
    size_t m, const query::QueryOptions& query_options,
    std::vector<query::QueryStats>* per_shard_stats) {
  WallTimer wall;
  const RouterMetrics& rm = RouterMetrics::Get();
  const size_t n = shards_.size();
  queries_.fetch_add(1, std::memory_order_relaxed);
  rm.queries->Increment();

  query::SharedTopKThreshold shared;
  const auto start = std::chrono::steady_clock::now();
  const bool tracing = query_options.trace != nullptr;

  struct Outcome {
    Status status;
    bool ran = false;      // the shard returned a response
    bool skipped = false;  // never started: the budget was already spent
    EngineResponse response;
    query::QueryTrace trace;
  };
  std::vector<Outcome> outcomes(n);

  auto run_shard = [&](size_t i) {
    Outcome& out = outcomes[i];
    query::QueryOptions shard_options = query_options;
    // A QueryTrace is single-threaded; every shard records its own and the
    // gather splices them into the caller's afterwards.
    shard_options.trace = tracing ? &out.trace : nullptr;
    shard_options.shared_threshold =
        options_.forward_theta ? &shared : nullptr;
    if (query_options.deadline_ms > 0) {
      const int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      const int64_t remaining = query_options.deadline_ms - elapsed_ms;
      if (remaining <= 0) {
        out.skipped = true;
        out.status = Status::DeadlineExceeded(
            "query budget spent before shard " + std::to_string(i) +
            " started");
        return;
      }
      shard_options.deadline_ms = remaining;
    }
    shard_queries_.fetch_add(1, std::memory_order_relaxed);
    rm.shard_queries->Increment();
    Result<EngineResponse> result = run_query(*shards_[i].engine,
                                              shard_options);
    if (result.ok()) {
      out.ran = true;
      out.response = std::move(result).value();
    } else {
      out.status = result.status();
    }
  };

  if (options_.sequential_scatter || n == 1) {
    for (size_t i = 0; i < n; ++i) run_shard(i);
  } else {
    // The pool runs one job at a time; concurrent router queries take
    // turns scattering (each still fans out across the whole pool).
    std::lock_guard<std::mutex> lock(scatter_mutex_);
    pool_->ParallelFor(0, n, 1,
                       [&](size_t begin, size_t end, size_t /*chunk*/) {
                         for (size_t i = begin; i < end; ++i) run_shard(i);
                       });
  }

  const uint64_t raises = shared.raises();
  theta_raises_.fetch_add(raises, std::memory_order_relaxed);
  rm.theta_raises->Increment(raises);

  // Error policy: any hard shard failure fails the query; deadline misses
  // follow the partial-results contract.
  Status hard_error;
  bool deadline_hit = false;
  for (const Outcome& out : outcomes) {
    if (out.ran) continue;
    if (out.status.code() == StatusCode::kDeadlineExceeded) {
      deadline_hit = true;
    } else if (hard_error.ok()) {
      hard_error = out.status;
    }
  }
  if (!hard_error.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    rm.errors->Increment();
    return hard_error;
  }
  if (deadline_hit) {
    for (const Outcome& out : outcomes) {
      if (out.skipped) {
        shards_skipped_.fetch_add(1, std::memory_order_relaxed);
        rm.shards_skipped->Increment();
      }
    }
    if (!query_options.allow_partial_results) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      rm.deadline_exceeded->Increment();
      return Status::DeadlineExceeded(
          "scatter-gather deadline exceeded (" +
          std::to_string(query_options.deadline_ms) + " ms)");
    }
  }

  // Gather: rebase every shard's decorated results into the global doc-id
  // space and re-rank through one TopKAccumulator — the same comparator
  // (rank descending, Dewey id ascending) the monolithic engine sorts
  // with, so the merged top-m is bitwise-identical to it.
  EngineResponse response;
  query::QueryStats& stats = response.stats;
  query::TopKAccumulator gather(m);
  std::unordered_map<dewey::DeweyId, EngineResult, dewey::DeweyIdHash> by_id;
  std::vector<std::string> labels;
  bool every_shard_cache_hit = true;
  if (per_shard_stats != nullptr) {
    per_shard_stats->assign(n, query::QueryStats{});
  }
  for (size_t i = 0; i < n; ++i) {
    const Outcome& out = outcomes[i];
    if (!out.ran) {
      every_shard_cache_hit = false;
      continue;
    }
    const EngineResponse& shard_response = out.response;
    query::MergeQueryStats(&stats, shard_response.stats);
    stats.switched_to_dil =
        stats.switched_to_dil || shard_response.stats.switched_to_dil;
    stats.threshold_terminated = stats.threshold_terminated ||
                                 shard_response.stats.threshold_terminated;
    if (!shard_response.stats.result_cache_hit) every_shard_cache_hit = false;
    const std::string& label = shard_response.stats.algorithm;
    if (!label.empty() &&
        std::find(labels.begin(), labels.end(), label) == labels.end()) {
      labels.push_back(label);
    }
    const uint32_t doc_base = manifest_.shards[i].doc_base;
    for (const EngineResult& result : shard_response.results) {
      EngineResult global = result;
      global.id = RebaseUp(result.id, doc_base);
      gather.Add(global.id, global.rank);
      by_id.emplace(global.id, std::move(global));
    }
    if (per_shard_stats != nullptr) {
      (*per_shard_stats)[i] = shard_response.stats;
    }
  }
  if (deadline_hit) stats.partial = true;  // a shard never contributed
  stats.result_cache_hit = every_shard_cache_hit && n > 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) stats.algorithm += "+";
    stats.algorithm += labels[i];
  }

  for (const query::RankedResult& ranked : gather.TakeTop()) {
    response.results.push_back(std::move(by_id[ranked.id]));
  }

  if (stats.partial) {
    partial_results_.fetch_add(1, std::memory_order_relaxed);
    rm.partial->Increment();
  }
  if (tracing) {
    for (size_t i = 0; i < n; ++i) {
      if (outcomes[i].ran || !outcomes[i].trace.spans().empty()) {
        query_options.trace->MergeChild("shard[" + std::to_string(i) + "]",
                                        outcomes[i].trace);
      }
    }
    query_options.trace->AddAnnotation("shards", std::to_string(n));
    query_options.trace->AddAnnotation("theta_raises",
                                       std::to_string(raises));
    if (!stats.algorithm.empty()) {
      query_options.trace->AddAnnotation("merge", stats.algorithm);
    }
  }
  stats.wall_ms = wall.ElapsedSeconds() * 1e3;
  rm.query_us->Observe(static_cast<uint64_t>(stats.wall_ms * 1e3));
  return response;
}

Status ShardRouter::AddDocument(std::string_view uri,
                                std::string_view xml_text) {
  // The tail shard is the only one whose id space can grow without
  // colliding with a later shard's base range. Refuse a URI another
  // shard's base corpus already holds (the tail engine checks its own).
  for (size_t i = 0; i + 1 < shards_.size(); ++i) {
    for (const graph::XmlGraph::DocumentInfo& doc :
         shards_[i].engine->graph().documents()) {
      if (doc.uri == uri) {
        return Status::InvalidArgument("document '" + std::string(uri) +
                                       "' already exists in shard " +
                                       std::to_string(i));
      }
    }
  }
  return shards_.back().engine->AddDocument(uri, xml_text);
}

Status ShardRouter::DeleteDocument(std::string_view uri) {
  for (Shard& shard : shards_) {
    Status status = shard.engine->DeleteDocument(uri);
    if (status.ok() || status.code() != StatusCode::kNotFound) return status;
  }
  return Status::NotFound("document '" + std::string(uri) +
                          "' not found in any shard");
}

Status ShardRouter::WaitForMaintenance() {
  for (Shard& shard : shards_) {
    XRANK_RETURN_NOT_OK(shard.engine->WaitForMaintenance());
  }
  return Status::OK();
}

XRankEngine::ServingCounters ShardRouter::serving_counters(
    index::IndexKind kind) const {
  XRankEngine::ServingCounters total;
  for (const Shard& shard : shards_) {
    XRankEngine::ServingCounters c = shard.engine->serving_counters(kind);
    total.pool_hits += c.pool_hits;
    total.pool_misses += c.pool_misses;
    total.result_cache_hits += c.result_cache_hits;
    total.result_cache_lookups += c.result_cache_lookups;
    total.block_cache_hits += c.block_cache_hits;
    total.block_cache_lookups += c.block_cache_lookups;
    total.deadline_exceeded_queries += c.deadline_exceeded_queries;
    total.partial_result_queries += c.partial_result_queries;
  }
  return total;
}

ShardRouter::RouterCounters ShardRouter::router_counters() const {
  RouterCounters counters;
  counters.queries = queries_.load(std::memory_order_relaxed);
  counters.shard_queries = shard_queries_.load(std::memory_order_relaxed);
  counters.errors = errors_.load(std::memory_order_relaxed);
  counters.partial_results = partial_results_.load(std::memory_order_relaxed);
  counters.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  counters.shards_skipped = shards_skipped_.load(std::memory_order_relaxed);
  counters.theta_raises = theta_raises_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace xrank::core
