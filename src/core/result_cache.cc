#include "core/result_cache.h"

#include <algorithm>
#include <functional>

#include "common/check.h"

namespace xrank::core {

namespace {

constexpr size_t kMinEntriesPerShard = 32;
constexpr size_t kMaxShards = 8;

size_t ResolveShardCount(size_t capacity_entries, size_t num_shards) {
  if (num_shards > 0) return std::min(num_shards, capacity_entries);
  size_t auto_shards = capacity_entries / kMinEntriesPerShard;
  return std::clamp<size_t>(auto_shards, 1, kMaxShards);
}

}  // namespace

ResultCache::ResultCache(size_t capacity_entries, size_t num_shards)
    : registry_hits_(
          metrics::Registry::Instance().GetCounter("result_cache.hits")),
      registry_lookups_(
          metrics::Registry::Instance().GetCounter("result_cache.lookups")),
      registry_insertions_(metrics::Registry::Instance().GetCounter(
          "result_cache.insertions")) {
  XRANK_CHECK(capacity_entries > 0, "ResultCache capacity must be positive");
  size_t shards = ResolveShardCount(capacity_entries, num_shards);
  shard_capacity_ = (capacity_entries + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string ResultCache::MakeKey(const std::vector<std::string>& terms,
                                 size_t m, index::IndexKind kind,
                                 uint64_t content_seq) {
  std::string key;
  key += std::to_string(content_seq);
  key += '\x1f';
  key += std::to_string(static_cast<int>(kind));
  key += '\x1f';
  key += std::to_string(m);
  for (const std::string& term : terms) {
    key += '\x1f';
    key += term;
  }
  return key;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool ResultCache::Lookup(const std::string& key, EngineResponse* out) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  registry_lookups_->Increment();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  registry_hits_->Increment();
  return true;
}

void ResultCache::Insert(const std::string& key,
                         const EngineResponse& response) {
  registry_insertions_->Increment();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = response;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
  shard.lru.emplace_front(key, response);
  shard.index.emplace(key, shard.lru.begin());
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t ResultCache::cached_entries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->index.size();
  }
  return total;
}

}  // namespace xrank::core
