#ifndef XRANK_CORE_SHARD_ROUTER_H_
#define XRANK_CORE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "query/query.h"
#include "xml/node.h"

namespace xrank::core {

// --- sharding root manifest ("SHARDING" file) -------------------------------
//
// A sharded index root holds one subdirectory per shard, each an ordinary
// committed engine directory with its own MANIFEST, plus a root SHARDING
// file recording the document partition:
//
//   <root>/SHARDING
//   <root>/shard-0000/MANIFEST, DIL.xrank, ...
//   <root>/shard-0001/...
//
// The SHARDING file is committed with the same durability protocol as a
// MANIFEST (tmp write + fsync + rename + directory fsync — see
// index/manifest.h), and shard directories commit independently through
// their own MANIFESTs, so each shard's index swap stays atomic and a crash
// mid-build leaves either no SHARDING file or a fully described root.

constexpr char kShardingFileName[] = "SHARDING";

struct ShardDescriptor {
  std::string dir;         // subdirectory name within the root
  uint32_t doc_base = 0;   // first global document id in this shard
  uint32_t doc_count = 0;  // contiguous ids [doc_base, doc_base + doc_count)
};

struct ShardingManifest {
  std::vector<ShardDescriptor> shards;  // doc_base order, contiguous cover
  // Build-time document-reorder pass applied to the GLOBAL doc-id space
  // before the corpus was split into contiguous shard ranges
  // (index/reorder.h ids; 0 = identity). Serialized as a standalone
  // "reorder <id>" line only when nonzero, so legacy SHARDING files stay
  // byte-identical; Open re-derives the identical permutation.
  uint32_t reorder_id = 0;
};

// "shard-0000", "shard-0001", ...
std::string ShardDirName(size_t shard_index);

// Text round-trip ("xrank-sharding v1" header, one "shard ..." line per
// shard, "commit <crc>" trailer covering all preceding bytes).
std::string SerializeShardingManifest(const ShardingManifest& manifest);
Result<ShardingManifest> ParseShardingManifest(std::string_view text);

// Durable write / validated read of `<root>/SHARDING`. Read refuses a
// missing file (NotFound), a torn or CRC-mismatched file (Corruption), and
// a partition that is not a contiguous cover starting at document 0.
Status WriteShardingFile(const std::string& root_dir,
                         const ShardingManifest& manifest);
Result<ShardingManifest> ReadShardingFile(const std::string& root_dir);

// Whether `root_dir` holds a SHARDING file (i.e. is a sharded root rather
// than a single-engine index directory).
bool IsShardedRoot(const std::string& root_dir);

// --- router -----------------------------------------------------------------

struct ShardRouterOptions {
  // Number of shards to partition the corpus into at Build time (ignored
  // by Open, which follows the committed SHARDING file). Must be in
  // [1, document count]: documents split into contiguous equal-size global
  // doc-id ranges, so shard i serves documents [i*N/S, (i+1)*N/S).
  size_t num_shards = 2;

  // Per-shard engine configuration. `engine.disk_dir` is ignored — set
  // `root_dir` instead; each shard gets `<root_dir>/shard-NNNN`.
  // `engine.precomputed_elem_ranks` is overwritten per shard with that
  // shard's slice of the global ElemRank vector, and
  // `engine.graph.ignore_dangling_links` is forced on (a hyperlink across
  // a shard boundary dangles inside the shard's local graph; the global
  // ElemRank computation has already accounted for it).
  EngineOptions engine;

  // Non-empty: disk-backed shards under this root, committed via per-shard
  // MANIFESTs plus the root SHARDING file. Empty: in-memory shards.
  std::string root_dir;

  // Scatter worker threads (0 = one per shard, capped by the hardware).
  // Concurrent router queries serialize their scatters — the shared
  // ThreadPool runs one ParallelFor at a time — so per-query latency uses
  // the full pool while throughput comes from pipelining.
  size_t scatter_threads = 0;

  // Forward the running k-th-rank θ between shards through a shared
  // threshold (query/result_heap.h), so MaxScore/WAND/BMW pruning in
  // later/slower shards starts from the bound earlier shards established.
  // Results are bitwise-identical either way; this is purely work saved.
  bool forward_theta = true;

  // Query shards one at a time in shard order on the calling thread
  // instead of scattering on the pool. Deterministic (the θ floor each
  // shard sees depends only on earlier shards), so tests can assert
  // pruning efficacy; also what a 1-thread pool degrades to.
  bool sequential_scatter = false;
};

// Fans queries out over N document-sharded XRankEngines and gathers their
// top-k into one response with fleet-coherent stats.
//
// Partitioning invariant: shard i owns the contiguous global document-id
// range [doc_base, doc_base + doc_count); Dewey ids rebase between the
// shard-local and global spaces by adding/subtracting doc_base to the
// first component (exactly the live-segment idiom in core/engine.cc).
// ElemRank is computed ONCE over the global graph and sliced per shard
// (see EngineOptions::precomputed_elem_ranks), so every shard scores
// exactly as the monolithic engine would and the gathered top-k is
// bitwise-identical to it — same ids, same ranks, same tie-breaks.
//
// Thread safety: Query/QueryKeywords may run from any number of threads
// concurrently (scatters serialize on an internal mutex; see
// ShardRouterOptions::scatter_threads). Live updates go through the tail
// shard and are serialized by that engine.
class ShardRouter {
 public:
  // Partitions `documents` (consumed), computes global ElemRank, builds
  // every shard (disk-backed shards commit their own MANIFEST), and — when
  // disk-backed — commits the root SHARDING file last, so a crash anywhere
  // earlier leaves no committed root.
  static Result<std::unique_ptr<ShardRouter>> Build(
      std::vector<xml::Document> documents, const ShardRouterOptions& options);

  // Re-opens a committed sharded root: reads and validates SHARDING,
  // re-derives the global graph and ElemRank from `documents` (the same
  // corpus, in the same order, as the Build), and opens each shard
  // directory — every shard validates its own MANIFEST (and re-checksums
  // its files under EngineOptions::verify_on_open).
  static Result<std::unique_ptr<ShardRouter>> Open(
      std::vector<xml::Document> documents, const ShardRouterOptions& options);

  // Scatter-gather top-m. Semantics match XRankEngine::Query, plus:
  //   - deadline: the remaining budget is re-computed as each shard
  //     starts; with allow_partial_results a shard that misses (or never
  //     starts within) the budget contributes what it scanned and the
  //     response is marked partial, otherwise DeadlineExceeded.
  //   - stats: per-shard QueryStats are merged into one coherent block
  //     (counters sum, `partial` ORs, distinct algorithm labels join with
  //     '+'); `result_cache_hit` only when every shard hit.
  //   - trace: per-shard spans splice into the caller's trace as
  //     "shard[i]" subtrees after the gather.
  // `per_shard_stats` (when non-null) receives each shard's own stats
  // block, in shard order (zeroed entries for shards that never ran).
  Result<EngineResponse> Query(std::string_view query_text, size_t m,
                               index::IndexKind kind);
  Result<EngineResponse> Query(std::string_view query_text, size_t m,
                               index::IndexKind kind,
                               const query::QueryOptions& query_options,
                               std::vector<query::QueryStats>* per_shard_stats =
                                   nullptr);
  Result<EngineResponse> QueryKeywords(const std::vector<std::string>& keywords,
                                       size_t m, index::IndexKind kind);
  Result<EngineResponse> QueryKeywords(
      const std::vector<std::string>& keywords, size_t m, index::IndexKind kind,
      const query::QueryOptions& query_options,
      std::vector<query::QueryStats>* per_shard_stats = nullptr);

  // Live ingest routes to the tail shard — the only shard whose global ids
  // may grow without colliding with a later shard's base range, keeping
  // the contiguous-partition invariant. Deletes resolve the URI against
  // every shard (NotFound when none holds it).
  Status AddDocument(std::string_view uri, std::string_view xml_text);
  Status DeleteDocument(std::string_view uri);
  Status WaitForMaintenance();

  size_t shard_count() const { return shards_.size(); }
  const ShardDescriptor& shard(size_t i) const { return manifest_.shards[i]; }
  XRankEngine& shard_engine(size_t i) { return *shards_[i].engine; }
  const ShardingManifest& sharding_manifest() const { return manifest_; }

  // Fleet-wide serving counters: the sum of every shard's.
  XRankEngine::ServingCounters serving_counters(index::IndexKind kind) const;

  // Router-level observability (also mirrored into the metrics registry
  // as router.* series).
  struct RouterCounters {
    uint64_t queries = 0;
    uint64_t shard_queries = 0;      // per-shard fan-out calls issued
    uint64_t errors = 0;             // queries that returned non-OK
    uint64_t partial_results = 0;    // responses served with stats.partial
    uint64_t deadline_exceeded = 0;  // queries returning DeadlineExceeded
    uint64_t shards_skipped = 0;     // shards never started (budget spent)
    uint64_t theta_raises = 0;       // shared-θ floor raises across queries
  };
  RouterCounters router_counters() const;

 private:
  struct Shard {
    std::unique_ptr<XRankEngine> engine;
  };

  ShardRouter() = default;

  // Build/Open shared tail: global graph + ElemRank over `documents`,
  // per-shard node-range slicing, then per-shard engine construction via
  // `open_existing` (Open) or fresh builds (Build).
  static Result<std::unique_ptr<ShardRouter>> Assemble(
      std::vector<xml::Document> documents, const ShardRouterOptions& options,
      ShardingManifest manifest, bool open_existing);

  // The scatter-gather core shared by Query and QueryKeywords:
  // `run_query` executes the per-shard call with that shard's derived
  // QueryOptions (own trace, remaining deadline, shared θ).
  Result<EngineResponse> Scatter(
      const std::function<Result<EngineResponse>(
          XRankEngine&, const query::QueryOptions&)>& run_query,
      size_t m, const query::QueryOptions& query_options,
      std::vector<query::QueryStats>* per_shard_stats);

  ShardRouterOptions options_;
  ShardingManifest manifest_;
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> pool_;
  // The pool runs one ParallelFor at a time; concurrent router queries
  // take turns scattering.
  std::mutex scatter_mutex_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> shard_queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> partial_results_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> shards_skipped_{0};
  std::atomic<uint64_t> theta_raises_{0};
};

}  // namespace xrank::core

#endif  // XRANK_CORE_SHARD_ROUTER_H_
