#ifndef XRANK_CORE_ENGINE_H_
#define XRANK_CORE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "graph/builder.h"
#include "query/trace.h"
#include "graph/graph.h"
#include "index/block_cache.h"
#include "index/delta_segment.h"
#include "index/hdil_index.h"
#include "index/index_builder.h"
#include "index/manifest.h"
#include "query/hdil_query.h"
#include "query/query.h"
#include "rank/elem_rank.h"
#include "storage/buffer_pool.h"
#include "storage/cost_model.h"
#include "storage/wal.h"
#include "xml/node.h"

namespace xrank::core {

class ResultCache;

// End-to-end configuration of an XRANK instance, mirroring Figure 2 of the
// paper: ElemRank computation -> index construction -> query evaluation.
struct EngineOptions {
  graph::BuilderOptions graph;
  rank::ElemRankOptions elem_rank;
  // Non-empty: skip the ElemRank power iteration and use these ranks, one
  // entry per graph node in node-id order (refused if the size disagrees
  // with the built graph). The shard router computes ElemRank once over
  // the *global* graph — the kFinal formula's random-jump mass depends on
  // the corpus-wide document count, so per-shard recomputation would not
  // match a monolithic build — and hands each shard its slice: graph nodes
  // are created document-by-document, so a contiguous document range owns
  // a contiguous node range and shard-local node ids are global ids minus
  // the shard's first node.
  std::vector<double> precomputed_elem_ranks;
  index::ExtractionOptions extraction;
  index::HdilOptions hdil;
  query::ScoringOptions scoring;
  query::HdilStrategyOptions hdil_strategy;

  // Which physical indexes to build. HDIL is the paper's recommended
  // structure and the engine default.
  std::vector<index::IndexKind> indexes = {index::IndexKind::kHdil};

  // Worker threads for index construction (list encoding is sharded by
  // term; the on-disk bytes are identical for every thread count).
  index::BuildOptions build;

  // Non-empty: back index files with real files under this directory;
  // empty: in-memory page files.
  std::string disk_dir;

  // Shared buffer pool capacity per index, in pages.
  size_t buffer_pool_pages = 4096;
  // Lock stripes of the shared pool (0 = automatic from the capacity).
  size_t buffer_pool_shards = 0;
  // Start each query with a cold cache (the paper's experimental setup):
  // the shared pool is dropped at each query start instead of allocating a
  // private pool per query.
  bool cold_cache_per_query = true;
  storage::CostModelOptions cost;

  // Capacity of the engine-level top-k result cache, in entries across all
  // index kinds (0 disables it). Keys embed the engine's content version,
  // so AddDocument/DeleteDocument invalidate prior entries by construction
  // while flushes and compactions keep every hit warm.
  size_t result_cache_entries = 256;

  // Byte budget of the decoded posting-block cache shared by all index
  // kinds (0 disables it). Entries are keyed by (page file id, page id), so
  // one cache safely serves every index file — including the live-update
  // segments; a flush or compaction evicts only the retired segment's
  // entries. Dropped at query start in cold_cache_per_query mode (the
  // paper's cold-cache setup must not serve pre-decoded pages).
  size_t block_cache_bytes = 8u << 20;

  // Engine-wide default per-query limits (deadline, cancellation, partial
  // results — see query::QueryOptions); overridable per call through the
  // Query/QueryKeywords overloads.
  query::QueryOptions query;

  // Queries at least this slow (end-to-end wall-clock, milliseconds) are
  // recorded with their full trace — per-stage spans and per-term counters
  // — into a ring buffer of the last `slow_query_log_entries` offenders
  // (XRankEngine::slow_queries). When the caller did not attach its own
  // trace, the engine traces such queries internally, so the log always has
  // a breakdown. 0 disables the log; a negative threshold logs every query
  // (deterministic test hook).
  int64_t slow_query_ms = 0;
  size_t slow_query_log_entries = 64;

  // When re-opening a committed index directory (Open), re-read every page
  // and compare the whole-file checksums against the MANIFEST before
  // serving anything. Slower startup, but at-rest corruption is reported
  // up front (with the first bad page) instead of mid-query.
  bool verify_on_open = true;

  // Non-empty: only elements with these tags may be returned (the
  // "answer node" mechanism of Section 2.2); a result is mapped to its
  // nearest ancestor-or-self answer node. Empty: all elements qualify.
  std::vector<std::string> answer_node_tags;

  // --- live updates (AddDocument / background flush + compaction) ---

  // Hard bound on the in-memory mutable delta: once it holds this many
  // documents, AddDocument blocks (backpressure — slow, never fail) until a
  // flush drains it. The wait is surfaced in update.backpressure_us.
  size_t max_delta_documents = 8;
  // Delta size that schedules a background flush (<= max_delta_documents).
  size_t flush_delta_documents = 4;
  // Number of flushed segments that schedules a background merge
  // compaction (0 disables automatic compaction).
  size_t compact_segment_count = 4;
  // Run flush/compaction on a background maintenance thread (started
  // lazily by the first AddDocument). Off: maintenance runs inline — an
  // AddDocument that fills the delta flushes it synchronously, and
  // Flush()/CompactSegments() remain available to callers.
  bool background_maintenance = true;
  // Buffer pool pages for each live segment's index (segments are small).
  size_t segment_pool_pages = 256;
};

// A query result decoded back to the document structure.
struct EngineResult {
  dewey::DeweyId id;
  double rank = 0.0;
  std::string element_tag;   // tag of the result element
  std::string document_uri;
  std::string snippet;       // leading text of the element's subtree
};

struct EngineResponse {
  std::vector<EngineResult> results;
  query::QueryStats stats;
};

// The XRANK system facade.
//
// Thread safety: queries (Query/QueryKeywords/QueryWithPath) may run from
// any number of threads concurrently, and concurrently with every update
// operation. Each query pins an immutable snapshot of the serving state —
// the base indexes, the flushed live segments, the mutable delta, and the
// tombstone set — behind reference-counted pointers, so a flush or
// compaction swapping segments underneath it can never expose a partially
// updated view, and queries never wait on update work (the snapshot hand-
// off is a pointer copy under a lock held for nanoseconds).
//
// Updates (AddDocument / DeleteDocument / Flush / CompactSegments /
// CompactDeletions) are serialized among themselves. AddDocument is
// crash-safe when disk-backed: the document is appended to a checksummed
// write-ahead log and fsynced before it becomes visible, and Open replays
// the log — truncating a torn tail — so every acknowledged add survives a
// kill at any instant. Background maintenance migrates the delta into
// immutable on-disk segments through the same rename + MANIFEST commit
// protocol as the base build.
class XRankEngine {
 public:
  ~XRankEngine();

  // Ingests XML documents (consumed), computes ElemRanks and builds the
  // configured indexes. `html_documents` are ingested in the paper's HTML
  // mode (whole document = one element).
  static Result<std::unique_ptr<XRankEngine>> Build(
      std::vector<xml::Document> documents, const EngineOptions& options);
  static Result<std::unique_ptr<XRankEngine>> Build(
      std::vector<xml::Document> documents,
      std::vector<xml::Document> html_documents, const EngineOptions& options);

  // Re-opens the committed on-disk indexes under `options.disk_dir`
  // (written by a previous disk-backed Build over the same documents).
  // The base graph and ElemRanks are re-derived in memory — they are not
  // persisted — but physical index construction is skipped: the committed
  // files are validated against the MANIFEST and served as-is. Flushed
  // live segments are reopened from their committed index + docs files,
  // and the write-ahead log is replayed (a torn tail is truncated; records
  // a committed segment already covers are skipped), so documents added
  // before a crash are served again. A directory with no MANIFEST (crash
  // before the commit point), a torn MANIFEST, or files whose length/
  // checksum disagree with it is refused with a precise error.
  static Result<std::unique_ptr<XRankEngine>> Open(
      std::vector<xml::Document> documents, const EngineOptions& options);

  // Evaluates a free-text conjunctive keyword query, returning the top m
  // results via the given index. The index kind must have been built. The
  // three-argument forms run under the engine default QueryOptions
  // (EngineOptions::query); the four-argument forms override them per call
  // — a deadline expiry returns Status::DeadlineExceeded, or the partial
  // top-k with stats.partial set when allow_partial_results is on.
  Result<EngineResponse> Query(std::string_view query_text, size_t m,
                               index::IndexKind kind);
  Result<EngineResponse> Query(std::string_view query_text, size_t m,
                               index::IndexKind kind,
                               const query::QueryOptions& query_options);

  // Pre-tokenized variants.
  Result<EngineResponse> QueryKeywords(
      const std::vector<std::string>& keywords, size_t m,
      index::IndexKind kind);
  Result<EngineResponse> QueryKeywords(
      const std::vector<std::string>& keywords, size_t m,
      index::IndexKind kind, const query::QueryOptions& query_options);

  // Keyword query restricted to elements whose ancestor tag chain ends
  // with `path` — e.g. path {"paper", "title"} keeps only <title> elements
  // whose parent is a <paper>. A minimal form of the paper's Section 7
  // future-work item "integration with structured queries".
  Result<EngineResponse> QueryWithPath(std::string_view query_text, size_t m,
                                       index::IndexKind kind,
                                       const std::vector<std::string>& path);

  const graph::XmlGraph& graph() const { return graph_; }
  const std::vector<double>& elem_ranks() const { return elem_ranks_; }
  // Build-time document permutation of the base corpus (empty = identity).
  // Query results carry PHYSICAL doc ids (the first Dewey component after
  // reordering); the graph and ElemRank stay in identity/ingest order.
  const index::DocPermutation& doc_permutation() const { return doc_perm_; }
  const rank::ElemRankResult& elem_rank_result() const {
    return elem_rank_result_;
  }

  // Table 1 inputs.
  const index::IndexStats& index_stats(index::IndexKind kind) const;
  bool has_index(index::IndexKind kind) const;

  // ElemRank of the element with the given Dewey ID (display helper).
  // Resolves live-segment documents too (their ranks are per-document).
  Result<double> ElemRankOf(const dewey::DeweyId& id) const;

  // --- live updates (LSM-style delta + WAL, paper Section 4.5 extended) ---

  // Parses and ingests one XML document. Disk-backed engines append the
  // document to the write-ahead log and fsync it before anything becomes
  // visible — once AddDocument returns OK, the document survives a crash
  // at any later instant and is immediately queryable through every built
  // index kind. New documents are ranked by per-document ElemRank (see
  // index/delta_segment.h for the invariance argument); a full offline
  // rebuild restores exact global ranks. Blocks (bounded by flush latency)
  // when the delta is full. InvalidArgument when a live document — added or
  // from the base corpus — holds the same URI.
  Status AddDocument(std::string_view uri, std::string_view xml_text);

  // Marks a document deleted. Its elements disappear from query results
  // immediately (results are post-filtered on the document id, which is the
  // first Dewey component — the property Section 4.5 relies on); the
  // physical postings remain until a compaction. Disk-backed engines log
  // the delete, so tombstones survive reopen. NotFound for an unknown (or
  // already deleted) URI.
  Status DeleteDocument(std::string_view uri);

  // Migrates the mutable delta into an immutable flushed segment: an
  // on-disk DIL index plus a checksummed source-document log, committed
  // through the MANIFEST, after which the WAL is rewritten without the
  // covered records. Queries in flight keep serving their pinned snapshot;
  // the result cache stays warm (content is unchanged). No-op with an
  // empty delta. Runs in the background when the delta fills; this is the
  // synchronous form for tests and tools.
  Status Flush();

  // Merges every flushed segment into one, dropping tombstoned documents.
  // No-op with fewer than two segments and nothing to drop.
  Status CompactSegments();

  // Rebuilds every base physical index without the deleted base documents'
  // postings — the offline merge step of traditional inverted-list
  // maintenance that the paper defers to (Brown et al. / Tomasic et al.).
  // Flushed segments and the delta are untouched.
  Status CompactDeletions();

  // Blocks until scheduled background maintenance has drained; returns the
  // most recent background failure (sticky until a later success), OK
  // otherwise.
  Status WaitForMaintenance();

  size_t deleted_document_count() const;

  // Live-update observability (mirrored into the process-wide metrics
  // registry as update.* series).
  struct UpdateCounters {
    uint64_t wal_appends = 0;           // records appended this process
    uint64_t wal_replayed_records = 0;  // records read back by Open
    uint64_t wal_dropped_bytes = 0;     // torn tail truncated by Open
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t backpressure_waits = 0;    // AddDocument calls that blocked
    uint64_t backpressure_us_total = 0;
    uint64_t segment_count = 0;         // flushed segments, current
    uint64_t delta_documents = 0;       // mutable delta size, current
    uint64_t added_documents = 0;       // live (non-base) docs, current
    uint64_t content_seq = 0;
    uint64_t epoch = 0;                 // snapshot swaps since open
  };
  UpdateCounters update_counters() const;

  // Monotonic fast-path counters: the base index's buffer-pool hit/miss
  // totals plus the engine-wide result-cache totals. Benches diff
  // snapshots to report per-phase hit rates.
  struct ServingCounters {
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    uint64_t result_cache_hits = 0;
    uint64_t result_cache_lookups = 0;
    // Engine-wide decoded-block cache totals (zero when disabled).
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_lookups = 0;
    // Engine-wide (not per-kind): queries that hit their deadline/cancel.
    uint64_t deadline_exceeded_queries = 0;  // returned DeadlineExceeded
    uint64_t partial_result_queries = 0;     // served a partial top-k
  };
  ServingCounters serving_counters(index::IndexKind kind) const;

  // Evicts every warm structure — each index's buffer pool (segments
  // included), the result cache, and the decoded-block cache — without
  // touching index state. Benches call this between measurement phases to
  // re-establish a cold baseline while serving with
  // cold_cache_per_query = false.
  void DropCaches();

  // --- slow-query log (EngineOptions::slow_query_ms) ---
  struct SlowQueryEntry {
    std::string query;       // space-joined normalized keywords
    index::IndexKind kind;
    double wall_ms = 0.0;    // end-to-end, including decoration
    query::QueryTrace trace;
  };
  // Snapshot of the ring buffer, oldest first.
  std::vector<SlowQueryEntry> slow_queries() const;
  uint64_t slow_query_count() const;  // total recorded, including evicted

 private:
  XRankEngine() = default;

  struct IndexInstance {
    index::BuiltIndex built;
    // Shared by all concurrent queries on this index, in both cache modes
    // (both are internally thread-safe; cold mode drops the pool between
    // queries instead of allocating a private one).
    std::unique_ptr<storage::CostModel> cost_model;
    std::unique_ptr<storage::BufferPool> pool;
  };

  // The base corpus's physical indexes plus the naive-ordinal mapping that
  // decodes their results. Immutable once published; CompactDeletions
  // publishes a replacement.
  struct BaseState {
    std::map<index::IndexKind, IndexInstance> indexes;
    // Maps naive element ordinals back to Dewey IDs.
    std::vector<dewey::DeweyId> ordinal_to_dewey;
  };

  // One immutable snapshot of everything a query reads. Queries copy the
  // shared_ptr (pinning the whole set by refcount) and never re-read
  // engine state, so updates swapping `live_` cannot expose half a swap.
  struct LiveState {
    std::shared_ptr<const BaseState> base;
    // Flushed segments in doc_base order, then the mutable delta (null
    // when empty). Segment documents are contiguous global-id ranges
    // continuing past the base corpus.
    std::vector<std::shared_ptr<const index::LiveSegment>> segments;
    std::shared_ptr<const index::LiveSegment> delta;
    // Global doc ids filtered out of every response.
    std::shared_ptr<const std::set<uint32_t>> tombstones;
    // Advances when query answers may change (add/delete), NOT on flush or
    // compaction — result-cache keys embed it.
    uint64_t content_seq = 1;
    uint64_t epoch = 1;  // advances on every publish

    const index::LiveSegment* SegmentForDoc(uint32_t global_doc) const;
    bool HasLiveDocs() const { return !segments.empty() || delta != nullptr; }
  };

  // One raw hit of the merged base + segment result streams, pre-
  // decoration. For base hits `segment` is null and local == global.
  struct RawHit {
    double rank = 0.0;
    dewey::DeweyId global_id;
    dewey::DeweyId local_id;
    const index::LiveSegment* segment = nullptr;
  };

  std::shared_ptr<const LiveState> Snapshot() const;
  void Publish(std::shared_ptr<LiveState> next);

  Result<EngineResponse> QueryKeywordsSnapshot(
      const std::shared_ptr<const LiveState>& state,
      const std::vector<std::string>& keywords, size_t m,
      index::IndexKind kind, const query::QueryOptions& query_options);
  Result<EngineResponse> Decorate(const LiveState& state,
                                  std::vector<RawHit> hits,
                                  query::QueryStats stats, size_t m);
  // Maps a raw result onto the answer-node set (nearest qualifying
  // ancestor-or-self), if configured. Ids are local to `graph`.
  Result<dewey::DeweyId> MapToAnswerNode(const graph::XmlGraph& graph,
                                         const dewey::DeweyId& id) const;

  // Builds one physical index of the given kind over extracted postings.
  Result<IndexInstance> BuildInstance(index::IndexKind kind,
                                      const index::ExtractionResult& extracted);
  // Shared by Build and Open: graph construction + ElemRank (steps 1-2).
  Status PrepareBase(const std::vector<xml::Document>& documents,
                     const std::vector<xml::Document>& html_documents);
  // Disk-backed engines only: renames freshly built `<kind>.xrank.tmp`
  // files to their final names and commits them through a durable MANIFEST
  // (see index/manifest.h for the protocol), preserving the committed
  // segment entries. No-op for in-memory engines. Caller holds
  // update_mutex_ (or is still single-threaded in Build/Open).
  Status CommitBaseLocked(std::map<index::IndexKind, IndexInstance>& indexes);

  // Live-update internals; all *Locked members require update_mutex_.
  index::LiveSegmentOptions SegmentOptions() const;
  Status OpenWalLocked();
  Status ReplayWalLocked(LiveState* state);
  Status AppendWalLocked(const storage::LogRecord& record);
  // Rewrites the WAL keeping delete records and adds not covered by
  // `covered` seq ranges; reopens the writer on the rewritten file.
  Status RewriteWalLocked(
      const std::vector<std::pair<uint64_t, uint64_t>>& covered);
  Status FlushLocked();
  Status CompactSegmentsLocked();
  Status CompactDeletionsLocked();
  // Resolves a URI against `state` (delta first, then segments newest-
  // first, then the base corpus), skipping tombstoned docs. Returns the
  // global doc id and the durable WAL handle ("base:<id>" / "seq:<seq>").
  std::optional<std::pair<uint32_t, std::string>> ResolveLiveUri(
      const LiveState& state, std::string_view uri) const;
  // Background maintenance.
  void RequestMaintenance();
  void MaintenanceLoop();
  Status MaintainOnce();
  void StopMaintenanceThread();

  EngineOptions options_;
  graph::XmlGraph graph_;
  std::vector<double> elem_ranks_;
  rank::ElemRankResult elem_rank_result_;
  index::Analyzer analyzer_{index::AnalyzerOptions{}};
  uint32_t base_doc_count_ = 0;
  // Base-corpus document reordering (BuildOptions::reorder). Maps between
  // identity doc ids (graph/ElemRank/WAL handles) and physical doc ids
  // (postings, query results, tombstones). Empty when identity-ordered.
  // Live docs (ids >= base_doc_count_) always map to themselves.
  index::DocPermutation doc_perm_;

  // Current serving snapshot. live_mutex_ guards only the pointer — the
  // pointee is immutable. Queries copy it; mutators (which additionally
  // hold update_mutex_) replace it.
  std::shared_ptr<const LiveState> live_;
  mutable std::mutex live_mutex_;

  // Serializes every mutator end-to-end. An AddDocument blocked on
  // backpressure waits on backpressure_cv_ with this mutex released, so
  // the flush that drains the delta can proceed.
  std::mutex update_mutex_;
  std::condition_variable backpressure_cv_;
  // WAL writer and the in-memory mirror of its records (used to rewrite
  // the file after a flush retires covered adds). Null / empty for
  // in-memory engines. Guarded by update_mutex_.
  std::unique_ptr<storage::LogWriter> wal_;
  std::vector<storage::LogRecord> wal_records_;
  uint64_t next_seq_ = 1;
  // Committed on-disk state (base entries + segment entries); rewritten at
  // every commit point. Guarded by update_mutex_.
  index::Manifest manifest_;

  // Background maintenance thread (lazy; see background_maintenance).
  std::thread maintenance_thread_;
  std::mutex maintenance_mutex_;
  std::condition_variable maintenance_cv_;       // wakes the worker
  std::condition_variable maintenance_idle_cv_;  // wakes WaitForMaintenance
  bool maintenance_stop_ = false;
  bool maintenance_requested_ = false;
  bool maintenance_active_ = false;
  Status maintenance_status_;  // sticky last failure, cleared on success

  // Monotonic update counters (relaxed; readers take no locks).
  std::atomic<uint64_t> wal_appends_{0};
  std::atomic<uint64_t> wal_replayed_records_{0};
  std::atomic<uint64_t> wal_dropped_bytes_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> backpressure_waits_{0};
  std::atomic<uint64_t> backpressure_us_total_{0};

  // Null when EngineOptions::result_cache_entries == 0.
  std::unique_ptr<ResultCache> result_cache_;
  // Decoded posting-block cache shared by every index kind (page-file ids
  // keep entries distinct). Null when EngineOptions::block_cache_bytes == 0.
  std::unique_ptr<index::BlockCache> block_cache_;
  // Deadline outcomes.
  mutable std::atomic<uint64_t> deadline_exceeded_queries_{0};
  mutable std::atomic<uint64_t> partial_result_queries_{0};
  // Slow-query ring buffer: fills to capacity, then overwrites the oldest
  // entry (slow_query_next_). Guarded by its own mutex — recording a slow
  // query must not serialize concurrent fast queries.
  void RecordSlowQuery(SlowQueryEntry entry);
  mutable std::mutex slow_query_mutex_;
  std::vector<SlowQueryEntry> slow_query_ring_;
  size_t slow_query_next_ = 0;
  uint64_t slow_query_total_ = 0;
};

}  // namespace xrank::core

#endif  // XRANK_CORE_ENGINE_H_
