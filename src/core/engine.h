#ifndef XRANK_CORE_ENGINE_H_
#define XRANK_CORE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/builder.h"
#include "query/trace.h"
#include "graph/graph.h"
#include "index/block_cache.h"
#include "index/hdil_index.h"
#include "index/index_builder.h"
#include "query/hdil_query.h"
#include "query/query.h"
#include "rank/elem_rank.h"
#include "storage/buffer_pool.h"
#include "storage/cost_model.h"
#include "xml/node.h"

namespace xrank::core {

class ResultCache;

// End-to-end configuration of an XRANK instance, mirroring Figure 2 of the
// paper: ElemRank computation -> index construction -> query evaluation.
struct EngineOptions {
  graph::BuilderOptions graph;
  rank::ElemRankOptions elem_rank;
  index::ExtractionOptions extraction;
  index::HdilOptions hdil;
  query::ScoringOptions scoring;
  query::HdilStrategyOptions hdil_strategy;

  // Which physical indexes to build. HDIL is the paper's recommended
  // structure and the engine default.
  std::vector<index::IndexKind> indexes = {index::IndexKind::kHdil};

  // Worker threads for index construction (list encoding is sharded by
  // term; the on-disk bytes are identical for every thread count).
  index::BuildOptions build;

  // Non-empty: back index files with real files under this directory;
  // empty: in-memory page files.
  std::string disk_dir;

  // Shared buffer pool capacity per index, in pages.
  size_t buffer_pool_pages = 4096;
  // Lock stripes of the shared pool (0 = automatic from the capacity).
  size_t buffer_pool_shards = 0;
  // Start each query with a cold cache (the paper's experimental setup):
  // the shared pool is dropped at each query start instead of allocating a
  // private pool per query.
  bool cold_cache_per_query = true;
  storage::CostModelOptions cost;

  // Capacity of the engine-level top-k result cache, in entries across all
  // index kinds (0 disables it). The cache is invalidated wholesale by
  // DeleteDocument and CompactDeletions.
  size_t result_cache_entries = 256;

  // Byte budget of the decoded posting-block cache shared by all index
  // kinds (0 disables it). Entries are keyed by (page file id, page id), so
  // one cache safely serves every index file; invalidated wholesale with
  // the result cache, and dropped at query start in cold_cache_per_query
  // mode (the paper's cold-cache setup must not serve pre-decoded pages).
  size_t block_cache_bytes = 8u << 20;

  // Engine-wide default per-query limits (deadline, cancellation, partial
  // results — see query::QueryOptions); overridable per call through the
  // Query/QueryKeywords overloads.
  query::QueryOptions query;

  // Queries at least this slow (end-to-end wall-clock, milliseconds) are
  // recorded with their full trace — per-stage spans and per-term counters
  // — into a ring buffer of the last `slow_query_log_entries` offenders
  // (XRankEngine::slow_queries). When the caller did not attach its own
  // trace, the engine traces such queries internally, so the log always has
  // a breakdown. 0 disables the log; a negative threshold logs every query
  // (deterministic test hook).
  int64_t slow_query_ms = 0;
  size_t slow_query_log_entries = 64;

  // When re-opening a committed index directory (Open), re-read every page
  // and compare the whole-file checksums against the MANIFEST before
  // serving anything. Slower startup, but at-rest corruption is reported
  // up front (with the first bad page) instead of mid-query.
  bool verify_on_open = true;

  // Non-empty: only elements with these tags may be returned (the
  // "answer node" mechanism of Section 2.2); a result is mapped to its
  // nearest ancestor-or-self answer node. Empty: all elements qualify.
  std::vector<std::string> answer_node_tags;
};

// A query result decoded back to the document structure.
struct EngineResult {
  dewey::DeweyId id;
  double rank = 0.0;
  std::string element_tag;   // tag of the result element
  std::string document_uri;
  std::string snippet;       // leading text of the element's subtree
};

struct EngineResponse {
  std::vector<EngineResult> results;
  query::QueryStats stats;
};

// The XRANK system facade.
//
// Thread safety: after Build returns, the graph, ElemRanks and index files
// are immutable, and Query/QueryKeywords/QueryWithPath may be called from
// any number of threads concurrently. Every query on an index runs against
// that index's shared sharded buffer pool (lock striping keeps readers of
// distinct pages from contending); in the default cold-cache mode each
// query additionally drops the pool at its start, reproducing the paper's
// cold-OS-cache measurements when queries run one at a time. Repeated
// queries are answered from a sharded top-k result cache. DeleteDocument
// and CompactDeletions are writers: they take an exclusive lock (and
// invalidate the result cache) and may run concurrently with queries
// (queries observe the state before or after, never mid-update).
class XRankEngine {
 public:
  ~XRankEngine();

  // Ingests XML documents (consumed), computes ElemRanks and builds the
  // configured indexes. `html_documents` are ingested in the paper's HTML
  // mode (whole document = one element).
  static Result<std::unique_ptr<XRankEngine>> Build(
      std::vector<xml::Document> documents, const EngineOptions& options);
  static Result<std::unique_ptr<XRankEngine>> Build(
      std::vector<xml::Document> documents,
      std::vector<xml::Document> html_documents, const EngineOptions& options);

  // Re-opens the committed on-disk indexes under `options.disk_dir`
  // (written by a previous disk-backed Build over the same documents).
  // The graph and ElemRanks are re-derived in memory — they are not
  // persisted — but physical index construction is skipped: the committed
  // files are validated against the MANIFEST and served as-is. A directory
  // with no MANIFEST (crash before the commit point), a torn MANIFEST, or
  // files whose length/checksum disagree with it is refused with a precise
  // error naming the file (and first bad page when verify_on_open is set).
  static Result<std::unique_ptr<XRankEngine>> Open(
      std::vector<xml::Document> documents, const EngineOptions& options);

  // Evaluates a free-text conjunctive keyword query, returning the top m
  // results via the given index. The index kind must have been built. The
  // three-argument forms run under the engine default QueryOptions
  // (EngineOptions::query); the four-argument forms override them per call
  // — a deadline expiry returns Status::DeadlineExceeded, or the partial
  // top-k with stats.partial set when allow_partial_results is on.
  Result<EngineResponse> Query(std::string_view query_text, size_t m,
                               index::IndexKind kind);
  Result<EngineResponse> Query(std::string_view query_text, size_t m,
                               index::IndexKind kind,
                               const query::QueryOptions& query_options);

  // Pre-tokenized variants.
  Result<EngineResponse> QueryKeywords(
      const std::vector<std::string>& keywords, size_t m,
      index::IndexKind kind);
  Result<EngineResponse> QueryKeywords(
      const std::vector<std::string>& keywords, size_t m,
      index::IndexKind kind, const query::QueryOptions& query_options);

  // Keyword query restricted to elements whose ancestor tag chain ends
  // with `path` — e.g. path {"paper", "title"} keeps only <title> elements
  // whose parent is a <paper>. A minimal form of the paper's Section 7
  // future-work item "integration with structured queries".
  Result<EngineResponse> QueryWithPath(std::string_view query_text, size_t m,
                                       index::IndexKind kind,
                                       const std::vector<std::string>& path);

  const graph::XmlGraph& graph() const { return graph_; }
  const std::vector<double>& elem_ranks() const { return elem_ranks_; }
  const rank::ElemRankResult& elem_rank_result() const {
    return elem_rank_result_;
  }

  // Table 1 inputs.
  const index::IndexStats& index_stats(index::IndexKind kind) const;
  bool has_index(index::IndexKind kind) const;

  // ElemRank of the element with the given Dewey ID (display helper).
  Result<double> ElemRankOf(const dewey::DeweyId& id) const;

  // --- document-granularity updates (paper Section 4.5) ---

  // Marks a document deleted. Its elements disappear from query results
  // immediately (results are post-filtered on the document id, which is the
  // first Dewey component — the property Section 4.5 relies on); the
  // physical postings remain until CompactDeletions. NotFound for an
  // unknown URI.
  Status DeleteDocument(std::string_view uri);

  // Rebuilds every physical index without the deleted documents' postings —
  // the offline merge step of traditional inverted-list maintenance that
  // the paper defers to (Brown et al. / Tomasic et al.).
  Status CompactDeletions();

  size_t deleted_document_count() const { return deleted_documents_.size(); }

  // Monotonic fast-path counters: the index's buffer-pool hit/miss totals
  // plus the engine-wide result-cache totals. Benches diff snapshots to
  // report per-phase hit rates.
  struct ServingCounters {
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    uint64_t result_cache_hits = 0;
    uint64_t result_cache_lookups = 0;
    // Engine-wide decoded-block cache totals (zero when disabled).
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_lookups = 0;
    // Engine-wide (not per-kind): queries that hit their deadline/cancel.
    uint64_t deadline_exceeded_queries = 0;  // returned DeadlineExceeded
    uint64_t partial_result_queries = 0;     // served a partial top-k
  };
  ServingCounters serving_counters(index::IndexKind kind) const;

  // Evicts every warm structure — each index's buffer pool, the result
  // cache, and the decoded-block cache — without touching index state.
  // Benches call this between measurement phases to re-establish a cold
  // baseline while serving with cold_cache_per_query = false.
  void DropCaches();

  // --- slow-query log (EngineOptions::slow_query_ms) ---
  struct SlowQueryEntry {
    std::string query;       // space-joined normalized keywords
    index::IndexKind kind;
    double wall_ms = 0.0;    // end-to-end, including decoration
    query::QueryTrace trace;
  };
  // Snapshot of the ring buffer, oldest first.
  std::vector<SlowQueryEntry> slow_queries() const;
  uint64_t slow_query_count() const;  // total recorded, including evicted

 private:
  XRankEngine() = default;

  Result<EngineResponse> Decorate(query::QueryResponse response,
                                  index::IndexKind kind, size_t m);
  // Maps a raw result onto the answer-node set (nearest qualifying
  // ancestor-or-self), if configured.
  Result<dewey::DeweyId> MapToAnswerNode(const dewey::DeweyId& id) const;

  EngineOptions options_;
  graph::XmlGraph graph_;
  std::vector<double> elem_ranks_;
  rank::ElemRankResult elem_rank_result_;
  index::Analyzer analyzer_{index::AnalyzerOptions{}};
  // Maps naive element ordinals back to Dewey IDs.
  std::vector<dewey::DeweyId> ordinal_to_dewey_;

  struct IndexInstance {
    index::BuiltIndex built;
    // Shared by all concurrent queries on this index, in both cache modes
    // (both are internally thread-safe; cold mode drops the pool between
    // queries instead of allocating a private one).
    std::unique_ptr<storage::CostModel> cost_model;
    std::unique_ptr<storage::BufferPool> pool;
  };
  // Builds one physical index of the given kind over extracted postings.
  Result<IndexInstance> BuildInstance(index::IndexKind kind,
                                      const index::ExtractionResult& extracted);
  // Shared by Build and Open: graph construction + ElemRank (steps 1-2).
  Status PrepareBase(const std::vector<xml::Document>& documents,
                     const std::vector<xml::Document>& html_documents);
  // Disk-backed engines only: renames the freshly built `<kind>.xrank.tmp`
  // files to their final names and commits them through a durable MANIFEST
  // (see index/manifest.h for the protocol). No-op for in-memory engines.
  Status CommitToDisk();

  std::map<index::IndexKind, IndexInstance> indexes_;
  std::set<uint32_t> deleted_documents_;
  // Null when EngineOptions::result_cache_entries == 0.
  std::unique_ptr<ResultCache> result_cache_;
  // Decoded posting-block cache shared by every index kind (page-file ids
  // keep entries distinct). Null when EngineOptions::block_cache_bytes == 0.
  std::unique_ptr<index::BlockCache> block_cache_;
  // Deadline outcomes, incremented under the shared lock.
  mutable std::atomic<uint64_t> deadline_exceeded_queries_{0};
  mutable std::atomic<uint64_t> partial_result_queries_{0};
  // Slow-query ring buffer: fills to capacity, then overwrites the oldest
  // entry (slow_query_next_). Guarded by its own mutex — recording a slow
  // query must not serialize concurrent fast queries.
  void RecordSlowQuery(SlowQueryEntry entry);
  mutable std::mutex slow_query_mutex_;
  std::vector<SlowQueryEntry> slow_query_ring_;
  size_t slow_query_next_ = 0;
  uint64_t slow_query_total_ = 0;
  // Readers: Query paths. Writers: DeleteDocument / CompactDeletions.
  mutable std::shared_mutex state_mutex_;
};

}  // namespace xrank::core

#endif  // XRANK_CORE_ENGINE_H_
