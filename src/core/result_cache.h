#ifndef XRANK_CORE_RESULT_CACHE_H_
#define XRANK_CORE_RESULT_CACHE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"

namespace xrank::core {

// Engine-level top-k result cache: an LRU over (normalized query terms, k,
// index kind) -> fully decorated results, sharded by key hash like the
// buffer pool so concurrent lookups of different queries never contend.
//
// Consistency: keys embed the engine's content_seq (see MakeKey), so a
// writer that changes what queries may return (AddDocument/DeleteDocument)
// invalidates every prior entry by construction — stale keys simply stop
// being looked up and age out of the LRU. Segment flushes and compactions,
// which regroup identical content, leave the keys (and therefore every
// cached hit) intact. Clear() remains for wholesale eviction (DropCaches,
// cold-cache benchmarking).
class ResultCache {
 public:
  // `capacity_entries` > 0; `num_shards` == 0 picks an automatic stripe
  // count from the capacity.
  explicit ResultCache(size_t capacity_entries, size_t num_shards = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Canonical cache key. Keyword order is preserved (a permuted query is a
  // legal separate entry — same results, fewer hits, never wrong).
  // `content_seq` is the engine's logical-content version: it advances on
  // every AddDocument/DeleteDocument but NOT on flush or compaction, so
  // entries go stale exactly when the answer could change — a flush that
  // only regroups identical content keeps every hit warm.
  static std::string MakeKey(const std::vector<std::string>& terms, size_t m,
                             index::IndexKind kind, uint64_t content_seq);

  // On hit, copies the cached response into *out, promotes the entry to
  // most-recently-used, and returns true.
  bool Lookup(const std::string& key, EngineResponse* out);

  // Inserts (or refreshes) the entry, evicting the least-recently-used
  // entry of its shard when the shard is full.
  void Insert(const std::string& key, const EngineResponse& response);

  // Drops every entry (writer-side wholesale invalidation).
  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  size_t shard_count() const { return shards_.size(); }
  size_t cached_entries() const;

 private:
  struct Shard {
    std::mutex mutex;
    // Front = most recently used.
    std::list<std::pair<std::string, EngineResponse>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, EngineResponse>>::
                           iterator>
        index;
  };

  Shard& ShardFor(const std::string& key);

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> lookups_{0};
  // Process-wide aggregates mirroring the per-cache atomics above.
  metrics::Counter* registry_hits_;
  metrics::Counter* registry_lookups_;
  metrics::Counter* registry_insertions_;
};

}  // namespace xrank::core

#endif  // XRANK_CORE_RESULT_CACHE_H_
