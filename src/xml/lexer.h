#ifndef XRANK_XML_LEXER_H_
#define XRANK_XML_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace xrank::xml {

// Lexical token stream over an XML byte buffer. The lexer handles tags with
// attributes, text with entity references, CDATA sections, comments,
// processing instructions and DOCTYPE declarations; the parser above it only
// sees start/end tags and decoded text.
enum class TokenKind {
  kStartTag,  // <name attr="v" ...>  (self_closing for <name/>)
  kEndTag,    // </name>
  kText,      // decoded character data (entities resolved, CDATA inlined)
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string name;                   // tag name for start/end tags
  std::string text;                   // character data for kText
  std::vector<Attribute> attributes;  // for kStartTag
  bool self_closing = false;          // for kStartTag
  int line = 0;                       // 1-based line where the token started
};

class Lexer {
 public:
  // The input must outlive the lexer; no copy is taken.
  explicit Lexer(std::string_view input) : input_(input) {}

  // Returns the next token, skipping comments, PIs, the XML declaration and
  // DOCTYPE. Whitespace-only text between markup is skipped; any other text
  // (including whitespace adjacent to non-whitespace) is returned verbatim
  // after entity decoding.
  Result<Token> Next();

  int line() const { return line_; }

 private:
  Result<Token> LexMarkup();
  Result<Token> LexStartTag();
  Result<Token> LexEndTag();
  Result<Token> LexText();
  Status SkipComment();
  Status SkipProcessingInstruction();
  Status SkipDoctype();
  Result<std::string> LexCdata();

  // Scans an XML Name (tag or attribute name) at the cursor.
  Result<std::string> ScanName();
  // Scans ="value" (either quote kind), decoding entities.
  Result<std::string> ScanAttributeValue();
  // Decodes one &...; entity at the cursor (which points at '&').
  Status AppendDecodedEntity(std::string* out);

  void SkipWhitespace();
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t ahead) const;
  void Advance();
  bool ConsumePrefix(std::string_view prefix);
  Status Error(const std::string& what) const;

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace xrank::xml

#endif  // XRANK_XML_LEXER_H_
