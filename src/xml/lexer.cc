#include "xml/lexer.h"

#include "common/string_util.h"

namespace xrank::xml {

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

char Lexer::PeekAt(size_t ahead) const {
  size_t i = pos_ + ahead;
  return i < input_.size() ? input_[i] : '\0';
}

void Lexer::Advance() {
  if (input_[pos_] == '\n') ++line_;
  ++pos_;
}

bool Lexer::ConsumePrefix(std::string_view prefix) {
  if (input_.substr(pos_, prefix.size()) != prefix) return false;
  for (size_t i = 0; i < prefix.size(); ++i) Advance();
  return true;
}

Status Lexer::Error(const std::string& what) const {
  return Status::ParseError(what + " at line " + std::to_string(line_));
}

void Lexer::SkipWhitespace() {
  while (!AtEnd() && IsWhitespace(Peek())) Advance();
}

Result<Token> Lexer::Next() {
  for (;;) {
    if (AtEnd()) {
      Token token;
      token.kind = TokenKind::kEof;
      token.line = line_;
      return token;
    }
    if (Peek() == '<') {
      if (PeekAt(1) == '!') {
        if (input_.substr(pos_, 4) == "<!--") {
          XRANK_RETURN_NOT_OK(SkipComment());
          continue;
        }
        if (input_.substr(pos_, 9) == "<![CDATA[") {
          XRANK_ASSIGN_OR_RETURN(std::string cdata, LexCdata());
          Token token;
          token.kind = TokenKind::kText;
          token.text = std::move(cdata);
          token.line = line_;
          return token;
        }
        XRANK_RETURN_NOT_OK(SkipDoctype());
        continue;
      }
      if (PeekAt(1) == '?') {
        XRANK_RETURN_NOT_OK(SkipProcessingInstruction());
        continue;
      }
      return LexMarkup();
    }
    // Character data. Whitespace-only runs between markup are insignificant.
    size_t start = pos_;
    Result<Token> token = LexText();
    if (!token.ok()) return token;
    if (StripWhitespace(token->text).empty()) {
      (void)start;
      continue;  // ignorable whitespace
    }
    return token;
  }
}

Result<Token> Lexer::LexMarkup() {
  if (PeekAt(1) == '/') return LexEndTag();
  return LexStartTag();
}

Result<Token> Lexer::LexStartTag() {
  Token token;
  token.kind = TokenKind::kStartTag;
  token.line = line_;
  Advance();  // consume '<'
  if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected tag name");
  XRANK_ASSIGN_OR_RETURN(token.name, ScanName());
  for (;;) {
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated start tag <" + token.name);
    if (Peek() == '>') {
      Advance();
      return token;
    }
    if (Peek() == '/') {
      Advance();
      if (AtEnd() || Peek() != '>') return Error("expected '>' after '/'");
      Advance();
      token.self_closing = true;
      return token;
    }
    if (!IsNameStartChar(Peek())) {
      return Error("unexpected character in tag <" + token.name);
    }
    XRANK_ASSIGN_OR_RETURN(std::string attr_name, ScanName());
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') {
      return Error("attribute '" + attr_name + "' missing '='");
    }
    Advance();  // consume '='
    SkipWhitespace();
    XRANK_ASSIGN_OR_RETURN(std::string attr_value, ScanAttributeValue());
    token.attributes.push_back(
        Attribute{std::move(attr_name), std::move(attr_value)});
  }
}

Result<Token> Lexer::LexEndTag() {
  Token token;
  token.kind = TokenKind::kEndTag;
  token.line = line_;
  Advance();  // '<'
  Advance();  // '/'
  if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected tag name");
  XRANK_ASSIGN_OR_RETURN(token.name, ScanName());
  SkipWhitespace();
  if (AtEnd() || Peek() != '>') {
    return Error("unterminated end tag </" + token.name);
  }
  Advance();
  return token;
}

Result<Token> Lexer::LexText() {
  Token token;
  token.kind = TokenKind::kText;
  token.line = line_;
  while (!AtEnd() && Peek() != '<') {
    if (Peek() == '&') {
      XRANK_RETURN_NOT_OK(AppendDecodedEntity(&token.text));
    } else {
      token.text.push_back(Peek());
      Advance();
    }
  }
  return token;
}

Status Lexer::SkipComment() {
  ConsumePrefix("<!--");
  while (!AtEnd()) {
    if (ConsumePrefix("-->")) return Status::OK();
    Advance();
  }
  return Error("unterminated comment");
}

Status Lexer::SkipProcessingInstruction() {
  ConsumePrefix("<?");
  while (!AtEnd()) {
    if (ConsumePrefix("?>")) return Status::OK();
    Advance();
  }
  return Error("unterminated processing instruction");
}

Status Lexer::SkipDoctype() {
  // <!DOCTYPE ...> — may contain a bracketed internal subset.
  ConsumePrefix("<!");
  int bracket_depth = 0;
  while (!AtEnd()) {
    char c = Peek();
    if (c == '[') ++bracket_depth;
    if (c == ']') --bracket_depth;
    if (c == '>' && bracket_depth <= 0) {
      Advance();
      return Status::OK();
    }
    Advance();
  }
  return Error("unterminated <! declaration");
}

Result<std::string> Lexer::LexCdata() {
  ConsumePrefix("<![CDATA[");
  std::string out;
  while (!AtEnd()) {
    if (ConsumePrefix("]]>")) return out;
    out.push_back(Peek());
    Advance();
  }
  return Error("unterminated CDATA section");
}

Result<std::string> Lexer::ScanName() {
  std::string name;
  name.push_back(Peek());
  Advance();
  while (!AtEnd() && IsNameChar(Peek())) {
    name.push_back(Peek());
    Advance();
  }
  return name;
}

Result<std::string> Lexer::ScanAttributeValue() {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Error("expected quoted attribute value");
  }
  char quote = Peek();
  Advance();
  std::string value;
  while (!AtEnd() && Peek() != quote) {
    if (Peek() == '&') {
      XRANK_RETURN_NOT_OK(AppendDecodedEntity(&value));
    } else {
      value.push_back(Peek());
      Advance();
    }
  }
  if (AtEnd()) return Error("unterminated attribute value");
  Advance();  // closing quote
  return value;
}

Status Lexer::AppendDecodedEntity(std::string* out) {
  Advance();  // consume '&'
  std::string entity;
  while (!AtEnd() && Peek() != ';' && entity.size() < 12) {
    entity.push_back(Peek());
    Advance();
  }
  if (AtEnd() || Peek() != ';') return Error("malformed entity reference");
  Advance();  // consume ';'
  if (entity == "amp") {
    out->push_back('&');
  } else if (entity == "lt") {
    out->push_back('<');
  } else if (entity == "gt") {
    out->push_back('>');
  } else if (entity == "quot") {
    out->push_back('"');
  } else if (entity == "apos") {
    out->push_back('\'');
  } else if (!entity.empty() && entity[0] == '#') {
    uint32_t code = 0;
    bool ok = entity.size() > 1;
    if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
      for (size_t i = 2; i < entity.size() && ok; ++i) {
        char c = entity[i];
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          digit = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          ok = false;
          break;
        }
        code = code * 16 + digit;
      }
    } else {
      for (size_t i = 1; i < entity.size() && ok; ++i) {
        char c = entity[i];
        if (c < '0' || c > '9') {
          ok = false;
          break;
        }
        code = code * 10 + static_cast<uint32_t>(c - '0');
      }
    }
    if (!ok || code == 0 || code > 0x10FFFF) {
      return Error("bad character reference &" + entity + ";");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  } else {
    return Error("unknown entity &" + entity + ";");
  }
  return Status::OK();
}

}  // namespace xrank::xml
