#include "xml/parser.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "xml/lexer.h"

namespace xrank::xml {

Result<Document> ParseDocument(std::string_view input, std::string uri,
                               const ParseOptions& options) {
  Lexer lexer(input);
  Document doc;
  doc.uri = std::move(uri);

  std::vector<Node*> open_elements;  // stack of unclosed elements
  for (;;) {
    XRANK_ASSIGN_OR_RETURN(Token token, lexer.Next());
    switch (token.kind) {
      case TokenKind::kEof: {
        if (!open_elements.empty()) {
          return Status::ParseError("unexpected end of input: <" +
                                    open_elements.back()->name() +
                                    "> not closed");
        }
        if (doc.root == nullptr) {
          return Status::ParseError("document has no root element");
        }
        return doc;
      }
      case TokenKind::kStartTag: {
        auto element = Node::MakeElement(token.name);
        for (Attribute& attr : token.attributes) {
          element->AddAttribute(std::move(attr.name), std::move(attr.value));
        }
        if (open_elements.size() >= options.max_depth) {
          return Status::ParseError(
              "element nesting exceeds max depth " +
              std::to_string(options.max_depth) + " at line " +
              std::to_string(token.line));
        }
        Node* placed = nullptr;
        if (open_elements.empty()) {
          if (doc.root != nullptr) {
            return Status::ParseError(
                "second root element <" + token.name + "> at line " +
                std::to_string(token.line));
          }
          doc.root = std::move(element);
          placed = doc.root.get();
        } else {
          placed = open_elements.back()->AddChild(std::move(element));
        }
        if (!token.self_closing) open_elements.push_back(placed);
        break;
      }
      case TokenKind::kEndTag: {
        if (open_elements.empty()) {
          return Status::ParseError("unmatched </" + token.name +
                                    "> at line " + std::to_string(token.line));
        }
        if (open_elements.back()->name() != token.name) {
          return Status::ParseError(
              "mismatched </" + token.name + "> at line " +
              std::to_string(token.line) + "; expected </" +
              open_elements.back()->name() + ">");
        }
        open_elements.pop_back();
        break;
      }
      case TokenKind::kText: {
        if (open_elements.empty()) {
          return Status::ParseError("character data outside root at line " +
                                    std::to_string(token.line));
        }
        open_elements.back()->AddChild(Node::MakeText(std::move(token.text)));
        break;
      }
    }
  }
}

Result<Document> ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("error reading '" + path + "'");
  std::string contents = buffer.str();
  return ParseDocument(contents, path);
}

}  // namespace xrank::xml
