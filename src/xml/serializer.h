#ifndef XRANK_XML_SERIALIZER_H_
#define XRANK_XML_SERIALIZER_H_

#include <string>

#include "xml/node.h"

namespace xrank::xml {

struct SerializeOptions {
  // Pretty-print with 2-space indentation; otherwise emit compact output
  // that round-trips exactly through the parser.
  bool pretty = false;
};

// Serializes a subtree back to XML text (entities re-escaped).
std::string Serialize(const Node& node, const SerializeOptions& options = {});

// Serializes a whole document (root subtree).
std::string Serialize(const Document& doc, const SerializeOptions& options = {});

// Escapes &, <, >, " and ' for use in character data or attribute values.
std::string EscapeText(const std::string& text);

}  // namespace xrank::xml

#endif  // XRANK_XML_SERIALIZER_H_
