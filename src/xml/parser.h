#ifndef XRANK_XML_PARSER_H_
#define XRANK_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/node.h"

namespace xrank::xml {

struct ParseOptions {
  // Maximum element nesting depth. Deeply nested input is rejected instead
  // of risking stack exhaustion in the recursive consumers downstream
  // (graph construction, extraction).
  size_t max_depth = 512;
};

// Parses a complete XML document. Returns ParseError (with a line number)
// for malformed input: mismatched tags, multiple roots, stray text at top
// level, unterminated constructs, bad entities, excessive nesting.
Result<Document> ParseDocument(std::string_view input, std::string uri,
                               const ParseOptions& options = {});

// Reads `path` from the filesystem and parses it; the path becomes the
// document URI.
Result<Document> ParseFile(const std::string& path);

}  // namespace xrank::xml

#endif  // XRANK_XML_PARSER_H_
