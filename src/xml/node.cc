#include "xml/node.h"

#include <algorithm>

namespace xrank::xml {

std::unique_ptr<Node> Node::MakeElement(std::string name) {
  auto node = std::unique_ptr<Node>(new Node(NodeKind::kElement));
  node->name_ = std::move(name);
  return node;
}

std::unique_ptr<Node> Node::MakeText(std::string text) {
  auto node = std::unique_ptr<Node>(new Node(NodeKind::kText));
  node->text_ = std::move(text);
  return node;
}

void Node::AddAttribute(std::string name, std::string value) {
  attributes_.push_back(Attribute{std::move(name), std::move(value)});
}

const std::string* Node::FindAttribute(std::string_view name) const {
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

const Node* Node::FindChildElement(std::string_view tag) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == tag) return child.get();
  }
  return nullptr;
}

std::string Node::DirectText() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->is_text()) {
      if (!out.empty()) out.push_back(' ');
      out += child->text();
    }
  }
  return out;
}

std::string Node::DeepText() const {
  std::string out;
  if (is_text()) return text_;
  for (const auto& child : children_) {
    std::string piece = child->DeepText();
    if (piece.empty()) continue;
    if (!out.empty()) out.push_back(' ');
    out += piece;
  }
  return out;
}

size_t Node::CountElements() const {
  if (!is_element()) return 0;
  size_t count = 1;
  for (const auto& child : children_) count += child->CountElements();
  return count;
}

size_t Node::ElementDepth() const {
  if (!is_element()) return 0;
  size_t deepest = 0;
  for (const auto& child : children_) {
    deepest = std::max(deepest, child->ElementDepth());
  }
  return deepest + 1;
}

}  // namespace xrank::xml
