#include "xml/serializer.h"

namespace xrank::xml {

namespace {

void SerializeNode(const Node& node, const SerializeOptions& options,
                   int depth, std::string* out) {
  if (node.is_text()) {
    if (options.pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
    out->append(EscapeText(node.text()));
    if (options.pretty) out->push_back('\n');
    return;
  }
  if (options.pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
  out->push_back('<');
  out->append(node.name());
  for (const Attribute& attr : node.attributes()) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(EscapeText(attr.value));
    out->push_back('"');
  }
  if (node.children().empty()) {
    out->append("/>");
    if (options.pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (options.pretty) out->push_back('\n');
  for (const auto& child : node.children()) {
    SerializeNode(*child, options, depth + 1, out);
  }
  if (options.pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("</");
  out->append(node.name());
  out->push_back('>');
  if (options.pretty) out->push_back('\n');
}

}  // namespace

std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Serialize(const Node& node, const SerializeOptions& options) {
  std::string out;
  SerializeNode(node, options, 0, &out);
  return out;
}

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  if (doc.root == nullptr) return "";
  return Serialize(*doc.root, options);
}

}  // namespace xrank::xml
