#ifndef XRANK_XML_NODE_H_
#define XRANK_XML_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xrank::xml {

// A parsed XML document is a tree of Nodes. Attributes are kept on the
// element node; the graph layer later re-exposes them as sub-elements,
// matching the paper's convention ("we treat attributes as though they are
// sub-elements", Section 2.1).
enum class NodeKind {
  kElement,
  kText,
};

struct Attribute {
  std::string name;
  std::string value;
};

class Node {
 public:
  static std::unique_ptr<Node> MakeElement(std::string name);
  static std::unique_ptr<Node> MakeText(std::string text);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  // Element tag name; empty for text nodes.
  const std::string& name() const { return name_; }

  // Text content; empty for element nodes.
  const std::string& text() const { return text_; }
  void AppendText(std::string_view more) { text_ += more; }

  const std::vector<Attribute>& attributes() const { return attributes_; }
  void AddAttribute(std::string name, std::string value);

  // Returns the attribute value, or nullptr if absent.
  const std::string* FindAttribute(std::string_view name) const;

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  Node* parent() const { return parent_; }

  // Appends `child` and returns a borrowed pointer to it.
  Node* AddChild(std::unique_ptr<Node> child);

  // First child element with the given tag name, or nullptr.
  const Node* FindChildElement(std::string_view tag) const;

  // Concatenation of all text directly under this element (not recursive).
  std::string DirectText() const;

  // Concatenation of all text in this subtree, in document order.
  std::string DeepText() const;

  // Number of element nodes in this subtree, including this one.
  size_t CountElements() const;

  // Depth of the deepest element below this one (a leaf element is 1).
  size_t ElementDepth() const;

 private:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  std::string name_;
  std::string text_;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
  Node* parent_ = nullptr;
};

// A document: root element plus the URI it was loaded from. The URI is the
// link target namespace for inter-document XLink references.
struct Document {
  std::string uri;
  std::unique_ptr<Node> root;
};

}  // namespace xrank::xml

#endif  // XRANK_XML_NODE_H_
