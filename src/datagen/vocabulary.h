#ifndef XRANK_DATAGEN_VOCABULARY_H_
#define XRANK_DATAGEN_VOCABULARY_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace xrank::datagen {

// Deterministic pseudo-word vocabulary: word(i) is a stable, pronounceable
// token unique per index, so every experiment regenerates the exact same
// corpus text without shipping word lists.
class Vocabulary {
 public:
  explicit Vocabulary(size_t size) : size_(size) {}

  size_t size() const { return size_; }

  // The i-th word, e.g. "tazomi" (i < size()).
  std::string Word(size_t i) const;

 private:
  size_t size_;
};

}  // namespace xrank::datagen

#endif  // XRANK_DATAGEN_VOCABULARY_H_
