#ifndef XRANK_DATAGEN_WORKLOAD_H_
#define XRANK_DATAGEN_WORKLOAD_H_

#include <array>
#include <string>
#include <vector>

#include "common/random.h"
#include "xml/node.h"

namespace xrank::datagen {

// Terms deliberately planted by the corpus generators so query workloads can
// control the two factors the paper's performance study varies (Section
// 5.4): keyword correlation and keyword selectivity.
struct PlantedTerms {
  // Quadruples whose terms always co-occur adjacently in one element; a
  // high-correlation query of n keywords takes the first n of a quadruple
  // (Figure 10's regime: B+-tree probes almost always succeed).
  std::vector<std::array<std::string, 4>> high_correlation;
  // Quadruples of individually frequent terms that co-occur in only a
  // handful of elements (Figure 11's regime: most probes fail).
  std::vector<std::array<std::string, 4>> low_correlation;
  // (term, approximate document frequency) pairs spanning selectivities.
  std::vector<std::pair<std::string, size_t>> selectivity_terms;
};

// A generated document collection plus its planted-term manifest.
struct Corpus {
  std::vector<xml::Document> documents;
  PlantedTerms planted;
};

enum class CorrelationMode { kHigh, kLow };

struct WorkloadOptions {
  size_t num_queries = 8;
  size_t num_keywords = 2;  // 1..4 (quadruples bound this)
  CorrelationMode mode = CorrelationMode::kHigh;
  uint64_t seed = 1;
};

// Builds keyword queries from the planted quadruples. Queries cycle through
// the quadruples in a seed-shuffled order.
std::vector<std::vector<std::string>> MakeQueries(
    const PlantedTerms& planted, const WorkloadOptions& options);

// --- helpers shared by the corpus generators ---

// Marker-term names: hc = high correlation, lc = low correlation.
std::string HighCorrTerm(size_t set, size_t position);
std::string LowCorrTerm(size_t set, size_t position);
std::string SelectivityTerm(size_t bucket);

// Fills `planted` with `sets` quadruples of each class.
void RegisterPlantedSets(size_t sets, PlantedTerms* planted);

}  // namespace xrank::datagen

#endif  // XRANK_DATAGEN_WORKLOAD_H_
