#ifndef XRANK_DATAGEN_HTML_GEN_H_
#define XRANK_DATAGEN_HTML_GEN_H_

#include <cstdint>

#include "datagen/workload.h"

namespace xrank::datagen {

// Small hyperlinked HTML collection used to exercise the paper's design
// goal of generalizing an HTML search engine (Sections 1, 2.2, 2.4): HTML
// documents are ingested as single elements, so XRANK's ElemRank reduces to
// PageRank and keyword results are whole documents.
struct HtmlOptions {
  size_t num_pages = 60;
  uint64_t seed = 99;
  size_t vocabulary_size = 5000;
  double zipf_s = 1.1;
  size_t words_per_page = 80;
  double mean_links = 4.0;
  size_t planted_sets = 4;
  double high_corr_frequency = 0.15;
};

Corpus GenerateHtml(const HtmlOptions& options);

}  // namespace xrank::datagen

#endif  // XRANK_DATAGEN_HTML_GEN_H_
