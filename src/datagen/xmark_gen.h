#ifndef XRANK_DATAGEN_XMARK_GEN_H_
#define XRANK_DATAGEN_XMARK_GEN_H_

#include <cstdint>

#include "datagen/workload.h"

namespace xrank::datagen {

// Re-implementation of the XMark auction-site benchmark schema (paper
// Section 5.1's synthetic dataset): a single deep document (depth >= 10 via
// nested parlist/listitem structures) with *intra-document* IDREF links
// (itemref/personref/seller/buyer/incategory).
struct XMarkOptions {
  size_t num_items = 400;
  size_t num_people = 200;
  size_t num_open_auctions = 250;
  size_t num_closed_auctions = 120;
  size_t num_categories = 20;
  uint64_t seed = 7;

  size_t vocabulary_size = 20000;
  double zipf_s = 1.1;
  // Nested <parlist><listitem>... recursion inside item descriptions; the
  // document depth is 6 + 2 * parlist_depth.
  size_t parlist_depth = 2;
  size_t text_words = 12;

  size_t planted_sets = 8;
  double high_corr_frequency = 0.05;
  double low_corr_frequency = 0.10;
  size_t low_corr_joint_items = 2;
};

Corpus GenerateXMark(const XMarkOptions& options);

}  // namespace xrank::datagen

#endif  // XRANK_DATAGEN_XMARK_GEN_H_
