#include "datagen/workload.h"

#include <algorithm>

#include "common/check.h"

namespace xrank::datagen {

std::string HighCorrTerm(size_t set, size_t position) {
  XRANK_DCHECK(position < 4, "quadruple position out of range");
  static constexpr char kPositions[] = {'a', 'b', 'c', 'd'};
  return "hc" + std::string(1, kPositions[position]) + std::to_string(set);
}

std::string LowCorrTerm(size_t set, size_t position) {
  XRANK_DCHECK(position < 4, "quadruple position out of range");
  static constexpr char kPositions[] = {'a', 'b', 'c', 'd'};
  return "lc" + std::string(1, kPositions[position]) + std::to_string(set);
}

std::string SelectivityTerm(size_t bucket) {
  return "sel" + std::to_string(bucket);
}

void RegisterPlantedSets(size_t sets, PlantedTerms* planted) {
  for (size_t s = 0; s < sets; ++s) {
    std::array<std::string, 4> high;
    std::array<std::string, 4> low;
    for (size_t p = 0; p < 4; ++p) {
      high[p] = HighCorrTerm(s, p);
      low[p] = LowCorrTerm(s, p);
    }
    planted->high_correlation.push_back(std::move(high));
    planted->low_correlation.push_back(std::move(low));
  }
}

std::vector<std::vector<std::string>> MakeQueries(
    const PlantedTerms& planted, const WorkloadOptions& options) {
  XRANK_CHECK(options.num_keywords >= 1 && options.num_keywords <= 4,
              "planted quadruples support 1-4 keywords");
  const auto& quads = options.mode == CorrelationMode::kHigh
                          ? planted.high_correlation
                          : planted.low_correlation;
  XRANK_CHECK(!quads.empty(), "corpus has no planted terms");

  std::vector<size_t> order(quads.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Random rng(options.seed);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }

  std::vector<std::vector<std::string>> queries;
  queries.reserve(options.num_queries);
  for (size_t q = 0; q < options.num_queries; ++q) {
    const auto& quad = quads[order[q % order.size()]];
    std::vector<std::string> keywords(quad.begin(),
                                      quad.begin() + options.num_keywords);
    queries.push_back(std::move(keywords));
  }
  return queries;
}

}  // namespace xrank::datagen
