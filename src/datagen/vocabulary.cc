#include "datagen/vocabulary.h"

#include "common/check.h"

namespace xrank::datagen {

namespace {

constexpr const char* kSyllables[] = {
    "ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu",
    "na", "pe", "qi", "ro", "su", "ta", "ve", "wi", "xo", "zu",
    "bral", "cren", "drim", "fost", "gund", "harn", "jelt", "kirp",
    "lomb", "mard", "nelf", "pronk", "quist", "rold", "sarn", "tazz",
};
constexpr size_t kSyllableCount = sizeof(kSyllables) / sizeof(kSyllables[0]);

}  // namespace

std::string Vocabulary::Word(size_t i) const {
  XRANK_DCHECK(i < size_, "vocabulary index out of range");
  // Mixed-radix expansion over the syllable set, at least two syllables so
  // words never collide with planted marker terms.
  std::string word;
  size_t value = i;
  do {
    word += kSyllables[value % kSyllableCount];
    value /= kSyllableCount;
  } while (value > 0);
  if (word.size() < 4) word += "an";
  return word;
}

}  // namespace xrank::datagen
