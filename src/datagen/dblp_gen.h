#ifndef XRANK_DATAGEN_DBLP_GEN_H_
#define XRANK_DATAGEN_DBLP_GEN_H_

#include <cstdint>

#include "datagen/workload.h"

namespace xrank::datagen {

// Synthetic stand-in for the DBLP dataset (paper Section 5.1): shallow
// publication records (depth ~4) with many *inter-document* hyperlinks in
// the form of bibliographic citations. Each publication is its own
// document; citations are XLink attributes targeting other documents, with
// power-law in-degrees from preferential attachment.
struct DblpOptions {
  size_t num_papers = 2000;
  uint64_t seed = 42;

  size_t vocabulary_size = 20000;
  double zipf_s = 1.1;
  size_t title_words = 8;
  size_t abstract_words = 40;
  size_t max_authors = 4;
  double mean_citations = 4.0;

  // Planted-term controls (see workload.h).
  size_t planted_sets = 8;
  double high_corr_frequency = 0.02;  // papers carrying a hc quadruple
  double low_corr_frequency = 0.05;   // per-term frequency of lc terms
  // The handful of papers where a low-correlation quadruple does co-occur.
  size_t low_corr_joint_papers = 2;

  // Dense planting for the performance benches (paper Section 5.4 uses
  // common keywords, whose inverted lists span many pages): when > 0, each
  // text element additionally carries a high-correlation quadruple with
  // this probability, and a low-correlation term (partitioned by paper
  // index) with the same probability. 0 disables (unit-test default).
  double dense_plant_rate = 0.0;
};

Corpus GenerateDblp(const DblpOptions& options);

}  // namespace xrank::datagen

#endif  // XRANK_DATAGEN_DBLP_GEN_H_
