#include "datagen/xmark_gen.h"

#include <algorithm>

#include "datagen/vocabulary.h"
#include "datagen/zipf.h"

namespace xrank::datagen {

namespace {

struct GenContext {
  const XMarkOptions* options;
  Random* rng;
  const ZipfSampler* zipf;
  const Vocabulary* vocab;
  Corpus* corpus;
};

std::string RandomText(GenContext* ctx, size_t words) {
  std::string text;
  for (size_t w = 0; w < words; ++w) {
    if (w > 0) text.push_back(' ');
    text += ctx->vocab->Word(ctx->zipf->Sample(ctx->rng));
  }
  return text;
}

std::unique_ptr<xml::Node> TextElement(const std::string& tag,
                                       std::string text) {
  auto element = xml::Node::MakeElement(tag);
  element->AddChild(xml::Node::MakeText(std::move(text)));
  return element;
}

// Nested parlist/listitem recursion: this is what gives XMark its depth.
std::unique_ptr<xml::Node> MakeParlist(GenContext* ctx, size_t depth,
                                       const std::string& extra_text) {
  auto parlist = xml::Node::MakeElement("parlist");
  size_t items = 1 + ctx->rng->Uniform(2);
  for (size_t i = 0; i < items; ++i) {
    auto listitem = xml::Node::MakeElement("listitem");
    if (depth > 1) {
      listitem->AddChild(MakeParlist(ctx, depth - 1, i == 0 ? extra_text : ""));
    } else {
      std::string text = RandomText(ctx, ctx->options->text_words);
      if (i == 0 && !extra_text.empty()) {
        text.push_back(' ');
        text += extra_text;
      }
      listitem->AddChild(TextElement("text", std::move(text)));
    }
    parlist->AddChild(std::move(listitem));
  }
  return parlist;
}

std::unique_ptr<xml::Node> MakeItem(GenContext* ctx, size_t index) {
  const XMarkOptions& options = *ctx->options;
  auto item = xml::Node::MakeElement("item");
  item->AddAttribute("id", "item" + std::to_string(index));
  item->AddChild(TextElement("location", RandomText(ctx, 2)));

  std::string name_text = RandomText(ctx, 3);
  std::string description_extra;
  // High-correlation quadruples go into one deep description text leaf; the
  // first `planted_sets` items each carry their own set so every quadruple
  // occurs at least once in corpora of any size.
  bool plant_high = options.planted_sets > 0 &&
                    (index < options.planted_sets ||
                     ctx->rng->Bernoulli(options.high_corr_frequency));
  if (plant_high) {
    size_t set = index < options.planted_sets
                     ? index
                     : ctx->rng->Uniform(options.planted_sets);
    for (size_t p = 0; p < 4; ++p) {
      description_extra.push_back(' ');
      description_extra += HighCorrTerm(set, p);
    }
  }
  // Low-correlation terms partitioned by item index.
  if (options.planted_sets > 0 &&
      ctx->rng->Bernoulli(options.low_corr_frequency * 4.0)) {
    size_t set = ctx->rng->Uniform(options.planted_sets);
    description_extra.push_back(' ');
    description_extra += LowCorrTerm(set, index % 4);
  }
  size_t joint_stride = std::max<size_t>(
      2, options.num_items /
             std::max<size_t>(
                 1, options.low_corr_joint_items * options.planted_sets));
  if (options.planted_sets > 0 && options.low_corr_joint_items > 0 &&
      index % joint_stride == 1) {
    size_t set = (index / joint_stride) % options.planted_sets;
    for (size_t p = 0; p < 4; ++p) {
      description_extra.push_back(' ');
      description_extra += LowCorrTerm(set, p);
    }
  }

  item->AddChild(TextElement("name", std::move(name_text)));
  item->AddChild(TextElement("payment", "creditcard money order"));
  auto description = xml::Node::MakeElement("description");
  description->AddChild(
      MakeParlist(ctx, options.parlist_depth, description_extra));
  item->AddChild(std::move(description));
  item->AddChild(TextElement("quantity", "1"));

  auto incategory = xml::Node::MakeElement("incategory");
  incategory->AddAttribute(
      "ref", "cat" + std::to_string(ctx->rng->Uniform(
                         ctx->options->num_categories)));
  item->AddChild(std::move(incategory));
  return item;
}

std::unique_ptr<xml::Node> MakePerson(GenContext* ctx, size_t index) {
  auto person = xml::Node::MakeElement("person");
  person->AddAttribute("id", "person" + std::to_string(index));
  person->AddChild(TextElement("name", RandomText(ctx, 2)));
  person->AddChild(TextElement(
      "emailaddress", "mailto " + ctx->vocab->Word(index % ctx->vocab->size())));
  auto address = xml::Node::MakeElement("address");
  address->AddChild(TextElement("street", RandomText(ctx, 2)));
  address->AddChild(TextElement("city", RandomText(ctx, 1)));
  address->AddChild(TextElement("country", RandomText(ctx, 1)));
  person->AddChild(std::move(address));
  return person;
}

}  // namespace

Corpus GenerateXMark(const XMarkOptions& options) {
  Corpus corpus;
  RegisterPlantedSets(options.planted_sets, &corpus.planted);
  Vocabulary vocab(options.vocabulary_size);
  ZipfSampler zipf(options.vocabulary_size, options.zipf_s);
  Random rng(options.seed);
  GenContext ctx{&options, &rng, &zipf, &vocab, &corpus};

  auto site = xml::Node::MakeElement("site");

  // Categories (IDREF targets for incategory).
  auto categories = xml::Node::MakeElement("categories");
  for (size_t c = 0; c < options.num_categories; ++c) {
    auto category = xml::Node::MakeElement("category");
    category->AddAttribute("id", "cat" + std::to_string(c));
    category->AddChild(TextElement("name", RandomText(&ctx, 2)));
    categories->AddChild(std::move(category));
  }
  site->AddChild(std::move(categories));

  // Items spread over continental regions.
  static constexpr const char* kRegions[] = {"africa",  "asia",   "australia",
                                             "europe",  "namerica", "samerica"};
  constexpr size_t kRegionCount = sizeof(kRegions) / sizeof(kRegions[0]);
  auto regions = xml::Node::MakeElement("regions");
  std::vector<xml::Node*> region_nodes;
  for (size_t r = 0; r < kRegionCount; ++r) {
    region_nodes.push_back(
        regions->AddChild(xml::Node::MakeElement(kRegions[r])));
  }
  for (size_t i = 0; i < options.num_items; ++i) {
    region_nodes[i % kRegionCount]->AddChild(MakeItem(&ctx, i));
  }
  site->AddChild(std::move(regions));

  auto people = xml::Node::MakeElement("people");
  for (size_t p = 0; p < options.num_people; ++p) {
    people->AddChild(MakePerson(&ctx, p));
  }
  site->AddChild(std::move(people));

  auto open_auctions = xml::Node::MakeElement("open_auctions");
  for (size_t a = 0; a < options.num_open_auctions; ++a) {
    auto auction = xml::Node::MakeElement("open_auction");
    auction->AddAttribute("id", "open" + std::to_string(a));
    auction->AddChild(TextElement("initial", std::to_string(rng.Uniform(500))));
    size_t bidders = 1 + rng.Uniform(4);
    for (size_t b = 0; b < bidders; ++b) {
      auto bidder = xml::Node::MakeElement("bidder");
      bidder->AddChild(TextElement("date", "07/06/2001"));
      auto personref = xml::Node::MakeElement("personref");
      personref->AddAttribute(
          "person", "person" + std::to_string(rng.Uniform(options.num_people)));
      bidder->AddChild(std::move(personref));
      bidder->AddChild(
          TextElement("increase", std::to_string(1 + rng.Uniform(50))));
      auction->AddChild(std::move(bidder));
    }
    auto itemref = xml::Node::MakeElement("itemref");
    // Preferential skew: low-index items are referenced by many auctions,
    // giving them high ElemRanks (the 'stained mirror' anecdote of §5.2).
    size_t item = rng.Bernoulli(0.5)
                      ? rng.Uniform(std::max<size_t>(options.num_items / 10, 1))
                      : rng.Uniform(options.num_items);
    itemref->AddAttribute("item", "item" + std::to_string(item));
    auction->AddChild(std::move(itemref));
    auto seller = xml::Node::MakeElement("seller");
    seller->AddAttribute(
        "person", "person" + std::to_string(rng.Uniform(options.num_people)));
    auction->AddChild(std::move(seller));
    auction->AddChild(
        TextElement("current", std::to_string(100 + rng.Uniform(900))));
    open_auctions->AddChild(std::move(auction));
  }
  site->AddChild(std::move(open_auctions));

  auto closed_auctions = xml::Node::MakeElement("closed_auctions");
  for (size_t a = 0; a < options.num_closed_auctions; ++a) {
    auto auction = xml::Node::MakeElement("closed_auction");
    auto seller = xml::Node::MakeElement("seller");
    seller->AddAttribute(
        "person", "person" + std::to_string(rng.Uniform(options.num_people)));
    auction->AddChild(std::move(seller));
    auto buyer = xml::Node::MakeElement("buyer");
    buyer->AddAttribute(
        "person", "person" + std::to_string(rng.Uniform(options.num_people)));
    auction->AddChild(std::move(buyer));
    auto itemref = xml::Node::MakeElement("itemref");
    itemref->AddAttribute(
        "item", "item" + std::to_string(rng.Uniform(options.num_items)));
    auction->AddChild(std::move(itemref));
    auction->AddChild(
        TextElement("price", std::to_string(50 + rng.Uniform(950))));
    auction->AddChild(TextElement("date", "08/15/2001"));
    auto annotation = xml::Node::MakeElement("annotation");
    annotation->AddChild(
        TextElement("description", RandomText(&ctx, options.text_words)));
    auction->AddChild(std::move(annotation));
    closed_auctions->AddChild(std::move(auction));
  }
  site->AddChild(std::move(closed_auctions));

  xml::Document doc;
  doc.uri = "xmark.xml";
  doc.root = std::move(site);
  corpus.documents.push_back(std::move(doc));
  return corpus;
}

}  // namespace xrank::datagen
