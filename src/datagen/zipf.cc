#include "datagen/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xrank::datagen {

ZipfSampler::ZipfSampler(size_t n, double s) {
  XRANK_CHECK(n > 0, "ZipfSampler needs n > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (double& v : cdf_) v /= sum;
}

size_t ZipfSampler::Sample(Random* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace xrank::datagen
