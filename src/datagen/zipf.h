#ifndef XRANK_DATAGEN_ZIPF_H_
#define XRANK_DATAGEN_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace xrank::datagen {

// Zipf-distributed sampling over ranks [0, n): P(rank i) ∝ 1/(i+1)^s.
// Natural-language term frequencies are approximately Zipfian, which is
// what gives inverted lists their characteristic long/short mix (and what
// Table 1's space numbers depend on).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  // Draws one rank using the caller's PRNG.
  size_t Sample(Random* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // inclusive prefix sums, normalized to 1
};

}  // namespace xrank::datagen

#endif  // XRANK_DATAGEN_ZIPF_H_
