#include "datagen/dblp_gen.h"

#include <algorithm>

#include "common/string_util.h"
#include "datagen/vocabulary.h"
#include "datagen/zipf.h"

namespace xrank::datagen {

namespace {

std::string PaperUri(size_t i) {
  return "dblp/paper" + std::to_string(i) + ".xml";
}

std::string RandomText(Random* rng, const ZipfSampler& zipf,
                       const Vocabulary& vocab, size_t words) {
  std::string text;
  for (size_t w = 0; w < words; ++w) {
    if (w > 0) text.push_back(' ');
    text += vocab.Word(zipf.Sample(rng));
  }
  return text;
}

}  // namespace

Corpus GenerateDblp(const DblpOptions& options) {
  Corpus corpus;
  RegisterPlantedSets(options.planted_sets, &corpus.planted);
  Vocabulary vocab(options.vocabulary_size);
  ZipfSampler zipf(options.vocabulary_size, options.zipf_s);
  Random rng(options.seed);

  // Preferential-attachment pool: every received citation re-enters the
  // pool, yielding the power-law in-degrees of real citation graphs.
  std::vector<uint32_t> attachment_pool;

  // Selectivity ladder: term "sel<b>" occurs in every (4^b)-th paper.
  std::vector<size_t> selectivity_strides;
  for (size_t stride = 1; stride <= options.num_papers; stride *= 4) {
    selectivity_strides.push_back(stride);
  }
  for (size_t b = 0; b < selectivity_strides.size(); ++b) {
    corpus.planted.selectivity_terms.emplace_back(
        SelectivityTerm(b),
        (options.num_papers + selectivity_strides[b] - 1) /
            selectivity_strides[b]);
  }

  static constexpr const char* kVenues[] = {
      "sigmod", "vldb", "icde", "edbt", "pods", "cikm", "www", "sigir"};

  // Joint low-correlation papers: low_corr_joint_papers per planted set,
  // spread evenly over the corpus and cycling through the sets.
  size_t joint_counter = 0;
  size_t joint_stride = std::max<size_t>(
      2, options.num_papers /
             std::max<size_t>(
                 1, options.low_corr_joint_papers * options.planted_sets));

  for (size_t i = 0; i < options.num_papers; ++i) {
    auto root = xml::Node::MakeElement("inproceedings");
    root->AddAttribute("key", "paper" + std::to_string(i));

    // Dense planting (performance-bench mode): sprays planted terms over
    // many elements so their inverted lists span many pages, modelling the
    // paper's common-keyword queries.
    auto dense_plant = [&](std::string* text) {
      if (options.dense_plant_rate <= 0.0 || options.planted_sets == 0) {
        return;
      }
      if (rng.Bernoulli(options.dense_plant_rate)) {
        size_t set = rng.Uniform(options.planted_sets);
        for (size_t p = 0; p < 4; ++p) {
          text->push_back(' ');
          *text += HighCorrTerm(set, p);
        }
      }
      if (rng.Bernoulli(options.dense_plant_rate)) {
        size_t set = rng.Uniform(options.planted_sets);
        text->push_back(' ');
        *text += LowCorrTerm(set, i % 4);
      }
    };

    size_t num_authors = 1 + rng.Uniform(options.max_authors);
    for (size_t a = 0; a < num_authors; ++a) {
      auto author = xml::Node::MakeElement("author");
      std::string author_text = vocab.Word(zipf.Sample(&rng)) + " " +
                                vocab.Word(zipf.Sample(&rng));
      dense_plant(&author_text);
      author->AddChild(xml::Node::MakeText(std::move(author_text)));
      root->AddChild(std::move(author));
    }

    std::string title_text =
        RandomText(&rng, zipf, vocab, options.title_words);
    dense_plant(&title_text);
    // Plant a high-correlation quadruple adjacently in a fraction of titles;
    // the first `planted_sets` papers each carry their own set, so every
    // quadruple occurs at least once in corpora of any size.
    bool plant_high = options.planted_sets > 0 &&
                      (i < options.planted_sets ||
                       rng.Bernoulli(options.high_corr_frequency));
    if (plant_high) {
      size_t set =
          i < options.planted_sets ? i : rng.Uniform(options.planted_sets);
      for (size_t p = 0; p < 4; ++p) {
        title_text.push_back(' ');
        title_text += HighCorrTerm(set, p);
      }
    }
    auto title = xml::Node::MakeElement("title");
    title->AddChild(xml::Node::MakeText(title_text));
    root->AddChild(std::move(title));

    auto year = xml::Node::MakeElement("year");
    year->AddChild(
        xml::Node::MakeText(std::to_string(1990 + rng.Uniform(14))));
    root->AddChild(std::move(year));

    auto venue = xml::Node::MakeElement("booktitle");
    venue->AddChild(xml::Node::MakeText(
        kVenues[rng.Uniform(sizeof(kVenues) / sizeof(kVenues[0]))]));
    root->AddChild(std::move(venue));

    std::string abstract_text =
        RandomText(&rng, zipf, vocab, options.abstract_words);
    dense_plant(&abstract_text);
    // Low-correlation terms: individually frequent, partitioned by paper
    // index so quadruple members almost never meet.
    if (options.planted_sets > 0 &&
        rng.Bernoulli(options.low_corr_frequency * 4.0)) {
      size_t set = rng.Uniform(options.planted_sets);
      size_t position = i % 4;
      abstract_text.push_back(' ');
      abstract_text += LowCorrTerm(set, position);
    }
    // ... except in a handful of joint papers, so conjunctions are
    // non-empty (the paper's low-correlation queries still return results).
    // Joint papers cycle through the sets so every quadruple gets one.
    if (options.planted_sets > 0 && options.low_corr_joint_papers > 0 &&
        i % joint_stride == 1) {
      size_t set = joint_counter++ % options.planted_sets;
      for (size_t p = 0; p < 4; ++p) {
        abstract_text.push_back(' ');
        abstract_text += LowCorrTerm(set, p);
      }
    }
    // Selectivity ladder terms.
    for (size_t b = 0; b < selectivity_strides.size(); ++b) {
      if (i % selectivity_strides[b] == 0) {
        abstract_text.push_back(' ');
        abstract_text += SelectivityTerm(b);
      }
    }
    auto abstract = xml::Node::MakeElement("abstract");
    abstract->AddChild(xml::Node::MakeText(abstract_text));
    root->AddChild(std::move(abstract));

    // Citations to earlier papers (inter-document XLinks).
    if (i > 0) {
      size_t citations = rng.Uniform(
          static_cast<uint64_t>(2.0 * options.mean_citations) + 1);
      for (size_t c = 0; c < citations; ++c) {
        uint32_t target;
        if (!attachment_pool.empty() && rng.Bernoulli(0.7)) {
          target = attachment_pool[rng.Uniform(attachment_pool.size())];
        } else {
          target = static_cast<uint32_t>(rng.Uniform(i));
        }
        attachment_pool.push_back(target);
        auto cite = xml::Node::MakeElement("cite");
        cite->AddAttribute("xlink", PaperUri(target));
        std::string cite_text = RandomText(&rng, zipf, vocab, 3);
        dense_plant(&cite_text);
        cite->AddChild(xml::Node::MakeText(std::move(cite_text)));
        root->AddChild(std::move(cite));
      }
    }

    xml::Document doc;
    doc.uri = PaperUri(i);
    doc.root = std::move(root);
    corpus.documents.push_back(std::move(doc));
  }
  return corpus;
}

}  // namespace xrank::datagen
