#include "datagen/html_gen.h"

#include "datagen/vocabulary.h"
#include "datagen/zipf.h"

namespace xrank::datagen {

namespace {

std::string PageUri(size_t i) {
  return "web/page" + std::to_string(i) + ".html";
}

}  // namespace

Corpus GenerateHtml(const HtmlOptions& options) {
  Corpus corpus;
  RegisterPlantedSets(options.planted_sets, &corpus.planted);
  Vocabulary vocab(options.vocabulary_size);
  ZipfSampler zipf(options.vocabulary_size, options.zipf_s);
  Random rng(options.seed);
  std::vector<uint32_t> attachment_pool;

  for (size_t i = 0; i < options.num_pages; ++i) {
    auto html = xml::Node::MakeElement("html");
    auto head = xml::Node::MakeElement("head");
    auto title = xml::Node::MakeElement("title");
    title->AddChild(xml::Node::MakeText(vocab.Word(zipf.Sample(&rng)) + " " +
                                        vocab.Word(zipf.Sample(&rng))));
    head->AddChild(std::move(title));
    html->AddChild(std::move(head));

    auto body = xml::Node::MakeElement("body");
    std::string text;
    for (size_t w = 0; w < options.words_per_page; ++w) {
      if (w > 0) text.push_back(' ');
      text += vocab.Word(zipf.Sample(&rng));
    }
    if (options.planted_sets > 0 &&
        rng.Bernoulli(options.high_corr_frequency)) {
      size_t set = rng.Uniform(options.planted_sets);
      for (size_t p = 0; p < 4; ++p) {
        text.push_back(' ');
        text += HighCorrTerm(set, p);
      }
    }
    auto paragraph = xml::Node::MakeElement("p");
    paragraph->AddChild(xml::Node::MakeText(std::move(text)));
    body->AddChild(std::move(paragraph));

    if (i > 0) {
      size_t links =
          rng.Uniform(static_cast<uint64_t>(2.0 * options.mean_links) + 1);
      for (size_t l = 0; l < links; ++l) {
        uint32_t target;
        if (!attachment_pool.empty() && rng.Bernoulli(0.7)) {
          target = attachment_pool[rng.Uniform(attachment_pool.size())];
        } else {
          target = static_cast<uint32_t>(rng.Uniform(i));
        }
        attachment_pool.push_back(target);
        auto anchor = xml::Node::MakeElement("a");
        anchor->AddAttribute("href", PageUri(target));
        anchor->AddChild(xml::Node::MakeText(vocab.Word(zipf.Sample(&rng))));
        body->AddChild(std::move(anchor));
      }
    }
    html->AddChild(std::move(body));

    xml::Document doc;
    doc.uri = PageUri(i);
    doc.root = std::move(html);
    corpus.documents.push_back(std::move(doc));
  }
  return corpus;
}

}  // namespace xrank::datagen
