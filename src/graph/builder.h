#ifndef XRANK_GRAPH_BUILDER_H_
#define XRANK_GRAPH_BUILDER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "xml/node.h"

namespace xrank::graph {

// Controls how the builder recognizes hyperlinks in the source XML
// (paper Section 2.1: IDREFs are intra-document references, XLinks are
// inter-document references; both become HE edges).
struct LinkConfig {
  // Attribute names whose value declares this element's intra-document id.
  std::vector<std::string> id_attributes = {"id", "key"};
  // Attribute names whose value references an id in the same document.
  std::vector<std::string> idref_attributes = {"ref", "idref", "person",
                                               "item", "open_auction"};
  // Attribute names whose value references another document by URI.
  std::vector<std::string> xlink_attributes = {"xlink", "xlink:href", "href"};
};

struct BuilderOptions {
  LinkConfig links;
  // Treat attributes as sub-elements (paper Section 2.1). When false,
  // attribute text is ignored entirely.
  bool attributes_as_subelements = true;
  // When true, unresolvable IDREF/XLink targets are silently dropped
  // (standard web-crawl behaviour); when false they produce an error.
  bool ignore_dangling_links = true;
};

// Builds an XmlGraph from a sequence of parsed documents. Usage:
//   GraphBuilder builder(options);
//   builder.AddDocument(doc1);         // XML document
//   builder.AddHtmlDocument(doc2);     // HTML: root-only element (§2.2/2.4)
//   XRANK_ASSIGN_OR_RETURN(XmlGraph g, std::move(builder).Finalize());
//
// Link resolution is deferred to Finalize() so forward references and
// cross-document references work regardless of insertion order.
class GraphBuilder {
 public:
  explicit GraphBuilder(BuilderOptions options = {});

  // Adds one XML document. The xml::Document is consumed structurally (no
  // ownership taken; it may be destroyed after the call).
  Status AddDocument(const xml::Document& doc);

  // Adds an HTML document as a single element: the root is the only element
  // node, its whole text becomes one value child, and href links become
  // HE edges from the root. This is the paper's HTML mode: "an HTML document
  // is treated as a single XML element, with the presentation tags removed"
  // (Section 2.4), so XRANK degenerates to a PageRank-style HTML engine.
  Status AddHtmlDocument(const xml::Document& doc);

  // Resolves all staged links and returns the finished graph.
  Result<XmlGraph> Finalize() &&;

  // Number of link references that could not be resolved (informational;
  // populated by Finalize when ignore_dangling_links is true).
  size_t dangling_link_count() const { return dangling_links_; }

 private:
  struct PendingIdref {
    NodeId source;
    uint32_t document;
    std::string target_id;
  };
  struct PendingXlink {
    NodeId source;
    std::string target_uri;
  };

  bool IsIdAttribute(const std::string& name) const;
  bool IsIdrefAttribute(const std::string& name) const;
  bool IsXlinkAttribute(const std::string& name) const;

  NodeId ConvertElement(const xml::Node& node, NodeId parent, uint32_t doc);
  void CollectHtmlText(const xml::Node& node, std::string* out,
                       NodeId root, uint32_t doc);

  BuilderOptions options_;
  XmlGraph graph_;
  // (document, id string) -> element; for IDREF resolution.
  std::unordered_map<uint64_t, std::unordered_map<std::string, NodeId>>
      ids_by_document_;
  std::unordered_map<std::string, uint32_t> document_by_uri_;
  std::vector<PendingIdref> pending_idrefs_;
  std::vector<PendingXlink> pending_xlinks_;
  size_t dangling_links_ = 0;
  bool finalized_ = false;
};

}  // namespace xrank::graph

#endif  // XRANK_GRAPH_BUILDER_H_
