#include "graph/graph.h"

#include <unordered_map>

#include "common/check.h"

namespace xrank::graph {

namespace {
const std::vector<NodeId> kNoLinks;
}  // namespace

const std::vector<NodeId>& XmlGraph::hyperlinks(NodeId u) const {
  if (u >= hyperlink_adjacency_.size()) return kNoLinks;
  return hyperlink_adjacency_[u];
}

Result<NodeId> XmlGraph::FindByDewey(const dewey::DeweyId& id) const {
  if (id.empty()) return Status::NotFound("empty Dewey ID");
  uint32_t doc = id.component(0);
  if (doc >= documents_.size()) {
    return Status::NotFound("no document " + std::to_string(doc));
  }
  NodeId current = documents_[doc].root;
  for (size_t i = 1; i < id.depth(); ++i) {
    uint32_t position = id.component(i);
    const NodeData& data = nodes_[current];
    if (position >= data.element_children.size()) {
      return Status::NotFound("no element " + id.ToString());
    }
    current = data.element_children[position];
  }
  return current;
}

std::string XmlGraph::DirectText(NodeId id) const {
  std::string out;
  for (NodeId value : nodes_[id].value_children) {
    if (!out.empty()) out.push_back(' ');
    out += nodes_[value].text;
  }
  return out;
}

std::string XmlGraph::DeepText(NodeId id) const {
  const NodeData& data = nodes_[id];
  if (data.kind == Kind::kValue) return data.text;
  // Interleave is lost in the graph form (values and elements are kept in
  // separate child vectors); emit values first, then element subtrees. The
  // indexer does not rely on this function for positions.
  std::string out = DirectText(id);
  for (NodeId child : data.element_children) {
    std::string piece = DeepText(child);
    if (piece.empty()) continue;
    if (!out.empty()) out.push_back(' ');
    out += piece;
  }
  return out;
}

uint32_t XmlGraph::InternName(std::string_view tag) {
  auto it = name_index_.find(std::string(tag));
  if (it != name_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(tag);
  name_index_.emplace(names_.back(), id);
  return id;
}

NodeId XmlGraph::AddElement(uint32_t name_id, NodeId parent,
                            uint32_t document) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  NodeData data;
  data.kind = Kind::kElement;
  data.name_id = name_id;
  data.parent = parent;
  data.document = document;
  nodes_.push_back(std::move(data));
  if (parent != kInvalidNode) {
    nodes_[parent].element_children.push_back(id);
  }
  ++element_count_;
  return id;
}

NodeId XmlGraph::AddValue(std::string text, NodeId parent, uint32_t document) {
  XRANK_DCHECK(parent != kInvalidNode, "value node needs a parent");
  NodeId id = static_cast<NodeId>(nodes_.size());
  NodeData data;
  data.kind = Kind::kValue;
  data.parent = parent;
  data.document = document;
  data.text = std::move(text);
  nodes_.push_back(std::move(data));
  nodes_[parent].value_children.push_back(id);
  return id;
}

uint32_t XmlGraph::AddDocument(std::string uri) {
  uint32_t doc = static_cast<uint32_t>(documents_.size());
  DocumentInfo info;
  info.uri = std::move(uri);
  documents_.push_back(std::move(info));
  return doc;
}

void XmlGraph::SetDocumentRoot(uint32_t doc, NodeId root) {
  documents_[doc].root = root;
}

void XmlGraph::AddHyperlink(NodeId from, NodeId to) {
  hyperlink_edges_.emplace_back(from, to);
}

void XmlGraph::AssignDeweyIds(NodeId element, const dewey::DeweyId& id) {
  nodes_[element].dewey_id = id;
  const std::vector<NodeId>& children = nodes_[element].element_children;
  for (size_t i = 0; i < children.size(); ++i) {
    AssignDeweyIds(children[i], id.Child(static_cast<uint32_t>(i)));
  }
}

void XmlGraph::FinalizeStructure() {
  for (uint32_t doc = 0; doc < documents_.size(); ++doc) {
    NodeId root = documents_[doc].root;
    XRANK_CHECK(root != kInvalidNode, "document %u has no root", doc);
    AssignDeweyIds(root, dewey::DeweyId({doc}));
  }
  // N_de: elements per document, one pass.
  for (DocumentInfo& info : documents_) info.element_count = 0;
  for (const NodeData& data : nodes_) {
    if (data.kind == Kind::kElement) ++documents_[data.document].element_count;
  }
  hyperlink_adjacency_.assign(nodes_.size(), {});
  for (const auto& [from, to] : hyperlink_edges_) {
    hyperlink_adjacency_[from].push_back(to);
  }
  total_hyperlinks_ = hyperlink_edges_.size();
  hyperlink_edges_.clear();
  hyperlink_edges_.shrink_to_fit();
}

}  // namespace xrank::graph
