#include "graph/builder.h"

#include <algorithm>

#include "common/string_util.h"

namespace xrank::graph {

GraphBuilder::GraphBuilder(BuilderOptions options)
    : options_(std::move(options)) {}

bool GraphBuilder::IsIdAttribute(const std::string& name) const {
  const auto& list = options_.links.id_attributes;
  return std::find(list.begin(), list.end(), name) != list.end();
}

bool GraphBuilder::IsIdrefAttribute(const std::string& name) const {
  const auto& list = options_.links.idref_attributes;
  return std::find(list.begin(), list.end(), name) != list.end();
}

bool GraphBuilder::IsXlinkAttribute(const std::string& name) const {
  const auto& list = options_.links.xlink_attributes;
  return std::find(list.begin(), list.end(), name) != list.end();
}

NodeId GraphBuilder::ConvertElement(const xml::Node& node, NodeId parent,
                                    uint32_t doc) {
  uint32_t name_id = graph_.InternName(node.name());
  NodeId element = graph_.AddElement(name_id, parent, doc);

  for (const xml::Attribute& attr : node.attributes()) {
    if (IsIdAttribute(attr.name)) {
      ids_by_document_[doc].emplace(attr.value, element);
    }
    if (IsIdrefAttribute(attr.name)) {
      pending_idrefs_.push_back(PendingIdref{element, doc, attr.value});
    } else if (IsXlinkAttribute(attr.name)) {
      pending_xlinks_.push_back(PendingXlink{element, attr.value});
    }
    if (options_.attributes_as_subelements) {
      // Attribute -> sub-element with one value child (paper Section 2.1;
      // element tag names and attribute names are themselves values, which
      // the analyzer picks up from the graph names).
      uint32_t attr_name_id = graph_.InternName(attr.name);
      NodeId attr_element = graph_.AddElement(attr_name_id, element, doc);
      graph_.AddValue(attr.value, attr_element, doc);
    }
  }
  for (const auto& child : node.children()) {
    if (child->is_text()) {
      std::string_view text = StripWhitespace(child->text());
      if (!text.empty()) graph_.AddValue(std::string(text), element, doc);
    } else {
      ConvertElement(*child, element, doc);
    }
  }
  return element;
}

Status GraphBuilder::AddDocument(const xml::Document& doc) {
  if (finalized_) return Status::Internal("builder already finalized");
  if (doc.root == nullptr) {
    return Status::InvalidArgument("document '" + doc.uri + "' has no root");
  }
  uint32_t doc_index = graph_.AddDocument(doc.uri);
  if (!doc.uri.empty()) document_by_uri_.emplace(doc.uri, doc_index);
  NodeId root = ConvertElement(*doc.root, kInvalidNode, doc_index);
  graph_.SetDocumentRoot(doc_index, root);
  return Status::OK();
}

void GraphBuilder::CollectHtmlText(const xml::Node& node, std::string* out,
                                   NodeId root, uint32_t doc) {
  if (node.is_text()) {
    std::string_view text = StripWhitespace(node.text());
    if (!text.empty()) {
      if (!out->empty()) out->push_back(' ');
      out->append(text);
    }
    return;
  }
  for (const xml::Attribute& attr : node.attributes()) {
    // HTML hyperlinks: <a href=...>, <link href=...>, framework-agnostic.
    if (attr.name == "href" || IsXlinkAttribute(attr.name)) {
      pending_xlinks_.push_back(PendingXlink{root, attr.value});
    }
    (void)doc;
  }
  for (const auto& child : node.children()) {
    CollectHtmlText(*child, out, root, doc);
  }
}

Status GraphBuilder::AddHtmlDocument(const xml::Document& doc) {
  if (finalized_) return Status::Internal("builder already finalized");
  if (doc.root == nullptr) {
    return Status::InvalidArgument("document '" + doc.uri + "' has no root");
  }
  uint32_t doc_index = graph_.AddDocument(doc.uri);
  if (!doc.uri.empty()) document_by_uri_.emplace(doc.uri, doc_index);
  uint32_t name_id = graph_.InternName("html");
  NodeId root = graph_.AddElement(name_id, kInvalidNode, doc_index);
  graph_.SetDocumentRoot(doc_index, root);
  std::string text;
  CollectHtmlText(*doc.root, &text, root, doc_index);
  if (!text.empty()) graph_.AddValue(std::move(text), root, doc_index);
  return Status::OK();
}

Result<XmlGraph> GraphBuilder::Finalize() && {
  if (finalized_) return Status::Internal("builder already finalized");
  finalized_ = true;
  for (const PendingIdref& link : pending_idrefs_) {
    auto doc_it = ids_by_document_.find(link.document);
    if (doc_it != ids_by_document_.end()) {
      auto it = doc_it->second.find(link.target_id);
      if (it != doc_it->second.end()) {
        graph_.AddHyperlink(link.source, it->second);
        continue;
      }
    }
    if (!options_.ignore_dangling_links) {
      return Status::NotFound("unresolved IDREF '" + link.target_id + "'");
    }
    ++dangling_links_;
  }
  for (const PendingXlink& link : pending_xlinks_) {
    auto it = document_by_uri_.find(link.target_uri);
    if (it != document_by_uri_.end()) {
      graph_.AddHyperlink(link.source, graph_.documents()[it->second].root);
      continue;
    }
    if (!options_.ignore_dangling_links) {
      return Status::NotFound("unresolved XLink '" + link.target_uri + "'");
    }
    ++dangling_links_;
  }
  graph_.FinalizeStructure();
  return std::move(graph_);
}

}  // namespace xrank::graph
