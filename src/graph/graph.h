#ifndef XRANK_GRAPH_GRAPH_H_
#define XRANK_GRAPH_GRAPH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dewey/dewey_id.h"

namespace xrank::graph {

// Index of a node within an XmlGraph.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// The hyperlinked XML graph G = (N, CE, HE) of paper Section 2.1.
// N = elements ∪ values; CE = containment edges (implicit in the tree
// layout); HE = hyperlink edges (resolved IDREFs and XLinks).
//
// Element nodes carry a Dewey ID whose first component is the document
// index; value nodes carry the text and inherit their parent's context.
// Attributes of the source XML appear here as ordinary sub-elements with a
// single value child (paper convention, Section 2.1).
class XmlGraph {
 public:
  enum class Kind : uint8_t { kElement, kValue };

  struct NodeData {
    Kind kind = Kind::kElement;
    uint32_t name_id = 0;       // interned tag name (elements only)
    NodeId parent = kInvalidNode;
    uint32_t document = 0;      // index into documents()
    // Element children in sibling-position order; the i-th entry has Dewey
    // component i appended to this element's Dewey ID.
    std::vector<NodeId> element_children;
    // Value (text) children.
    std::vector<NodeId> value_children;
    std::string text;           // value nodes only
    dewey::DeweyId dewey_id;    // element nodes only
  };

  struct DocumentInfo {
    std::string uri;
    NodeId root = kInvalidNode;
    uint32_t element_count = 0;  // N_de(v) for every v in this document
  };

  XmlGraph() = default;
  XmlGraph(XmlGraph&&) = default;
  XmlGraph& operator=(XmlGraph&&) = default;
  XmlGraph(const XmlGraph&) = delete;
  XmlGraph& operator=(const XmlGraph&) = delete;

  size_t node_count() const { return nodes_.size(); }
  const NodeData& node(NodeId id) const { return nodes_[id]; }
  bool is_element(NodeId id) const {
    return nodes_[id].kind == Kind::kElement;
  }

  // Total number of element nodes (N_e in the ElemRank formulas).
  size_t element_count() const { return element_count_; }

  const std::vector<DocumentInfo>& documents() const { return documents_; }
  size_t document_count() const { return documents_.size(); }

  // Outgoing hyperlink targets of u (HE edges); empty for most nodes.
  const std::vector<NodeId>& hyperlinks(NodeId u) const;
  size_t total_hyperlink_count() const { return total_hyperlinks_; }

  // Tag name of an element node.
  std::string_view name(NodeId id) const {
    return names_[nodes_[id].name_id];
  }

  // Looks up an element by Dewey ID; NotFound if no such element.
  Result<NodeId> FindByDewey(const dewey::DeweyId& id) const;

  // Concatenated text of all value children of `id` (its direct text).
  std::string DirectText(NodeId id) const;

  // Concatenated text of the whole subtree under `id`, document order.
  std::string DeepText(NodeId id) const;

  // --- mutation interface used by GraphBuilder ---
  uint32_t InternName(std::string_view tag);
  NodeId AddElement(uint32_t name_id, NodeId parent, uint32_t document);
  NodeId AddValue(std::string text, NodeId parent, uint32_t document);
  uint32_t AddDocument(std::string uri);
  void SetDocumentRoot(uint32_t doc, NodeId root);
  void AddHyperlink(NodeId from, NodeId to);
  // Assigns Dewey IDs and per-document element counts; call once after all
  // nodes are added.
  void FinalizeStructure();

 private:
  void AssignDeweyIds(NodeId element, const dewey::DeweyId& id);

  std::vector<NodeData> nodes_;
  std::vector<DocumentInfo> documents_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> name_index_;
  std::vector<std::pair<NodeId, NodeId>> hyperlink_edges_;  // staging
  // Resolved adjacency, indexed by node; built in FinalizeStructure.
  std::vector<std::vector<NodeId>> hyperlink_adjacency_;
  size_t element_count_ = 0;
  size_t total_hyperlinks_ = 0;
};

}  // namespace xrank::graph

#endif  // XRANK_GRAPH_GRAPH_H_
