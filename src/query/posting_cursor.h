#ifndef XRANK_QUERY_POSTING_CURSOR_H_
#define XRANK_QUERY_POSTING_CURSOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "index/lexicon.h"
#include "index/posting.h"
#include "query/deadline.h"
#include "storage/buffer_pool.h"

namespace xrank::query {

// Forward cursor over one term's Dewey-ordered inverted list, with
// document-granularity skipping. Wraps the sequential PostingListCursor and
// the list's build-time skip-block descriptors (one (first Dewey ID, page
// index) pair per list page, TermInfo::skips): when the Dewey-stack merge
// establishes that no result can start before document `d`, the cursor
// binary-searches the descriptors and re-enters the list at the first page
// that can contain `d`, never decoding the pages in between.
//
// Skipping a document is result-preserving whenever the caller has proved
// the document cannot matter. Under conjunctive semantics that proof is
// structural — document ids are the first Dewey component, so every result
// (depth >= 1) and all of its rank contributions lie within a single
// document, and a document missing any query keyword can contribute
// nothing. Under disjunctive semantics the proof is score-based: the
// MaxScore/WAND algorithms (query/disjunctive_merge.h) only skip documents
// whose rank upper bound stays below the current k-th result. Exhaustive
// disjunctive evaluation constructs with `use_skip_blocks == false`.
class PostingCursor {
 public:
  // `pool`, `lexicon` and `info` are borrowed and must outlive the cursor.
  // The list is `info->list` (Dewey order with delta-encoded IDs, the
  // DIL/HDIL full-list format), decoded with the lexicon's posting codec
  // and the list's quantization scale; skip descriptors are `info->skips`
  // and may be empty, in which case SkipToDocument degrades to a linear
  // scan. `block_cache` (optional, borrowed) serves decoded pages without
  // re-running the codec.
  PostingCursor(storage::BufferPool* pool, const index::Lexicon* lexicon,
                const index::TermInfo* info, bool use_skip_blocks,
                index::BlockCache* block_cache = nullptr);

  // Reads the next posting in list order; returns false at end of list.
  Result<bool> Next(index::Posting* out);

  // Advances to the first posting whose document id (first Dewey component)
  // is >= `doc`, discarding everything before it without feeding it to the
  // merge. Returns false if the list has no such posting. Forward-only:
  // `doc` must be >= the document id last returned.
  Result<bool> SkipToDocument(uint32_t doc, index::Posting* out);

  // --- block-max pruning (see DESIGN.md section 11) ---
  //
  // A rank bound over the page run covering documents [doc, next_doc): for
  // any document d with doc <= d.id < next_doc, every posting of d in this
  // list lies on a page of the run, so this term's keyword rank for d —
  // max over its postings' ElemRank, times decay/proximity factors <= 1 —
  // is at most `bound`. The merge sums bounds across terms and skips the
  // whole run when the sum cannot beat the current k-th result.
  struct RankBound {
    double bound = 0.0;
    // First document id NOT covered by the run (UINT32_MAX when the run
    // extends to the end of the list).
    uint32_t next_doc = UINT32_MAX;
    // Index one past the run's last skip descriptor (ExtendBound state).
    size_t end_index = 0;
    // False when the list has no skip descriptors (no bound available).
    bool valid = false;
  };

  // Bound over the minimal run covering document `doc`. A corrupted
  // (non-finite) block maximum yields bound = +infinity — pruning simply
  // never fires on damaged descriptors.
  RankBound DocumentRankBound(uint32_t doc) const;

  // Widens the run by one page, raising `bound` to include it and advancing
  // `next_doc` past the documents the wider run now fully covers. No-op at
  // end of list (next_doc stays UINT32_MAX).
  void ExtendBound(RankBound* bound) const;

  // Block maximum of the page ExtendBound would add next — what `bound`
  // would become is max(bound.bound, NextPageRank(bound)). +infinity at end
  // of list or for a corrupted descriptor.
  double NextPageRank(const RankBound& bound) const;

  // List pages the cursor jumped over without reading (skip efficacy).
  uint64_t pages_skipped() const { return pages_skipped_; }

  // Pages served from the decoded-block cache (0 without a cache).
  uint64_t block_cache_hits() const { return cursor_.block_cache_hits(); }

  // List entries decoded through this cursor, including those discarded by
  // SkipToDocument's tail scan (per-term trace counter).
  uint64_t postings_read() const { return postings_read_; }

  const index::ListExtent& extent() const { return cursor_.extent(); }
  uint32_t current_page_index() const { return cursor_.current_page_index(); }

  // Attaches a cooperative budget: SkipToDocument's linear tail scan — the
  // only unbounded loop inside the cursor — checks it per posting and
  // aborts with DeadlineExceeded on expiry. Borrowed; may be null.
  void set_deadline(QueryDeadline* deadline) { deadline_ = deadline; }

 private:
  index::PostingListCursor cursor_;
  const std::vector<index::SkipEntry>* skips_;  // null = skipping disabled
  QueryDeadline* deadline_ = nullptr;
  uint64_t pages_skipped_ = 0;
  uint64_t postings_read_ = 0;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_POSTING_CURSOR_H_
