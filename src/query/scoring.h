#ifndef XRANK_QUERY_SCORING_H_
#define XRANK_QUERY_SCORING_H_

#include <cstdint>
#include <vector>

#include "dewey/dewey_id.h"

namespace xrank::query {

// Conjunctive (all keywords; the paper's focus) vs disjunctive (at least
// one keyword) result semantics, Section 2.2. Disjunctive evaluation is
// supported by the DIL processor; the rank-ordered processors implement
// only the conjunctive threshold algorithm, as in the paper.
enum class QuerySemantics { kConjunctive, kDisjunctive };

// f in r̂(v,k) = f(r_1, ..., r_m) — how ranks of multiple relevant
// occurrences of one keyword combine (paper Section 2.3.2.1; max is the
// paper's default, sum is the documented alternative).
enum class RankAggregation { kMax, kSum };

// p(v, k_1..k_n) in the overall rank (paper Section 2.3.2.2): reciprocal of
// the smallest text window containing all keywords, or the constant 1 for
// highly structured data where keyword distance is uninformative.
enum class ProximityMode { kReciprocalWindow, kAlwaysOne };

struct ScoringOptions {
  QuerySemantics semantics = QuerySemantics::kConjunctive;
  // Per-level decay of specificity (paper Section 2.3.2.1; in (0, 1]).
  double decay = 0.80;
  RankAggregation aggregation = RankAggregation::kMax;
  ProximityMode proximity = ProximityMode::kReciprocalWindow;
};

// One query result candidate produced by the merge algorithms.
struct CandidateResult {
  dewey::DeweyId id;
  double overall_rank = 0.0;
  std::vector<double> keyword_ranks;  // r̂(v, k_i), decayed and aggregated
  uint32_t window = 0;                // smallest covering window (words)
};

struct RankedResult {
  dewey::DeweyId id;
  double rank = 0.0;
};

// f(existing, incoming) per the aggregation mode. `existing` of 0 means "no
// occurrence yet".
double AggregateRank(RankAggregation aggregation, double existing,
                     double incoming);

// Whether block-max pruning yields a sound upper bound under these scoring
// options. The bound Σ_k max-page-ElemRank(k) dominates the true overall
// rank only when (a) semantics are conjunctive (disjunctive results must
// surface documents the bound would prune), (b) per-keyword aggregation is
// max — under sum, N occurrences can exceed any single block maximum — and
// (c) decay ≤ 1, so every decay^(t-1) factor and the proximity factor
// (always ≤ 1) only shrink the score. See DESIGN.md section 11.
bool SupportsBlockMaxPruning(const ScoringOptions& options);

// Soundness of the *disjunctive* pruning bounds (MaxScore / WAND / BMW in
// query/disjunctive_merge.h), which — unlike the conjunctive run-widening
// path above — need no conjunctive gate: they bound each document
// individually, never assuming a missing keyword zeroes the score.
//
// SupportsScorePruning: list-level upper bounds exist for *both*
// aggregations — max over the per-page block maxima under max aggregation,
// the serialized per-term TermInfo::max_doc_rank (largest per-document
// decoded-rank sum) under sum aggregation. Only decay <= 1 is required, so
// every decay power and the proximity factor shrink the score.
bool SupportsScorePruning(const ScoringOptions& options);

// SupportsBlockMaxBounds: per-page maxima bound an element's keyword rank
// only under max aggregation (under sum, N in-page occurrences can exceed
// any single block maximum). Gates BMW's block refinement and the
// block-level tightening inside MaxScore; when false, BMW degrades to
// plain WAND and MaxScore to list-level bounds.
bool SupportsBlockMaxBounds(const ScoringOptions& options);

// Overall rank = Σ keyword ranks × proximity (paper Section 2.3.2.2).
double CombineRanks(const std::vector<double>& keyword_ranks,
                    double proximity);

}  // namespace xrank::query

#endif  // XRANK_QUERY_SCORING_H_
