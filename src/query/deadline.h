#ifndef XRANK_QUERY_DEADLINE_H_
#define XRANK_QUERY_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "query/query.h"

namespace xrank::query {

// Cooperative per-query budget: a wall-clock deadline, an external
// cancellation flag, or both. Processors call Check() from their merge
// loops (and PostingCursor from its skip scan); the clock is only
// consulted every kStride calls so the check is cheap enough for
// per-posting call sites, while the cancellation flag — a single relaxed
// atomic load — is honored on every call.
//
// One QueryDeadline is threaded through an entire query, including the
// HDIL->DIL fallback, so the total budget covers the whole evaluation
// rather than restarting at the switch.
class QueryDeadline {
 public:
  // No deadline, no cancellation: Check() always succeeds.
  QueryDeadline() = default;

  explicit QueryDeadline(const QueryOptions& options)
      : cancel_(options.cancel), deadline_ms_(options.deadline_ms) {
    if (deadline_ms_ > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms_);
    }
  }

  Status Check() {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      expired_ = true;
      return Status::DeadlineExceeded("query cancelled by caller");
    }
    if (deadline_ms_ <= 0) return Status::OK();
    if (expired_) return Expired();
    if (++calls_ % kStride != 0) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline_) {
      expired_ = true;
      return Expired();
    }
    return Status::OK();
  }

  bool expired() const { return expired_; }

 private:
  static constexpr uint64_t kStride = 64;

  Status Expired() const {
    return Status::DeadlineExceeded("query deadline of " +
                                    std::to_string(deadline_ms_) +
                                    " ms exceeded");
  }

  const std::atomic<bool>* cancel_ = nullptr;
  int64_t deadline_ms_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  uint64_t calls_ = 0;
  bool expired_ = false;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_DEADLINE_H_
