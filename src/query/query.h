#ifndef XRANK_QUERY_QUERY_H_
#define XRANK_QUERY_QUERY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "query/scoring.h"

namespace xrank::query {

class QueryTrace;
class SharedTopKThreshold;

// Top-k merge strategy for the Dewey-ordered processors (DIL, and HDIL via
// its DIL delegation). `kAuto` picks per query: the PR-5 conjunctive DAAT
// path for conjunctive semantics, and the cheapest sound pruned algorithm
// (block-max WAND for few terms under max aggregation, MaxScore otherwise)
// for disjunctive semantics. `kExhaustive` is the full n-way merge — the
// safe oracle every pruned algorithm must match result-for-result. The
// pruned algorithms degrade themselves to sound variants (BMW -> WAND under
// sum aggregation, anything -> exhaustive when no sound bound exists); see
// DESIGN.md section 13.
enum class MergeAlgorithm : uint8_t {
  kAuto = 0,
  kExhaustive,
  kMaxScore,
  kWand,
  kBlockMaxWand,
};

inline const char* MergeAlgorithmName(MergeAlgorithm algorithm) {
  switch (algorithm) {
    case MergeAlgorithm::kAuto: return "auto";
    case MergeAlgorithm::kExhaustive: return "exhaustive";
    case MergeAlgorithm::kMaxScore: return "maxscore";
    case MergeAlgorithm::kWand: return "wand";
    case MergeAlgorithm::kBlockMaxWand: return "bmw";
  }
  return "unknown";
}

// Per-query execution limits, checked cooperatively inside the merge
// loops and posting cursors (see query/deadline.h).
struct QueryOptions {
  // Wall-clock budget in milliseconds; 0 disables the deadline. On expiry
  // Execute returns Status::DeadlineExceeded — unless
  // `allow_partial_results` is set, in which case the top-k accumulated so
  // far is returned with `QueryStats::partial` true. Partial results are
  // a correct ranking of what was scanned, but lower-ranked true results
  // may be missing.
  int64_t deadline_ms = 0;
  bool allow_partial_results = false;
  // Cooperative cancellation: when non-null, the query aborts (with the
  // same partial/DeadlineExceeded semantics as the deadline) as soon as a
  // check observes the flag set. The pointee must outlive the query.
  const std::atomic<bool>* cancel = nullptr;
  // When non-null, the processors record per-stage spans (lexicon lookup,
  // cursor open, merge, rank) and per-term posting/skip counters into this
  // trace (see query/trace.h). Borrowed; must outlive the query. Null (the
  // default) disables tracing at zero hot-path cost.
  QueryTrace* trace = nullptr;
  // Top-k merge strategy (DIL/HDIL). Every choice returns identical results
  // — pruned algorithms are exact, not approximate — so this is purely a
  // performance knob plus the exhaustive oracle for verification.
  MergeAlgorithm algorithm = MergeAlgorithm::kAuto;
  // When non-null, the query's TopKAccumulator publishes its running
  // m-th-best rank into this shared floor and prunes against the maximum
  // of its local θ and the floor (see query/result_heap.h). The shard
  // router hands the same object to every shard of a scatter-gather query
  // so later/slower shards inherit the θ earlier shards have already
  // established. Sound because every pruning test is strictly-below-θ and
  // a cooperating accumulator's m-th-best is a lower bound on the global
  // one — but the local top-k may then omit elements below the fleet θ,
  // so engines bypass their result cache when this is set (a θ-truncated
  // response reflects fleet state, not this index). Borrowed; must
  // outlive the query.
  SharedTopKThreshold* shared_threshold = nullptr;
};

// Execution statistics common to all processors. I/O counts come from the
// cost model attached to the buffer pool the processor runs against.
struct QueryStats {
  uint64_t postings_scanned = 0;   // list entries decoded
  uint64_t pages_skipped = 0;      // list pages jumped via skip blocks
  uint64_t btree_probes = 0;       // RDIL/HDIL index probes
  uint64_t hash_probes = 0;        // Naive-Rank index probes
  uint64_t rounds = 0;             // threshold-algorithm iterations
  uint64_t blocks_pruned = 0;      // list pages skipped via block-max bounds
  uint64_t docs_skipped = 0;       // prune decisions that bypassed documents
  uint64_t pivot_advances = 0;     // cursor advances driven by bound logic
  uint64_t block_cache_hits = 0;   // pages served from the decoded cache
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  double io_cost = 0.0;            // weighted cost-model units
  double wall_ms = 0.0;
  // Merge strategy actually run ("daat", "exhaustive", "maxscore", "wand",
  // "bmw"); empty for processors without a strategy choice.
  std::string algorithm;
  bool switched_to_dil = false;    // HDIL adaptivity outcome
  bool threshold_terminated = false;  // TA stopped before exhausting lists
  bool result_cache_hit = false;   // served from the engine's top-k cache
  bool partial = false;            // deadline/cancel cut the scan short
};

struct QueryResponse {
  std::vector<RankedResult> results;  // rank-descending, at most m
  QueryStats stats;
};

// Adds one scan's execution counters into a merged per-query stats block —
// used by the engine to fold live-segment scans into the base index's
// stats, and by the shard router to fold per-shard stats into one coherent
// fleet-wide block. Counters sum; `partial` ORs (one budget-cut scan makes
// the whole response partial); the label and cache/switch flags are the
// caller's to set.
inline void MergeQueryStats(QueryStats* into, const QueryStats& from) {
  into->postings_scanned += from.postings_scanned;
  into->pages_skipped += from.pages_skipped;
  into->btree_probes += from.btree_probes;
  into->hash_probes += from.hash_probes;
  into->rounds += from.rounds;
  into->blocks_pruned += from.blocks_pruned;
  into->docs_skipped += from.docs_skipped;
  into->pivot_advances += from.pivot_advances;
  into->block_cache_hits += from.block_cache_hits;
  into->sequential_reads += from.sequential_reads;
  into->random_reads += from.random_reads;
  into->io_cost += from.io_cost;
  into->partial = into->partial || from.partial;
}

}  // namespace xrank::query

#endif  // XRANK_QUERY_QUERY_H_
