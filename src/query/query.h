#ifndef XRANK_QUERY_QUERY_H_
#define XRANK_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/scoring.h"

namespace xrank::query {

// Execution statistics common to all processors. I/O counts come from the
// cost model attached to the buffer pool the processor runs against.
struct QueryStats {
  uint64_t postings_scanned = 0;   // list entries decoded
  uint64_t pages_skipped = 0;      // list pages jumped via skip blocks
  uint64_t btree_probes = 0;       // RDIL/HDIL index probes
  uint64_t hash_probes = 0;        // Naive-Rank index probes
  uint64_t rounds = 0;             // threshold-algorithm iterations
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  double io_cost = 0.0;            // weighted cost-model units
  double wall_ms = 0.0;
  bool switched_to_dil = false;    // HDIL adaptivity outcome
  bool threshold_terminated = false;  // TA stopped before exhausting lists
  bool result_cache_hit = false;   // served from the engine's top-k cache
};

struct QueryResponse {
  std::vector<RankedResult> results;  // rank-descending, at most m
  QueryStats stats;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_QUERY_H_
