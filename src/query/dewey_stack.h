#ifndef XRANK_QUERY_DEWEY_STACK_H_
#define XRANK_QUERY_DEWEY_STACK_H_

#include <functional>
#include <vector>

#include "index/posting.h"
#include "query/scoring.h"

namespace xrank::query {

// The Dewey-stack merge at the heart of DIL query processing (paper
// Figure 5), also reused by RDIL to verify a candidate subtree. Postings
// must be fed in global Dewey-ID order (across all keywords); the merger
// maintains the stack of components of the current ID, and popping a stack
// frame evaluates the corresponding element:
//
//  * if every keyword's position list is non-empty, the element contains
//    all query keywords — it is emitted as a result and marked ContainsAll
//    (it is in R0, so nothing propagates above it; Section 2.2's exclusion
//    of sub-elements already containing all keywords);
//  * otherwise, unless a descendant already contained all keywords, its
//    position lists and decay-scaled ranks merge into its parent
//    (implementing r(v,k) = ElemRank(v_t) · decay^(t-1), Section 2.3.2.1).
class DeweyStackMerger {
 public:
  using Callback = std::function<void(const CandidateResult&)>;

  // Results shallower than `min_result_depth` components are suppressed
  // (RDIL verification must not emit ancestors of the verified subtree
  // root, whose other descendants were not scanned).
  DeweyStackMerger(size_t num_keywords, const ScoringOptions& scoring,
                   size_t min_result_depth, Callback callback);

  // Feeds the next posting of keyword `keyword_index`. IDs must be
  // non-decreasing across calls; equal IDs for different keywords are fine.
  void Add(size_t keyword_index, const index::Posting& posting);

  // Signals end of input: pops and evaluates all remaining frames.
  void Flush();

  uint64_t postings_consumed() const { return postings_consumed_; }

 private:
  struct Frame {
    uint32_t component = 0;
    std::vector<std::vector<uint32_t>> positions;  // per keyword
    std::vector<double> ranks;                     // per keyword, 0 = absent
    bool contains_all = false;
  };

  // Pops the top frame, evaluating / propagating per Figure 5 lines 12-24.
  void PopFrame();
  Frame MakeFrame(uint32_t component) const;

  size_t num_keywords_;
  ScoringOptions scoring_;
  size_t min_result_depth_;
  Callback callback_;
  std::vector<Frame> stack_;
  std::vector<uint32_t> path_;  // components of the current stack
  uint64_t postings_consumed_ = 0;
  bool flushed_ = false;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_DEWEY_STACK_H_
