#ifndef XRANK_QUERY_NAIVE_QUERY_H_
#define XRANK_QUERY_NAIVE_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "index/lexicon.h"
#include "query/deadline.h"
#include "query/query.h"
#include "storage/buffer_pool.h"

namespace xrank::query {

// Baseline processors over the naive element-granularity indexes (paper
// Section 4.1 / 5.1). Result IDs are single-component Dewey IDs holding the
// element's global preorder ordinal; the engine maps them back to real
// elements. By design these return spurious ancestor results and ignore
// result specificity — that is the paper's point of comparison.

// Naive-ID: n-way equality merge join over ID-ordered lists; an element
// (or replicated ancestor) appearing in every list is a result.
class NaiveIdQueryProcessor {
 public:
  NaiveIdQueryProcessor(storage::BufferPool* pool,
                        const index::Lexicon* lexicon,
                        const ScoringOptions& scoring);

  Result<QueryResponse> Execute(const std::vector<std::string>& keywords,
                                size_t m, const QueryOptions& options = {});

 private:
  storage::BufferPool* pool_;
  const index::Lexicon* lexicon_;
  ScoringOptions scoring_;
};

// Naive-Rank: Threshold Algorithm over rank-ordered lists; membership of an
// element in the other keywords' lists is tested by hash-index probes
// (random I/O), and the TA threshold is the sum of the last ranks seen.
class NaiveRankQueryProcessor {
 public:
  NaiveRankQueryProcessor(storage::BufferPool* pool,
                          const index::Lexicon* lexicon,
                          const ScoringOptions& scoring);

  Result<QueryResponse> Execute(const std::vector<std::string>& keywords,
                                size_t m, const QueryOptions& options = {});

 private:
  storage::BufferPool* pool_;
  const index::Lexicon* lexicon_;
  ScoringOptions scoring_;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_NAIVE_QUERY_H_
