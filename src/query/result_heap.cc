#include "query/result_heap.h"

#include <algorithm>
#include <limits>

namespace xrank::query {

bool TopKAccumulator::Add(const dewey::DeweyId& id, double rank) {
  seen_[id] = true;
  auto [it, inserted] = ranks_by_id_.emplace(id, rank);
  if (inserted) {
    ranks_desc_.insert(rank);
    if (shared_ != nullptr) shared_->Raise(LocalKthRank());
    return true;
  }
  if (rank > it->second) {
    ranks_desc_.erase(ranks_desc_.find(it->second));
    ranks_desc_.insert(rank);
    it->second = rank;
    if (shared_ != nullptr) shared_->Raise(LocalKthRank());
  }
  return false;
}

void TopKAccumulator::MarkSeen(const dewey::DeweyId& id) { seen_[id] = true; }

bool TopKAccumulator::Contains(const dewey::DeweyId& id) const {
  return seen_.find(id) != seen_.end();
}

size_t TopKAccumulator::CountAtLeast(double threshold) const {
  size_t count = 0;
  for (double rank : ranks_desc_) {
    if (rank < threshold || count >= m_) break;
    ++count;
  }
  return count;
}

double TopKAccumulator::LocalKthRank() const {
  if (m_ == 0 || ranks_desc_.size() < m_) {
    return -std::numeric_limits<double>::infinity();
  }
  auto it = ranks_desc_.begin();
  std::advance(it, m_ - 1);
  return *it;
}

double TopKAccumulator::KthRank() const {
  double theta = LocalKthRank();
  if (shared_ != nullptr) {
    double floor = shared_->Get();
    if (floor > theta) theta = floor;
  }
  return theta;
}

std::vector<RankedResult> TopKAccumulator::TakeTop() const {
  std::vector<RankedResult> results;
  results.reserve(ranks_by_id_.size());
  for (const auto& [id, rank] : ranks_by_id_) {
    results.push_back(RankedResult{id, rank});
  }
  std::sort(results.begin(), results.end(),
            [](const RankedResult& a, const RankedResult& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              return a.id < b.id;
            });
  if (results.size() > m_) results.resize(m_);
  return results;
}

}  // namespace xrank::query
