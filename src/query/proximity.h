#ifndef XRANK_QUERY_PROXIMITY_H_
#define XRANK_QUERY_PROXIMITY_H_

#include <cstdint>
#include <vector>

#include "query/scoring.h"

namespace xrank::query {

// Smallest text window (in words, inclusive) containing at least one
// position from every list. Lists need not be sorted; empty input or any
// empty list yields 0 (meaning "no window exists").
//
// This is the keyword-distance dimension of the paper's two-dimensional
// proximity metric (Section 2.3.2.2); positions are document-global word
// offsets, so a window can span sibling elements of the result element.
uint32_t MinimalWindowSize(
    const std::vector<std::vector<uint32_t>>& position_lists);

// Maps a window size to the proximity factor in [0, 1]. A window of w words
// covering n keywords at minimal physical distance (adjacent keywords,
// w == n) gets proximity 1; wider windows decay as (n)/w. Window 0 (no
// window) yields proximity 0.
double ProximityFromWindow(ProximityMode mode, uint32_t window,
                           size_t num_keywords);

}  // namespace xrank::query

#endif  // XRANK_QUERY_PROXIMITY_H_
