#include "query/scored_cursor.h"

#include <algorithm>
#include <cmath>

namespace xrank::query {

double TermScoreBound(const index::TermInfo& info,
                      const ScoringOptions& scoring) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (scoring.decay > 1.0) return kInf;  // nothing shrinks the score
  if (info.list.entry_count == 0) return 0.0;
  if (scoring.aggregation == RankAggregation::kSum) {
    // Non-positive means "unknown" (pre-field index, or an all-zero-rank
    // list, where never pruning is merely conservative); non-finite means
    // damage. Either way: no bound, no pruning.
    float bound = info.max_doc_rank;
    if (!std::isfinite(bound) || bound <= 0.0f) return kInf;
    return static_cast<double>(bound);
  }
  if (info.skips.empty()) return kInf;
  double best = 0.0;
  for (const index::SkipEntry& skip : info.skips) {
    if (!std::isfinite(skip.max_rank)) return kInf;  // damaged descriptor
    best = std::max(best, static_cast<double>(skip.max_rank));
  }
  return best;
}

}  // namespace xrank::query
