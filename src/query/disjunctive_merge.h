#ifndef XRANK_QUERY_DISJUNCTIVE_MERGE_H_
#define XRANK_QUERY_DISJUNCTIVE_MERGE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "query/deadline.h"
#include "query/dewey_stack.h"
#include "query/query.h"
#include "query/result_heap.h"
#include "query/scored_cursor.h"
#include "query/scoring.h"

namespace xrank::query {

// Safe dynamic pruning for disjunctive (and mixed) top-k over the Dewey
// cursor layer: document-at-a-time MaxScore, WAND and block-max WAND that
// feed exactly the documents that can still reach the k-th result into the
// DeweyStackMerger, in global Dewey order, so every surviving element is
// scored by the identical code path as the exhaustive merge. Pruning is
// exact: each algorithm returns bitwise the same ids and ranks as the
// exhaustive oracle (comparisons inflate upper bounds by a slack factor
// and only prune on strictly-below, so ties always survive). See DESIGN.md
// section 13.

// Pruning-efficacy counters, folded into QueryStats by the caller.
struct PruningCounters {
  uint64_t docs_skipped = 0;     // prune decisions that bypassed documents
  uint64_t pivot_advances = 0;   // SkipToDocument calls driven by bounds
  uint64_t blocks_pruned = 0;    // list pages jumped by those skips
};

// The algorithm that will actually run for `requested` under these scoring
// options: kAuto picks block-max WAND for few-term queries when per-page
// bounds are sound and MaxScore otherwise; BMW degrades to WAND under sum
// aggregation; everything degrades to kExhaustive when no sound list bound
// exists (decay > 1). Never returns kAuto.
MergeAlgorithm ResolveMergeAlgorithm(MergeAlgorithm requested,
                                     const ScoringOptions& scoring,
                                     size_t num_terms);

// MaxScore (Turtle & Flood): lists are partitioned by ascending list-level
// bound into a non-essential prefix whose bounds sum below the current
// threshold — documents appearing only there can never qualify and are
// skipped without any cursor work — and the essential rest, which drive
// candidate selection. The partition is re-derived as the threshold rises.
// Under max aggregation, candidate bounds are tightened with per-page
// block maxima and failing candidates skip whole page runs.
Status MaxScoreMerge(std::vector<ScoredCursor>* cursors,
                     const ScoringOptions& scoring, DeweyStackMerger* merger,
                     TopKAccumulator* accumulator, QueryDeadline* deadline,
                     PruningCounters* counters);

// WAND pivot selection: cursors sorted by current document; the pivot is
// the first position where the cumulative list bounds reach the threshold
// — no earlier document can qualify, so lagging cursors leap straight to
// the pivot document via SkipToDocument. With `block_max` (and sound
// per-page bounds), an aligned pivot is re-checked against the page-run
// maxima and skipped past the run when even those cannot reach the
// threshold (Ding & Suel's block-max WAND).
Status WandMerge(std::vector<ScoredCursor>* cursors,
                 const ScoringOptions& scoring, bool block_max,
                 DeweyStackMerger* merger, TopKAccumulator* accumulator,
                 QueryDeadline* deadline, PruningCounters* counters);

}  // namespace xrank::query

#endif  // XRANK_QUERY_DISJUNCTIVE_MERGE_H_
