#include "query/hdil_query.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/timer.h"
#include "index/block_cache.h"
#include "query/dewey_stack.h"
#include "query/dil_query.h"
#include "query/result_heap.h"
#include "query/trace.h"
#include "storage/btree.h"

namespace xrank::query {

namespace {

struct CostSnapshot {
  uint64_t sequential = 0;
  uint64_t random = 0;
  double cost = 0.0;
};

CostSnapshot TakeSnapshot(const storage::CostModel* model) {
  CostSnapshot snap;
  if (model != nullptr) {
    snap.sequential = model->sequential_reads();
    snap.random = model->random_reads();
    snap.cost = model->TotalCost();
  }
  return snap;
}

void FillIoStats(const storage::CostModel* model, const CostSnapshot& before,
                 QueryStats* stats) {
  if (model == nullptr) return;
  stats->sequential_reads = model->sequential_reads() - before.sequential;
  stats->random_reads = model->random_reads() - before.random;
  stats->io_cost = model->TotalCost() - before.cost;
}

}  // namespace

Result<size_t> HdilLongestCommonPrefix(storage::BufferPool* pool,
                                       const index::Lexicon* lexicon,
                                       const index::TermInfo& info,
                                       const dewey::DeweyId& key) {
  if (info.btree_root == storage::kInvalidRef || info.list.entry_count == 0) {
    return static_cast<size_t>(0);
  }
  storage::BtreeReader sparse(pool, info.btree_root);
  XRANK_ASSIGN_OR_RETURN(storage::SeekResult seek, sparse.SeekCeil(key));

  // The Dewey-order neighbours of `key` live on the last list page whose
  // first ID precedes key (pred) or on the following page (ceil); scan both
  // pages of the full list — they are the "leaf level" of this tree.
  std::vector<uint32_t> pages;
  if (seek.has_pred) pages.push_back(static_cast<uint32_t>(seek.pred.value));
  if (seek.has_ceil) pages.push_back(static_cast<uint32_t>(seek.ceil.value));
  size_t best = 0;
  for (uint32_t page : pages) {
    index::PostingListCursor cursor(
        pool, info.list, lexicon->ListFormat(info, /*delta_encode_ids=*/true));
    XRANK_RETURN_NOT_OK(cursor.SeekToPage(page));
    index::Posting posting;
    for (;;) {
      XRANK_ASSIGN_OR_RETURN(bool has, cursor.Next(&posting));
      if (!has) break;
      best = std::max(best, key.CommonPrefixLength(posting.id));
      if (cursor.current_page_index() != page) break;
    }
  }
  return best;
}

Status HdilScanPrefix(
    storage::BufferPool* pool, const index::Lexicon* lexicon,
    const index::TermInfo& info, const dewey::DeweyId& prefix,
    const std::function<bool(const index::Posting&)>& fn) {
  if (info.btree_root == storage::kInvalidRef || info.list.entry_count == 0) {
    return Status::OK();
  }
  storage::BtreeReader sparse(pool, info.btree_root);
  XRANK_ASSIGN_OR_RETURN(storage::SeekResult seek, sparse.SeekCeil(prefix));
  uint32_t start_page;
  if (seek.has_pred) {
    start_page = static_cast<uint32_t>(seek.pred.value);
  } else if (seek.has_ceil) {
    start_page = static_cast<uint32_t>(seek.ceil.value);
  } else {
    return Status::OK();
  }
  index::PostingListCursor cursor(
      pool, info.list, lexicon->ListFormat(info, /*delta_encode_ids=*/true));
  XRANK_RETURN_NOT_OK(cursor.SeekToPage(start_page));
  index::Posting posting;
  for (;;) {
    XRANK_ASSIGN_OR_RETURN(bool has, cursor.Next(&posting));
    if (!has) return Status::OK();
    if (prefix.IsPrefixOf(posting.id)) {
      if (!fn(posting)) return Status::OK();
    } else if (prefix < posting.id) {
      return Status::OK();  // past the subtree
    }
  }
}

HdilQueryProcessor::HdilQueryProcessor(storage::BufferPool* pool,
                                       const index::Lexicon* lexicon,
                                       const ScoringOptions& scoring,
                                       const HdilStrategyOptions& strategy,
                                       index::BlockCache* block_cache)
    : pool_(pool),
      lexicon_(lexicon),
      scoring_(scoring),
      strategy_(strategy),
      block_cache_(block_cache) {}

Result<QueryResponse> HdilQueryProcessor::ExecuteDil(
    const std::vector<std::string>& keywords, size_t m,
    const QueryOptions& options, QueryDeadline* deadline) {
  DilQueryProcessor dil(pool_, lexicon_, scoring_, /*use_skip_blocks=*/true,
                        block_cache_);
  return dil.Execute(keywords, m, options, deadline);
}

Result<QueryResponse> HdilQueryProcessor::Execute(
    const std::vector<std::string>& keywords, size_t m,
    const QueryOptions& options) {
  if (keywords.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (scoring_.semantics == QuerySemantics::kDisjunctive) {
    // The threshold algorithm here assumes conjunctive semantics (paper
    // Section 4.3). Disjunctive queries run on the same lists through the
    // DIL processor, which picks a pruned merge (MaxScore / WAND / BMW)
    // or the exhaustive oracle per QueryOptions::algorithm.
    QueryDeadline deadline(options);
    return ExecuteDil(keywords, m, options, &deadline);
  }
  WallTimer timer;
  const storage::CostModel* model = pool_->cost_model();
  CostSnapshot before = TakeSnapshot(model);
  QueryResponse response;
  QueryTrace* trace = options.trace;
  size_t n = keywords.size();

  std::vector<const index::TermInfo*> infos(n);
  {
    ScopedSpan span(trace, "lexicon");
    for (size_t k = 0; k < n; ++k) {
      infos[k] = lexicon_->Find(keywords[k]);
      if (infos[k] == nullptr) {
        response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
        return response;
      }
    }
  }
  std::vector<index::PostingListCursor> rank_cursors;
  rank_cursors.reserve(n);
  double dil_cost_estimate = 0.0;
  {
    ScopedSpan span(trace, "cursor_open");
    for (size_t k = 0; k < n; ++k) {
      rank_cursors.emplace_back(
          pool_, infos[k]->rank_list,
          lexicon_->ListFormat(*infos[k], /*delta_encode_ids=*/false));
      rank_cursors.back().set_block_cache(block_cache_);
      // DIL's cost is predictable a priori: a full sequential scan of each
      // keyword's inverted list (paper Section 4.4.2).
      double seq_cost =
          model != nullptr ? model->options().sequential_read_cost : 1.0;
      dil_cost_estimate += seq_cost * infos[k]->list.page_count;
    }
  }
  std::vector<QueryTrace::TermStats> term_stats(trace != nullptr ? n : 0);

  TopKAccumulator accumulator(m);
  if (options.shared_threshold != nullptr) {
    accumulator.AttachShared(options.shared_threshold);
  }

  auto verify = [&](const dewey::DeweyId& lcp) -> Status {
    struct Hit {
      size_t keyword;
      index::Posting posting;
    };
    std::vector<Hit> hits;
    for (size_t k = 0; k < n; ++k) {
      size_t before_scan = hits.size();
      XRANK_RETURN_NOT_OK(HdilScanPrefix(
          pool_, lexicon_, *infos[k], lcp,
          [&](const index::Posting& posting) {
            hits.push_back(Hit{k, posting});
            return true;
          }));
      if (trace != nullptr) {
        term_stats[k].postings_read += hits.size() - before_scan;
      }
    }
    response.stats.postings_scanned += hits.size();
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
      if (a.posting.id != b.posting.id) return a.posting.id < b.posting.id;
      return a.keyword < b.keyword;
    });
    DeweyStackMerger merger(n, scoring_, /*min_result_depth=*/lcp.depth(),
                            [&](const CandidateResult& candidate) {
                              accumulator.Add(candidate.id,
                                              candidate.overall_rank);
                            });
    for (const Hit& hit : hits) merger.Add(hit.keyword, hit.posting);
    merger.Flush();
    accumulator.MarkSeen(lcp);
    return Status::OK();
  };

  // --- RDIL mode over the rank-ordered prefix lists ---
  ScopedSpan merge_span(trace, "merge");
  QueryDeadline deadline(options);
  std::vector<double> last_rank(n, std::numeric_limits<double>::infinity());
  size_t next_list = 0;
  bool switch_to_dil = false;
  bool done = false;
  bool expired = false;

  while (!done && !switch_to_dil) {
    Status tick = deadline.Check();
    if (!tick.ok()) {
      if (!options.allow_partial_results) return tick;
      expired = true;  // serve RDIL's accumulator; never start the rescan
      break;
    }
    size_t k = next_list;
    next_list = (next_list + 1) % n;

    index::Posting entry;
    XRANK_ASSIGN_OR_RETURN(bool has, rank_cursors[k].Next(&entry));
    if (!has) {
      // The rank prefix only covers the top fraction of this list: once it
      // runs dry the threshold cannot drop further, so fall back to DIL
      // (Section 4.4.2's low-correlation case).
      switch_to_dil = true;
      break;
    }
    ++response.stats.postings_scanned;
    ++response.stats.rounds;
    if (trace != nullptr) ++term_stats[k].postings_read;
    last_rank[k] = entry.elem_rank;

    size_t lcp_len = entry.id.depth();
    for (size_t j = 0; j < n && lcp_len > 0; ++j) {
      if (j == k) continue;
      XRANK_ASSIGN_OR_RETURN(size_t cpl,
                             HdilLongestCommonPrefix(pool_, lexicon_,
                                                     *infos[j], entry.id));
      ++response.stats.btree_probes;
      if (trace != nullptr) ++term_stats[j].btree_probes;
      lcp_len = std::min(lcp_len, cpl);
    }
    if (lcp_len >= 1) {
      dewey::DeweyId lcp = entry.id.Prefix(lcp_len);
      if (!accumulator.Contains(lcp)) {
        XRANK_RETURN_NOT_OK(verify(lcp));
      }
    }

    double threshold = 0.0;
    bool bounded = true;
    for (size_t j = 0; j < n; ++j) {
      if (std::isinf(last_rank[j])) {
        bounded = false;
        break;
      }
      threshold += last_rank[j];
    }
    if (bounded && accumulator.CountAtLeast(threshold) >= m) {
      done = true;
      response.stats.threshold_terminated = true;
      break;
    }

    // Adaptive strategy (Section 4.4.2): estimate RDIL's remaining time as
    // (m - r) * t / r and compare against DIL's predictable full-scan cost.
    // Rounds are split round-robin over n lists, so the interval between
    // checks scales with n to see the same per-list progress.
    uint64_t interval =
        std::max<uint64_t>(8, strategy_.check_interval * n / 2);
    if (bounded && response.stats.rounds % interval == 0) {
      double r = static_cast<double>(accumulator.CountAtLeast(threshold));
      if (r == 0.0) {
        // The paper's estimator diverges at r = 0: no result has cleared
        // the threshold after a full check interval, the signature of
        // uncorrelated keywords — switch immediately.
        switch_to_dil = true;
      } else if (r >= static_cast<double>(
                          strategy_.min_results_for_estimate)) {
        double t;
        double dil_budget;
        if (strategy_.use_cost_model && model != nullptr) {
          t = model->TotalCost() - before.cost;
          dil_budget = dil_cost_estimate;  // cost-model units
        } else {
          // Wall-clock mode (the paper's implementation): budget DIL at a
          // fixed per-page sequential-scan time.
          constexpr double kSequentialPageMs = 0.02;
          t = timer.ElapsedSeconds() * 1e3;
          double total_pages = 0.0;
          for (size_t j = 0; j < n; ++j) {
            total_pages += infos[j]->list.page_count;
          }
          dil_budget = kSequentialPageMs * total_pages;
        }
        double estimate = (static_cast<double>(m) - r) * t / r;
        if (estimate > dil_budget) switch_to_dil = true;
      }
    }
  }

  merge_span.End();
  // The per-term stats of the TA phase are recorded whether or not the
  // query falls back: the fallback's DIL cursors append their own rows.
  if (trace != nullptr) {
    for (size_t k = 0; k < n; ++k) {
      term_stats[k].term = keywords[k];
      term_stats[k].codec = std::string(lexicon_->codec_name());
      term_stats[k].block_cache_hits = rank_cursors[k].block_cache_hits();
      trace->AddTermStats(std::move(term_stats[k]));
    }
  }
  for (const index::PostingListCursor& cursor : rank_cursors) {
    response.stats.block_cache_hits += cursor.block_cache_hits();
  }
  if (expired) {
    response.stats.partial = true;
    ScopedSpan span(trace, "rank");
    response.results = accumulator.TakeTop();
  } else if (switch_to_dil) {
    // The fallback rescans under the SAME deadline object, so the overall
    // budget is honored even when the switch happens late. Its spans nest
    // under dil_fallback in the trace.
    ScopedSpan span(trace, "dil_fallback");
    XRANK_ASSIGN_OR_RETURN(QueryResponse dil_response,
                           ExecuteDil(keywords, m, options, &deadline));
    response.results = std::move(dil_response.results);
    response.stats.postings_scanned += dil_response.stats.postings_scanned;
    response.stats.pages_skipped += dil_response.stats.pages_skipped;
    response.stats.blocks_pruned += dil_response.stats.blocks_pruned;
    response.stats.docs_skipped += dil_response.stats.docs_skipped;
    response.stats.pivot_advances += dil_response.stats.pivot_advances;
    response.stats.block_cache_hits += dil_response.stats.block_cache_hits;
    response.stats.algorithm = dil_response.stats.algorithm;
    response.stats.switched_to_dil = true;
    response.stats.partial = dil_response.stats.partial;
  } else {
    ScopedSpan span(trace, "rank");
    response.results = accumulator.TakeTop();
  }
  response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
  FillIoStats(model, before, &response.stats);
  return response;
}

}  // namespace xrank::query
