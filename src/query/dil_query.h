#ifndef XRANK_QUERY_DIL_QUERY_H_
#define XRANK_QUERY_DIL_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "index/lexicon.h"
#include "query/query.h"
#include "storage/buffer_pool.h"

namespace xrank::query {

// Single-pass DIL evaluation (paper Figure 5): merges the keyword inverted
// lists in Dewey-ID order through the Dewey stack, computing the most
// specific results and their ranks in one sequential scan of each list.
class DilQueryProcessor {
 public:
  // `pool` must wrap a DIL (or HDIL — the full lists are format-compatible)
  // index file; `lexicon` describes it. Both are borrowed.
  DilQueryProcessor(storage::BufferPool* pool,
                    const index::Lexicon* lexicon,
                    const ScoringOptions& scoring);

  // Keywords must already be analyzer-normalized. A keyword missing from
  // the lexicon yields an empty result (conjunctive semantics).
  Result<QueryResponse> Execute(const std::vector<std::string>& keywords,
                                size_t m);

 private:
  storage::BufferPool* pool_;
  const index::Lexicon* lexicon_;
  ScoringOptions scoring_;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_DIL_QUERY_H_
