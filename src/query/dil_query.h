#ifndef XRANK_QUERY_DIL_QUERY_H_
#define XRANK_QUERY_DIL_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "index/lexicon.h"
#include "query/deadline.h"
#include "query/query.h"
#include "storage/buffer_pool.h"

namespace xrank::query {

// Single-pass DIL evaluation (paper Figure 5): merges the keyword inverted
// lists in Dewey-ID order through the Dewey stack, computing the most
// specific results and their ranks in one scan of each list. Under
// conjunctive semantics the merge is document-at-a-time: whenever one list
// has no posting for a document the others are skipped past it via the
// lists' skip-block descriptors, which changes which pages are read but not
// the produced results or their ranks (results never span documents).
// Disjunctive (and, on request, conjunctive) queries run one of the safe
// dynamic-pruning strategies — MaxScore, WAND, block-max WAND (see
// query/disjunctive_merge.h) — chosen by QueryOptions::algorithm; all of
// them return bitwise the same results as the exhaustive merge.
class DilQueryProcessor {
 public:
  // `pool` must wrap a DIL (or HDIL — the full lists are format-compatible)
  // index file; `lexicon` describes it. Both are borrowed.
  // `use_skip_blocks` == false forces the exhaustive merge for every
  // semantics and algorithm request (the oracle configuration for
  // correctness tests).
  // `block_cache` (optional, borrowed) serves decoded posting pages.
  // `use_block_max_pruning` == false disables the block-max top-k pruning
  // on top of document skipping; pruning additionally requires scoring
  // options it is sound under (see SupportsBlockMaxPruning) and is a pure
  // I/O optimization — results are identical either way.
  DilQueryProcessor(storage::BufferPool* pool,
                    const index::Lexicon* lexicon,
                    const ScoringOptions& scoring,
                    bool use_skip_blocks = true,
                    index::BlockCache* block_cache = nullptr,
                    bool use_block_max_pruning = true);

  // Keywords must already be analyzer-normalized. A keyword missing from
  // the lexicon yields an empty result (conjunctive semantics).
  // `options` bounds the scan (deadline / cancellation / partial results —
  // see QueryOptions).
  Result<QueryResponse> Execute(const std::vector<std::string>& keywords,
                                size_t m, const QueryOptions& options = {});

  // Variant used by the HDIL fallback: evaluates against an already-running
  // budget so the total (RDIL phase + DIL rescan) stays within one
  // deadline. `deadline` is borrowed and must outlive the call.
  Result<QueryResponse> Execute(const std::vector<std::string>& keywords,
                                size_t m, const QueryOptions& options,
                                QueryDeadline* deadline);

 private:
  storage::BufferPool* pool_;
  const index::Lexicon* lexicon_;
  ScoringOptions scoring_;
  bool use_skip_blocks_;
  index::BlockCache* block_cache_;
  bool use_block_max_pruning_;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_DIL_QUERY_H_
