#ifndef XRANK_QUERY_TRACE_H_
#define XRANK_QUERY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xrank::query {

// Per-query execution trace: a tree of timed spans (parse -> lexicon ->
// cursor_open -> merge -> rank -> cache, nesting freely — e.g. the HDIL
// processor's DIL fallback opens its own child spans) plus per-term
// posting/skip/probe counters gathered from the cursors.
//
// A trace is owned by one query invocation and is NOT thread-safe: a single
// query runs on a single thread, and concurrent queries each carry their
// own trace. Processors receive it through QueryOptions::trace and must
// tolerate null (tracing off — the default — costs nothing on the hot
// path). All timing is steady-clock, reported in microseconds relative to
// the trace's construction.
class QueryTrace {
 public:
  struct Span {
    std::string name;
    int depth = 0;          // nesting level (0 = top)
    int64_t start_us = 0;   // offset from trace construction
    int64_t duration_us = 0;
    bool open = false;      // still running (only mid-query)
  };

  struct TermStats {
    std::string term;
    std::string codec;           // posting codec decoding this term's pages
    uint64_t postings_read = 0;  // list entries decoded for this term
    uint64_t pages_skipped = 0;  // list pages jumped via skip blocks
    uint64_t btree_probes = 0;   // RDIL/HDIL B+-tree probes against it
    uint64_t hash_probes = 0;    // Naive-Rank hash lookups against it
    uint64_t block_cache_hits = 0;  // pages served from the decoded cache
  };

  QueryTrace() : origin_(std::chrono::steady_clock::now()) {}

  // Spans. BeginSpan returns a handle for the matching EndSpan; unbalanced
  // Begin/End is tolerated (an unclosed span stays marked open). Prefer
  // ScopedSpan below.
  size_t BeginSpan(std::string_view name);
  void EndSpan(size_t handle);

  void AddTermStats(TermStats stats) {
    terms_.push_back(std::move(stats));
  }

  // Free-form key/value annotations attached by the processors (e.g. the
  // merge algorithm that actually ran). Re-annotating a key overwrites it,
  // so a fallback path (HDIL -> DIL) reports its final choice.
  void AddAnnotation(std::string_view key, std::string_view value);

  // Splices another query's finished trace into this one as a synthetic
  // parent span named `name` holding the child's span tree (depths shifted
  // below it, times re-anchored to this trace's clock via the two origins)
  // plus the child's term counters, each term prefixed "name:". The shard
  // router uses this to merge per-shard traces — each recorded
  // single-threadedly on its own scatter thread — into the caller's trace
  // after the gather, keeping QueryTrace itself free of locks.
  void MergeChild(std::string_view name, const QueryTrace& child);

  // Query annotations (shown by the renderers and the slow-query log).
  void set_query_text(std::string text) { query_text_ = std::move(text); }
  void set_index_kind(std::string kind) { index_kind_ = std::move(kind); }
  const std::string& query_text() const { return query_text_; }
  const std::string& index_kind() const { return index_kind_; }

  int64_t ElapsedUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<TermStats>& terms() const { return terms_; }
  const std::vector<std::pair<std::string, std::string>>& annotations() const {
    return annotations_;
  }

  // Human-readable rendering: an indented span tree with timings, then the
  // per-term counter table.
  std::string FormatTable() const;

  // Strict-JSON object:
  //   {"query":"...","kind":"...","spans":[{"name":..,"depth":..,
  //    "start_us":..,"duration_us":..}],"terms":[{...}]}
  std::string FormatJson() const;

 private:
  std::chrono::steady_clock::time_point origin_;
  std::vector<Span> spans_;
  std::vector<size_t> open_stack_;  // handles of currently open spans
  std::vector<TermStats> terms_;
  std::vector<std::pair<std::string, std::string>> annotations_;
  std::string query_text_;
  std::string index_kind_;
};

// RAII span guard, null-safe: `ScopedSpan s(trace, "merge");` is a no-op
// when trace == nullptr, so call sites need no branching.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) handle_ = trace_->BeginSpan(name);
  }
  ~ScopedSpan() { End(); }

  // Closes the span early (idempotent).
  void End() {
    if (trace_ != nullptr) trace_->EndSpan(handle_);
    trace_ = nullptr;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  QueryTrace* trace_;
  size_t handle_ = 0;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_TRACE_H_
