#include "query/rdil_query.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/timer.h"
#include "query/dewey_stack.h"
#include "query/result_heap.h"
#include "query/trace.h"
#include "storage/btree.h"

namespace xrank::query {

namespace {

struct CostSnapshot {
  uint64_t sequential = 0;
  uint64_t random = 0;
  double cost = 0.0;
};

CostSnapshot TakeSnapshot(const storage::CostModel* model) {
  CostSnapshot snap;
  if (model != nullptr) {
    snap.sequential = model->sequential_reads();
    snap.random = model->random_reads();
    snap.cost = model->TotalCost();
  }
  return snap;
}

void FillIoStats(const storage::CostModel* model, const CostSnapshot& before,
                 QueryStats* stats) {
  if (model == nullptr) return;
  stats->sequential_reads = model->sequential_reads() - before.sequential;
  stats->random_reads = model->random_reads() - before.random;
  stats->io_cost = model->TotalCost() - before.cost;
}

}  // namespace

RdilQueryProcessor::RdilQueryProcessor(storage::BufferPool* pool,
                                       const index::Lexicon* lexicon,
                                       const ScoringOptions& scoring)
    : pool_(pool), lexicon_(lexicon), scoring_(scoring) {}

Result<QueryResponse> RdilQueryProcessor::Execute(
    const std::vector<std::string>& keywords, size_t m,
    const QueryOptions& options) {
  if (keywords.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (scoring_.semantics == QuerySemantics::kDisjunctive) {
    return Status::Unimplemented(
        "disjunctive queries are evaluated via DIL (the threshold algorithm "
        "here assumes conjunctive semantics, paper Section 4.3)");
  }
  WallTimer timer;
  CostSnapshot before = TakeSnapshot(pool_->cost_model());
  QueryResponse response;
  QueryTrace* trace = options.trace;
  size_t n = keywords.size();

  std::vector<const index::TermInfo*> infos(n);
  {
    ScopedSpan span(trace, "lexicon");
    for (size_t k = 0; k < n; ++k) {
      infos[k] = lexicon_->Find(keywords[k]);
      if (infos[k] == nullptr) {
        response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
        return response;
      }
    }
  }
  std::vector<index::PostingListCursor> cursors;
  std::vector<storage::BtreeReader> btrees;
  cursors.reserve(n);
  btrees.reserve(n);
  {
    ScopedSpan span(trace, "cursor_open");
    for (size_t k = 0; k < n; ++k) {
      cursors.emplace_back(
          pool_, infos[k]->list,
          lexicon_->ListFormat(*infos[k], /*delta_encode_ids=*/false));
      btrees.emplace_back(pool_, infos[k]->btree_root);
    }
  }
  std::vector<QueryTrace::TermStats> term_stats(trace != nullptr ? n : 0);

  TopKAccumulator accumulator(m);
  if (options.shared_threshold != nullptr) {
    accumulator.AttachShared(options.shared_threshold);
  }

  // Verifies the deepest common ancestor `lcp`: range-scan every keyword's
  // B+-tree for the subtree, fetch the referenced postings from the
  // rank-ordered lists (random reads — the RDIL cost the paper discusses),
  // and run the Dewey-stack merge rooted at lcp.
  auto verify = [&](const dewey::DeweyId& lcp) -> Status {
    struct Hit {
      size_t keyword;
      index::Posting posting;
    };
    std::vector<Hit> hits;
    for (size_t k = 0; k < n; ++k) {
      std::vector<uint64_t> locations;
      XRANK_RETURN_NOT_OK(btrees[k].ScanPrefix(
          lcp, [&](const storage::BtreeEntry& entry) {
            locations.push_back(entry.value);
            return true;
          }));
      for (uint64_t loc : locations) {
        XRANK_ASSIGN_OR_RETURN(
            index::Posting posting,
            index::ReadPostingAt(
                pool_, infos[k]->list, index::DecodePostingLocation(loc),
                lexicon_->ListFormat(*infos[k], /*delta_encode_ids=*/false)));
        ++response.stats.postings_scanned;
        if (trace != nullptr) ++term_stats[k].postings_read;
        hits.push_back(Hit{k, std::move(posting)});
      }
    }
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
      if (a.posting.id != b.posting.id) return a.posting.id < b.posting.id;
      return a.keyword < b.keyword;
    });
    DeweyStackMerger merger(n, scoring_, /*min_result_depth=*/lcp.depth(),
                            [&](const CandidateResult& candidate) {
                              accumulator.Add(candidate.id,
                                              candidate.overall_rank);
                            });
    for (const Hit& hit : hits) merger.Add(hit.keyword, hit.posting);
    merger.Flush();
    // Whether or not lcp qualified, never verify it again (Figure 7
    // line 18's containment check).
    accumulator.MarkSeen(lcp);
    return Status::OK();
  };

  // Round-robin over the rank-ordered lists (Figure 7 lines 7-10).
  ScopedSpan merge_span(trace, "merge");
  QueryDeadline deadline(options);
  std::vector<double> last_rank(n, std::numeric_limits<double>::infinity());
  std::vector<bool> exhausted(n, false);
  size_t next_list = 0;
  bool done = false;
  while (!done) {
    // One check per threshold round bounds the overrun to a single round's
    // work (a handful of B+-tree probes plus one subtree verification).
    Status tick = deadline.Check();
    if (!tick.ok()) {
      if (!options.allow_partial_results) return tick;
      response.stats.partial = true;
      break;
    }
    // Pick the next non-exhausted list.
    size_t k = n;
    for (size_t step = 0; step < n; ++step) {
      size_t candidate = (next_list + step) % n;
      if (!exhausted[candidate]) {
        k = candidate;
        break;
      }
    }
    if (k == n) break;  // every list fully consumed
    next_list = (k + 1) % n;

    index::Posting entry;
    XRANK_ASSIGN_OR_RETURN(bool has, cursors[k].Next(&entry));
    if (!has) {
      exhausted[k] = true;
      continue;
    }
    ++response.stats.postings_scanned;
    ++response.stats.rounds;
    if (trace != nullptr) ++term_stats[k].postings_read;
    last_rank[k] = entry.elem_rank;

    // Deepest common prefix across all keywords (lines 11-16): probe each
    // other keyword's B+-tree for the entry's neighbourhood.
    size_t lcp_len = entry.id.depth();
    for (size_t j = 0; j < n && lcp_len > 0; ++j) {
      if (j == k) continue;
      XRANK_ASSIGN_OR_RETURN(size_t cpl,
                             btrees[j].LongestCommonPrefixWith(entry.id));
      ++response.stats.btree_probes;
      if (trace != nullptr) ++term_stats[j].btree_probes;
      lcp_len = std::min(lcp_len, cpl);
    }
    if (lcp_len >= 1) {
      dewey::DeweyId lcp = entry.id.Prefix(lcp_len);
      if (!accumulator.Contains(lcp)) {
        XRANK_RETURN_NOT_OK(verify(lcp));
      }
    }

    // Threshold check (lines 26-28).
    double threshold = 0.0;
    bool bounded = true;
    for (size_t j = 0; j < n; ++j) {
      if (std::isinf(last_rank[j])) {
        bounded = false;
        break;
      }
      threshold += last_rank[j];
    }
    if (bounded && accumulator.CountAtLeast(threshold) >= m) {
      done = true;
      response.stats.threshold_terminated = true;
    }
  }

  merge_span.End();
  {
    ScopedSpan span(trace, "rank");
    response.results = accumulator.TakeTop();
  }
  if (trace != nullptr) {
    for (size_t k = 0; k < n; ++k) {
      term_stats[k].term = keywords[k];
      term_stats[k].codec = std::string(lexicon_->codec_name());
      trace->AddTermStats(std::move(term_stats[k]));
    }
  }
  response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
  FillIoStats(pool_->cost_model(), before, &response.stats);
  return response;
}

}  // namespace xrank::query
