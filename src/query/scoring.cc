#include "query/scoring.h"

#include <algorithm>

namespace xrank::query {

double AggregateRank(RankAggregation aggregation, double existing,
                     double incoming) {
  switch (aggregation) {
    case RankAggregation::kMax:
      return std::max(existing, incoming);
    case RankAggregation::kSum:
      return existing + incoming;
  }
  return existing;
}

double CombineRanks(const std::vector<double>& keyword_ranks,
                    double proximity) {
  double sum = 0.0;
  for (double r : keyword_ranks) sum += r;
  return sum * proximity;
}

bool SupportsBlockMaxPruning(const ScoringOptions& options) {
  return options.semantics == QuerySemantics::kConjunctive &&
         options.aggregation == RankAggregation::kMax && options.decay <= 1.0;
}

bool SupportsScorePruning(const ScoringOptions& options) {
  return options.decay <= 1.0;
}

bool SupportsBlockMaxBounds(const ScoringOptions& options) {
  return options.aggregation == RankAggregation::kMax && options.decay <= 1.0;
}

}  // namespace xrank::query
