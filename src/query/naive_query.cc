#include "query/naive_query.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/timer.h"
#include "index/naive_index.h"
#include "query/proximity.h"
#include "query/result_heap.h"
#include "query/trace.h"

namespace xrank::query {

namespace {

struct CostSnapshot {
  uint64_t sequential = 0;
  uint64_t random = 0;
  double cost = 0.0;
};

CostSnapshot TakeSnapshot(const storage::CostModel* model) {
  CostSnapshot snap;
  if (model != nullptr) {
    snap.sequential = model->sequential_reads();
    snap.random = model->random_reads();
    snap.cost = model->TotalCost();
  }
  return snap;
}

void FillIoStats(const storage::CostModel* model, const CostSnapshot& before,
                 QueryStats* stats) {
  if (model == nullptr) return;
  stats->sequential_reads = model->sequential_reads() - before.sequential;
  stats->random_reads = model->random_reads() - before.random;
  stats->io_cost = model->TotalCost() - before.cost;
}

// Naive scoring: no specificity decay — just the element's own ElemRank per
// keyword, summed and scaled by proximity (Section 4.1's "inaccurate
// ranking" baseline).
double NaiveScore(const std::vector<index::Posting>& postings,
                  const ScoringOptions& scoring) {
  std::vector<double> keyword_ranks;
  std::vector<std::vector<uint32_t>> positions;
  keyword_ranks.reserve(postings.size());
  positions.reserve(postings.size());
  for (const index::Posting& posting : postings) {
    keyword_ranks.push_back(static_cast<double>(posting.elem_rank));
    positions.push_back(posting.positions);
  }
  uint32_t window = MinimalWindowSize(positions);
  double proximity =
      ProximityFromWindow(scoring.proximity, window, postings.size());
  return CombineRanks(keyword_ranks, proximity);
}

}  // namespace

NaiveIdQueryProcessor::NaiveIdQueryProcessor(storage::BufferPool* pool,
                                             const index::Lexicon* lexicon,
                                             const ScoringOptions& scoring)
    : pool_(pool), lexicon_(lexicon), scoring_(scoring) {}

Result<QueryResponse> NaiveIdQueryProcessor::Execute(
    const std::vector<std::string>& keywords, size_t m,
    const QueryOptions& options) {
  if (keywords.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (scoring_.semantics == QuerySemantics::kDisjunctive) {
    return Status::Unimplemented(
        "disjunctive queries are evaluated via DIL (the threshold algorithm "
        "here assumes conjunctive semantics, paper Section 4.3)");
  }
  WallTimer timer;
  CostSnapshot before = TakeSnapshot(pool_->cost_model());
  QueryResponse response;
  QueryTrace* trace = options.trace;
  size_t n = keywords.size();

  std::vector<const index::TermInfo*> infos(n);
  {
    ScopedSpan span(trace, "lexicon");
    for (size_t k = 0; k < n; ++k) {
      infos[k] = lexicon_->Find(keywords[k]);
      if (infos[k] == nullptr) {
        response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
        return response;
      }
    }
  }
  std::vector<index::PostingListCursor> cursors;
  cursors.reserve(n);
  {
    ScopedSpan span(trace, "cursor_open");
    for (size_t k = 0; k < n; ++k) {
      cursors.emplace_back(
          pool_, infos[k]->list,
          lexicon_->ListFormat(*infos[k], /*delta_encode_ids=*/false));
    }
  }
  std::vector<QueryTrace::TermStats> term_stats(trace != nullptr ? n : 0);

  TopKAccumulator accumulator(m);
  if (options.shared_threshold != nullptr) {
    accumulator.AttachShared(options.shared_threshold);
  }
  std::vector<index::Posting> current(n);
  std::vector<bool> live(n, false);
  ScopedSpan merge_span(trace, "merge");
  for (size_t k = 0; k < n; ++k) {
    XRANK_ASSIGN_OR_RETURN(bool has, cursors[k].Next(&current[k]));
    live[k] = has;
    if (has) {
      ++response.stats.postings_scanned;
      if (trace != nullptr) ++term_stats[k].postings_read;
    }
  }

  // Equality merge join on the element ordinal: advance the smallest; when
  // all heads agree the element contains every keyword.
  QueryDeadline deadline(options);
  for (;;) {
    Status tick = deadline.Check();
    if (!tick.ok()) {
      if (!options.allow_partial_results) return tick;
      response.stats.partial = true;
      break;
    }
    bool any_dead = false;
    for (size_t k = 0; k < n; ++k) any_dead = any_dead || !live[k];
    if (any_dead) break;

    uint32_t max_ordinal = 0;
    bool all_equal = true;
    for (size_t k = 0; k < n; ++k) {
      uint32_t ordinal = current[k].id.component(0);
      if (k == 0) {
        max_ordinal = ordinal;
      } else if (ordinal != max_ordinal) {
        all_equal = false;
        max_ordinal = std::max(max_ordinal, ordinal);
      }
    }
    if (all_equal) {
      accumulator.Add(current[0].id, NaiveScore(current, scoring_));
      for (size_t k = 0; k < n; ++k) {
        XRANK_ASSIGN_OR_RETURN(bool has, cursors[k].Next(&current[k]));
        live[k] = has;
        if (has) {
          ++response.stats.postings_scanned;
          if (trace != nullptr) ++term_stats[k].postings_read;
        }
      }
      continue;
    }
    for (size_t k = 0; k < n; ++k) {
      while (live[k] && current[k].id.component(0) < max_ordinal) {
        XRANK_ASSIGN_OR_RETURN(bool has, cursors[k].Next(&current[k]));
        live[k] = has;
        if (has) {
          ++response.stats.postings_scanned;
          if (trace != nullptr) ++term_stats[k].postings_read;
        }
      }
    }
  }

  merge_span.End();
  {
    ScopedSpan span(trace, "rank");
    response.results = accumulator.TakeTop();
  }
  if (trace != nullptr) {
    for (size_t k = 0; k < n; ++k) {
      term_stats[k].term = keywords[k];
      term_stats[k].codec = std::string(lexicon_->codec_name());
      trace->AddTermStats(std::move(term_stats[k]));
    }
  }
  response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
  FillIoStats(pool_->cost_model(), before, &response.stats);
  return response;
}

NaiveRankQueryProcessor::NaiveRankQueryProcessor(
    storage::BufferPool* pool, const index::Lexicon* lexicon,
    const ScoringOptions& scoring)
    : pool_(pool), lexicon_(lexicon), scoring_(scoring) {}

Result<QueryResponse> NaiveRankQueryProcessor::Execute(
    const std::vector<std::string>& keywords, size_t m,
    const QueryOptions& options) {
  if (keywords.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (scoring_.semantics == QuerySemantics::kDisjunctive) {
    return Status::Unimplemented(
        "disjunctive queries are evaluated via DIL (the threshold algorithm "
        "here assumes conjunctive semantics, paper Section 4.3)");
  }
  WallTimer timer;
  CostSnapshot before = TakeSnapshot(pool_->cost_model());
  QueryResponse response;
  QueryTrace* trace = options.trace;
  size_t n = keywords.size();

  std::vector<const index::TermInfo*> infos(n);
  {
    ScopedSpan span(trace, "lexicon");
    for (size_t k = 0; k < n; ++k) {
      infos[k] = lexicon_->Find(keywords[k]);
      if (infos[k] == nullptr) {
        response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
        return response;
      }
    }
  }
  std::vector<index::PostingListCursor> cursors;
  cursors.reserve(n);
  {
    ScopedSpan span(trace, "cursor_open");
    for (size_t k = 0; k < n; ++k) {
      cursors.emplace_back(
          pool_, infos[k]->list,
          lexicon_->ListFormat(*infos[k], /*delta_encode_ids=*/false));
    }
  }
  std::vector<QueryTrace::TermStats> term_stats(trace != nullptr ? n : 0);

  TopKAccumulator accumulator(m);
  if (options.shared_threshold != nullptr) {
    accumulator.AttachShared(options.shared_threshold);
  }
  ScopedSpan merge_span(trace, "merge");
  QueryDeadline deadline(options);
  std::vector<double> last_rank(n, std::numeric_limits<double>::infinity());
  std::vector<bool> exhausted(n, false);
  size_t next_list = 0;
  bool done = false;

  while (!done) {
    Status tick = deadline.Check();
    if (!tick.ok()) {
      if (!options.allow_partial_results) return tick;
      response.stats.partial = true;
      break;
    }
    size_t k = n;
    for (size_t step = 0; step < n; ++step) {
      size_t candidate = (next_list + step) % n;
      if (!exhausted[candidate]) {
        k = candidate;
        break;
      }
    }
    if (k == n) break;
    next_list = (k + 1) % n;

    index::Posting entry;
    XRANK_ASSIGN_OR_RETURN(bool has, cursors[k].Next(&entry));
    if (!has) {
      exhausted[k] = true;
      continue;
    }
    ++response.stats.postings_scanned;
    ++response.stats.rounds;
    if (trace != nullptr) ++term_stats[k].postings_read;
    last_rank[k] = entry.elem_rank;

    if (!accumulator.Contains(entry.id)) {
      // Probe the other keywords' hash indexes for the same element ID —
      // no common-ancestor inference is needed because ancestors are
      // explicitly replicated (Section 5.1).
      uint32_t ordinal = entry.id.component(0);
      std::vector<index::Posting> postings(n);
      postings[k] = entry;
      bool in_all = true;
      for (size_t j = 0; j < n && in_all; ++j) {
        if (j == k) continue;
        ++response.stats.hash_probes;
        if (trace != nullptr) ++term_stats[j].hash_probes;
        XRANK_ASSIGN_OR_RETURN(
            std::optional<index::PostingLocation> loc,
            index::HashIndexLookup(pool_, *infos[j], ordinal));
        if (!loc.has_value()) {
          in_all = false;
          break;
        }
        XRANK_ASSIGN_OR_RETURN(
            postings[j],
            index::ReadPostingAt(
                pool_, infos[j]->list, *loc,
                lexicon_->ListFormat(*infos[j], /*delta_encode_ids=*/false)));
        ++response.stats.postings_scanned;
        if (trace != nullptr) ++term_stats[j].postings_read;
      }
      if (in_all) {
        accumulator.Add(entry.id, NaiveScore(postings, scoring_));
      } else {
        accumulator.MarkSeen(entry.id);
      }
    }

    double threshold = 0.0;
    bool bounded = true;
    for (size_t j = 0; j < n; ++j) {
      if (std::isinf(last_rank[j])) {
        bounded = false;
        break;
      }
      threshold += last_rank[j];
    }
    if (bounded && accumulator.CountAtLeast(threshold) >= m) {
      done = true;
      response.stats.threshold_terminated = true;
    }
  }

  merge_span.End();
  {
    ScopedSpan span(trace, "rank");
    response.results = accumulator.TakeTop();
  }
  if (trace != nullptr) {
    for (size_t k = 0; k < n; ++k) {
      term_stats[k].term = keywords[k];
      term_stats[k].codec = std::string(lexicon_->codec_name());
      trace->AddTermStats(std::move(term_stats[k]));
    }
  }
  response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
  FillIoStats(pool_->cost_model(), before, &response.stats);
  return response;
}

}  // namespace xrank::query
