#include "query/disjunctive_merge.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace xrank::query {

namespace {

constexpr uint32_t kNoDoc = ScoredCursor::kNoDocument;

// Upper bounds are sums of per-term bounds that each dominate the true
// keyword rank, but the merger sums the true ranks in a different order —
// floating-point addition is not monotone across orders, so a raw
// comparison could under-estimate by an ulp and prune a qualifying
// element. Inflating the bound by this slack (and pruning only on
// strictly-below) makes the comparison safe and keeps ties alive, which is
// what makes pruned results bitwise equal to the exhaustive oracle.
constexpr double kBoundSlack = 1.0 + 1e-9;

// True when `bound` provably cannot reach the threshold.
bool BelowThreshold(double bound, double theta) {
  return bound * kBoundSlack < theta;
}

uint64_t TotalPagesSkipped(const std::vector<ScoredCursor>& cursors) {
  uint64_t total = 0;
  for (const ScoredCursor& sc : cursors) total += sc.cursor()->pages_skipped();
  return total;
}

// One cursor's block-refined share of a candidate bound: the page-run bound
// `rb` and the contribution min(list bound, rb.bound) currently summed into
// the total.
struct RefinedBound {
  ScoredCursor* sc;
  PostingCursor::RankBound rb;
  double contribution;
};

// Greedy run widening, the same scheme as the conjunctive pruning path:
// while the total stays provably below theta, extend the page run of
// whichever bounded cursor ends first, so the eventual skip jumps as many
// whole pages as the threshold allows instead of one run at a time.
Status WidenRuns(std::vector<RefinedBound>* refined, double* total,
                 double theta, QueryDeadline* deadline) {
  for (;;) {
    XRANK_RETURN_NOT_OK(deadline->Check());
    RefinedBound* binding = nullptr;
    for (RefinedBound& r : *refined) {
      if (r.rb.next_doc == kNoDoc) continue;  // already at end of list
      if (binding == nullptr || r.rb.next_doc < binding->rb.next_doc) {
        binding = &r;
      }
    }
    if (binding == nullptr) return Status::OK();
    double widened = std::max(
        binding->rb.bound, binding->sc->cursor()->NextPageRank(binding->rb));
    double contribution = std::min(binding->sc->score_bound(), widened);
    double candidate = *total - binding->contribution + contribution;
    if (!BelowThreshold(candidate, theta)) return Status::OK();
    *total = candidate;
    binding->contribution = contribution;
    binding->sc->cursor()->ExtendBound(&binding->rb);
  }
}

// The widened runs extend to the end of every list: nothing ahead can beat
// the top-k. Charge the never-read tails to the prune counter (matching
// the conjunctive path) before the caller stops the merge.
void ChargeUnreadTails(const std::vector<ScoredCursor>& cursors,
                       PruningCounters* counters) {
  for (const ScoredCursor& sc : cursors) {
    uint32_t last = sc.cursor()->extent().page_count;
    if (last > sc.cursor()->current_page_index() + 1) {
      counters->blocks_pruned += last - sc.cursor()->current_page_index() - 1;
    }
  }
}

// Feeds every posting of document `d` into the merger in global Dewey
// order: repeatedly the smallest current id among the cursors still inside
// the document. `on_doc` holds exactly the cursors standing on `d` (the
// caller collects them once, so each posting costs a min over that subset,
// not a rescan of every cursor); it is consumed. This is exactly the
// subsequence of the exhaustive merge for `d`, so scoring is identical.
Status FeedDocument(std::vector<ScoredCursor*>* on_doc, uint32_t d,
                    DeweyStackMerger* merger, QueryDeadline* deadline) {
  while (!on_doc->empty()) {
    XRANK_RETURN_NOT_OK(deadline->Check());
    size_t smallest = 0;
    for (size_t i = 1; i < on_doc->size(); ++i) {
      if ((*on_doc)[i]->current().id < (*on_doc)[smallest]->current().id) {
        smallest = i;
      }
    }
    ScoredCursor* sc = (*on_doc)[smallest];
    merger->Add(sc->term(), sc->current());
    XRANK_RETURN_NOT_OK(sc->Next().status());
    if (!sc->live() || sc->doc() != d) {
      (*on_doc)[smallest] = on_doc->back();
      on_doc->pop_back();
    }
  }
  return Status::OK();
}

// Document-order comparison for WandMerge's cursor ordering (exhausted
// cursors hold kNoDocument and sink to the back); ties break by term slot
// for determinism.
bool DocOrderLess(const std::vector<ScoredCursor>& cursors, size_t a,
                  size_t b) {
  const ScoredCursor& ca = cursors[a];
  const ScoredCursor& cb = cursors[b];
  if (ca.doc() != cb.doc()) return ca.doc() < cb.doc();
  return ca.term() < cb.term();
}

// Restores sortedness after the first `moved` entries of `order` advanced:
// each is re-inserted into the tail it now belongs in (the tail is sorted —
// those cursors did not move, and entries are processed back to front).
// O(moved × n) per decision instead of a full re-sort, the classic WAND
// bookkeeping.
void Reposition(std::vector<size_t>* order,
                const std::vector<ScoredCursor>& cursors, size_t moved) {
  for (size_t i = moved; i-- > 0;) {
    const size_t value = (*order)[i];
    size_t j = i;
    while (j + 1 < order->size() &&
           DocOrderLess(cursors, (*order)[j + 1], value)) {
      (*order)[j] = (*order)[j + 1];
      ++j;
    }
    (*order)[j] = value;
  }
}

}  // namespace

MergeAlgorithm ResolveMergeAlgorithm(MergeAlgorithm requested,
                                     const ScoringOptions& scoring,
                                     size_t num_terms) {
  if (requested == MergeAlgorithm::kExhaustive) {
    return MergeAlgorithm::kExhaustive;
  }
  if (!SupportsScorePruning(scoring)) return MergeAlgorithm::kExhaustive;
  MergeAlgorithm algorithm = requested;
  if (algorithm == MergeAlgorithm::kAuto) {
    // Few-term queries profit most from per-page refinement (the pivot
    // stays cheap); wide disjunctions favor MaxScore's partition, which
    // does no per-candidate sort.
    algorithm = (num_terms <= 4 && SupportsBlockMaxBounds(scoring))
                    ? MergeAlgorithm::kBlockMaxWand
                    : MergeAlgorithm::kMaxScore;
  }
  if (algorithm == MergeAlgorithm::kBlockMaxWand &&
      !SupportsBlockMaxBounds(scoring)) {
    algorithm = MergeAlgorithm::kWand;  // page bounds unsound under sum
  }
  return algorithm;
}

Status MaxScoreMerge(std::vector<ScoredCursor>* cursors,
                     const ScoringOptions& scoring, DeweyStackMerger* merger,
                     TopKAccumulator* accumulator, QueryDeadline* deadline,
                     PruningCounters* counters) {
  const size_t n = cursors->size();
  const bool block_refine = SupportsBlockMaxBounds(scoring);
  std::vector<RefinedBound> refined;   // reused across iterations
  refined.reserve(n);
  std::vector<ScoredCursor*> on_doc;  // reused across evaluated documents
  on_doc.reserve(n);

  // Fixed ascending order by list-level bound; prefix[i] bounds what the i
  // cheapest lists can jointly contribute to any one element.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*cursors)[a].score_bound() < (*cursors)[b].score_bound();
  });
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + (*cursors)[order[i]].score_bound();
  }

  for (;;) {
    XRANK_RETURN_NOT_OK(deadline->Check());
    const double theta = accumulator->KthRank();  // -inf until the heap fills

    // Non-essential prefix: the longest prefix whose joint bound stays
    // below theta. A document appearing only in those lists can never
    // reach the top-k, so the essential cursors alone drive candidates.
    size_t p = 0;
    while (p < n && BelowThreshold(prefix[p + 1], theta)) ++p;

    uint32_t d = kNoDoc;
    for (size_t i = p; i < n; ++i) {
      d = std::min(d, (*cursors)[order[i]].doc());
    }
    if (d == kNoDoc) {
      // Either the essential lists are exhausted, or (p == n) theta already
      // dominates every list jointly — e.g. a shard-router θ floor raised
      // by an earlier shard before this one scanned anything. Any pages the
      // live cursors never read were avoided by pruning; charge them so the
      // fleet-wide stats reflect the saved work.
      ChargeUnreadTails(*cursors, counters);
      break;
    }

    if (std::isfinite(theta)) {
      // Bound the candidate: the full non-essential prefix plus each
      // essential list standing on `d` (essential cursors past `d` cannot
      // contain it). Under max aggregation the per-page block maximum
      // tightens the list bound and widens the skip across whole page runs.
      double bound = prefix[p];
      uint32_t next_essential = kNoDoc;  // first essential doc past d
      refined.clear();
      for (size_t i = p; i < n; ++i) {
        ScoredCursor& sc = (*cursors)[order[i]];
        if (!sc.live()) continue;
        if (sc.doc() > d) {
          next_essential = std::min(next_essential, sc.doc());
          continue;
        }
        double u = sc.score_bound();
        if (block_refine) {
          PostingCursor::RankBound rb = sc.cursor()->DocumentRankBound(d);
          if (rb.valid) {
            u = std::min(u, rb.bound);
            refined.push_back(RefinedBound{&sc, rb, u});
          }
        }
        bound += u;
      }
      if (BelowThreshold(bound, theta)) {
        ++counters->docs_skipped;
        XRANK_RETURN_NOT_OK(WidenRuns(&refined, &bound, theta, deadline));
        uint32_t run_end = kNoDoc;  // where the widened block bounds expire
        for (const RefinedBound& r : refined) {
          run_end = std::min(run_end, r.rb.next_doc);
        }
        // Every document in [d, target) is covered by the same bound: it
        // can only appear in the non-essential lists or in the essential
        // cursors currently at `d` (within their widened page runs).
        const uint32_t target = std::min(run_end, next_essential);
        if (target == kNoDoc) {
          ChargeUnreadTails(*cursors, counters);
          break;  // bound holds to the end of all lists
        }
        const uint64_t skipped_before = TotalPagesSkipped(*cursors);
        for (size_t i = p; i < n; ++i) {
          ScoredCursor& sc = (*cursors)[order[i]];
          if (sc.live() && sc.doc() == d) {
            XRANK_RETURN_NOT_OK(sc.SkipTo(target).status());
            ++counters->pivot_advances;
          }
        }
        counters->blocks_pruned += TotalPagesSkipped(*cursors) - skipped_before;
        continue;
      }
    }

    // Evaluate `d`: bring the lagging non-essential cursors up to it, then
    // feed the whole document. Postings they discard on the way belong to
    // documents already merged or provably below threshold.
    for (size_t i = 0; i < p; ++i) {
      ScoredCursor& sc = (*cursors)[order[i]];
      if (sc.live() && sc.doc() < d) {
        XRANK_RETURN_NOT_OK(sc.SkipTo(d).status());
        ++counters->pivot_advances;
      }
    }
    on_doc.clear();
    for (ScoredCursor& sc : *cursors) {
      if (sc.live() && sc.doc() == d) on_doc.push_back(&sc);
    }
    XRANK_RETURN_NOT_OK(FeedDocument(&on_doc, d, merger, deadline));
  }
  return Status::OK();
}

Status WandMerge(std::vector<ScoredCursor>* cursors,
                 const ScoringOptions& scoring, bool block_max,
                 DeweyStackMerger* merger, TopKAccumulator* accumulator,
                 QueryDeadline* deadline, PruningCounters* counters) {
  const size_t n = cursors->size();
  const bool refine = block_max && SupportsBlockMaxBounds(scoring);
  std::vector<RefinedBound> refined;   // reused across iterations
  refined.reserve(n);
  std::vector<ScoredCursor*> on_doc;  // reused across evaluated documents
  on_doc.reserve(n);

  // Sorted by current document once; every later advance only moves a
  // prefix of the order forward, which Reposition re-inserts into the
  // still-sorted tail instead of re-sorting all n cursors per iteration.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return DocOrderLess(*cursors, a, b); });

  for (;;) {
    XRANK_RETURN_NOT_OK(deadline->Check());
    if ((*cursors)[order[0]].doc() == kNoDoc) break;  // all exhausted

    const double theta = accumulator->KthRank();
    // Pivot: the first prefix of the sorted cursors whose joint bound can
    // reach theta. Documents before the pivot document live only in the
    // sub-threshold prefix — unreachable, skipped without cursor work.
    size_t pivot = 0;
    if (std::isfinite(theta)) {
      double acc = 0.0;
      pivot = n;
      for (size_t i = 0; i < n; ++i) {
        if ((*cursors)[order[i]].doc() == kNoDoc) break;
        acc += (*cursors)[order[i]].score_bound();
        if (!BelowThreshold(acc, theta)) {
          pivot = i;
          break;
        }
      }
      if (pivot == n) {
        // Even all lists jointly stay below theta (with a shared θ floor
        // this can hold before anything was scanned). The unread pages
        // were pruned, not merely unvisited — account for them.
        ChargeUnreadTails(*cursors, counters);
        break;
      }
    }
    const uint32_t pivot_doc = (*cursors)[order[pivot]].doc();
    if (pivot_doc == kNoDoc) break;

    if ((*cursors)[order[0]].doc() != pivot_doc) {
      // Lagging cursors leap to the pivot document; everything they hop
      // over is covered by the sub-threshold prefix bound.
      ++counters->docs_skipped;
      const uint64_t skipped_before = TotalPagesSkipped(*cursors);
      for (size_t i = 0; i < pivot; ++i) {
        ScoredCursor& sc = (*cursors)[order[i]];
        if (sc.live() && sc.doc() < pivot_doc) {
          XRANK_RETURN_NOT_OK(sc.SkipTo(pivot_doc).status());
          ++counters->pivot_advances;
        }
      }
      counters->blocks_pruned += TotalPagesSkipped(*cursors) - skipped_before;
      Reposition(&order, *cursors, pivot);
      continue;
    }

    // Aligned: every cursor on pivot_doc (there may be more beyond the
    // pivot index) participates in its score; find where they end.
    size_t last_eq = pivot;
    while (last_eq + 1 < n && (*cursors)[order[last_eq + 1]].doc() == pivot_doc) {
      ++last_eq;
    }

    if (refine && std::isfinite(theta)) {
      // Block-max check: replace list-level bounds with the page-run
      // maxima of the aligned cursors. When even those cannot reach
      // theta, no document until the first (widened) run boundary — or the
      // next cursor's document — can, and the aligned pack leaps there.
      double block_bound = 0.0;
      bool valid = true;
      refined.clear();
      for (size_t i = 0; i <= last_eq; ++i) {
        ScoredCursor& sc = (*cursors)[order[i]];
        PostingCursor::RankBound rb = sc.cursor()->DocumentRankBound(pivot_doc);
        if (!rb.valid) {
          valid = false;
          break;
        }
        double u = std::min(sc.score_bound(), rb.bound);
        refined.push_back(RefinedBound{&sc, rb, u});
        block_bound += u;
      }
      if (valid && BelowThreshold(block_bound, theta)) {
        ++counters->docs_skipped;
        XRANK_RETURN_NOT_OK(
            WidenRuns(&refined, &block_bound, theta, deadline));
        uint32_t run_end = kNoDoc;
        for (const RefinedBound& r : refined) {
          run_end = std::min(run_end, r.rb.next_doc);
        }
        const uint32_t next_doc = last_eq + 1 < n
                                      ? (*cursors)[order[last_eq + 1]].doc()
                                      : kNoDoc;
        const uint32_t target = std::min(run_end, next_doc);
        if (target == kNoDoc) {
          ChargeUnreadTails(*cursors, counters);
          break;  // bound holds to the end of all lists
        }
        const uint64_t skipped_before = TotalPagesSkipped(*cursors);
        for (size_t i = 0; i <= last_eq; ++i) {
          ScoredCursor& sc = (*cursors)[order[i]];
          if (sc.live()) {
            XRANK_RETURN_NOT_OK(sc.SkipTo(target).status());
            ++counters->pivot_advances;
          }
        }
        counters->blocks_pruned += TotalPagesSkipped(*cursors) - skipped_before;
        Reposition(&order, *cursors, last_eq + 1);
        continue;
      }
    }

    // The cursors standing on pivot_doc are exactly the aligned prefix.
    on_doc.clear();
    for (size_t i = 0; i <= last_eq; ++i) {
      on_doc.push_back(&(*cursors)[order[i]]);
    }
    XRANK_RETURN_NOT_OK(FeedDocument(&on_doc, pivot_doc, merger, deadline));
    Reposition(&order, *cursors, last_eq + 1);
  }
  return Status::OK();
}

}  // namespace xrank::query
