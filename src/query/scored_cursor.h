#ifndef XRANK_QUERY_SCORED_CURSOR_H_
#define XRANK_QUERY_SCORED_CURSOR_H_

#include <cstdint>
#include <limits>

#include "common/result.h"
#include "index/lexicon.h"
#include "query/posting_cursor.h"
#include "query/scoring.h"

namespace xrank::query {

// List-level upper bound on the term's contribution to any one element's
// overall rank (its keyword rank r̂, before the cross-term sum): under max
// aggregation the max over the per-page block maxima; under sum aggregation
// the serialized TermInfo::max_doc_rank (largest per-document decoded-rank
// sum — subtree occurrences are a subset of the document's and every decay
// power is <= 1). Returns +infinity when no sound bound is available —
// missing descriptors, a pre-field index, or corrupted (non-finite) values
// — so pruning simply never fires instead of dropping results.
double TermScoreBound(const index::TermInfo& info,
                      const ScoringOptions& scoring);

// A PostingCursor plus the merge-facing state the disjunctive pruning
// algorithms (query/disjunctive_merge.h) iterate on: the current posting,
// liveness, the term's slot in the query, and its list-level score bound.
// The wrapped cursor is borrowed and must outlive this object.
class ScoredCursor {
 public:
  static constexpr uint32_t kNoDocument =
      std::numeric_limits<uint32_t>::max();

  ScoredCursor(PostingCursor* cursor, size_t term, double score_bound)
      : cursor_(cursor), term_(term), score_bound_(score_bound) {}

  // Primes `current` with the list's first posting.
  Status Init() {
    XRANK_ASSIGN_OR_RETURN(live_, cursor_->Next(&current_));
    return Status::OK();
  }

  Result<bool> Next() {
    XRANK_ASSIGN_OR_RETURN(live_, cursor_->Next(&current_));
    return live_;
  }

  // Advances to the first posting with document id >= `doc` through the
  // skip descriptors (forward-only, like PostingCursor::SkipToDocument).
  Result<bool> SkipTo(uint32_t doc) {
    XRANK_ASSIGN_OR_RETURN(live_, cursor_->SkipToDocument(doc, &current_));
    return live_;
  }

  bool live() const { return live_; }
  // Document id of the current posting; kNoDocument once exhausted, so
  // cursors sort to the back naturally.
  uint32_t doc() const {
    return live_ ? current_.id.document_id() : kNoDocument;
  }
  const index::Posting& current() const { return current_; }
  size_t term() const { return term_; }
  double score_bound() const { return score_bound_; }
  PostingCursor* cursor() { return cursor_; }
  const PostingCursor* cursor() const { return cursor_; }

 private:
  PostingCursor* cursor_;
  size_t term_;
  double score_bound_;
  index::Posting current_;
  bool live_ = false;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_SCORED_CURSOR_H_
