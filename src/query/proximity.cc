#include "query/proximity.h"

#include <algorithm>

namespace xrank::query {

uint32_t MinimalWindowSize(
    const std::vector<std::vector<uint32_t>>& position_lists) {
  if (position_lists.empty()) return 0;
  for (const auto& list : position_lists) {
    if (list.empty()) return 0;
  }
  // Merge all positions into (position, list) events and slide a window
  // that keeps at least one event per list.
  std::vector<std::pair<uint32_t, uint32_t>> events;
  size_t total = 0;
  for (const auto& list : position_lists) total += list.size();
  events.reserve(total);
  for (uint32_t k = 0; k < position_lists.size(); ++k) {
    for (uint32_t pos : position_lists[k]) events.emplace_back(pos, k);
  }
  std::sort(events.begin(), events.end());

  std::vector<uint32_t> counts(position_lists.size(), 0);
  size_t covered = 0;
  size_t left = 0;
  uint32_t best = UINT32_MAX;
  for (size_t right = 0; right < events.size(); ++right) {
    if (counts[events[right].second]++ == 0) ++covered;
    while (covered == position_lists.size()) {
      best = std::min(best, events[right].first - events[left].first + 1);
      if (--counts[events[left].second] == 0) --covered;
      ++left;
    }
  }
  return best == UINT32_MAX ? 0 : best;
}

double ProximityFromWindow(ProximityMode mode, uint32_t window,
                           size_t num_keywords) {
  if (mode == ProximityMode::kAlwaysOne) return 1.0;
  if (window == 0) return 0.0;
  // n adjacent keywords occupy a window of exactly n words; normalize so
  // that the tightest possible packing scores 1.
  double tightest = static_cast<double>(std::max<size_t>(num_keywords, 1));
  return std::min(1.0, tightest / static_cast<double>(window));
}

}  // namespace xrank::query
