#ifndef XRANK_QUERY_RDIL_QUERY_H_
#define XRANK_QUERY_RDIL_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "index/lexicon.h"
#include "query/deadline.h"
#include "query/query.h"
#include "storage/buffer_pool.h"

namespace xrank::query {

// RDIL evaluation (paper Figure 7): consumes the rank-ordered inverted
// lists round-robin; for each entry, B+-tree probes on the other keywords
// compute the deepest common ancestor containing all keywords, which is
// verified by a range scan and scored; the Threshold Algorithm condition
// (sum of the last ElemRanks seen per list, an overestimate because decay
// and proximity are at most 1) stops the scan once the top m are certain.
class RdilQueryProcessor {
 public:
  RdilQueryProcessor(storage::BufferPool* pool,
                     const index::Lexicon* lexicon,
                     const ScoringOptions& scoring);

  // `options` bounds the scan (deadline / cancellation / partial results).
  Result<QueryResponse> Execute(const std::vector<std::string>& keywords,
                                size_t m, const QueryOptions& options = {});

 private:
  storage::BufferPool* pool_;
  const index::Lexicon* lexicon_;
  ScoringOptions scoring_;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_RDIL_QUERY_H_
