#include "query/dil_query.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/timer.h"
#include "index/block_cache.h"
#include "query/dewey_stack.h"
#include "query/disjunctive_merge.h"
#include "query/posting_cursor.h"
#include "query/result_heap.h"
#include "query/scored_cursor.h"
#include "query/trace.h"

namespace xrank::query {

namespace {

// Snapshot/diff helper shared by all processors.
struct CostSnapshot {
  uint64_t sequential = 0;
  uint64_t random = 0;
  double cost = 0.0;
};

CostSnapshot TakeSnapshot(const storage::CostModel* model) {
  CostSnapshot snap;
  if (model != nullptr) {
    snap.sequential = model->sequential_reads();
    snap.random = model->random_reads();
    snap.cost = model->TotalCost();
  }
  return snap;
}

void FillIoStats(const storage::CostModel* model, const CostSnapshot& before,
                 QueryStats* stats) {
  if (model == nullptr) return;
  stats->sequential_reads = model->sequential_reads() - before.sequential;
  stats->random_reads = model->random_reads() - before.random;
  stats->io_cost = model->TotalCost() - before.cost;
}

}  // namespace

DilQueryProcessor::DilQueryProcessor(storage::BufferPool* pool,
                                     const index::Lexicon* lexicon,
                                     const ScoringOptions& scoring,
                                     bool use_skip_blocks,
                                     index::BlockCache* block_cache,
                                     bool use_block_max_pruning)
    : pool_(pool),
      lexicon_(lexicon),
      scoring_(scoring),
      use_skip_blocks_(use_skip_blocks),
      block_cache_(block_cache),
      use_block_max_pruning_(use_block_max_pruning) {}

Result<QueryResponse> DilQueryProcessor::Execute(
    const std::vector<std::string>& keywords, size_t m,
    const QueryOptions& options) {
  QueryDeadline deadline(options);
  return Execute(keywords, m, options, &deadline);
}

Result<QueryResponse> DilQueryProcessor::Execute(
    const std::vector<std::string>& keywords, size_t m,
    const QueryOptions& options, QueryDeadline* deadline) {
  if (keywords.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  WallTimer timer;
  CostSnapshot before = TakeSnapshot(pool_->cost_model());
  QueryResponse response;
  QueryTrace* trace = options.trace;

  const bool conjunctive = scoring_.semantics == QuerySemantics::kConjunctive;
  // Disjunctive / mixed merge strategy. Pruned algorithms need the skip
  // descriptors (targeted SkipToDocument advances and page-level bounds);
  // a processor built without them — the oracle configuration — always
  // merges exhaustively. Conjunctive queries default (kAuto) to the PR-5
  // DAAT path below; an explicit pruned-algorithm request routes them
  // through the disjunctive machinery instead (its per-document bounds are
  // sound for both semantics — "mixed mode").
  MergeAlgorithm algorithm = MergeAlgorithm::kExhaustive;
  if (use_skip_blocks_ && use_block_max_pruning_ &&
      !(conjunctive && options.algorithm == MergeAlgorithm::kAuto)) {
    algorithm =
        ResolveMergeAlgorithm(options.algorithm, scoring_, keywords.size());
  }
  const bool pruned_disjunctive = algorithm != MergeAlgorithm::kExhaustive;
  // The PR-5 conjunctive DAAT path (frontier alignment + run-widening
  // block-max pruning): the kAuto default for conjunctive queries, and the
  // fallback when a pruned algorithm was requested but cannot run (this
  // processor lacks pruning, or the scoring function has no sound bound) —
  // the request degrades to the next-fastest exact path, never silently to
  // the exhaustive merge. Only an explicit kExhaustive forces the oracle.
  const bool skipping = use_skip_blocks_ && conjunctive &&
                        !pruned_disjunctive &&
                        options.algorithm != MergeAlgorithm::kExhaustive;
  // Block-max pruning additionally needs the scoring function to be
  // dominated by the per-page rank maxima (max aggregation, decay <= 1).
  const bool pruning =
      skipping && use_block_max_pruning_ && SupportsBlockMaxPruning(scoring_);

  // A keyword absent from the collection empties the conjunction; under
  // disjunctive semantics it contributes an empty list and the union runs
  // over the terms this index has seen. The keyword keeps its scoring slot
  // either way, so an element's keyword-rank vector — and its aggregated
  // score — is bitwise what an index holding every term would compute (the
  // shard router's parity contract relies on this: a term missing from one
  // shard's lexicon is usually present in another's).
  std::vector<const index::TermInfo*> infos;  // present terms only
  std::vector<size_t> slots;                  // their original keyword slots
  infos.reserve(keywords.size());
  slots.reserve(keywords.size());
  {
    ScopedSpan span(trace, "lexicon");
    for (size_t k = 0; k < keywords.size(); ++k) {
      const index::TermInfo* info = lexicon_->Find(keywords[k]);
      if (info == nullptr) {
        if (conjunctive) {
          response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
          return response;
        }
        continue;
      }
      infos.push_back(info);
      slots.push_back(k);
    }
  }
  if (infos.empty()) {
    response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
    return response;
  }
  std::vector<PostingCursor> cursors;
  cursors.reserve(infos.size());
  {
    ScopedSpan span(trace, "cursor_open");
    for (const index::TermInfo* info : infos) {
      cursors.emplace_back(pool_, lexicon_, info, skipping || pruned_disjunctive,
                           block_cache_);
      cursors.back().set_deadline(deadline);
    }
  }

  TopKAccumulator accumulator(m);
  if (options.shared_threshold != nullptr) {
    accumulator.AttachShared(options.shared_threshold);
  }
  DeweyStackMerger merger(keywords.size(), scoring_, /*min_result_depth=*/1,
                          [&](const CandidateResult& candidate) {
                            accumulator.Add(candidate.id,
                                            candidate.overall_rank);
                          });

  std::vector<index::Posting> current(cursors.size());
  std::vector<bool> live(cursors.size(), false);
  std::vector<PostingCursor::RankBound> bounds(cursors.size());
  PruningCounters counters;
  uint64_t& blocks_pruned = counters.blocks_pruned;

  response.stats.algorithm =
      skipping ? "daat" : MergeAlgorithmName(algorithm);
  if (trace != nullptr) {
    trace->AddAnnotation("merge", response.stats.algorithm);
  }

  // The merge runs inside a lambda so a DeadlineExceeded from any depth —
  // the per-iteration checks here or the skip scan inside PostingCursor —
  // unwinds to one place where the partial-results decision is made.
  ScopedSpan merge_span(trace, "merge");
  Status merge_status = [&]() -> Status {
    if (pruned_disjunctive) {
      std::vector<ScoredCursor> scored;
      scored.reserve(cursors.size());
      for (size_t k = 0; k < cursors.size(); ++k) {
        scored.emplace_back(&cursors[k], slots[k],
                            TermScoreBound(*infos[k], scoring_));
        XRANK_RETURN_NOT_OK(scored.back().Init());
      }
      switch (algorithm) {
        case MergeAlgorithm::kMaxScore:
          return MaxScoreMerge(&scored, scoring_, &merger, &accumulator,
                               deadline, &counters);
        case MergeAlgorithm::kWand:
        case MergeAlgorithm::kBlockMaxWand:
          return WandMerge(&scored, scoring_,
                           algorithm == MergeAlgorithm::kBlockMaxWand, &merger,
                           &accumulator, deadline, &counters);
        default:
          return Status::Internal("unresolved merge algorithm");
      }
    }

    for (size_t k = 0; k < cursors.size(); ++k) {
      XRANK_ASSIGN_OR_RETURN(bool has, cursors[k].Next(&current[k]));
      live[k] = has;
    }

    if (skipping) {
      // Document-at-a-time merge. The frontier is the largest current
      // document id across the cursors: no earlier document can hold all
      // the keywords, so the lagging cursors leap to it through the skip
      // blocks. Once every cursor stands on the frontier document, its
      // postings are fed in global Dewey order — exactly the subsequence of
      // the exhaustive merge that can produce results — and one exhausted
      // cursor ends the query.
      for (;;) {
        XRANK_RETURN_NOT_OK(deadline->Check());
        bool any_dead = false;
        uint32_t target = 0;
        for (size_t k = 0; k < cursors.size(); ++k) {
          if (!live[k]) {
            any_dead = true;
            break;
          }
          target = std::max(target, current[k].id.document_id());
        }
        if (any_dead) break;

        bool aligned = true;
        for (size_t k = 0; k < cursors.size(); ++k) {
          if (current[k].id.document_id() >= target) continue;
          XRANK_ASSIGN_OR_RETURN(
              bool has, cursors[k].SkipToDocument(target, &current[k]));
          live[k] = has;
          ++counters.pivot_advances;
          if (!has || current[k].id.document_id() > target) aligned = false;
        }
        if (!aligned) continue;  // frontier moved — recompute it

        // Block-max pruning: every cursor stands on the frontier document.
        // Bound what any document in the runs ahead can score — Σ over
        // terms of the run's page maxima (keyword ranks are per-posting
        // maxima scaled by decay/proximity factors <= 1) — and when even
        // that cannot reach the current m-th result (strictly: ties are
        // never pruned, preserving tie-breaks by id), leap past the run
        // without decoding it. The runs are extended greedily, widest-
        // binding cursor first, while the bound stays under the threshold.
        if (pruning) {
          const double theta = accumulator.KthRank();
          if (std::isfinite(theta)) {
            bool bounded = true;
            double ub = 0.0;
            for (size_t k = 0; k < cursors.size(); ++k) {
              bounds[k] = cursors[k].DocumentRankBound(target);
              if (!bounds[k].valid) {
                bounded = false;  // a list without descriptors: no bound
                break;
              }
              ub += bounds[k].bound;
            }
            if (bounded && ub < theta) {
              ++counters.docs_skipped;
              constexpr uint32_t kNoDoc = std::numeric_limits<uint32_t>::max();
              for (;;) {
                XRANK_RETURN_NOT_OK(deadline->Check());
                // The cursor whose run ends first bounds how far everyone
                // can jump; try to widen exactly that run.
                size_t binding = 0;
                for (size_t k = 1; k < cursors.size(); ++k) {
                  if (bounds[k].next_doc < bounds[binding].next_doc) {
                    binding = k;
                  }
                }
                if (bounds[binding].next_doc == kNoDoc) break;
                double widened = std::max(
                    bounds[binding].bound,
                    cursors[binding].NextPageRank(bounds[binding]));
                if (ub - bounds[binding].bound + widened >= theta) break;
                ub += widened - bounds[binding].bound;
                cursors[binding].ExtendBound(&bounds[binding]);
              }
              uint32_t prune_to = kNoDoc;
              for (const PostingCursor::RankBound& bound : bounds) {
                prune_to = std::min(prune_to, bound.next_doc);
              }
              if (prune_to == kNoDoc) {
                // Every run extends to the end of its list: nothing left
                // can beat the top-m. Charge the never-read tails and stop.
                for (const PostingCursor& cursor : cursors) {
                  uint32_t last = cursor.extent().page_count;
                  if (last > cursor.current_page_index() + 1) {
                    blocks_pruned += last - cursor.current_page_index() - 1;
                  }
                }
                break;
              }
              uint64_t skipped_before = 0;
              for (const PostingCursor& cursor : cursors) {
                skipped_before += cursor.pages_skipped();
              }
              for (size_t k = 0; k < cursors.size(); ++k) {
                XRANK_ASSIGN_OR_RETURN(
                    bool has, cursors[k].SkipToDocument(prune_to, &current[k]));
                live[k] = has;
                ++counters.pivot_advances;
              }
              uint64_t skipped_after = 0;
              for (const PostingCursor& cursor : cursors) {
                skipped_after += cursor.pages_skipped();
              }
              blocks_pruned += skipped_after - skipped_before;
              continue;  // re-align on the new frontier
            }
          }
        }

        for (;;) {
          size_t smallest = cursors.size();
          for (size_t k = 0; k < cursors.size(); ++k) {
            if (!live[k] || current[k].id.document_id() != target) continue;
            if (smallest == cursors.size() ||
                current[k].id < current[smallest].id) {
              smallest = k;
            }
          }
          if (smallest == cursors.size()) break;  // document fully merged
          merger.Add(slots[smallest], current[smallest]);
          XRANK_ASSIGN_OR_RETURN(bool has,
                                 cursors[smallest].Next(&current[smallest]));
          live[smallest] = has;
        }
      }
    } else {
      // Exhaustive n-way merge by Dewey ID (Figure 5 lines 6-9): repeatedly
      // consume the cursor holding the smallest next ID.
      for (;;) {
        XRANK_RETURN_NOT_OK(deadline->Check());
        size_t smallest = cursors.size();
        for (size_t k = 0; k < cursors.size(); ++k) {
          if (!live[k]) continue;
          if (smallest == cursors.size() ||
              current[k].id < current[smallest].id) {
            smallest = k;
          }
        }
        if (smallest == cursors.size()) break;  // all lists exhausted
        merger.Add(slots[smallest], current[smallest]);
        XRANK_ASSIGN_OR_RETURN(bool has,
                               cursors[smallest].Next(&current[smallest]));
        live[smallest] = has;
      }
    }
    return Status::OK();
  }();
  merge_span.End();
  if (!merge_status.ok()) {
    if (merge_status.code() != StatusCode::kDeadlineExceeded ||
        !options.allow_partial_results) {
      return merge_status;
    }
    response.stats.partial = true;  // serve the top-k gathered so far
  }
  {
    ScopedSpan span(trace, "rank");
    merger.Flush();
    response.results = accumulator.TakeTop();
  }
  response.stats.postings_scanned = merger.postings_consumed();
  response.stats.blocks_pruned = blocks_pruned;
  response.stats.docs_skipped = counters.docs_skipped;
  response.stats.pivot_advances = counters.pivot_advances;
  for (size_t k = 0; k < cursors.size(); ++k) {
    response.stats.pages_skipped += cursors[k].pages_skipped();
    response.stats.block_cache_hits += cursors[k].block_cache_hits();
    if (trace != nullptr) {
      QueryTrace::TermStats term;
      term.term = keywords[slots[k]];
      term.codec = std::string(lexicon_->codec_name());
      term.postings_read = cursors[k].postings_read();
      term.pages_skipped = cursors[k].pages_skipped();
      term.block_cache_hits = cursors[k].block_cache_hits();
      trace->AddTermStats(std::move(term));
    }
  }
  response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
  FillIoStats(pool_->cost_model(), before, &response.stats);
  return response;
}

}  // namespace xrank::query
