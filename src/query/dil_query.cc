#include "query/dil_query.h"

#include <algorithm>

#include "common/timer.h"
#include "query/dewey_stack.h"
#include "query/result_heap.h"

namespace xrank::query {

namespace {

// Snapshot/diff helper shared by all processors.
struct CostSnapshot {
  uint64_t sequential = 0;
  uint64_t random = 0;
  double cost = 0.0;
};

CostSnapshot TakeSnapshot(const storage::CostModel* model) {
  CostSnapshot snap;
  if (model != nullptr) {
    snap.sequential = model->sequential_reads();
    snap.random = model->random_reads();
    snap.cost = model->TotalCost();
  }
  return snap;
}

void FillIoStats(const storage::CostModel* model, const CostSnapshot& before,
                 QueryStats* stats) {
  if (model == nullptr) return;
  stats->sequential_reads = model->sequential_reads() - before.sequential;
  stats->random_reads = model->random_reads() - before.random;
  stats->io_cost = model->TotalCost() - before.cost;
}

}  // namespace

DilQueryProcessor::DilQueryProcessor(storage::BufferPool* pool,
                                     const index::Lexicon* lexicon,
                                     const ScoringOptions& scoring)
    : pool_(pool), lexicon_(lexicon), scoring_(scoring) {}

Result<QueryResponse> DilQueryProcessor::Execute(
    const std::vector<std::string>& keywords, size_t m) {
  if (keywords.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  WallTimer timer;
  CostSnapshot before = TakeSnapshot(pool_->cost_model());
  QueryResponse response;

  // A keyword absent from the collection makes the conjunction empty.
  std::vector<index::PostingListCursor> cursors;
  cursors.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    const index::TermInfo* info = lexicon_->Find(keyword);
    if (info == nullptr) {
      response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
      return response;
    }
    cursors.emplace_back(pool_, info->list, /*delta_encode_ids=*/true);
  }

  TopKAccumulator accumulator(m);
  DeweyStackMerger merger(keywords.size(), scoring_, /*min_result_depth=*/1,
                          [&](const CandidateResult& candidate) {
                            accumulator.Add(candidate.id,
                                            candidate.overall_rank);
                          });

  // n-way merge by Dewey ID (Figure 5 lines 6-9): repeatedly consume the
  // cursor holding the smallest next ID.
  std::vector<index::Posting> current(cursors.size());
  std::vector<bool> live(cursors.size(), false);
  for (size_t k = 0; k < cursors.size(); ++k) {
    XRANK_ASSIGN_OR_RETURN(bool has, cursors[k].Next(&current[k]));
    live[k] = has;
  }
  for (;;) {
    size_t smallest = cursors.size();
    for (size_t k = 0; k < cursors.size(); ++k) {
      if (!live[k]) continue;
      if (smallest == cursors.size() ||
          current[k].id < current[smallest].id) {
        smallest = k;
      }
    }
    if (smallest == cursors.size()) break;  // all lists exhausted
    merger.Add(smallest, current[smallest]);
    XRANK_ASSIGN_OR_RETURN(bool has, cursors[smallest].Next(&current[smallest]));
    live[smallest] = has;
  }
  merger.Flush();

  response.results = accumulator.TakeTop();
  response.stats.postings_scanned = merger.postings_consumed();
  response.stats.wall_ms = timer.ElapsedSeconds() * 1e3;
  FillIoStats(pool_->cost_model(), before, &response.stats);
  return response;
}

}  // namespace xrank::query
