#ifndef XRANK_QUERY_HDIL_QUERY_H_
#define XRANK_QUERY_HDIL_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/lexicon.h"
#include "query/deadline.h"
#include "query/query.h"
#include "storage/buffer_pool.h"

namespace xrank::query {

// Controls the adaptive RDIL→DIL switch-over of paper Section 4.4.2.
struct HdilStrategyOptions {
  // Re-evaluate the switch decision every this many threshold rounds. The
  // first check must come late enough that one-off startup costs (first
  // B+-tree levels, first list pages) do not pollute the per-result
  // estimate; r = 0 at a check point means the keywords are uncorrelated
  // and triggers an immediate switch (the estimator diverges).
  uint64_t check_interval = 16;
  // Do not estimate before this many results are above the threshold
  // ((m-r)*t/r needs r > 0; the paper's estimator).
  uint64_t min_results_for_estimate = 1;
  // When true the decision uses the deterministic I/O cost model; when
  // false it uses wall-clock time like the paper's implementation.
  bool use_cost_model = true;
};

// HDIL evaluation (paper Section 4.4): starts in RDIL mode over the small
// rank-ordered prefix lists, probing the sparse B+-trees whose leaf level is
// the full Dewey-ordered list; monitors progress and switches to a full DIL
// scan when RDIL's estimated remaining time exceeds DIL's predicted cost, or
// when a rank prefix is exhausted (the prefix no longer bounds unseen
// ranks).
class HdilQueryProcessor {
 public:
  // `block_cache` (optional, borrowed) serves decoded posting pages to the
  // rank-prefix cursors and the DIL fallback; the fallback also inherits
  // block-max pruning against its top-k heap.
  HdilQueryProcessor(storage::BufferPool* pool,
                     const index::Lexicon* lexicon,
                     const ScoringOptions& scoring,
                     const HdilStrategyOptions& strategy = {},
                     index::BlockCache* block_cache = nullptr);

  // `options` bounds the whole evaluation: one deadline covers both the
  // RDIL phase and a potential DIL fallback rescan.
  Result<QueryResponse> Execute(const std::vector<std::string>& keywords,
                                size_t m, const QueryOptions& options = {});

 private:
  Result<QueryResponse> ExecuteDil(const std::vector<std::string>& keywords,
                                   size_t m, const QueryOptions& options,
                                   QueryDeadline* deadline);

  storage::BufferPool* pool_;
  const index::Lexicon* lexicon_;
  ScoringOptions scoring_;
  HdilStrategyOptions strategy_;
  index::BlockCache* block_cache_;
};

// --- HDIL probe primitives (exposed for testing) ---

// The deepest prefix of `key` shared with any posting ID in the term's full
// list, located through the sparse B+-tree and the list pages themselves
// (which act as the B+-tree leaf level). `lexicon` supplies the posting
// codec the list pages were written with.
Result<size_t> HdilLongestCommonPrefix(storage::BufferPool* pool,
                                       const index::Lexicon* lexicon,
                                       const index::TermInfo& info,
                                       const dewey::DeweyId& key);

// Scans all postings of the term whose ID has `prefix` as a Dewey prefix,
// in ID order. Returning false from fn stops the scan.
Status HdilScanPrefix(
    storage::BufferPool* pool, const index::Lexicon* lexicon,
    const index::TermInfo& info, const dewey::DeweyId& prefix,
    const std::function<bool(const index::Posting&)>& fn);

}  // namespace xrank::query

#endif  // XRANK_QUERY_HDIL_QUERY_H_
