#include "query/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace xrank::query {

namespace {

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<size_t>(n, sizeof(buffer) - 1));
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

size_t QueryTrace::BeginSpan(std::string_view name) {
  Span span;
  span.name = std::string(name);
  span.depth = static_cast<int>(open_stack_.size());
  span.start_us = ElapsedUs();
  span.open = true;
  size_t handle = spans_.size();
  spans_.push_back(std::move(span));
  open_stack_.push_back(handle);
  return handle;
}

void QueryTrace::AddAnnotation(std::string_view key, std::string_view value) {
  for (auto& entry : annotations_) {
    if (entry.first == key) {
      entry.second = std::string(value);
      return;
    }
  }
  annotations_.emplace_back(std::string(key), std::string(value));
}

void QueryTrace::MergeChild(std::string_view name, const QueryTrace& child) {
  // Both origins are steady-clock points, so the child's span offsets
  // re-anchor onto this trace's clock by the origin difference. A child
  // constructed before this trace clamps to 0.
  int64_t offset = std::chrono::duration_cast<std::chrono::microseconds>(
                       child.origin_ - origin_)
                       .count();
  if (offset < 0) offset = 0;
  const int base_depth = static_cast<int>(open_stack_.size());

  Span parent;
  parent.name = std::string(name);
  parent.depth = base_depth;
  parent.start_us = offset;
  int64_t end_us = offset;
  for (const Span& span : child.spans_) {
    int64_t span_end = offset + span.start_us + span.duration_us;
    if (span_end > end_us) end_us = span_end;
  }
  parent.duration_us = end_us - offset;
  spans_.push_back(std::move(parent));

  for (const Span& span : child.spans_) {
    Span copy = span;
    copy.depth += base_depth + 1;
    copy.start_us += offset;
    copy.open = false;
    spans_.push_back(std::move(copy));
  }
  for (const TermStats& term : child.terms_) {
    TermStats copy = term;
    copy.term = std::string(name) + ":" + term.term;
    terms_.push_back(std::move(copy));
  }
  for (const auto& [key, value] : child.annotations_) {
    AddAnnotation(std::string(name) + "." + key, value);
  }
}

void QueryTrace::EndSpan(size_t handle) {
  if (handle >= spans_.size() || !spans_[handle].open) return;
  Span& span = spans_[handle];
  span.duration_us = ElapsedUs() - span.start_us;
  span.open = false;
  // Normal case: the span being closed is the innermost open one. Tolerate
  // out-of-order closes by popping through it.
  auto it = std::find(open_stack_.begin(), open_stack_.end(), handle);
  if (it != open_stack_.end()) open_stack_.erase(it, open_stack_.end());
}

std::string QueryTrace::FormatTable() const {
  std::string out;
  if (!query_text_.empty()) {
    AppendF(&out, "trace for \"%s\"", query_text_.c_str());
    if (!index_kind_.empty()) AppendF(&out, " (%s)", index_kind_.c_str());
    out += ":\n";
  }
  for (const auto& [key, value] : annotations_) {
    AppendF(&out, "  %s: %s\n", key.c_str(), value.c_str());
  }
  AppendF(&out, "  %-32s %12s %12s\n", "span", "start (us)", "dur (us)");
  for (const Span& span : spans_) {
    std::string label(static_cast<size_t>(span.depth) * 2, ' ');
    label += span.name;
    if (span.open) label += " (open)";
    AppendF(&out, "  %-32s %12" PRId64 " %12" PRId64 "\n", label.c_str(),
            span.start_us, span.duration_us);
  }
  if (!terms_.empty()) {
    AppendF(&out, "  %-20s %8s %10s %10s %8s %8s %8s\n", "term", "codec",
            "postings", "pg-skip", "btree", "hash", "blk-hit");
    for (const TermStats& term : terms_) {
      AppendF(&out,
              "  %-20s %8s %10" PRIu64 " %10" PRIu64 " %8" PRIu64 " %8" PRIu64
              " %8" PRIu64 "\n",
              term.term.c_str(), term.codec.c_str(), term.postings_read,
              term.pages_skipped, term.btree_probes, term.hash_probes,
              term.block_cache_hits);
    }
  }
  return out;
}

std::string QueryTrace::FormatJson() const {
  std::string out = "{\"query\": ";
  AppendJsonString(&out, query_text_);
  out += ", \"kind\": ";
  AppendJsonString(&out, index_kind_);
  out += ", \"annotations\": {";
  for (size_t i = 0; i < annotations_.size(); ++i) {
    if (i > 0) out += ", ";
    AppendJsonString(&out, annotations_[i].first);
    out += ": ";
    AppendJsonString(&out, annotations_[i].second);
  }
  out += "}, \"spans\": [";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    if (i > 0) out += ", ";
    out += "{\"name\": ";
    AppendJsonString(&out, span.name);
    AppendF(&out,
            ", \"depth\": %d, \"start_us\": %" PRId64
            ", \"duration_us\": %" PRId64 "}",
            span.depth, span.start_us, span.duration_us);
  }
  out += "], \"terms\": [";
  for (size_t i = 0; i < terms_.size(); ++i) {
    const TermStats& term = terms_[i];
    if (i > 0) out += ", ";
    out += "{\"term\": ";
    AppendJsonString(&out, term.term);
    out += ", \"codec\": ";
    AppendJsonString(&out, term.codec);
    AppendF(&out,
            ", \"postings_read\": %" PRIu64 ", \"pages_skipped\": %" PRIu64
            ", \"btree_probes\": %" PRIu64 ", \"hash_probes\": %" PRIu64
            ", \"block_cache_hits\": %" PRIu64 "}",
            term.postings_read, term.pages_skipped, term.btree_probes,
            term.hash_probes, term.block_cache_hits);
  }
  out += "]}";
  return out;
}

}  // namespace xrank::query
