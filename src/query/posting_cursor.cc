#include "query/posting_cursor.h"

#include <algorithm>

namespace xrank::query {

PostingCursor::PostingCursor(storage::BufferPool* pool,
                             const index::TermInfo* info, bool use_skip_blocks)
    : cursor_(pool, info->list, /*delta_encode_ids=*/true),
      skips_(use_skip_blocks ? &info->skips : nullptr) {}

Result<bool> PostingCursor::Next(index::Posting* out) {
  XRANK_ASSIGN_OR_RETURN(bool has, cursor_.Next(out));
  if (has) ++postings_read_;
  return has;
}

Result<bool> PostingCursor::SkipToDocument(uint32_t doc, index::Posting* out) {
  if (skips_ != nullptr && !skips_->empty()) {
    // Last page whose first ID precedes document `doc`. Every earlier page
    // holds only postings < that page's first ID <= all ids with document
    // component < doc, so the target posting — if it exists — is on this
    // page or later.
    auto it = std::partition_point(
        skips_->begin(), skips_->end(), [doc](const index::SkipEntry& skip) {
          return skip.first_id.document_id() < doc;
        });
    if (it != skips_->begin()) {
      uint32_t target_page = std::prev(it)->page_index;
      uint32_t current_page = cursor_.current_page_index();
      if (target_page > current_page) {
        // Pages (current, target) are never decoded; the seek itself reads
        // the target page through the pool like any other page.
        pages_skipped_ += target_page - current_page - 1;
        XRANK_RETURN_NOT_OK(cursor_.SeekToPage(target_page));
      }
    }
  }
  // Linear tail: within the landing page (and, when descriptors are absent
  // or stale, across pages) until the document frontier is reached.
  for (;;) {
    if (deadline_ != nullptr) XRANK_RETURN_NOT_OK(deadline_->Check());
    XRANK_ASSIGN_OR_RETURN(bool has, cursor_.Next(out));
    if (!has) return false;
    ++postings_read_;
    if (out->id.document_id() >= doc) return true;
  }
}

}  // namespace xrank::query
