#include "query/posting_cursor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "index/block_cache.h"

namespace xrank::query {

PostingCursor::PostingCursor(storage::BufferPool* pool,
                             const index::Lexicon* lexicon,
                             const index::TermInfo* info, bool use_skip_blocks,
                             index::BlockCache* block_cache)
    : cursor_(pool, info->list,
              lexicon->ListFormat(*info, /*delta_encode_ids=*/true)),
      skips_(use_skip_blocks ? &info->skips : nullptr) {
  cursor_.set_block_cache(block_cache);
}

namespace {

// A damaged on-disk block maximum (NaN / inf / negative garbage decoded as
// inf) must never enable pruning; map it to +infinity so the run's bound
// dominates every threshold.
double SafeBlockMax(float max_rank) {
  if (!std::isfinite(max_rank)) return std::numeric_limits<double>::infinity();
  return static_cast<double>(max_rank);
}

}  // namespace

PostingCursor::RankBound PostingCursor::DocumentRankBound(uint32_t doc) const {
  RankBound bound;
  if (skips_ == nullptr || skips_->empty()) return bound;
  // First descriptor at or past `doc`: pages strictly before its
  // predecessor cannot hold postings of `doc` (their successors' first ids
  // already precede it).
  auto lo_it = std::partition_point(
      skips_->begin(), skips_->end(), [doc](const index::SkipEntry& skip) {
        return skip.first_id.document_id() < doc;
      });
  if (lo_it != skips_->begin()) lo_it = std::prev(lo_it);
  // First descriptor past `doc`: its first id already belongs to a later
  // document, so the run [lo_it, hi_it) holds every posting of every
  // document in [doc, hi_it->first_id.document_id()).
  auto hi_it = std::partition_point(
      skips_->begin(), skips_->end(), [doc](const index::SkipEntry& skip) {
        return skip.first_id.document_id() <= doc;
      });
  for (auto it = lo_it; it != hi_it; ++it) {
    bound.bound = std::max(bound.bound, SafeBlockMax(it->max_rank));
  }
  bound.end_index = static_cast<size_t>(hi_it - skips_->begin());
  bound.next_doc = hi_it == skips_->end()
                       ? std::numeric_limits<uint32_t>::max()
                       : hi_it->first_id.document_id();
  bound.valid = true;
  return bound;
}

void PostingCursor::ExtendBound(RankBound* bound) const {
  if (skips_ == nullptr || !bound->valid ||
      bound->end_index >= skips_->size()) {
    return;
  }
  bound->bound =
      std::max(bound->bound, SafeBlockMax((*skips_)[bound->end_index].max_rank));
  ++bound->end_index;
  bound->next_doc = bound->end_index >= skips_->size()
                        ? std::numeric_limits<uint32_t>::max()
                        : (*skips_)[bound->end_index].first_id.document_id();
}

double PostingCursor::NextPageRank(const RankBound& bound) const {
  if (skips_ == nullptr || !bound.valid || bound.end_index >= skips_->size()) {
    return std::numeric_limits<double>::infinity();
  }
  return SafeBlockMax((*skips_)[bound.end_index].max_rank);
}

Result<bool> PostingCursor::Next(index::Posting* out) {
  XRANK_ASSIGN_OR_RETURN(bool has, cursor_.Next(out));
  if (has) ++postings_read_;
  return has;
}

Result<bool> PostingCursor::SkipToDocument(uint32_t doc, index::Posting* out) {
  if (skips_ != nullptr && !skips_->empty()) {
    // Last page whose first ID precedes document `doc`. Every earlier page
    // holds only postings < that page's first ID <= all ids with document
    // component < doc, so the target posting — if it exists — is on this
    // page or later.
    auto it = std::partition_point(
        skips_->begin(), skips_->end(), [doc](const index::SkipEntry& skip) {
          return skip.first_id.document_id() < doc;
        });
    if (it != skips_->begin()) {
      uint32_t target_page = std::prev(it)->page_index;
      uint32_t current_page = cursor_.current_page_index();
      if (target_page > current_page) {
        // Pages (current, target) are never decoded; the seek itself reads
        // the target page through the pool like any other page.
        pages_skipped_ += target_page - current_page - 1;
        XRANK_RETURN_NOT_OK(cursor_.SeekToPage(target_page));
      }
    }
  }
  // Linear tail: within the landing page (and, when descriptors are absent
  // or stale, across pages) until the document frontier is reached.
  for (;;) {
    if (deadline_ != nullptr) XRANK_RETURN_NOT_OK(deadline_->Check());
    XRANK_ASSIGN_OR_RETURN(bool has, cursor_.Next(out));
    if (!has) return false;
    ++postings_read_;
    if (out->id.document_id() >= doc) return true;
  }
}

}  // namespace xrank::query
