#include "query/dewey_stack.h"

#include <algorithm>

#include "common/check.h"
#include "query/proximity.h"

namespace xrank::query {

DeweyStackMerger::DeweyStackMerger(size_t num_keywords,
                                   const ScoringOptions& scoring,
                                   size_t min_result_depth, Callback callback)
    : num_keywords_(num_keywords),
      scoring_(scoring),
      min_result_depth_(std::max<size_t>(min_result_depth, 1)),
      callback_(std::move(callback)) {
  XRANK_CHECK(num_keywords_ > 0, "merger needs at least one keyword");
}

DeweyStackMerger::Frame DeweyStackMerger::MakeFrame(
    uint32_t component) const {
  Frame frame;
  frame.component = component;
  frame.positions.resize(num_keywords_);
  frame.ranks.assign(num_keywords_, 0.0);
  return frame;
}

void DeweyStackMerger::PopFrame() {
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  size_t depth = path_.size();

  size_t present = 0;
  for (size_t k = 0; k < num_keywords_; ++k) {
    if (!frame.positions[k].empty()) ++present;
  }
  bool qualifies =
      scoring_.semantics == QuerySemantics::kConjunctive
          ? present == num_keywords_
          : present > 0;

  if (qualifies) {
    // Figure 5 lines 15-18: the element contains every keyword
    // (conjunctive) / at least one keyword (disjunctive).
    frame.contains_all = true;
    if (depth >= min_result_depth_) {
      CandidateResult candidate;
      candidate.id = dewey::DeweyId(path_);
      candidate.keyword_ranks = frame.ranks;
      // Under disjunctive semantics the window covers only the keywords
      // that are present.
      std::vector<std::vector<uint32_t>> windows;
      windows.reserve(present);
      for (const auto& positions : frame.positions) {
        if (!positions.empty()) windows.push_back(positions);
      }
      candidate.window = MinimalWindowSize(windows);
      double proximity = ProximityFromWindow(scoring_.proximity,
                                             candidate.window, present);
      candidate.overall_rank = CombineRanks(frame.ranks, proximity);
      callback_(candidate);
    }
  } else if (!frame.contains_all && !stack_.empty()) {
    // Lines 19-22: partial occurrences flow into the parent with one level
    // of decay; position lists accumulate.
    Frame& parent = stack_.back();
    for (size_t k = 0; k < num_keywords_; ++k) {
      if (frame.ranks[k] > 0.0) {
        parent.ranks[k] = AggregateRank(scoring_.aggregation, parent.ranks[k],
                                        frame.ranks[k] * scoring_.decay);
      }
      parent.positions[k].insert(parent.positions[k].end(),
                                 frame.positions[k].begin(),
                                 frame.positions[k].end());
    }
  }
  // Line 23: an element in R0 poisons its ancestors' propagation — their
  // occurrences via this subtree are excluded (Section 2.2's c ∉ R0).
  if (frame.contains_all && !stack_.empty()) {
    stack_.back().contains_all = true;
  }
  path_.pop_back();
}

void DeweyStackMerger::Add(size_t keyword_index,
                           const index::Posting& posting) {
  XRANK_CHECK(!flushed_, "Add after Flush");
  XRANK_CHECK(keyword_index < num_keywords_, "keyword index out of range");
  const dewey::DeweyId& id = posting.id;
  XRANK_DCHECK(!id.empty(), "posting with empty Dewey ID");
  ++postings_consumed_;

  // Longest common prefix with the current stack (Figure 5 lines 10-11).
  size_t lcp = 0;
  size_t limit = std::min(path_.size(), id.depth());
  while (lcp < limit && path_[lcp] == id.component(lcp)) ++lcp;

  // Pop the non-matching tail (lines 12-24).
  while (stack_.size() > lcp) PopFrame();

  // Push the non-matching part of the new ID (lines 25-28).
  for (size_t i = lcp; i < id.depth(); ++i) {
    stack_.push_back(MakeFrame(id.component(i)));
    path_.push_back(id.component(i));
  }

  // Lines 29-31: attach this posting's rank and positions to the top frame.
  Frame& top = stack_.back();
  top.ranks[keyword_index] =
      AggregateRank(scoring_.aggregation, top.ranks[keyword_index],
                    static_cast<double>(posting.elem_rank));
  top.positions[keyword_index].insert(top.positions[keyword_index].end(),
                                      posting.positions.begin(),
                                      posting.positions.end());
}

void DeweyStackMerger::Flush() {
  if (flushed_) return;
  flushed_ = true;
  while (!stack_.empty()) PopFrame();
}

}  // namespace xrank::query
