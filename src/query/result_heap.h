#ifndef XRANK_QUERY_RESULT_HEAP_H_
#define XRANK_QUERY_RESULT_HEAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <set>
#include <unordered_map>
#include <vector>

#include "dewey/dewey_id.h"
#include "query/scoring.h"

namespace xrank::query {

// A monotonically rising top-k threshold shared by cooperating
// accumulators running on different threads — the shard router's θ
// forwarding. Each shard's accumulator publishes its running m-th-best
// rank here and prunes against the maximum of its local θ and this floor,
// so a shard that starts (or progresses) later inherits the bound already
// established elsewhere in the fleet.
//
// Soundness: any cooperating accumulator's m-th-best rank is a lower bound
// on the global m-th-best over the union of their document sets, and every
// pruning test in the merge algorithms is strictly-below-θ (ties are
// kept), so no element that belongs in the global top-m is ever pruned.
class SharedTopKThreshold {
 public:
  // Raises the floor to `theta` if it is higher; returns true when the
  // floor actually rose. Lock-free CAS-max — safe from any thread.
  bool Raise(double theta) {
    double current = theta_.load(std::memory_order_relaxed);
    while (theta > current) {
      if (theta_.compare_exchange_weak(current, theta,
                                       std::memory_order_relaxed)) {
        raises_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  double Get() const { return theta_.load(std::memory_order_relaxed); }

  // Number of successful raises — the θ-forwarding efficacy signal
  // surfaced by the router's counters.
  uint64_t raises() const { return raises_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> theta_{-std::numeric_limits<double>::infinity()};
  std::atomic<uint64_t> raises_{0};
};

// Accumulates query-result candidates and answers the two questions the
// algorithms ask: "have we already evaluated this element?" (RDIL line 18)
// and "do at least m candidates beat the current threshold?" (the TA
// stopping condition, RDIL lines 26-28). Keeps every candidate — the paper
// sizes the heap "greater than m" because low-ranked candidates can enter
// the final top-m once the threshold drops.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(size_t m) : m_(m) {}

  // Joins a shared θ floor (see SharedTopKThreshold): KthRank() returns
  // the maximum of the local m-th-best and the shared floor, and every Add
  // that changes the local m-th-best publishes it. The accumulator itself
  // stays single-threaded; only the shared object is touched atomically.
  // Null (the default) detaches at zero cost.
  void AttachShared(SharedTopKThreshold* shared) { shared_ = shared; }

  // Records a candidate. Returns true if the id was not seen before; a
  // repeated id keeps the higher rank.
  bool Add(const dewey::DeweyId& id, double rank);

  // Marks an id as evaluated without giving it a rank (an element probed
  // and rejected must not be verified again).
  void MarkSeen(const dewey::DeweyId& id);

  bool Contains(const dewey::DeweyId& id) const;

  // Number of candidates with rank >= threshold, capped at m (early exit).
  size_t CountAtLeast(double threshold) const;

  // Rank of the current m-th best candidate — the block-max pruning
  // threshold θ: a page run whose upper bound is strictly below θ cannot
  // change the top-m. -inf while fewer than m candidates are ranked (no
  // pruning until the heap is full).
  double KthRank() const;

  size_t candidate_count() const { return ranks_by_id_.size(); }
  size_t m() const { return m_; }

  // The top min(m, candidates) results, rank-descending (ties by id so
  // output is deterministic).
  std::vector<RankedResult> TakeTop() const;

 private:
  // Local m-th-best rank, ignoring any shared floor (-inf until m ranked).
  double LocalKthRank() const;

  size_t m_;
  SharedTopKThreshold* shared_ = nullptr;
  std::unordered_map<dewey::DeweyId, double, dewey::DeweyIdHash> ranks_by_id_;
  std::unordered_map<dewey::DeweyId, bool, dewey::DeweyIdHash> seen_;
  std::multiset<double, std::greater<double>> ranks_desc_;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_RESULT_HEAP_H_
