#ifndef XRANK_QUERY_RESULT_HEAP_H_
#define XRANK_QUERY_RESULT_HEAP_H_

#include <cstddef>
#include <set>
#include <unordered_map>
#include <vector>

#include "dewey/dewey_id.h"
#include "query/scoring.h"

namespace xrank::query {

// Accumulates query-result candidates and answers the two questions the
// algorithms ask: "have we already evaluated this element?" (RDIL line 18)
// and "do at least m candidates beat the current threshold?" (the TA
// stopping condition, RDIL lines 26-28). Keeps every candidate — the paper
// sizes the heap "greater than m" because low-ranked candidates can enter
// the final top-m once the threshold drops.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(size_t m) : m_(m) {}

  // Records a candidate. Returns true if the id was not seen before; a
  // repeated id keeps the higher rank.
  bool Add(const dewey::DeweyId& id, double rank);

  // Marks an id as evaluated without giving it a rank (an element probed
  // and rejected must not be verified again).
  void MarkSeen(const dewey::DeweyId& id);

  bool Contains(const dewey::DeweyId& id) const;

  // Number of candidates with rank >= threshold, capped at m (early exit).
  size_t CountAtLeast(double threshold) const;

  // Rank of the current m-th best candidate — the block-max pruning
  // threshold θ: a page run whose upper bound is strictly below θ cannot
  // change the top-m. -inf while fewer than m candidates are ranked (no
  // pruning until the heap is full).
  double KthRank() const;

  size_t candidate_count() const { return ranks_by_id_.size(); }
  size_t m() const { return m_; }

  // The top min(m, candidates) results, rank-descending (ties by id so
  // output is deterministic).
  std::vector<RankedResult> TakeTop() const;

 private:
  size_t m_;
  std::unordered_map<dewey::DeweyId, double, dewey::DeweyIdHash> ranks_by_id_;
  std::unordered_map<dewey::DeweyId, bool, dewey::DeweyIdHash> seen_;
  std::multiset<double, std::greater<double>> ranks_desc_;
};

}  // namespace xrank::query

#endif  // XRANK_QUERY_RESULT_HEAP_H_
