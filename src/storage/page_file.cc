#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace xrank::storage {

namespace {

class MemPageFile final : public PageFile {
 public:
  Result<PageId> Allocate() override {
    pages_.emplace_back();
    return static_cast<PageId>(pages_.size() - 1);
  }

  Status Read(PageId page, Page* out) const override {
    if (page >= pages_.size()) {
      return Status::OutOfRange("read of unallocated page " +
                                std::to_string(page));
    }
    *out = pages_[page];
    return Status::OK();
  }

  Status Write(PageId page, const Page& page_data) override {
    if (page >= pages_.size()) {
      return Status::OutOfRange("write of unallocated page " +
                                std::to_string(page));
    }
    pages_[page] = page_data;
    return Status::OK();
  }

  uint32_t page_count() const override {
    return static_cast<uint32_t>(pages_.size());
  }

  Status Sync() override { return Status::OK(); }

 private:
  std::vector<Page> pages_;
};

class DiskPageFile final : public PageFile {
 public:
  DiskPageFile(int fd, std::string path, uint32_t page_count)
      : fd_(fd), path_(std::move(path)), page_count_(page_count) {}

  ~DiskPageFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<PageId> Allocate() override {
    static const Page kZeroPage{};
    PageId page = page_count_;
    XRANK_RETURN_NOT_OK(WriteAt(page, kZeroPage));
    ++page_count_;
    return page;
  }

  Status Read(PageId page, Page* out) const override {
    if (page >= page_count_) {
      return Status::OutOfRange("read of unallocated page " +
                                std::to_string(page));
    }
    ssize_t n = ::pread(fd_, out->data.data(), kPageSize,
                        static_cast<off_t>(page) * kPageSize);
    if (n != static_cast<ssize_t>(kPageSize)) {
      return Status::IOError("pread failed on '" + path_ +
                             "': " + std::strerror(errno));
    }
    return Status::OK();
  }

  Status Write(PageId page, const Page& page_data) override {
    if (page >= page_count_) {
      return Status::OutOfRange("write of unallocated page " +
                                std::to_string(page));
    }
    return WriteAt(page, page_data);
  }

  uint32_t page_count() const override { return page_count_; }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IOError("fsync failed on '" + path_ +
                             "': " + std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  Status WriteAt(PageId page, const Page& page_data) {
    ssize_t n = ::pwrite(fd_, page_data.data.data(), kPageSize,
                         static_cast<off_t>(page) * kPageSize);
    if (n != static_cast<ssize_t>(kPageSize)) {
      return Status::IOError("pwrite failed on '" + path_ +
                             "': " + std::strerror(errno));
    }
    return Status::OK();
  }

  int fd_;
  std::string path_;
  uint32_t page_count_;
};

}  // namespace

std::unique_ptr<PageFile> PageFile::CreateInMemory() {
  return std::make_unique<MemPageFile>();
}

Result<std::unique_ptr<PageFile>> PageFile::CreateOnDisk(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<PageFile>(new DiskPageFile(fd, path, 0));
}

Result<std::unique_ptr<PageFile>> PageFile::OpenOnDisk(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption("'" + path + "' is not page-aligned");
  }
  return std::unique_ptr<PageFile>(new DiskPageFile(
      fd, path, static_cast<uint32_t>(size / static_cast<off_t>(kPageSize))));
}

}  // namespace xrank::storage
