#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/backoff.h"
#include "common/safe_strerror.h"
#include "common/crc32.h"
#include "common/failpoint.h"

namespace xrank::storage {

namespace {

// Physical record: [header | payload]. Header layout (little-endian):
//   u32 magic, u16 version, u16 reserved, u32 page id, u32 crc32c(payload)
constexpr size_t kRecordSize = kDiskPageHeaderSize + kPageSize;
constexpr size_t kMagicOffset = 0;
constexpr size_t kVersionOffset = 4;
constexpr size_t kPageIdOffset = 8;
constexpr size_t kCrcOffset = 12;

// `n` is the pread/pwrite return value: negative means a syscall error
// (errno holds the cause), short means an unexpected partial transfer —
// errno is meaningless then and must not be reported.
std::string IoErrorMessage(const char* op, const std::string& path,
                           PageId page, ssize_t n, size_t expected) {
  std::string msg = std::string(op) + " failed on page " +
                    std::to_string(page) + " of '" + path + "': ";
  if (n < 0) {
    msg += SafeStrError(errno);
  } else {
    msg += "short transfer (" + std::to_string(n) + " of " +
           std::to_string(expected) + " bytes)";
  }
  return msg;
}

class MemPageFile final : public PageFile {
 public:
  Result<PageId> Allocate() override {
    pages_.emplace_back();
    return static_cast<PageId>(pages_.size() - 1);
  }

  Status Read(PageId page, Page* out) const override {
    if (page >= pages_.size()) {
      return Status::OutOfRange("read of unallocated page " +
                                std::to_string(page));
    }
    *out = pages_[page];
    return Status::OK();
  }

  Status Write(PageId page, const Page& page_data) override {
    if (page >= pages_.size()) {
      return Status::OutOfRange("write of unallocated page " +
                                std::to_string(page));
    }
    pages_[page] = page_data;
    return Status::OK();
  }

  uint32_t page_count() const override {
    return static_cast<uint32_t>(pages_.size());
  }

  Status Sync() override { return Status::OK(); }

 private:
  std::vector<Page> pages_;
};

class DiskPageFile final : public PageFile {
 public:
  DiskPageFile(int fd, std::string path, uint32_t page_count)
      : fd_(fd), path_(std::move(path)), page_count_(page_count) {}

  ~DiskPageFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<PageId> Allocate() override {
    static const Page kZeroPage{};
    PageId page = page_count_;
    XRANK_RETURN_NOT_OK(WriteWithRetry(page, kZeroPage));
    ++page_count_;
    return page;
  }

  Status Read(PageId page, Page* out) const override {
    if (page >= page_count_) {
      return Status::OutOfRange("read of unallocated page " +
                                std::to_string(page));
    }
    return RetryWithBackoff(retry_, [&] { return ReadOnce(page, out); });
  }

  Status Write(PageId page, const Page& page_data) override {
    if (page >= page_count_) {
      return Status::OutOfRange("write of unallocated page " +
                                std::to_string(page));
    }
    return WriteWithRetry(page, page_data);
  }

  uint32_t page_count() const override { return page_count_; }

  Status Sync() override {
    return RetryWithBackoff(retry_, [&] { return SyncOnce(); });
  }

  const std::string& path() const override { return path_; }

 private:
  Status ReadOnce(PageId page, Page* out) const {
    if (auto hit = fail::FailPoints::Instance().Evaluate("page_file.read")) {
      (void)hit;
      return Status::IOError("injected read error on page " +
                             std::to_string(page) + " of '" + path_ + "'");
    }
    char record[kRecordSize];
    ssize_t n = ::pread(fd_, record, kRecordSize,
                        static_cast<off_t>(page) * kRecordSize);
    if (n != static_cast<ssize_t>(kRecordSize)) {
      return Status::IOError(
          IoErrorMessage("pread", path_, page, n, kRecordSize));
    }
    XRANK_RETURN_NOT_OK(VerifyRecord(page, record));
    std::memcpy(out->data.data(), record + kDiskPageHeaderSize, kPageSize);
    return Status::OK();
  }

  Status VerifyRecord(PageId page, const char* record) const {
    uint32_t magic, stored_page, stored_crc;
    uint16_t version;
    std::memcpy(&magic, record + kMagicOffset, sizeof(magic));
    std::memcpy(&version, record + kVersionOffset, sizeof(version));
    std::memcpy(&stored_page, record + kPageIdOffset, sizeof(stored_page));
    std::memcpy(&stored_crc, record + kCrcOffset, sizeof(stored_crc));
    std::string where = "page " + std::to_string(page) + " of '" + path_ + "'";
    if (magic != kDiskPageMagic) {
      return Status::Corruption("bad page magic on " + where +
                                " (torn or foreign write)");
    }
    if (version != kDiskFormatVersion) {
      return Status::Corruption("unsupported page format version " +
                                std::to_string(version) + " on " + where);
    }
    if (stored_page != page) {
      return Status::Corruption("misdirected page: " + where + " claims id " +
                                std::to_string(stored_page));
    }
    uint32_t computed = Crc32c(record + kDiskPageHeaderSize, kPageSize);
    if (computed != stored_crc) {
      return Status::Corruption("checksum mismatch on " + where);
    }
    return Status::OK();
  }

  Status WriteWithRetry(PageId page, const Page& page_data) {
    return RetryWithBackoff(retry_, [&] { return WriteOnce(page, page_data); });
  }

  Status WriteOnce(PageId page, const Page& page_data) {
    auto& failpoints = fail::FailPoints::Instance();
    if (failpoints.Evaluate("page_file.write")) {
      return Status::IOError("injected write error on page " +
                             std::to_string(page) + " of '" + path_ + "'");
    }
    char record[kRecordSize];
    uint32_t crc = Crc32c(page_data.data.data(), kPageSize);
    std::memcpy(record + kMagicOffset, &kDiskPageMagic, sizeof(uint32_t));
    std::memcpy(record + kVersionOffset, &kDiskFormatVersion,
                sizeof(uint16_t));
    uint16_t reserved = 0;
    std::memcpy(record + kVersionOffset + sizeof(uint16_t), &reserved,
                sizeof(uint16_t));
    std::memcpy(record + kPageIdOffset, &page, sizeof(uint32_t));
    std::memcpy(record + kCrcOffset, &crc, sizeof(uint32_t));
    std::memcpy(record + kDiskPageHeaderSize, page_data.data.data(),
                kPageSize);

    size_t write_len = kRecordSize;
    if (auto hit = failpoints.Evaluate("page_file.torn_write")) {
      // A crash mid-write: only a prefix of the record reaches the medium.
      // The header's CRC no longer matches the stored payload, which is
      // exactly what the read-side verification exists to catch.
      write_len = kDiskPageHeaderSize +
                  static_cast<size_t>(hit->random % (kPageSize - 1));
    } else if (auto flip = failpoints.Evaluate("page_file.corrupt_write")) {
      // Silent media corruption: one payload bit flips after the CRC was
      // computed. The write "succeeds"; the damage is caught on read.
      size_t bit = flip->random % (kPageSize * 8);
      record[kDiskPageHeaderSize + bit / 8] ^= static_cast<char>(1u << (bit % 8));
    }
    ssize_t n = ::pwrite(fd_, record, write_len,
                         static_cast<off_t>(page) * kRecordSize);
    if (n != static_cast<ssize_t>(write_len)) {
      return Status::IOError(
          IoErrorMessage("pwrite", path_, page, n, write_len));
    }
    if (write_len != kRecordSize) {
      // The torn write is not retryable by design — the simulated process
      // died; Corruption is deterministic so the retry loop stops here.
      return Status::Corruption("injected torn write on page " +
                                std::to_string(page) + " of '" + path_ + "'");
    }
    return Status::OK();
  }

  Status SyncOnce() {
    if (fail::FailPoints::Instance().Evaluate("page_file.sync")) {
      return Status::IOError("injected fsync error on '" + path_ + "'");
    }
    if (::fsync(fd_) != 0) {
      return Status::IOError("fsync failed on '" + path_ +
                             "': " + SafeStrError(errno));
    }
    return Status::OK();
  }

  int fd_;
  std::string path_;
  uint32_t page_count_;
  BackoffPolicy retry_;
};

}  // namespace

const std::string& PageFile::path() const {
  static const std::string kEmpty;
  return kEmpty;
}

std::unique_ptr<PageFile> PageFile::CreateInMemory() {
  return std::make_unique<MemPageFile>();
}

Result<std::unique_ptr<PageFile>> PageFile::CreateOnDisk(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create '" + path +
                           "': " + SafeStrError(errno));
  }
  return std::unique_ptr<PageFile>(new DiskPageFile(fd, path, 0));
}

Result<std::unique_ptr<PageFile>> PageFile::OpenOnDisk(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + SafeStrError(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || size % static_cast<off_t>(kRecordSize) != 0) {
    ::close(fd);
    return Status::Corruption(
        "'" + path + "' is not page-aligned (size " + std::to_string(size) +
        ", record size " + std::to_string(kRecordSize) + ")");
  }
  return std::unique_ptr<PageFile>(new DiskPageFile(
      fd, path, static_cast<uint32_t>(size / static_cast<off_t>(kRecordSize))));
}

}  // namespace xrank::storage
