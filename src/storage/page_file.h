#ifndef XRANK_STORAGE_PAGE_FILE_H_
#define XRANK_STORAGE_PAGE_FILE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/page.h"

namespace xrank::storage {

// A growable array of pages, backed either by a real file (pread/pwrite) or
// by memory. Memory backing keeps unit tests and small experiments fast; the
// benchmark harnesses use file backing plus a cold buffer pool to model the
// paper's cold-OS-cache setup.
class PageFile {
 public:
  virtual ~PageFile() = default;

  // In-memory backend.
  static std::unique_ptr<PageFile> CreateInMemory();
  // Creates (truncates) a page file on disk.
  static Result<std::unique_ptr<PageFile>> CreateOnDisk(
      const std::string& path);
  // Opens an existing on-disk page file read/write.
  static Result<std::unique_ptr<PageFile>> OpenOnDisk(const std::string& path);

  // Appends a zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  virtual Status Read(PageId page, Page* out) const = 0;
  virtual Status Write(PageId page, const Page& page_data) = 0;

  virtual uint32_t page_count() const = 0;

  // Flushes to stable storage (no-op for memory backing).
  virtual Status Sync() = 0;
};

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_PAGE_FILE_H_
