#ifndef XRANK_STORAGE_PAGE_FILE_H_
#define XRANK_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/page.h"

namespace xrank::storage {

// --- on-disk page format ---
//
// Each logical page of `kPageSize` payload bytes is stored as one physical
// record of `kDiskPageHeaderSize + kPageSize` bytes: a header carrying a
// magic, the format version, the page's own id, and a CRC32C of the
// payload, followed by the payload. The header catches torn writes, bit
// rot, and misdirected reads/writes at the storage boundary, so decoders
// above the buffer pool never see silently poisoned bytes — a damaged
// page surfaces as Status::Corruption naming the page and file. Memory
// backing stores bare payloads (there is no device to corrupt them).
inline constexpr size_t kDiskPageHeaderSize = 16;
inline constexpr uint32_t kDiskPageMagic = 0x58504731;  // "XPG1"
inline constexpr uint16_t kDiskFormatVersion = 1;

// A growable array of pages, backed either by a real file (pread/pwrite) or
// by memory. Memory backing keeps unit tests and small experiments fast; the
// benchmark harnesses use file backing plus a cold buffer pool to model the
// paper's cold-OS-cache setup.
//
// Fault model of the disk backing: every syscall consults the failpoint
// registry (sites "page_file.read", "page_file.write", "page_file.sync",
// "page_file.torn_write", "page_file.corrupt_write") and wraps the
// operation in a bounded retry-with-backoff, so transient faults are
// absorbed and persistent ones return a descriptive Status.
class PageFile {
 public:
  virtual ~PageFile() = default;

  // In-memory backend.
  static std::unique_ptr<PageFile> CreateInMemory();
  // Creates (truncates) a page file on disk.
  static Result<std::unique_ptr<PageFile>> CreateOnDisk(
      const std::string& path);
  // Opens an existing on-disk page file read/write.
  static Result<std::unique_ptr<PageFile>> OpenOnDisk(const std::string& path);

  // Appends a zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  virtual Status Read(PageId page, Page* out) const = 0;
  virtual Status Write(PageId page, const Page& page_data) = 0;

  virtual uint32_t page_count() const = 0;

  // Flushes to stable storage (no-op for memory backing).
  virtual Status Sync() = 0;

  // Backing path; empty for the memory backend. Error messages and the
  // index MANIFEST use this to name the damaged file.
  virtual const std::string& path() const;

  // Process-unique identity of this PageFile instance, assigned at
  // construction. Caches layered above the file (the decoded-block cache)
  // key on (file_id, page id), so entries from a destroyed file can never
  // alias a later one that reuses its pages. A fault-injection decorator
  // gets its own id — readers through the decorator are a distinct cache
  // identity from readers of the wrapped file.
  uint64_t file_id() const { return file_id_; }

 protected:
  PageFile() : file_id_(next_file_id_.fetch_add(1, std::memory_order_relaxed)) {}

 private:
  inline static std::atomic<uint64_t> next_file_id_{1};
  const uint64_t file_id_;
};

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_PAGE_FILE_H_
