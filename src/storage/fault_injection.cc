#include "storage/fault_injection.h"

#include <cstring>
#include <utility>

namespace xrank::storage {

FaultInjectionPageFile::FaultInjectionPageFile(std::unique_ptr<PageFile> inner,
                                               std::string site)
    : inner_(std::move(inner)),
      site_(std::move(site)),
      read_site_(site_ + ".read"),
      write_site_(site_ + ".write"),
      sync_site_(site_ + ".sync"),
      allocate_site_(site_ + ".allocate") {}

Result<PageId> FaultInjectionPageFile::Allocate() {
  if (fail::FailPoints::Instance().Evaluate(allocate_site_)) {
    return Status::IOError("injected allocation failure at '" + site_ + "'");
  }
  return inner_->Allocate();
}

Status FaultInjectionPageFile::Read(PageId page, Page* out) const {
  if (auto hit = fail::FailPoints::Instance().Evaluate(read_site_)) {
    if (hit->action == fail::Action::kError) {
      return Status::IOError("injected read error on page " +
                             std::to_string(page) + " at '" + site_ + "'");
    }
    if (hit->action == fail::Action::kBitFlip) {
      XRANK_RETURN_NOT_OK(inner_->Read(page, out));
      size_t bit = hit->random % (kPageSize * 8);
      out->data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      return Status::OK();
    }
  }
  return inner_->Read(page, out);
}

Status FaultInjectionPageFile::Write(PageId page, const Page& page_data) {
  if (auto hit = fail::FailPoints::Instance().Evaluate(write_site_)) {
    fail::DieIfCrashRequested(hit);
    switch (hit->action) {
      case fail::Action::kCrash:  // unreachable: handled above
      case fail::Action::kError:
        return Status::IOError("injected write error on page " +
                               std::to_string(page) + " at '" + site_ + "'");
      case fail::Action::kTornWrite: {
        // Persist only a prefix of the payload (rest of the logical page
        // keeps its previous bytes — zero for a fresh allocation), then
        // fail as if the process died mid-write.
        Page torn;
        Status read_status = inner_->Read(page, &torn);
        if (!read_status.ok()) torn = Page{};
        size_t keep = hit->random % kPageSize;
        std::memcpy(torn.data.data(), page_data.data.data(), keep);
        (void)inner_->Write(page, torn);
        return Status::IOError("injected torn write on page " +
                               std::to_string(page) + " at '" + site_ + "'");
      }
      case fail::Action::kBitFlip: {
        Page flipped = page_data;
        size_t bit = hit->random % (kPageSize * 8);
        flipped.data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        return inner_->Write(page, flipped);
      }
    }
  }
  return inner_->Write(page, page_data);
}

uint32_t FaultInjectionPageFile::page_count() const {
  return inner_->page_count();
}

Status FaultInjectionPageFile::Sync() {
  if (fail::FailPoints::Instance().Evaluate(sync_site_)) {
    return Status::IOError("injected fsync error at '" + site_ + "'");
  }
  return inner_->Sync();
}

const std::string& FaultInjectionPageFile::path() const {
  return inner_->path();
}

}  // namespace xrank::storage
