#include "storage/buffer_pool.h"

#include <algorithm>

#include "common/check.h"

namespace xrank::storage {

namespace {

// Pools below this capacity stay single-sharded: striping a tiny pool would
// fragment its capacity, and the deterministic single-stream eviction order
// is what the cost-model experiments (and their tests) rely on.
constexpr size_t kMinPagesPerShard = 128;
constexpr size_t kMaxShards = 16;

size_t ResolveShardCount(size_t capacity_pages, size_t num_shards) {
  if (num_shards > 0) return std::min(num_shards, capacity_pages);
  size_t auto_shards = capacity_pages / kMinPagesPerShard;
  return std::clamp<size_t>(auto_shards, 1, kMaxShards);
}

}  // namespace

BufferPool::BufferPool(PageFile* file, size_t capacity_pages,
                       CostModel* cost_model, size_t num_shards)
    : file_(file),
      capacity_(capacity_pages),
      cost_model_(cost_model),
      registry_hits_(metrics::Registry::Instance().GetCounter("pool.hits")),
      registry_misses_(
          metrics::Registry::Instance().GetCounter("pool.misses")) {
  XRANK_CHECK(file != nullptr, "BufferPool needs a file");
  XRANK_CHECK(capacity_pages > 0, "BufferPool capacity must be positive");
  size_t shards = ResolveShardCount(capacity_pages, num_shards);
  shard_capacity_ = (capacity_pages + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t BufferPool::ClaimFrame(Shard* shard) {
  if (shard->frames.size() < shard_capacity_) {
    shard->frames.emplace_back();
    return shard->frames.size() - 1;
  }
  // CLOCK sweep: clear reference bits until an unreferenced victim shows
  // up. Terminates within two laps (a full lap clears every bit).
  for (;;) {
    Frame& frame = shard->frames[shard->hand];
    size_t slot = shard->hand;
    shard->hand = (shard->hand + 1) % shard->frames.size();
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    shard->index.erase(frame.page);
    return slot;
  }
}

Status BufferPool::Read(PageId page, Page* out) {
  Shard& shard = ShardFor(page);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(page);
  if (it != shard.index.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    registry_hits_->Increment();
    Frame& frame = shard.frames[it->second];
    frame.referenced = true;
    *out = frame.data;
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  registry_misses_->Increment();
  if (cost_model_ != nullptr) cost_model_->RecordRead(page);
  XRANK_RETURN_NOT_OK(file_->Read(page, out));
  size_t slot = ClaimFrame(&shard);
  Frame& frame = shard.frames[slot];
  frame.page = page;
  frame.referenced = false;  // second chance starts on the first re-use
  frame.data = *out;
  shard.index[page] = slot;
  return Status::OK();
}

Status BufferPool::Write(PageId page, const Page& page_data) {
  XRANK_RETURN_NOT_OK(file_->Write(page, page_data));
  Shard& shard = ShardFor(page);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(page);
  if (it != shard.index.end()) {
    Frame& frame = shard.frames[it->second];
    frame.referenced = true;
    frame.data = page_data;
    return Status::OK();
  }
  size_t slot = ClaimFrame(&shard);
  Frame& frame = shard.frames[slot];
  frame.page = page;
  frame.referenced = false;
  frame.data = page_data;
  shard.index[page] = slot;
  return Status::OK();
}

void BufferPool::DropCache() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->frames.clear();
    shard->index.clear();
    shard->hand = 0;
  }
}

size_t BufferPool::cached_pages() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->index.size();
  }
  return total;
}

}  // namespace xrank::storage
