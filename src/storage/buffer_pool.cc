#include "storage/buffer_pool.h"

#include "common/check.h"

namespace xrank::storage {

BufferPool::BufferPool(PageFile* file, size_t capacity_pages,
                       CostModel* cost_model)
    : file_(file), capacity_(capacity_pages), cost_model_(cost_model) {
  XRANK_CHECK(file != nullptr, "BufferPool needs a file");
  XRANK_CHECK(capacity_pages > 0, "BufferPool capacity must be positive");
}

void BufferPool::Touch(Entry* entry, PageId page) {
  lru_.erase(entry->lru_position);
  lru_.push_front(page);
  entry->lru_position = lru_.begin();
}

void BufferPool::InsertAndMaybeEvict(PageId page, const Page& page_data) {
  if (cache_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
  }
  lru_.push_front(page);
  Entry entry;
  entry.page = page_data;
  entry.lru_position = lru_.begin();
  cache_.emplace(page, std::move(entry));
}

Status BufferPool::Read(PageId page, Page* out) {
  auto it = cache_.find(page);
  if (it != cache_.end()) {
    ++hits_;
    Touch(&it->second, page);
    *out = it->second.page;
    return Status::OK();
  }
  ++misses_;
  if (cost_model_ != nullptr) cost_model_->RecordRead(page);
  XRANK_RETURN_NOT_OK(file_->Read(page, out));
  InsertAndMaybeEvict(page, *out);
  return Status::OK();
}

Status BufferPool::Write(PageId page, const Page& page_data) {
  XRANK_RETURN_NOT_OK(file_->Write(page, page_data));
  auto it = cache_.find(page);
  if (it != cache_.end()) {
    it->second.page = page_data;
    Touch(&it->second, page);
  } else {
    InsertAndMaybeEvict(page, page_data);
  }
  return Status::OK();
}

void BufferPool::DropCache() {
  cache_.clear();
  lru_.clear();
}

}  // namespace xrank::storage
