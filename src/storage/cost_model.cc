#include "storage/cost_model.h"

// CostModel is header-only today; this translation unit anchors the library
// target and leaves room for non-inline growth (e.g. histogram reporting).
