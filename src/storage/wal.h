#ifndef XRANK_STORAGE_WAL_H_
#define XRANK_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace xrank::storage {

// Write-ahead log for live index updates (and the same framing for the
// immutable per-segment document files a flush writes).
//
// On-disk format: a sequence of records, each framed as
//
//   u32 magic "XWL1" | u32 payload_len | u32 crc32c(payload) | payload
//
// with payload = u8 type | u64 seq | u32 uri_len | uri | u32 body_len | body
// (all little-endian). The CRC covers the whole payload, so a torn append
// (power cut mid-write) or tail bit rot is detected on the first damaged
// record. Recovery semantics differ by file role:
//
//   * WAL: the log's tail is the only place a crash can legally tear, so
//     ReadLogFile(allow_torn_tail=true) stops at the first damaged record,
//     reports how many bytes it dropped, and the caller truncates the file
//     there. Records before the tear are intact — an acknowledged (synced)
//     append is never lost.
//   * segment .docs files: written and fsynced before their MANIFEST commit,
//     never appended to afterwards — any damage is real corruption, so
//     ReadLogFile(allow_torn_tail=false) refuses the file instead.
//
// Records carry a monotonic sequence number assigned by the engine. A
// segment committed to the MANIFEST records the seq range it covers, so WAL
// replay after a crash between segment commit and WAL truncation simply
// skips records the manifest already accounts for (replay is idempotent).
inline constexpr uint32_t kLogRecordMagic = 0x314C5758;  // "XWL1"
inline constexpr char kWalFileName[] = "wal.log";

struct LogRecord {
  enum class Type : uint8_t {
    kAddDocument = 1,     // uri + serialized XML body
    kDeleteDocument = 2,  // uri only
  };
  Type type = Type::kAddDocument;
  uint64_t seq = 0;
  std::string uri;
  std::string body;
};

// Appender with CRC framing and durable-append discipline. Failpoint sites
// (all crash-capable via fail::Action::kCrash):
//   "wal.append"       — the append fails (or the process dies) before any
//                        byte reaches the file
//   "wal.torn_append"  — only a prefix of the framed record is written,
//                        then the writer reports an IOError (the simulated
//                        process died mid-write)
//   "wal.sync"         — fsync fails / process dies before durability
class LogWriter {
 public:
  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Opens `path` for appending, creating it when absent. `truncate` starts
  // the file over (used by WAL rewrites and segment doc-file writes).
  static Result<std::unique_ptr<LogWriter>> Open(const std::string& path,
                                                 bool truncate);

  // Appends one framed record. Not durable until Sync().
  Status Append(const LogRecord& record);

  // fsyncs the file: every previously appended record survives power loss.
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t appended_records() const { return appended_records_; }
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  LogWriter(int fd, std::string path, uint64_t file_bytes);

  int fd_;
  std::string path_;
  uint64_t file_bytes_;
  uint64_t appended_records_ = 0;
};

// Serialized frame of one record (exposed so tests can craft torn tails).
std::string EncodeLogRecord(const LogRecord& record);

struct LogReadResult {
  std::vector<LogRecord> records;
  uint64_t valid_bytes = 0;    // prefix length covered by intact records
  uint64_t dropped_bytes = 0;  // torn/damaged tail length (0 = clean)
  bool torn_tail = false;
};

// Reads every intact record of `path`. A missing file yields an empty,
// clean result (a WAL that was never written). With `allow_torn_tail`, a
// damaged record ends the scan and the damage is reported in the result;
// without it the same damage is a Corruption error naming the offset.
Result<LogReadResult> ReadLogFile(const std::string& path,
                                  bool allow_torn_tail);

// Truncates `path` to `size` bytes and fsyncs it — discards a torn tail in
// place so the next append starts at a record boundary.
Status TruncateLogFile(const std::string& path, uint64_t size);

// Whole-file CRC32C over the raw bytes of `path` (MANIFEST integrity
// sealing for segment .docs files), plus the byte count.
Result<std::pair<uint64_t, uint32_t>> ChecksumFile(const std::string& path);

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_WAL_H_
