#ifndef XRANK_STORAGE_FAULT_INJECTION_H_
#define XRANK_STORAGE_FAULT_INJECTION_H_

#include <memory>
#include <string>

#include "common/failpoint.h"
#include "storage/page_file.h"

namespace xrank::storage {

// A PageFile decorator that injects faults from the process-wide failpoint
// registry at every call site, independent of the backing (memory or
// disk). Each wrapper instance consults sites derived from its `site`
// prefix:
//
//   <site>.read      — kError: the read fails with IOError;
//                      kBitFlip: the read succeeds but one bit of the
//                      returned payload is flipped (models corruption
//                      *above* the checksummed storage layer: bus/DRAM —
//                      decoders must degrade to Status, never crash)
//   <site>.write     — kError: the write fails without side effects;
//                      kTornWrite: only a prefix of the payload is
//                      applied, then IOError (crash mid-write);
//                      kBitFlip: the write silently persists one flipped
//                      bit
//   <site>.sync      — kError: Sync fails with IOError
//   <site>.allocate  — kError: Allocate fails with IOError
//
// Tests arm e.g. {"fipf.read", {Action::kError, .max_triggers = 2}} and
// prove that build/open/query paths return clean Status errors (or absorb
// transients via the disk file's retry policy) for every schedule.
class FaultInjectionPageFile final : public PageFile {
 public:
  // Wraps (and owns) `inner`. `site` defaults to "fipf".
  explicit FaultInjectionPageFile(std::unique_ptr<PageFile> inner,
                                  std::string site = "fipf");

  Result<PageId> Allocate() override;
  Status Read(PageId page, Page* out) const override;
  Status Write(PageId page, const Page& page_data) override;
  uint32_t page_count() const override;
  Status Sync() override;
  const std::string& path() const override;

  PageFile* inner() { return inner_.get(); }

 private:
  std::unique_ptr<PageFile> inner_;
  std::string site_;
  std::string read_site_, write_site_, sync_site_, allocate_site_;
};

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_FAULT_INJECTION_H_
