#ifndef XRANK_STORAGE_BUFFER_POOL_H_
#define XRANK_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "storage/cost_model.h"
#include "storage/page_file.h"

namespace xrank::storage {

// Sharded page cache in front of a PageFile. Pages are striped across N
// shards by PageId; each shard holds its own mutex, frame table and CLOCK
// (second-chance) hand, so concurrent readers of pages in distinct shards
// never contend. Cache misses are charged to the CostModel; DropCache()
// simulates the paper's cold-OS-cache experimental setup ("results were
// obtained using a cold operating system cache", Section 5.1).
//
// Thread safety: Read/Write/DropCache and every accessor may be called from
// any number of threads concurrently. hits()/misses()/cached_pages() are
// monotonic snapshots (exact when no concurrent mutator is running).
class BufferPool {
 public:
  // `file` and `cost_model` are borrowed and must outlive the pool;
  // cost_model may be null (no accounting). `num_shards` == 0 picks an
  // automatic stripe count from the capacity (small pools — the unit-test
  // and cost-experiment regime — stay single-sharded and exactly preserve
  // sequential eviction behaviour).
  BufferPool(PageFile* file, size_t capacity_pages, CostModel* cost_model,
             size_t num_shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Copies the page into *out (through the cache).
  Status Read(PageId page, Page* out);

  // Writes through the cache to the file.
  Status Write(PageId page, const Page& page_data);

  // Evicts everything — the next read of any page is a physical read.
  void DropCache();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t cached_pages() const;
  size_t shard_count() const { return shards_.size(); }
  size_t capacity_pages() const { return capacity_; }
  PageFile* file() const { return file_; }
  CostModel* cost_model() const { return cost_model_; }

 private:
  // One CLOCK frame. Frames are allocated lazily up to the shard capacity;
  // eviction only starts once the shard is full.
  struct Frame {
    PageId page = kInvalidPage;
    bool referenced = false;
    Page data;
  };

  struct Shard {
    std::mutex mutex;
    std::vector<Frame> frames;                  // size <= capacity
    std::unordered_map<PageId, size_t> index;   // page -> frame slot
    size_t hand = 0;                            // CLOCK sweep position
  };

  Shard& ShardFor(PageId page) { return *shards_[page % shards_.size()]; }
  // Returns the frame slot `page` should occupy, evicting via CLOCK if the
  // shard is full. Caller holds the shard mutex.
  size_t ClaimFrame(Shard* shard);

  PageFile* file_;
  size_t capacity_;
  size_t shard_capacity_;
  CostModel* cost_model_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  // Process-wide aggregates; the member atomics above stay the per-pool
  // view that ServingCounters attributes to one index.
  metrics::Counter* registry_hits_;
  metrics::Counter* registry_misses_;
};

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_BUFFER_POOL_H_
