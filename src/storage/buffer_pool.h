#ifndef XRANK_STORAGE_BUFFER_POOL_H_
#define XRANK_STORAGE_BUFFER_POOL_H_

#include <list>
#include <unordered_map>

#include "common/result.h"
#include "storage/cost_model.h"
#include "storage/page_file.h"

namespace xrank::storage {

// LRU page cache in front of a PageFile. Cache misses are charged to the
// CostModel; DropCache() simulates the paper's cold-OS-cache experimental
// setup ("results were obtained using a cold operating system cache",
// Section 5.1).
class BufferPool {
 public:
  // `file` and `cost_model` are borrowed and must outlive the pool;
  // cost_model may be null (no accounting).
  BufferPool(PageFile* file, size_t capacity_pages, CostModel* cost_model);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Copies the page into *out (through the cache).
  Status Read(PageId page, Page* out);

  // Writes through the cache to the file.
  Status Write(PageId page, const Page& page_data);

  // Evicts everything — the next read of any page is a physical read.
  void DropCache();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t cached_pages() const { return cache_.size(); }
  PageFile* file() const { return file_; }
  CostModel* cost_model() const { return cost_model_; }

 private:
  struct Entry {
    Page page;
    std::list<PageId>::iterator lru_position;
  };

  void Touch(Entry* entry, PageId page);
  void InsertAndMaybeEvict(PageId page, const Page& page_data);

  PageFile* file_;
  size_t capacity_;
  CostModel* cost_model_;
  std::unordered_map<PageId, Entry> cache_;
  std::list<PageId> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_BUFFER_POOL_H_
