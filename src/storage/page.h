#ifndef XRANK_STORAGE_PAGE_H_
#define XRANK_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace xrank::storage {

// All on-disk structures (inverted lists, B+-trees, hash indexes) are built
// from fixed-size pages; the buffer pool and cost model operate at page
// granularity, mirroring the paper's disk-resident implementation (§5.1).
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

struct Page {
  std::array<char, kPageSize> data{};

  std::string_view view() const { return {data.data(), kPageSize}; }

  // Little-endian fixed-width accessors for page headers.
  uint16_t ReadU16(size_t offset) const {
    uint16_t v;
    std::memcpy(&v, data.data() + offset, sizeof(v));
    return v;
  }
  uint32_t ReadU32(size_t offset) const {
    uint32_t v;
    std::memcpy(&v, data.data() + offset, sizeof(v));
    return v;
  }
  uint64_t ReadU64(size_t offset) const {
    uint64_t v;
    std::memcpy(&v, data.data() + offset, sizeof(v));
    return v;
  }
  void WriteU16(size_t offset, uint16_t v) {
    std::memcpy(data.data() + offset, &v, sizeof(v));
  }
  void WriteU32(size_t offset, uint32_t v) {
    std::memcpy(data.data() + offset, &v, sizeof(v));
  }
  void WriteU64(size_t offset, uint64_t v) {
    std::memcpy(data.data() + offset, &v, sizeof(v));
  }
};

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_PAGE_H_
