#ifndef XRANK_STORAGE_BTREE_H_
#define XRANK_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dewey/dewey_id.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace xrank::storage {

// Disk-resident B+-tree keyed by Dewey ID, bulk-loaded from sorted input.
// Used by RDIL (one dense tree per inverted list, values point at postings)
// and HDIL (one sparse tree per list whose "leaves" are the list pages
// themselves, so only internal nodes are stored — paper Section 4.4.1).
//
// Node addressing uses a NodeRef = (page id << 16) | byte offset, which
// enables the paper's space optimization of Section 4.3.1: trees small
// enough to fit in a single leaf are packed together onto shared pages
// instead of each wasting a whole disk page.
using NodeRef = uint64_t;
inline constexpr NodeRef kInvalidRef = ~0ULL;

inline NodeRef MakeNodeRef(PageId page, uint32_t offset) {
  return (static_cast<uint64_t>(page) << 16) | offset;
}
inline PageId NodeRefPage(NodeRef ref) {
  return static_cast<PageId>(ref >> 16);
}
inline uint32_t NodeRefOffset(NodeRef ref) {
  return static_cast<uint32_t>(ref & 0xFFFF);
}

// Sub-allocates small node regions within shared pages (write-through).
class SharedPagePacker {
 public:
  explicit SharedPagePacker(PageFile* file) : file_(file) {}

  // Appends `region` (< kPageSize bytes) to the current shared page,
  // starting a fresh page when it does not fit. Returns the region's ref.
  Result<NodeRef> Append(const std::string& region);

  // Pages consumed by packed regions so far.
  uint32_t pages_used() const { return pages_used_; }

 private:
  PageFile* file_;
  PageId current_page_ = kInvalidPage;
  size_t offset_ = 0;
  Page buffer_;
  uint32_t pages_used_ = 0;
};

// Bulk-loads a B+-tree. Keys must be Add()ed in strictly increasing order.
class BtreeBuilder {
 public:
  // `packer` is optional; when provided, single-leaf trees are packed onto
  // shared pages. Both pointers are borrowed.
  BtreeBuilder(PageFile* file, SharedPagePacker* packer);

  Status Add(const dewey::DeweyId& key, uint64_t value);

  struct BuildStats {
    NodeRef root = kInvalidRef;
    uint32_t full_pages = 0;   // whole pages owned by this tree
    uint32_t packed_bytes = 0; // bytes placed on shared pages (0 if none)
    uint32_t height = 0;       // 1 = single leaf
    uint64_t entry_count = 0;
  };

  // Finishes the tree; the builder must not be reused afterwards.
  Result<BuildStats> Finish();

 private:
  struct PendingChild {
    dewey::DeweyId first_key;
    NodeRef ref;
  };

  Status FlushLeaf();
  Result<NodeRef> WriteInternalLevels(std::vector<PendingChild> children,
                                      uint32_t* height,
                                      uint32_t* extra_pages);

  PageFile* file_;
  SharedPagePacker* packer_;
  // Current leaf under construction.
  std::string leaf_entries_;
  uint32_t leaf_count_ = 0;
  dewey::DeweyId leaf_first_key_;
  dewey::DeweyId last_key_;
  // Previous full-page leaf waiting for its `next` pointer.
  bool has_pending_leaf_ = false;
  PageId pending_leaf_page_ = kInvalidPage;
  std::string pending_leaf_entries_;
  uint32_t pending_leaf_count_ = 0;
  PageId prev_leaf_page_ = kInvalidPage;
  std::vector<PendingChild> leaf_refs_;
  uint64_t entry_count_ = 0;
  uint32_t full_pages_ = 0;
  bool finished_ = false;
};

// Entry returned by point lookups.
struct BtreeEntry {
  dewey::DeweyId key;
  uint64_t value = 0;
};

// Result of SeekCeil: the first entry with key >= probe, and the entry
// immediately before it (the probe key's predecessor in the tree).
struct SeekResult {
  bool has_ceil = false;
  BtreeEntry ceil;
  bool has_pred = false;
  BtreeEntry pred;
};

class BtreeReader {
 public:
  // `pool` is borrowed. `root` comes from BtreeBuilder::Finish().
  BtreeReader(BufferPool* pool, NodeRef root) : pool_(pool), root_(root) {}

  // Finds the first entry >= key and its predecessor.
  Result<SeekResult> SeekCeil(const dewey::DeweyId& key) const;

  // The deepest prefix of `key` shared with any key in the tree, found by
  // probing key's ceiling and predecessor (paper Section 4.3.2). Returns the
  // common-prefix length (0 if the tree is empty).
  Result<size_t> LongestCommonPrefixWith(const dewey::DeweyId& key) const;

  // Invokes `fn` for every entry whose key has `prefix` as a Dewey prefix,
  // in key order. Returning false from fn stops the scan.
  Status ScanPrefix(const dewey::DeweyId& prefix,
                    const std::function<bool(const BtreeEntry&)>& fn) const;

  // Invokes `fn` for every entry in the tree, in key order (testing aid).
  Status ScanAll(const std::function<bool(const BtreeEntry&)>& fn) const;

 private:
  struct Node {
    bool is_leaf = false;
    NodeRef prev = kInvalidRef;
    NodeRef next = kInvalidRef;
    std::vector<BtreeEntry> entries;  // internal nodes: value = child ref
  };

  Result<Node> LoadNode(NodeRef ref) const;
  // Descends to the leaf that would contain `key`.
  Result<NodeRef> DescendToLeaf(const dewey::DeweyId& key) const;

  BufferPool* pool_;
  NodeRef root_;
};

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_BTREE_H_
