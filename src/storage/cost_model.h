#ifndef XRANK_STORAGE_COST_MODEL_H_
#define XRANK_STORAGE_COST_MODEL_H_

#include <cstdint>

#include "storage/page.h"

namespace xrank::storage {

// Deterministic, hardware-independent I/O accounting. The paper's query
// performance experiments (Figures 10 and 11) are dominated by the disk
// behaviour of a cold OS cache on a 2003-era disk: sequential inverted-list
// scans are cheap per page, random B+-tree / hash probes pay a seek. We
// reproduce that regime with weighted page-read counts; the weights default
// to a 50:1 seek-to-scan ratio.
struct CostModelOptions {
  double sequential_read_cost = 1.0;
  double random_read_cost = 50.0;
};

class CostModel {
 public:
  explicit CostModel(CostModelOptions options = {}) : options_(options) {}

  // Records a physical page read. A read is sequential if it extends one of
  // the recently active scan streams (page == stream tail + 1); this models
  // OS read-ahead, under which several concurrently merged list scans are
  // each sequential. Anything else is a seek.
  void RecordRead(PageId page) {
    for (size_t i = 0; i < stream_count_; ++i) {
      if (page == streams_[i] + 1) {
        ++sequential_reads_;
        streams_[i] = page;
        MoveToFront(i);
        return;
      }
    }
    ++random_reads_;
    // Start (or replace the coldest) stream at this position.
    if (stream_count_ < kMaxStreams) ++stream_count_;
    for (size_t i = stream_count_; i-- > 1;) streams_[i] = streams_[i - 1];
    streams_[0] = page;
  }

  void Reset() {
    sequential_reads_ = 0;
    random_reads_ = 0;
    stream_count_ = 0;
  }

  uint64_t sequential_reads() const { return sequential_reads_; }
  uint64_t random_reads() const { return random_reads_; }
  uint64_t total_reads() const { return sequential_reads_ + random_reads_; }

  // Weighted cost in abstract units (sequential page reads).
  double TotalCost() const {
    return static_cast<double>(sequential_reads_) *
               options_.sequential_read_cost +
           static_cast<double>(random_reads_) * options_.random_read_cost;
  }

  const CostModelOptions& options() const { return options_; }

 private:
  // Number of concurrently tracked scan streams (typical OS read-ahead
  // contexts per file are in this range).
  static constexpr size_t kMaxStreams = 8;

  void MoveToFront(size_t i) {
    PageId tail = streams_[i];
    for (size_t j = i; j > 0; --j) streams_[j] = streams_[j - 1];
    streams_[0] = tail;
  }

  CostModelOptions options_;
  uint64_t sequential_reads_ = 0;
  uint64_t random_reads_ = 0;
  PageId streams_[kMaxStreams] = {};
  size_t stream_count_ = 0;
};

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_COST_MODEL_H_
