#ifndef XRANK_STORAGE_COST_MODEL_H_
#define XRANK_STORAGE_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/metrics.h"
#include "storage/page.h"

namespace xrank::storage {

// Deterministic, hardware-independent I/O accounting. The paper's query
// performance experiments (Figures 10 and 11) are dominated by the disk
// behaviour of a cold OS cache on a 2003-era disk: sequential inverted-list
// scans are cheap per page, random B+-tree / hash probes pay a seek. We
// reproduce that regime with weighted page-read counts; the weights default
// to a 50:1 seek-to-scan ratio.
struct CostModelOptions {
  double sequential_read_cost = 1.0;
  double random_read_cost = 50.0;
};

// Thread safety: a single CostModel is shared by every shard of a
// BufferPool and hence by every concurrent query. The counters are atomic
// (readable without a lock); the scan-stream table is guarded by a mutex.
// Under concurrency the sequential/random split becomes best-effort (two
// interleaved scans may break each other's streams), but the total read
// count stays exact — single-threaded runs reproduce the original model
// bit-for-bit.
class CostModel {
 public:
  explicit CostModel(CostModelOptions options = {})
      : options_(options),
        io_sequential_(
            metrics::Registry::Instance().GetCounter("io.sequential_reads")),
        io_random_(
            metrics::Registry::Instance().GetCounter("io.random_reads")) {}

  // Records a physical page read. A read is sequential if it extends one of
  // the recently active scan streams (page == stream tail + 1); this models
  // OS read-ahead, under which several concurrently merged list scans are
  // each sequential. Anything else is a seek.
  void RecordRead(PageId page) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < stream_count_; ++i) {
      if (page == streams_[i] + 1) {
        sequential_reads_.fetch_add(1, std::memory_order_relaxed);
        io_sequential_->Increment();
        streams_[i] = page;
        MoveToFront(i);
        return;
      }
    }
    random_reads_.fetch_add(1, std::memory_order_relaxed);
    io_random_->Increment();
    // Start (or replace the coldest) stream at this position.
    if (stream_count_ < kMaxStreams) ++stream_count_;
    for (size_t i = stream_count_; i-- > 1;) streams_[i] = streams_[i - 1];
    streams_[0] = page;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    sequential_reads_.store(0, std::memory_order_relaxed);
    random_reads_.store(0, std::memory_order_relaxed);
    stream_count_ = 0;
  }

  // Forgets the scan-stream state without touching the counters. Called at
  // a cold-cache query boundary (together with BufferPool::DropCache) so a
  // query's first list read is charged as a seek, exactly as it would be
  // against a freshly constructed model — while the monotonic counters keep
  // supporting concurrent before/after snapshots.
  void ResetStreams() {
    std::lock_guard<std::mutex> lock(mutex_);
    stream_count_ = 0;
  }

  uint64_t sequential_reads() const {
    return sequential_reads_.load(std::memory_order_relaxed);
  }
  uint64_t random_reads() const {
    return random_reads_.load(std::memory_order_relaxed);
  }
  uint64_t total_reads() const { return sequential_reads() + random_reads(); }

  // Weighted cost in abstract units (sequential page reads).
  double TotalCost() const {
    return static_cast<double>(sequential_reads()) *
               options_.sequential_read_cost +
           static_cast<double>(random_reads()) * options_.random_read_cost;
  }

  const CostModelOptions& options() const { return options_; }

 private:
  // Number of concurrently tracked scan streams (typical OS read-ahead
  // contexts per file are in this range).
  static constexpr size_t kMaxStreams = 8;

  void MoveToFront(size_t i) {
    PageId tail = streams_[i];
    for (size_t j = i; j > 0; --j) streams_[j] = streams_[j - 1];
    streams_[0] = tail;
  }

  CostModelOptions options_;
  // Process-wide registry aggregates alongside the per-model counters
  // (which benches diff per query). Reset() clears only the per-model view;
  // registry counters are monotonic for the process lifetime.
  metrics::Counter* io_sequential_;
  metrics::Counter* io_random_;
  std::mutex mutex_;
  std::atomic<uint64_t> sequential_reads_{0};
  std::atomic<uint64_t> random_reads_{0};
  PageId streams_[kMaxStreams] = {};
  size_t stream_count_ = 0;
};

}  // namespace xrank::storage

#endif  // XRANK_STORAGE_COST_MODEL_H_
