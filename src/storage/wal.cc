#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/backoff.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/safe_strerror.h"

namespace xrank::storage {

namespace {

constexpr size_t kFrameHeaderSize = 12;  // magic + payload_len + payload crc
// payload: type(1) + seq(8) + uri_len(4) + uri + body_len(4) + body
constexpr size_t kPayloadFixedSize = 17;
// Refuse absurd lengths before allocating: no legal record approaches this
// (documents are parsed in memory anyway), and it keeps a corrupted length
// field from turning into a multi-gigabyte allocation.
constexpr uint32_t kMaxPayloadSize = 256u << 20;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

Status WriteFully(int fd, const char* data, size_t size,
                  const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write of '" + path +
                             "' failed: " + SafeStrError(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeLogRecord(const LogRecord& record) {
  std::string payload;
  payload.reserve(kPayloadFixedSize + record.uri.size() + record.body.size());
  payload.push_back(static_cast<char>(record.type));
  AppendU64(&payload, record.seq);
  AppendU32(&payload, static_cast<uint32_t>(record.uri.size()));
  payload += record.uri;
  AppendU32(&payload, static_cast<uint32_t>(record.body.size()));
  payload += record.body;

  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendU32(&frame, kLogRecordMagic);
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU32(&frame, Crc32c(payload));
  frame += payload;
  return frame;
}

LogWriter::LogWriter(int fd, std::string path, uint64_t file_bytes)
    : fd_(fd), path_(std::move(path)), file_bytes_(file_bytes) {}

LogWriter::~LogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<LogWriter>> LogWriter::Open(const std::string& path,
                                                   bool truncate) {
  int flags = O_CREAT | O_WRONLY | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open log '" + path +
                           "': " + SafeStrError(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("cannot size log '" + path +
                           "': " + SafeStrError(errno));
  }
  return std::unique_ptr<LogWriter>(
      new LogWriter(fd, path, static_cast<uint64_t>(size)));
}

Status LogWriter::Append(const LogRecord& record) {
  auto& failpoints = fail::FailPoints::Instance();
  if (auto hit = failpoints.Evaluate("wal.append")) {
    fail::DieIfCrashRequested(hit);
    return Status::IOError("injected append failure on '" + path_ + "'");
  }
  std::string frame = EncodeLogRecord(record);
  size_t write_len = frame.size();
  if (auto hit = failpoints.Evaluate("wal.torn_append")) {
    fail::DieIfCrashRequested(hit);
    // A crash mid-append: a strict prefix of the frame reaches the medium.
    write_len = 1 + static_cast<size_t>(hit->random % (frame.size() - 1));
  }
  Status written = RetryWithBackoff(BackoffPolicy{}, [&] {
    return WriteFully(fd_, frame.data(), write_len, path_);
  });
  XRANK_RETURN_NOT_OK(written);
  if (write_len != frame.size()) {
    // The simulated process died mid-write. Corruption (not IOError) so no
    // retry layer re-runs the append and doubles the record.
    return Status::Corruption("injected torn append on '" + path_ + "'");
  }
  file_bytes_ += frame.size();
  ++appended_records_;
  return Status::OK();
}

Status LogWriter::Sync() {
  if (auto hit = fail::FailPoints::Instance().Evaluate("wal.sync")) {
    fail::DieIfCrashRequested(hit);
    return Status::IOError("injected fsync failure on '" + path_ + "'");
  }
  return RetryWithBackoff(BackoffPolicy{}, [&]() -> Status {
    if (::fsync(fd_) != 0) {
      return Status::IOError("fsync of '" + path_ +
                             "' failed: " + SafeStrError(errno));
    }
    return Status::OK();
  });
}

Result<LogReadResult> ReadLogFile(const std::string& path,
                                  bool allow_torn_tail) {
  LogReadResult result;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return result;  // never written: empty, clean
    return Status::IOError("cannot open log '" + path +
                           "': " + SafeStrError(errno));
  }
  std::string blob;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IOError("read of '" + path +
                                      "' failed: " + SafeStrError(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    blob.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t offset = 0;
  std::string damage;
  while (offset < blob.size()) {
    size_t remaining = blob.size() - offset;
    if (remaining < kFrameHeaderSize) {
      damage = "truncated frame header";
      break;
    }
    const char* frame = blob.data() + offset;
    if (LoadU32(frame) != kLogRecordMagic) {
      damage = "bad record magic";
      break;
    }
    uint32_t payload_len = LoadU32(frame + 4);
    uint32_t stored_crc = LoadU32(frame + 8);
    if (payload_len > kMaxPayloadSize) {
      damage = "implausible payload length";
      break;
    }
    if (remaining < kFrameHeaderSize + payload_len) {
      damage = "truncated payload";
      break;
    }
    const char* payload = frame + kFrameHeaderSize;
    if (Crc32c(payload, static_cast<size_t>(payload_len)) != stored_crc) {
      damage = "payload checksum mismatch";
      break;
    }
    if (payload_len < kPayloadFixedSize) {
      damage = "payload shorter than fixed fields";
      break;
    }
    LogRecord record;
    uint8_t type = static_cast<uint8_t>(payload[0]);
    if (type != static_cast<uint8_t>(LogRecord::Type::kAddDocument) &&
        type != static_cast<uint8_t>(LogRecord::Type::kDeleteDocument)) {
      damage = "unknown record type " + std::to_string(type);
      break;
    }
    record.type = static_cast<LogRecord::Type>(type);
    record.seq = LoadU64(payload + 1);
    uint32_t uri_len = LoadU32(payload + 9);
    if (static_cast<uint64_t>(uri_len) + 13 + 4 > payload_len) {
      damage = "uri length overruns payload";
      break;
    }
    record.uri.assign(payload + 13, uri_len);
    uint32_t body_len = LoadU32(payload + 13 + uri_len);
    if (static_cast<uint64_t>(uri_len) + 17 + body_len != payload_len) {
      damage = "body length disagrees with payload length";
      break;
    }
    record.body.assign(payload + 17 + uri_len, body_len);
    result.records.push_back(std::move(record));
    offset += kFrameHeaderSize + payload_len;
  }
  result.valid_bytes = offset;
  result.dropped_bytes = blob.size() - offset;
  result.torn_tail = result.dropped_bytes > 0;
  if (result.torn_tail && !allow_torn_tail) {
    return Status::Corruption("log '" + path + "' damaged at offset " +
                              std::to_string(offset) + ": " + damage);
  }
  return result;
}

Status TruncateLogFile(const std::string& path, uint64_t size) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IOError("cannot open log '" + path +
                           "' for truncation: " + SafeStrError(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    Status status = Status::IOError("truncate of '" + path +
                                    "' failed: " + SafeStrError(errno));
    ::close(fd);
    return status;
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IOError("fsync of '" + path +
                                    "' failed: " + SafeStrError(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::OK();
}

Result<std::pair<uint64_t, uint32_t>> ChecksumFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + SafeStrError(errno));
  }
  uint64_t bytes = 0;
  uint32_t crc = 0;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IOError("read of '" + path +
                                      "' failed: " + SafeStrError(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    crc = Crc32c(buffer, static_cast<size_t>(n), crc);
    bytes += static_cast<uint64_t>(n);
  }
  ::close(fd);
  return std::make_pair(bytes, crc);
}

}  // namespace xrank::storage
