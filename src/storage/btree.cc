#include "storage/btree.h"

#include <algorithm>

#include "common/check.h"
#include "common/varint.h"
#include "dewey/codec.h"

namespace xrank::storage {

namespace {

// Node region layout (self-describing; offsets relative to region start):
//   u8  flags        bit0 = leaf
//   u16 entry count
//   u64 prev leaf NodeRef (kInvalidRef if none / internal)
//   u64 next leaf NodeRef
//   entries: raw-encoded Dewey key ++ varint64 value
constexpr size_t kNodeHeaderSize = 1 + 2 + 8 + 8;
constexpr uint8_t kLeafFlag = 0x01;

std::string SerializeNode(bool is_leaf, uint32_t count, NodeRef prev,
                          NodeRef next, const std::string& entries) {
  std::string out;
  out.reserve(kNodeHeaderSize + entries.size());
  out.push_back(static_cast<char>(is_leaf ? kLeafFlag : 0));
  uint16_t count16 = static_cast<uint16_t>(count);
  out.append(reinterpret_cast<const char*>(&count16), sizeof(count16));
  out.append(reinterpret_cast<const char*>(&prev), sizeof(prev));
  out.append(reinterpret_cast<const char*>(&next), sizeof(next));
  out.append(entries);
  return out;
}

void AppendEntry(const dewey::DeweyId& key, uint64_t value,
                 std::string* out) {
  dewey::EncodeDeweyId(key, out);
  PutVarint64(out, value);
}

size_t EntrySize(const dewey::DeweyId& key, uint64_t value) {
  return dewey::EncodedDeweyIdLength(key) +
         static_cast<size_t>(VarintLength64(value));
}

}  // namespace

// ---------------------------------------------------------------- packer --

Result<NodeRef> SharedPagePacker::Append(const std::string& region) {
  XRANK_CHECK(region.size() <= kPageSize, "packed region exceeds page size");
  if (current_page_ == kInvalidPage ||
      offset_ + region.size() > kPageSize) {
    XRANK_ASSIGN_OR_RETURN(current_page_, file_->Allocate());
    offset_ = 0;
    buffer_ = Page{};
    ++pages_used_;
  }
  std::memcpy(buffer_.data.data() + offset_, region.data(), region.size());
  XRANK_RETURN_NOT_OK(file_->Write(current_page_, buffer_));
  NodeRef ref = MakeNodeRef(current_page_, static_cast<uint32_t>(offset_));
  offset_ += region.size();
  return ref;
}

// --------------------------------------------------------------- builder --

BtreeBuilder::BtreeBuilder(PageFile* file, SharedPagePacker* packer)
    : file_(file), packer_(packer) {}

Status BtreeBuilder::Add(const dewey::DeweyId& key, uint64_t value) {
  XRANK_CHECK(!finished_, "Add after Finish");
  if (entry_count_ > 0 && !(last_key_ < key)) {
    return Status::InvalidArgument("btree keys not strictly increasing: " +
                                   last_key_.ToString() + " then " +
                                   key.ToString());
  }
  size_t entry_size = EntrySize(key, value);
  if (kNodeHeaderSize + leaf_entries_.size() + entry_size > kPageSize) {
    XRANK_RETURN_NOT_OK(FlushLeaf());
  }
  if (leaf_count_ == 0) leaf_first_key_ = key;
  AppendEntry(key, value, &leaf_entries_);
  ++leaf_count_;
  last_key_ = key;
  ++entry_count_;
  return Status::OK();
}

Status BtreeBuilder::FlushLeaf() {
  XRANK_CHECK(leaf_count_ > 0, "flush of empty leaf");
  XRANK_ASSIGN_OR_RETURN(PageId page, file_->Allocate());
  ++full_pages_;
  if (has_pending_leaf_) {
    // The previous leaf now knows its successor; materialize it.
    NodeRef prev_ref = prev_leaf_page_ == kInvalidPage
                           ? kInvalidRef
                           : MakeNodeRef(prev_leaf_page_, 0);
    std::string node =
        SerializeNode(/*is_leaf=*/true, pending_leaf_count_, prev_ref,
                      MakeNodeRef(page, 0), pending_leaf_entries_);
    Page page_data{};
    std::memcpy(page_data.data.data(), node.data(), node.size());
    XRANK_RETURN_NOT_OK(file_->Write(pending_leaf_page_, page_data));
    prev_leaf_page_ = pending_leaf_page_;
  }
  has_pending_leaf_ = true;
  pending_leaf_page_ = page;
  pending_leaf_entries_ = std::move(leaf_entries_);
  pending_leaf_count_ = leaf_count_;
  leaf_refs_.push_back(PendingChild{leaf_first_key_, MakeNodeRef(page, 0)});
  leaf_entries_.clear();
  leaf_count_ = 0;
  return Status::OK();
}

Result<NodeRef> BtreeBuilder::WriteInternalLevels(
    std::vector<PendingChild> children, uint32_t* height,
    uint32_t* extra_pages) {
  while (children.size() > 1) {
    ++*height;
    std::vector<PendingChild> parents;
    std::string entries;
    uint32_t count = 0;
    dewey::DeweyId first_key;
    auto flush_node = [&]() -> Status {
      XRANK_ASSIGN_OR_RETURN(PageId page, file_->Allocate());
      ++*extra_pages;
      std::string node = SerializeNode(/*is_leaf=*/false, count, kInvalidRef,
                                       kInvalidRef, entries);
      Page page_data{};
      std::memcpy(page_data.data.data(), node.data(), node.size());
      XRANK_RETURN_NOT_OK(file_->Write(page, page_data));
      parents.push_back(PendingChild{first_key, MakeNodeRef(page, 0)});
      entries.clear();
      count = 0;
      return Status::OK();
    };
    for (const PendingChild& child : children) {
      size_t entry_size = EntrySize(child.first_key, child.ref);
      if (count > 0 &&
          kNodeHeaderSize + entries.size() + entry_size > kPageSize) {
        XRANK_RETURN_NOT_OK(flush_node());
      }
      if (count == 0) first_key = child.first_key;
      AppendEntry(child.first_key, child.ref, &entries);
      ++count;
    }
    if (count > 0) XRANK_RETURN_NOT_OK(flush_node());
    children = std::move(parents);
  }
  return children[0].ref;
}

Result<BtreeBuilder::BuildStats> BtreeBuilder::Finish() {
  XRANK_CHECK(!finished_, "double Finish");
  finished_ = true;
  BuildStats stats;
  stats.entry_count = entry_count_;
  if (entry_count_ == 0) {
    stats.root = kInvalidRef;
    return stats;
  }

  if (leaf_refs_.empty()) {
    // Whole tree fits in one leaf: pack it onto a shared page when a packer
    // is available (paper Section 4.3.1), else use a dedicated page.
    std::string node = SerializeNode(/*is_leaf=*/true, leaf_count_,
                                     kInvalidRef, kInvalidRef, leaf_entries_);
    stats.height = 1;
    if (packer_ != nullptr) {
      XRANK_ASSIGN_OR_RETURN(stats.root, packer_->Append(node));
      stats.packed_bytes = static_cast<uint32_t>(node.size());
    } else {
      XRANK_ASSIGN_OR_RETURN(PageId page, file_->Allocate());
      Page page_data{};
      std::memcpy(page_data.data.data(), node.data(), node.size());
      XRANK_RETURN_NOT_OK(file_->Write(page, page_data));
      stats.root = MakeNodeRef(page, 0);
      stats.full_pages = 1;
    }
    return stats;
  }

  // Flush the tail leaf, then materialize the last pending leaf with no
  // successor.
  if (leaf_count_ > 0) XRANK_RETURN_NOT_OK(FlushLeaf());
  NodeRef prev_ref = prev_leaf_page_ == kInvalidPage
                         ? kInvalidRef
                         : MakeNodeRef(prev_leaf_page_, 0);
  std::string node = SerializeNode(/*is_leaf=*/true, pending_leaf_count_,
                                   prev_ref, kInvalidRef,
                                   pending_leaf_entries_);
  Page page_data{};
  std::memcpy(page_data.data.data(), node.data(), node.size());
  XRANK_RETURN_NOT_OK(file_->Write(pending_leaf_page_, page_data));

  uint32_t height = 1;
  uint32_t extra_pages = 0;
  XRANK_ASSIGN_OR_RETURN(
      stats.root, WriteInternalLevels(std::move(leaf_refs_), &height,
                                      &extra_pages));
  stats.height = height;
  stats.full_pages = full_pages_ + extra_pages;
  return stats;
}

// ---------------------------------------------------------------- reader --

Result<BtreeReader::Node> BtreeReader::LoadNode(NodeRef ref) const {
  Page page;
  XRANK_RETURN_NOT_OK(pool_->Read(NodeRefPage(ref), &page));
  size_t offset = NodeRefOffset(ref);
  if (offset + kNodeHeaderSize > kPageSize) {
    return Status::Corruption("node ref offset out of page bounds");
  }
  Node node;
  uint8_t flags = static_cast<uint8_t>(page.data[offset]);
  node.is_leaf = (flags & kLeafFlag) != 0;
  uint16_t count = page.ReadU16(offset + 1);
  node.prev = page.ReadU64(offset + 3);
  node.next = page.ReadU64(offset + 11);
  std::string_view data = page.view();
  size_t pos = offset + kNodeHeaderSize;
  node.entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    BtreeEntry entry;
    XRANK_ASSIGN_OR_RETURN(entry.key, dewey::DecodeDeweyId(data, &pos));
    XRANK_ASSIGN_OR_RETURN(entry.value, GetVarint64(data, &pos));
    node.entries.push_back(std::move(entry));
  }
  return node;
}

Result<NodeRef> BtreeReader::DescendToLeaf(const dewey::DeweyId& key) const {
  NodeRef ref = root_;
  for (;;) {
    XRANK_ASSIGN_OR_RETURN(Node node, LoadNode(ref));
    if (node.is_leaf) return ref;
    if (node.entries.empty()) {
      return Status::Corruption("empty internal btree node");
    }
    // Last child whose first key <= key; key below all separators goes to
    // the first child (its leaf will report "no smaller entry").
    size_t chosen = 0;
    for (size_t i = 1; i < node.entries.size(); ++i) {
      if (node.entries[i].key <= key) {
        chosen = i;
      } else {
        break;
      }
    }
    ref = node.entries[chosen].value;
  }
}

Result<SeekResult> BtreeReader::SeekCeil(const dewey::DeweyId& key) const {
  SeekResult result;
  if (root_ == kInvalidRef) return result;
  XRANK_ASSIGN_OR_RETURN(NodeRef leaf_ref, DescendToLeaf(key));
  XRANK_ASSIGN_OR_RETURN(Node leaf, LoadNode(leaf_ref));
  size_t idx = 0;
  while (idx < leaf.entries.size() && leaf.entries[idx].key < key) ++idx;
  if (idx < leaf.entries.size()) {
    result.has_ceil = true;
    result.ceil = leaf.entries[idx];
    if (idx > 0) {
      result.has_pred = true;
      result.pred = leaf.entries[idx - 1];
    } else if (leaf.prev != kInvalidRef) {
      XRANK_ASSIGN_OR_RETURN(Node prev, LoadNode(leaf.prev));
      if (!prev.entries.empty()) {
        result.has_pred = true;
        result.pred = prev.entries.back();
      }
    }
    return result;
  }
  // Everything in this leaf is < key.
  if (!leaf.entries.empty()) {
    result.has_pred = true;
    result.pred = leaf.entries.back();
  }
  if (leaf.next != kInvalidRef) {
    XRANK_ASSIGN_OR_RETURN(Node next, LoadNode(leaf.next));
    if (!next.entries.empty()) {
      result.has_ceil = true;
      result.ceil = next.entries.front();
    }
  }
  return result;
}

Result<size_t> BtreeReader::LongestCommonPrefixWith(
    const dewey::DeweyId& key) const {
  XRANK_ASSIGN_OR_RETURN(SeekResult seek, SeekCeil(key));
  size_t best = 0;
  if (seek.has_ceil) best = std::max(best, key.CommonPrefixLength(seek.ceil.key));
  if (seek.has_pred) best = std::max(best, key.CommonPrefixLength(seek.pred.key));
  return best;
}

Status BtreeReader::ScanPrefix(
    const dewey::DeweyId& prefix,
    const std::function<bool(const BtreeEntry&)>& fn) const {
  if (root_ == kInvalidRef) return Status::OK();
  XRANK_ASSIGN_OR_RETURN(NodeRef leaf_ref, DescendToLeaf(prefix));
  XRANK_ASSIGN_OR_RETURN(Node leaf, LoadNode(leaf_ref));
  size_t idx = 0;
  while (idx < leaf.entries.size() && leaf.entries[idx].key < prefix) ++idx;
  for (;;) {
    if (idx >= leaf.entries.size()) {
      if (leaf.next == kInvalidRef) return Status::OK();
      XRANK_ASSIGN_OR_RETURN(leaf, LoadNode(leaf.next));
      idx = 0;
      continue;
    }
    const BtreeEntry& entry = leaf.entries[idx];
    if (!prefix.IsPrefixOf(entry.key)) return Status::OK();
    if (!fn(entry)) return Status::OK();
    ++idx;
  }
}

Status BtreeReader::ScanAll(
    const std::function<bool(const BtreeEntry&)>& fn) const {
  return ScanPrefix(dewey::DeweyId(), fn);
}

}  // namespace xrank::storage
