#include "index/block_cache.h"

#include <algorithm>

namespace xrank::index {

namespace {

constexpr size_t kMinBytesPerShard = 64 * 1024;
constexpr size_t kMaxShards = 8;

size_t ResolveShardCount(size_t capacity_bytes, size_t num_shards) {
  if (capacity_bytes == 0) return 1;
  if (num_shards > 0) return num_shards;
  size_t auto_shards = capacity_bytes / kMinBytesPerShard;
  return std::clamp<size_t>(auto_shards, 1, kMaxShards);
}

}  // namespace

BlockCache::BlockCache(size_t capacity_bytes, size_t num_shards)
    : registry_hits_(
          metrics::Registry::Instance().GetCounter("block_cache.hits")),
      registry_misses_(
          metrics::Registry::Instance().GetCounter("block_cache.misses")),
      registry_insertions_(
          metrics::Registry::Instance().GetCounter("block_cache.insertions")),
      registry_evictions_(
          metrics::Registry::Instance().GetCounter("block_cache.evictions")),
      registry_bytes_(
          metrics::Registry::Instance().GetGauge("block_cache.bytes")),
      registry_invalidations_(metrics::Registry::Instance().GetCounter(
          "cache.segment_invalidations")) {
  size_t shards = ResolveShardCount(capacity_bytes, num_shards);
  shard_capacity_bytes_ = capacity_bytes / shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t BlockCache::BlockCharge(const Block& block) {
  size_t charge = sizeof(Block) + block.capacity() * sizeof(Posting);
  for (const Posting& posting : block) {
    charge += posting.id.components().capacity() * sizeof(uint32_t);
    charge += posting.positions.capacity() * sizeof(uint32_t);
  }
  return charge;
}

BlockCache::Shard& BlockCache::ShardFor(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

BlockCache::BlockPtr BlockCache::Lookup(const Key& key) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (shard_capacity_bytes_ == 0) {
    registry_misses_->Increment();
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    registry_misses_->Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  registry_hits_->Increment();
  return it->second->block;
}

void BlockCache::Insert(const Key& key, BlockPtr block) {
  if (shard_capacity_bytes_ == 0 || block == nullptr) return;
  size_t charge = BlockCharge(*block);
  if (charge > shard_capacity_bytes_) return;
  Shard& shard = ShardFor(key);
  int64_t bytes_delta = 0;
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh: same immutable file bytes decode to the same block, but
      // replace anyway so a re-inserted block's charge stays accurate.
      bytes_delta -= static_cast<int64_t>(it->second->charge);
      it->second->block = std::move(block);
      it->second->charge = charge;
      bytes_delta += static_cast<int64_t>(charge);
      shard.charged_bytes =
          static_cast<size_t>(static_cast<int64_t>(shard.charged_bytes) +
                              bytes_delta);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      while (!shard.lru.empty() &&
             shard.charged_bytes + charge > shard_capacity_bytes_) {
        const Entry& victim = shard.lru.back();
        shard.charged_bytes -= victim.charge;
        bytes_delta -= static_cast<int64_t>(victim.charge);
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        ++evicted;
      }
      shard.lru.push_front(Entry{key, std::move(block), charge});
      shard.index.emplace(key, shard.lru.begin());
      shard.charged_bytes += charge;
      bytes_delta += static_cast<int64_t>(charge);
    }
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  registry_insertions_->Increment();
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    registry_evictions_->Increment(evicted);
  }
  registry_bytes_->Add(bytes_delta);
}

void BlockCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    registry_bytes_->Add(-static_cast<int64_t>(shard->charged_bytes));
    shard->charged_bytes = 0;
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t BlockCache::EraseFile(uint64_t file_id) {
  size_t erased = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.file_id != file_id) {
        ++it;
        continue;
      }
      shard->charged_bytes -= it->charge;
      registry_bytes_->Add(-static_cast<int64_t>(it->charge));
      shard->index.erase(it->key);
      it = shard->lru.erase(it);
      ++erased;
    }
  }
  if (erased > 0) registry_invalidations_->Increment(erased);
  return erased;
}

size_t BlockCache::cached_blocks() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->index.size();
  }
  return total;
}

size_t BlockCache::charged_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->charged_bytes;
  }
  return total;
}

}  // namespace xrank::index
