#ifndef XRANK_INDEX_NAIVE_INDEX_H_
#define XRANK_INDEX_NAIVE_INDEX_H_

#include <memory>
#include <optional>

#include "index/index_builder.h"
#include "storage/buffer_pool.h"

namespace xrank::index {

// The two baselines of paper Section 4.1 / 5.1. Both store postings at
// element granularity with every ancestor replicated; posting IDs are
// single-component Dewey IDs carrying the element's global preorder ordinal.

// Naive-ID: lists sorted by element ID; queries use an equality merge join.
Result<BuiltIndex> BuildNaiveIdIndex(const TermPostingsMap& naive_postings,
                                     std::unique_ptr<storage::PageFile> file,
                                     const BuildOptions& build = {});

// Naive-Rank: lists sorted by descending ElemRank, plus an on-disk hash
// index on the element ID for the Threshold Algorithm's random probes.
Result<BuiltIndex> BuildNaiveRankIndex(const TermPostingsMap& naive_postings,
                                       std::unique_ptr<storage::PageFile> file,
                                       const BuildOptions& build = {});

// Probes a term's hash index: returns the location of the element's posting
// in the rank-ordered list, or nullopt. Page reads go through `pool`.
Result<std::optional<PostingLocation>> HashIndexLookup(
    storage::BufferPool* pool, const TermInfo& info, uint32_t element_ordinal);

}  // namespace xrank::index

#endif  // XRANK_INDEX_NAIVE_INDEX_H_
