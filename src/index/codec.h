#ifndef XRANK_INDEX_CODEC_H_
#define XRANK_INDEX_CODEC_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "index/posting_types.h"
#include "storage/page.h"

namespace xrank::index {

// ---------------------------------------------------------- rank encoding --
//
// How the per-posting ElemRank is stored on list pages. The default keeps
// the raw IEEE-754 float; the quantized encodings spend 1 or 2 bytes per
// posting, linearly scaled by a per-list `rank_scale` (the list's maximum
// ElemRank, recorded in TermInfo). Quantization always rounds DOWN, so a
// decoded rank never exceeds the true rank and block-max pruning bounds
// built from decoded ranks stay sound. Maximum error for true ranks in
// [0, rank_scale] is one quantum: rank_scale / 255 (u8) or
// rank_scale / 65535 (u16).
enum class RankEncoding : uint32_t {
  kFloat32 = 0,
  kQuantU8 = 1,
  kQuantU16 = 2,
};

inline constexpr uint32_t kRankEncodingCount = 3;

size_t RankEncodedBytes(RankEncoding encoding);     // 4, 1 or 2
uint32_t RankQuantMax(RankEncoding encoding);       // 0, 255 or 65535
std::string_view RankEncodingName(RankEncoding encoding);

// rank = scale * q / qmax. Monotone in q; Dequantize(qmax) == scale.
float DequantizeRank(uint32_t q, float scale, RankEncoding encoding);

// Largest q with Dequantize(q) <= rank (clamped to [0, qmax]); non-finite,
// non-positive and over-scale ranks clamp to the range ends. With
// encoding == kFloat32 this returns 0 (there is nothing to quantize).
uint32_t QuantizeRank(float rank, float scale, RankEncoding encoding);

// Documented error bound: |true - decoded| for true ranks in [0, scale].
float RankQuantizationBound(RankEncoding encoding, float scale);

// Per-list quantization scale: the list's largest finite ElemRank (1.0 for
// lists with no positive rank, so dequantization never divides by zero).
float ComputeRankScale(const std::vector<Posting>& postings);

// ------------------------------------------------------------ format spec --
//
// The build-time knob and on-disk identity of a posting format: which codec
// lays out list pages and how ranks are stored. Recorded in the index
// header page and in every MANIFEST entry; validated against the registry
// when an index is opened, so an index built with a codec this binary does
// not know is refused with a clean error instead of misdecoded.
struct PostingFormatSpec {
  uint32_t codec_id = 0;  // kPostingCodecVarint
  RankEncoding ranks = RankEncoding::kFloat32;

  // VBMW-style variable-sized skip blocks, in milli-rank units of waste.
  // 0 keeps the legacy dense page-filling layout. A positive value lets
  // the writer close a page early once the accumulated block-max waste
  // (sum over buffered postings of page_max - decoded_rank) exceeds
  // lambda = vbmw_lambda_milli / 1000, which tightens per-page `max_rank`
  // bounds for block-max pruning at the cost of shorter pages.
  uint32_t vbmw_lambda_milli = 0;

  // Build-time document-reorder pass the global doc ids went through
  // before posting extraction (index/reorder.h: 0 = identity/ingest order,
  // 1 = recursive graph bisection). Recorded so an Open can re-derive the
  // same permutation; validated like codec ids — legacy zeros = identity.
  uint32_t reorder_id = 0;

  bool operator==(const PostingFormatSpec& other) const = default;
};

class PostingCodec;

// A spec resolved against the codec registry plus the per-list parameters a
// writer or cursor needs: the quantization scale of this particular list
// and whether its Dewey IDs are prefix-delta coded (Dewey-ordered lists)
// or independent (rank-ordered lists).
struct PostingFormat {
  const PostingCodec* codec = nullptr;
  RankEncoding ranks = RankEncoding::kFloat32;
  float rank_scale = 1.0f;
  bool delta_encode_ids = false;
  uint32_t vbmw_lambda_milli = 0;  // writer-side block sizing; see the spec

  // The rank a reader will observe for a posting written with `rank` —
  // identity for kFloat32, quantize-then-dequantize otherwise. Writers
  // compute skip-block maxima from this so pruning bounds are exact.
  float DecodedRank(float rank) const {
    if (ranks == RankEncoding::kFloat32) return rank;
    return DequantizeRank(QuantizeRank(rank, rank_scale, ranks), rank_scale,
                          ranks);
  }
};

// ------------------------------------------------------------- interfaces --

// Stateful encoder for one page at a time of a posting list. The writer
// drives it: Add returns true if the posting was appended to the open page
// and false if the page is full (the writer then flushes and retries; a
// retry on an empty page must either succeed or fail the list). Flush
// serializes the open page and resets the encoder, returning the bytes
// used (page header included) for space accounting.
//
// Page-fit must be decided at each Add: RDIL and Naive-Rank record the
// (page, slot) location of every posting at Add time, so codecs may not
// buffer postings and repack them across page boundaries later.
class PostingPageEncoder {
 public:
  virtual ~PostingPageEncoder() = default;

  virtual Result<bool> Add(const Posting& posting) = 0;
  virtual Result<size_t> Flush(storage::Page* page) = 0;
  virtual uint32_t count() const = 0;
};

// A posting-page layout. Stateless and immortal; instances live in the
// registry and are shared by every writer/cursor using the codec.
class PostingCodec {
 public:
  virtual ~PostingCodec() = default;

  virtual uint32_t id() const = 0;
  virtual std::string_view name() const = 0;

  virtual std::unique_ptr<PostingPageEncoder> NewEncoder(
      const PostingFormat& format) const = 0;

  // Decodes every posting of `page` into *out (replacing its contents;
  // capacity is reused). All failures — truncated streams, absurd counts,
  // bit-flipped headers — surface as Status::Corruption, never a crash or
  // an unbounded allocation.
  virtual Status DecodePage(const storage::Page& page,
                            const PostingFormat& format,
                            std::vector<Posting>* out) const = 0;
};

// -------------------------------------------------------------- registry --

inline constexpr uint32_t kPostingCodecVarint = 0;  // compatibility baseline
inline constexpr uint32_t kPostingCodecBp128 = 1;   // bit-packed 128-blocks
inline constexpr uint32_t kPostingCodecVarintGb = 2;  // group-varint bytes

const PostingCodec* FindPostingCodec(uint32_t id);
const PostingCodec* FindPostingCodecByName(std::string_view name);
const std::vector<const PostingCodec*>& RegisteredPostingCodecs();

// Registry lookup with a clean error for unknown codec ids / rank
// encodings (the validation path for manifests and index headers).
Result<const PostingCodec*> ResolvePostingCodec(const PostingFormatSpec& spec);

// The legacy layout: varint codec, float ranks.
PostingFormat DefaultPostingFormat(bool delta_encode_ids);

// Resolved format for writing one list: computes the per-list quantization
// scale from the postings when `spec` uses a quantized rank encoding (the
// builder must store it in TermInfo::rank_scale so readers reconstruct the
// identical format).
PostingFormat MakeWriterFormat(const PostingCodec* codec,
                               const PostingFormatSpec& spec,
                               const std::vector<Posting>& postings,
                               bool delta_encode_ids);

}  // namespace xrank::index

#endif  // XRANK_INDEX_CODEC_H_
