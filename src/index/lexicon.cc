#include "index/lexicon.h"

#include <cmath>
#include <cstring>

#include "common/varint.h"
#include "dewey/codec.h"

namespace xrank::index {

void Lexicon::Add(std::string term, TermInfo info) {
  terms_[std::move(term)] = std::move(info);
}

const TermInfo* Lexicon::Find(std::string_view term) const {
  auto it = terms_.find(term);
  if (it == terms_.end()) return nullptr;
  return &it->second;
}

Status Lexicon::SetFormatSpec(const PostingFormatSpec& spec) {
  XRANK_ASSIGN_OR_RETURN(codec_, ResolvePostingCodec(spec));
  spec_ = spec;
  return Status::OK();
}

void Lexicon::Serialize(std::string* out, uint32_t format_version) const {
  PutVarint64(out, terms_.size());
  for (const auto& [term, info] : terms_) {
    PutVarint32(out, static_cast<uint32_t>(term.size()));
    out->append(term);
    PutVarint32(out, info.list.first_page);
    PutVarint32(out, info.list.page_count);
    PutVarint64(out, info.list.entry_count);
    PutVarint64(out, info.list.byte_count);
    PutVarint32(out, info.rank_list.first_page);
    PutVarint32(out, info.rank_list.page_count);
    PutVarint64(out, info.rank_list.entry_count);
    PutVarint64(out, info.rank_list.byte_count);
    PutVarint64(out, info.btree_root);
    PutVarint32(out, info.hash_first_page);
    PutVarint32(out, info.hash_page_count);
    PutVarint32(out, info.hash_slot_count);
    PutVarint32(out, info.hash_offset);
    if (spec_.ranks != RankEncoding::kFloat32) {
      // Per-list quantization scale, 4 raw IEEE-754 bytes. Only present
      // under quantized rank encodings (the field is meaningless under
      // float ranks).
      uint32_t scale_bits;
      static_assert(sizeof(scale_bits) == sizeof(info.rank_scale));
      std::memcpy(&scale_bits, &info.rank_scale, sizeof(scale_bits));
      out->append(reinterpret_cast<const char*>(&scale_bits),
                  sizeof(scale_bits));
    }
    if (format_version >= 1) {
      // Sum-aggregation list bound, 4 raw IEEE-754 bytes (format version 1;
      // 0 means "unknown" and query code degrades to no-prune).
      uint32_t doc_rank_bits;
      static_assert(sizeof(doc_rank_bits) == sizeof(info.max_doc_rank));
      std::memcpy(&doc_rank_bits, &info.max_doc_rank, sizeof(doc_rank_bits));
      out->append(reinterpret_cast<const char*>(&doc_rank_bits),
                  sizeof(doc_rank_bits));
    }
    PutVarint64(out, info.skips.size());
    for (const SkipEntry& skip : info.skips) {
      PutVarint32(out, skip.page_index);
      dewey::EncodeDeweyId(skip.first_id, out);
      // Block-max rank bound, 4 raw IEEE-754 bytes (same representation as
      // the in-page posting ranks).
      uint32_t rank_bits;
      static_assert(sizeof(rank_bits) == sizeof(skip.max_rank));
      std::memcpy(&rank_bits, &skip.max_rank, sizeof(rank_bits));
      out->append(reinterpret_cast<const char*>(&rank_bits),
                  sizeof(rank_bits));
    }
  }
}

Result<Lexicon> Lexicon::Deserialize(std::string_view data,
                                     const PostingFormatSpec& spec,
                                     uint32_t format_version) {
  Lexicon lexicon;
  XRANK_RETURN_NOT_OK(lexicon.SetFormatSpec(spec));
  size_t offset = 0;
  XRANK_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(data, &offset));
  for (uint64_t i = 0; i < count; ++i) {
    XRANK_ASSIGN_OR_RETURN(uint32_t term_len, GetVarint32(data, &offset));
    if (offset + term_len > data.size()) {
      return Status::Corruption("truncated lexicon term");
    }
    std::string term(data.substr(offset, term_len));
    offset += term_len;
    TermInfo info;
    XRANK_ASSIGN_OR_RETURN(info.list.first_page, GetVarint32(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.list.page_count, GetVarint32(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.list.entry_count, GetVarint64(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.list.byte_count, GetVarint64(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.rank_list.first_page,
                           GetVarint32(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.rank_list.page_count,
                           GetVarint32(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.rank_list.entry_count,
                           GetVarint64(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.rank_list.byte_count,
                           GetVarint64(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.btree_root, GetVarint64(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.hash_first_page, GetVarint32(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.hash_page_count, GetVarint32(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.hash_slot_count, GetVarint32(data, &offset));
    XRANK_ASSIGN_OR_RETURN(info.hash_offset, GetVarint32(data, &offset));
    if (spec.ranks != RankEncoding::kFloat32) {
      if (offset + sizeof(uint32_t) > data.size()) {
        return Status::Corruption("truncated lexicon rank scale");
      }
      uint32_t scale_bits;
      std::memcpy(&scale_bits, data.data() + offset, sizeof(scale_bits));
      std::memcpy(&info.rank_scale, &scale_bits, sizeof(scale_bits));
      offset += sizeof(scale_bits);
      if (!(info.rank_scale > 0.0f) || !std::isfinite(info.rank_scale)) {
        return Status::Corruption("lexicon rank scale not positive finite");
      }
    }
    if (format_version >= 1) {
      // Version-0 blobs predate the field; TermInfo's default 0 means "no
      // bound" there, so old index files keep opening byte-exact.
      if (offset + sizeof(uint32_t) > data.size()) {
        return Status::Corruption("truncated lexicon max doc rank");
      }
      uint32_t doc_rank_bits;
      std::memcpy(&doc_rank_bits, data.data() + offset, sizeof(doc_rank_bits));
      std::memcpy(&info.max_doc_rank, &doc_rank_bits, sizeof(doc_rank_bits));
      offset += sizeof(doc_rank_bits);
    }
    XRANK_ASSIGN_OR_RETURN(uint64_t skip_count, GetVarint64(data, &offset));
    if (skip_count > info.list.page_count) {
      return Status::Corruption("lexicon skip count exceeds list pages");
    }
    info.skips.reserve(skip_count);
    for (uint64_t s = 0; s < skip_count; ++s) {
      SkipEntry skip;
      XRANK_ASSIGN_OR_RETURN(skip.page_index, GetVarint32(data, &offset));
      XRANK_ASSIGN_OR_RETURN(skip.first_id,
                             dewey::DecodeDeweyId(data, &offset));
      if (offset + sizeof(uint32_t) > data.size()) {
        return Status::Corruption("truncated skip max rank");
      }
      uint32_t rank_bits;
      std::memcpy(&rank_bits, data.data() + offset, sizeof(rank_bits));
      std::memcpy(&skip.max_rank, &rank_bits, sizeof(rank_bits));
      offset += sizeof(rank_bits);
      info.skips.push_back(std::move(skip));
    }
    lexicon.Add(std::move(term), std::move(info));
  }
  return lexicon;
}

}  // namespace xrank::index
