#include "index/posting.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "index/block_cache.h"

namespace xrank::index {

// ---------------------------------------------------------------- writer --

PostingListWriter::PostingListWriter(storage::PageFile* file,
                                     const PostingFormat& format)
    : file_(file), format_(format) {
  XRANK_CHECK(format_.codec != nullptr, "posting format has no codec");
  encoder_ = format_.codec->NewEncoder(format_);
}

PostingListWriter::PostingListWriter(storage::PageFile* file,
                                     bool delta_encode_ids)
    : PostingListWriter(file, DefaultPostingFormat(delta_encode_ids)) {}

namespace {
// VBMW pages are whole physical pages, so an early close costs real space;
// never close a page with fewer postings than this, no matter the waste.
constexpr uint32_t kVbmwMinPageEntries = 16;
}  // namespace

Status PostingListWriter::FlushPage() {
  XRANK_ASSIGN_OR_RETURN(storage::PageId page, file_->Allocate());
  if (!pages_.empty()) {
    // Lists must occupy consecutive pages so sequential scans are cheap and
    // SeekToPage can address pages by index.
    if (page != pages_.back() + 1) {
      return Status::Internal("posting list pages not consecutive");
    }
  }
  storage::Page page_data{};
  XRANK_ASSIGN_OR_RETURN(size_t used, encoder_->Flush(&page_data));
  XRANK_RETURN_NOT_OK(file_->Write(page, page_data));
  pages_.push_back(page);
  extent_.byte_count += used;
  page_max_rank_ = 0.0f;
  page_waste_ = 0.0;
  return Status::OK();
}

Result<PostingLocation> PostingListWriter::Add(const Posting& posting) {
  XRANK_CHECK(!finished_, "Add after Finish");
  XRANK_ASSIGN_OR_RETURN(bool placed, encoder_->Add(posting));
  if (!placed) {
    XRANK_RETURN_NOT_OK(FlushPage());
    XRANK_ASSIGN_OR_RETURN(placed, encoder_->Add(posting));
    if (!placed) {
      return Status::InvalidArgument("posting larger than a page");
    }
  }
  PostingLocation loc{static_cast<uint32_t>(pages_.size()),
                      encoder_->count() - 1};
  if (loc.slot == 0) {
    skips_.push_back(SkipEntry{loc.page_index, posting.id});
  }
  // Block-max maintenance: the descriptor tracks the page's largest rank
  // *as a reader will decode it* (identical under float ranks; the
  // quantized value under quantized encodings), so the top-k merge's bound
  // is exact for what queries actually score with.
  float decoded = format_.DecodedRank(posting.elem_rank);
  skips_.back().max_rank = std::max(skips_.back().max_rank, decoded);

  uint64_t doc = posting.id.document_id();
  if (have_doc_ && doc == current_doc_) {
    current_doc_sum_ += decoded;
  } else {
    if (have_doc_ && current_doc_sum_ > max_doc_sum_) {
      max_doc_sum_ = current_doc_sum_;
    }
    have_doc_ = true;
    current_doc_ = doc;
    current_doc_sum_ = decoded;
  }

  ++extent_.entry_count;

  // VBMW block sizing (lambda-greedy): close the page once the accumulated
  // block-max waste — how far below the page's max_rank its postings sit —
  // exceeds lambda. A posting that raises the page max retroactively adds
  // waste for every earlier posting in the page.
  if (format_.vbmw_lambda_milli > 0 && std::isfinite(decoded)) {
    uint32_t in_page = encoder_->count();
    if (decoded > page_max_rank_) {
      page_waste_ +=
          static_cast<double>(decoded - page_max_rank_) * (in_page - 1);
      page_max_rank_ = decoded;
    } else {
      page_waste_ += static_cast<double>(page_max_rank_ - decoded);
    }
    double lambda = static_cast<double>(format_.vbmw_lambda_milli) / 1000.0;
    if (page_waste_ > lambda && in_page >= kVbmwMinPageEntries) {
      XRANK_RETURN_NOT_OK(FlushPage());
    }
  }
  return loc;
}

float PostingListWriter::max_doc_rank() const {
  double best = std::max(max_doc_sum_, have_doc_ ? current_doc_sum_ : 0.0);
  // Inflate past double->float rounding so the stored bound never dips
  // below the true sum (readers only ever need an upper bound).
  return static_cast<float>(best * (1.0 + 1e-6));
}

Result<ListExtent> PostingListWriter::Finish() {
  XRANK_CHECK(!finished_, "double Finish");
  finished_ = true;
  if (encoder_->count() > 0) XRANK_RETURN_NOT_OK(FlushPage());
  extent_.page_count = static_cast<uint32_t>(pages_.size());
  extent_.first_page = pages_.empty() ? storage::kInvalidPage : pages_.front();
  return extent_;
}

// ---------------------------------------------------------------- cursor --

PostingListCursor::PostingListCursor(storage::BufferPool* pool,
                                     const ListExtent& extent,
                                     const PostingFormat& format)
    : pool_(pool), extent_(extent), format_(format) {
  XRANK_CHECK(format_.codec != nullptr, "posting format has no codec");
}

PostingListCursor::PostingListCursor(storage::BufferPool* pool,
                                     const ListExtent& extent,
                                     bool delta_encode_ids)
    : PostingListCursor(pool, extent, DefaultPostingFormat(delta_encode_ids)) {}

bool PostingListCursor::AtEnd() const {
  if (page_index_ >= extent_.page_count) return true;
  if (page_index_ == extent_.page_count - 1 && page_loaded_ &&
      entry_index_ >= entries_in_page_) {
    return true;
  }
  return false;
}

Status PostingListCursor::LoadPage() {
  if (block_cache_ != nullptr) {
    BlockCache::Key key{pool_->file()->file_id(),
                        extent_.first_page + page_index_};
    cached_block_ = block_cache_->Lookup(key);
    if (cached_block_ != nullptr) {
      ++block_cache_hits_;
    } else {
      // Miss: decode the whole page once and publish it. The decoded
      // vector is immutable from here on — concurrent cursors share it
      // read-only.
      XRANK_RETURN_NOT_OK(
          pool_->Read(extent_.first_page + page_index_, &page_));
      auto block = std::make_shared<std::vector<Posting>>();
      XRANK_RETURN_NOT_OK(
          format_.codec->DecodePage(page_, format_, block.get()));
      cached_block_ = std::move(block);
      block_cache_->Insert(key, cached_block_);
    }
    block_ = cached_block_.get();
  } else {
    XRANK_RETURN_NOT_OK(pool_->Read(extent_.first_page + page_index_, &page_));
    XRANK_RETURN_NOT_OK(
        format_.codec->DecodePage(page_, format_, &local_block_));
    block_ = &local_block_;
  }
  entries_in_page_ = static_cast<uint32_t>(block_->size());
  entry_index_ = 0;
  page_loaded_ = true;
  return Status::OK();
}

Status PostingListCursor::SeekToPage(uint32_t page_index) {
  if (page_index >= extent_.page_count) {
    return Status::OutOfRange("SeekToPage beyond list");
  }
  page_index_ = page_index;
  return LoadPage();
}

Result<bool> PostingListCursor::Next(Posting* out) {
  for (;;) {
    if (!page_loaded_) {
      if (page_index_ >= extent_.page_count) return false;
      XRANK_RETURN_NOT_OK(LoadPage());
    }
    if (entry_index_ >= entries_in_page_) {
      ++page_index_;
      page_loaded_ = false;
      cached_block_.reset();
      block_ = nullptr;
      if (page_index_ >= extent_.page_count) return false;
      continue;
    }
    *out = (*block_)[entry_index_];
    ++entry_index_;
    return true;
  }
}

Result<Posting> ReadPostingAt(storage::BufferPool* pool,
                              const ListExtent& extent, PostingLocation loc,
                              const PostingFormat& format) {
  XRANK_CHECK(format.codec != nullptr, "posting format has no codec");
  if (loc.page_index >= extent.page_count) {
    return Status::OutOfRange("posting page out of list bounds");
  }
  storage::Page page;
  XRANK_RETURN_NOT_OK(pool->Read(extent.first_page + loc.page_index, &page));
  std::vector<Posting> block;
  XRANK_RETURN_NOT_OK(format.codec->DecodePage(page, format, &block));
  if (loc.slot >= block.size()) {
    return Status::OutOfRange("posting slot out of page bounds");
  }
  return std::move(block[loc.slot]);
}

Result<Posting> ReadPostingAt(storage::BufferPool* pool,
                              const ListExtent& extent, PostingLocation loc,
                              bool delta_encode_ids) {
  return ReadPostingAt(pool, extent, loc,
                       DefaultPostingFormat(delta_encode_ids));
}

}  // namespace xrank::index
