#include "index/posting.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/varint.h"
#include "dewey/codec.h"
#include "index/block_cache.h"

namespace xrank::index {

namespace {

constexpr size_t kListPageHeaderSize = 2;  // u16 entry count

void EncodePosting(const Posting& posting, const dewey::DeweyId* previous,
                   std::string* out) {
  if (previous != nullptr) {
    dewey::EncodeDeweyIdDelta(*previous, posting.id, out);
  } else {
    dewey::EncodeDeweyId(posting.id, out);
  }
  uint32_t rank_bits;
  static_assert(sizeof(rank_bits) == sizeof(posting.elem_rank));
  std::memcpy(&rank_bits, &posting.elem_rank, sizeof(rank_bits));
  out->append(reinterpret_cast<const char*>(&rank_bits), sizeof(rank_bits));
  size_t count = std::min(posting.positions.size(), kMaxPositionsPerPosting);
  PutVarint32(out, static_cast<uint32_t>(count));
  uint32_t prev_pos = 0;
  for (size_t i = 0; i < count; ++i) {
    PutVarint32(out, posting.positions[i] - prev_pos);
    prev_pos = posting.positions[i];
  }
}

Result<Posting> DecodePosting(std::string_view data, size_t* offset,
                              const dewey::DeweyId* previous) {
  Posting posting;
  if (previous != nullptr) {
    XRANK_ASSIGN_OR_RETURN(posting.id,
                           dewey::DecodeDeweyIdDelta(*previous, data, offset));
  } else {
    XRANK_ASSIGN_OR_RETURN(posting.id, dewey::DecodeDeweyId(data, offset));
  }
  if (*offset + sizeof(uint32_t) > data.size()) {
    return Status::Corruption("truncated posting rank");
  }
  uint32_t rank_bits;
  std::memcpy(&rank_bits, data.data() + *offset, sizeof(rank_bits));
  std::memcpy(&posting.elem_rank, &rank_bits, sizeof(rank_bits));
  *offset += sizeof(rank_bits);
  XRANK_ASSIGN_OR_RETURN(uint32_t count, GetVarint32(data, offset));
  if (count > kMaxPositionsPerPosting) {
    return Status::Corruption("posting position count out of range");
  }
  posting.positions.reserve(count);
  uint32_t position = 0;
  for (uint32_t i = 0; i < count; ++i) {
    XRANK_ASSIGN_OR_RETURN(uint32_t delta, GetVarint32(data, offset));
    position += delta;
    posting.positions.push_back(position);
  }
  return posting;
}

}  // namespace

size_t EncodedPostingSize(const Posting& posting,
                          const dewey::DeweyId* previous) {
  std::string buffer;
  EncodePosting(posting, previous, &buffer);
  return buffer.size();
}

// ---------------------------------------------------------------- writer --

PostingListWriter::PostingListWriter(storage::PageFile* file,
                                     bool delta_encode_ids)
    : file_(file), delta_encode_ids_(delta_encode_ids) {}

Status PostingListWriter::FlushPage() {
  XRANK_ASSIGN_OR_RETURN(storage::PageId page, file_->Allocate());
  if (!pages_.empty()) {
    // Lists must occupy consecutive pages so sequential scans are cheap and
    // SeekToPage can address pages by index.
    if (page != pages_.back() + 1) {
      return Status::Internal("posting list pages not consecutive");
    }
  }
  storage::Page page_data{};
  page_data.WriteU16(0, page_count_in_page_);
  std::memcpy(page_data.data.data() + kListPageHeaderSize,
              page_entries_.data(), page_entries_.size());
  XRANK_RETURN_NOT_OK(file_->Write(page, page_data));
  pages_.push_back(page);
  page_entries_.clear();
  page_count_in_page_ = 0;
  previous_id_ = dewey::DeweyId();  // next page starts raw
  return Status::OK();
}

Result<PostingLocation> PostingListWriter::Add(const Posting& posting) {
  XRANK_CHECK(!finished_, "Add after Finish");
  const dewey::DeweyId* previous =
      (delta_encode_ids_ && page_count_in_page_ > 0) ? &previous_id_ : nullptr;
  std::string encoded;
  EncodePosting(posting, previous, &encoded);
  if (kListPageHeaderSize + page_entries_.size() + encoded.size() >
      storage::kPageSize) {
    if (page_count_in_page_ == 0) {
      return Status::InvalidArgument("posting larger than a page");
    }
    XRANK_RETURN_NOT_OK(FlushPage());
    // Re-encode raw at the start of the new page.
    encoded.clear();
    EncodePosting(posting, nullptr, &encoded);
    if (kListPageHeaderSize + encoded.size() > storage::kPageSize) {
      return Status::InvalidArgument("posting larger than a page");
    }
  }
  PostingLocation loc{static_cast<uint32_t>(pages_.size()),
                      page_count_in_page_};
  if (page_count_in_page_ == 0) {
    extent_.byte_count += kListPageHeaderSize;
    skips_.push_back(SkipEntry{loc.page_index, posting.id});
  }
  // Block-max maintenance: the descriptor tracks the page's largest
  // ElemRank so the top-k merge can bound what any posting here can score.
  skips_.back().max_rank = std::max(skips_.back().max_rank, posting.elem_rank);
  page_entries_ += encoded;
  extent_.byte_count += encoded.size();
  ++page_count_in_page_;
  previous_id_ = posting.id;
  ++extent_.entry_count;
  return loc;
}

Result<ListExtent> PostingListWriter::Finish() {
  XRANK_CHECK(!finished_, "double Finish");
  finished_ = true;
  if (page_count_in_page_ > 0) XRANK_RETURN_NOT_OK(FlushPage());
  extent_.page_count = static_cast<uint32_t>(pages_.size());
  extent_.first_page = pages_.empty() ? storage::kInvalidPage : pages_.front();
  return extent_;
}

// ---------------------------------------------------------------- cursor --

PostingListCursor::PostingListCursor(storage::BufferPool* pool,
                                     const ListExtent& extent,
                                     bool delta_encode_ids)
    : pool_(pool), extent_(extent), delta_encode_ids_(delta_encode_ids) {}

bool PostingListCursor::AtEnd() const {
  if (page_index_ >= extent_.page_count) return true;
  if (page_index_ == extent_.page_count - 1 && page_loaded_ &&
      entry_index_ >= entries_in_page_) {
    return true;
  }
  return false;
}

Status PostingListCursor::LoadPage() {
  if (block_cache_ != nullptr) return LoadCachedPage();
  XRANK_RETURN_NOT_OK(pool_->Read(extent_.first_page + page_index_, &page_));
  entries_in_page_ = page_.ReadU16(0);
  entry_index_ = 0;
  byte_offset_ = kListPageHeaderSize;
  previous_id_ = dewey::DeweyId();
  page_loaded_ = true;
  return Status::OK();
}

Status PostingListCursor::LoadCachedPage() {
  BlockCache::Key key{pool_->file()->file_id(),
                      extent_.first_page + page_index_};
  cached_block_ = block_cache_->Lookup(key);
  if (cached_block_ != nullptr) {
    ++block_cache_hits_;
  } else {
    // Miss: decode the whole page once and publish it. The decoded vector
    // is immutable from here on — concurrent cursors share it read-only.
    XRANK_RETURN_NOT_OK(pool_->Read(extent_.first_page + page_index_, &page_));
    uint16_t count = page_.ReadU16(0);
    auto block = std::make_shared<std::vector<Posting>>();
    block->reserve(count);
    size_t offset = kListPageHeaderSize;
    dewey::DeweyId previous;
    for (uint16_t i = 0; i < count; ++i) {
      const dewey::DeweyId* prev =
          (delta_encode_ids_ && i > 0) ? &previous : nullptr;
      XRANK_ASSIGN_OR_RETURN(Posting posting,
                             DecodePosting(page_.view(), &offset, prev));
      previous = posting.id;
      block->push_back(std::move(posting));
    }
    cached_block_ = std::move(block);
    block_cache_->Insert(key, cached_block_);
  }
  entries_in_page_ = static_cast<uint16_t>(cached_block_->size());
  entry_index_ = 0;
  page_loaded_ = true;
  return Status::OK();
}

Status PostingListCursor::SeekToPage(uint32_t page_index) {
  if (page_index >= extent_.page_count) {
    return Status::OutOfRange("SeekToPage beyond list");
  }
  page_index_ = page_index;
  return LoadPage();
}

Result<bool> PostingListCursor::Next(Posting* out) {
  for (;;) {
    if (!page_loaded_) {
      if (page_index_ >= extent_.page_count) return false;
      XRANK_RETURN_NOT_OK(LoadPage());
    }
    if (entry_index_ >= entries_in_page_) {
      ++page_index_;
      page_loaded_ = false;
      cached_block_.reset();
      if (page_index_ >= extent_.page_count) return false;
      continue;
    }
    if (cached_block_ != nullptr) {
      *out = (*cached_block_)[entry_index_];
      ++entry_index_;
      return true;
    }
    const dewey::DeweyId* previous =
        (delta_encode_ids_ && entry_index_ > 0) ? &previous_id_ : nullptr;
    XRANK_ASSIGN_OR_RETURN(*out,
                           DecodePosting(page_.view(), &byte_offset_, previous));
    previous_id_ = out->id;
    ++entry_index_;
    return true;
  }
}

Result<Posting> ReadPostingAt(storage::BufferPool* pool,
                              const ListExtent& extent, PostingLocation loc,
                              bool delta_encode_ids) {
  if (loc.page_index >= extent.page_count) {
    return Status::OutOfRange("posting page out of list bounds");
  }
  storage::Page page;
  XRANK_RETURN_NOT_OK(pool->Read(extent.first_page + loc.page_index, &page));
  uint16_t count = page.ReadU16(0);
  if (loc.slot >= count) {
    return Status::OutOfRange("posting slot out of page bounds");
  }
  size_t offset = kListPageHeaderSize;
  dewey::DeweyId previous;
  Posting posting;
  for (uint32_t i = 0; i <= loc.slot; ++i) {
    const dewey::DeweyId* prev =
        (delta_encode_ids && i > 0) ? &previous : nullptr;
    XRANK_ASSIGN_OR_RETURN(posting, DecodePosting(page.view(), &offset, prev));
    previous = posting.id;
  }
  return posting;
}

}  // namespace xrank::index
