#include "index/naive_index.h"

#include <algorithm>
#include <cstring>

#include "storage/btree.h"

namespace xrank::index {

namespace {

// On-disk hash index: open-addressed (linear probing) table of 12-byte
// slots (u32 element ordinal + u64 posting location; the all-ones ordinal
// marks an empty slot). A probe reads the page holding the initial slot and
// walks forward, wrapping at the table end; load factor is at most 75%.
constexpr size_t kSlotSize = 12;
constexpr uint32_t kEmptyKey = 0xFFFFFFFFu;

uint64_t HashOrdinal(uint32_t key) {
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint32_t NextPowerOfTwo(uint32_t n) {
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct HashBuildResult {
  storage::PageId first_page = storage::kInvalidPage;
  uint32_t page_count = 0;
  uint32_t slot_count = 0;
  uint32_t offset = 0;
};

Result<HashBuildResult> BuildHashIndex(
    storage::PageFile* file, storage::SharedPagePacker* packer,
    const std::vector<std::pair<uint32_t, uint64_t>>& entries) {
  HashBuildResult result;
  result.slot_count = NextPowerOfTwo(std::max<uint32_t>(
      4, static_cast<uint32_t>(entries.size() * 4 / 3 + 1)));
  uint32_t mask = result.slot_count - 1;

  // Stage the table in memory.
  struct Slot {
    uint32_t key = kEmptyKey;
    uint64_t value = 0;
  };
  std::vector<Slot> slots(result.slot_count);
  for (const auto& [key, value] : entries) {
    if (key == kEmptyKey) {
      return Status::InvalidArgument("element ordinal collides with sentinel");
    }
    uint32_t slot = static_cast<uint32_t>(HashOrdinal(key)) & mask;
    while (slots[slot].key != kEmptyKey) {
      if (slots[slot].key == key) {
        return Status::InvalidArgument("duplicate hash index key");
      }
      slot = (slot + 1) & mask;
    }
    slots[slot] = Slot{key, value};
  }
  std::string serialized(slots.size() * kSlotSize, '\0');
  for (size_t s = 0; s < slots.size(); ++s) {
    char* base = serialized.data() + s * kSlotSize;
    std::memcpy(base, &slots[s].key, 4);
    std::memcpy(base + 4, &slots[s].value, 8);
  }

  if (serialized.size() <= storage::kPageSize && packer != nullptr) {
    // Small table: share a page with other terms' tables (the same space
    // optimization the paper applies to short B+-trees, Section 4.3.1).
    XRANK_ASSIGN_OR_RETURN(storage::NodeRef ref, packer->Append(serialized));
    result.first_page = storage::NodeRefPage(ref);
    result.offset = storage::NodeRefOffset(ref);
    result.page_count = 0;  // shared with other tables
    return result;
  }

  result.page_count = static_cast<uint32_t>(
      (serialized.size() + storage::kPageSize - 1) / storage::kPageSize);
  for (uint32_t p = 0; p < result.page_count; ++p) {
    XRANK_ASSIGN_OR_RETURN(storage::PageId page, file->Allocate());
    if (result.first_page == storage::kInvalidPage) {
      result.first_page = page;
    } else if (page != result.first_page + p) {
      return Status::Internal("hash index pages not consecutive");
    }
    storage::Page page_data{};
    size_t chunk = std::min(storage::kPageSize,
                            serialized.size() - p * storage::kPageSize);
    std::memcpy(page_data.data.data(),
                serialized.data() + p * storage::kPageSize, chunk);
    XRANK_RETURN_NOT_OK(file->Write(page, page_data));
  }
  return result;
}

}  // namespace

Result<std::optional<PostingLocation>> HashIndexLookup(
    storage::BufferPool* pool, const TermInfo& info,
    uint32_t element_ordinal) {
  if (info.hash_slot_count == 0) return std::optional<PostingLocation>();
  uint32_t mask = info.hash_slot_count - 1;
  uint32_t slot = static_cast<uint32_t>(HashOrdinal(element_ordinal)) & mask;
  storage::Page page;
  uint32_t loaded_page_index = UINT32_MAX;
  for (uint32_t probes = 0; probes < info.hash_slot_count; ++probes) {
    // hash_offset > 0 means a packed sub-page table (always single-page).
    size_t byte_position = info.hash_offset + slot * kSlotSize;
    uint32_t page_index =
        static_cast<uint32_t>(byte_position / storage::kPageSize);
    if (page_index != loaded_page_index) {
      XRANK_RETURN_NOT_OK(pool->Read(info.hash_first_page + page_index, &page));
      loaded_page_index = page_index;
    }
    size_t base = byte_position % storage::kPageSize;
    uint32_t key = page.ReadU32(base);
    if (key == kEmptyKey) return std::optional<PostingLocation>();
    if (key == element_ordinal) {
      return std::optional<PostingLocation>(
          DecodePostingLocation(page.ReadU64(base + 4)));
    }
    slot = (slot + 1) & mask;
  }
  return std::optional<PostingLocation>();
}

Result<BuiltIndex> BuildNaiveIdIndex(const TermPostingsMap& naive_postings,
                                     std::unique_ptr<storage::PageFile> file,
                                     const BuildOptions& build) {
  BuiltIndex index;
  index.kind = IndexKind::kNaiveId;
  XRANK_ASSIGN_OR_RETURN(const PostingCodec* codec,
                         ResolvePostingCodec(build.format));
  XRANK_RETURN_NOT_OK(index.lexicon.SetFormatSpec(build.format));
  XRANK_ASSIGN_OR_RETURN(storage::PageId header_page, file->Allocate());
  if (header_page != 0) return Status::Internal("header page must be 0");

  for (const auto& [term, postings] : naive_postings) {
    PostingFormat format = MakeWriterFormat(codec, build.format, postings,
                                            /*delta_encode_ids=*/false);
    PostingListWriter writer(file.get(), format);
    for (const Posting& posting : postings) {
      XRANK_RETURN_NOT_OK(writer.Add(posting).status());
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent extent, writer.Finish());
    index.stats.list_pages += extent.page_count;
    index.stats.list_used_bytes += extent.byte_count;
    index.stats.entry_count += extent.entry_count;
    TermInfo info;
    info.list = extent;
    info.rank_scale = format.rank_scale;
    index.lexicon.Add(term, info);
  }

  XRANK_RETURN_NOT_OK(WriteIndexTrailer(file.get(), IndexKind::kNaiveId,
                                        index.lexicon, &index.stats));
  index.file = std::move(file);
  return index;
}

Result<BuiltIndex> BuildNaiveRankIndex(
    const TermPostingsMap& naive_postings,
    std::unique_ptr<storage::PageFile> file, const BuildOptions& build) {
  BuiltIndex index;
  index.kind = IndexKind::kNaiveRank;
  XRANK_ASSIGN_OR_RETURN(const PostingCodec* codec,
                         ResolvePostingCodec(build.format));
  XRANK_RETURN_NOT_OK(index.lexicon.SetFormatSpec(build.format));
  XRANK_ASSIGN_OR_RETURN(storage::PageId header_page, file->Allocate());
  if (header_page != 0) return Status::Internal("header page must be 0");

  struct StagedHash {
    std::string term;
    std::vector<std::pair<uint32_t, uint64_t>> entries;  // ordinal -> loc
  };
  std::vector<StagedHash> staged;

  for (const auto& [term, postings] : naive_postings) {
    std::vector<const Posting*> by_rank;
    by_rank.reserve(postings.size());
    for (const Posting& posting : postings) by_rank.push_back(&posting);
    std::sort(by_rank.begin(), by_rank.end(),
              [](const Posting* a, const Posting* b) {
                if (a->elem_rank != b->elem_rank) {
                  return a->elem_rank > b->elem_rank;
                }
                return a->id < b->id;
              });

    PostingFormat format = MakeWriterFormat(codec, build.format, postings,
                                            /*delta_encode_ids=*/false);
    PostingListWriter writer(file.get(), format);
    StagedHash stage;
    stage.term = term;
    stage.entries.reserve(postings.size());
    for (const Posting* posting : by_rank) {
      XRANK_ASSIGN_OR_RETURN(PostingLocation loc, writer.Add(*posting));
      stage.entries.emplace_back(posting->id.component(0),
                                 EncodePostingLocation(loc));
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent extent, writer.Finish());
    index.stats.list_pages += extent.page_count;
    index.stats.list_used_bytes += extent.byte_count;
    index.stats.entry_count += extent.entry_count;
    TermInfo info;
    info.list = extent;
    info.rank_scale = format.rank_scale;
    index.lexicon.Add(term, info);
    staged.push_back(std::move(stage));
  }

  uint32_t index_pages_before = file->page_count();
  storage::SharedPagePacker packer(file.get());
  for (StagedHash& stage : staged) {
    XRANK_ASSIGN_OR_RETURN(
        HashBuildResult hash,
        BuildHashIndex(file.get(), &packer, stage.entries));
    TermInfo info = *index.lexicon.Find(stage.term);
    info.hash_first_page = hash.first_page;
    info.hash_page_count = hash.page_count;
    info.hash_slot_count = hash.slot_count;
    info.hash_offset = hash.offset;
    index.lexicon.Add(stage.term, info);
  }
  index.stats.index_pages = file->page_count() - index_pages_before;

  XRANK_RETURN_NOT_OK(WriteIndexTrailer(file.get(), IndexKind::kNaiveRank,
                                        index.lexicon, &index.stats));
  index.file = std::move(file);
  return index;
}

}  // namespace xrank::index
