#ifndef XRANK_INDEX_POSTING_TYPES_H_
#define XRANK_INDEX_POSTING_TYPES_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "dewey/dewey_id.h"
#include "storage/page.h"

namespace xrank::index {

// One inverted-list entry: the Dewey ID of an element that *directly*
// contains the keyword, the element's ElemRank, and the (document-global)
// word positions of the keyword inside that element (paper Section 4.2.1).
struct Posting {
  dewey::DeweyId id;
  float elem_rank = 0.0f;
  std::vector<uint32_t> positions;

  bool operator==(const Posting& other) const = default;
};

// Postings whose position list would overflow a page are truncated to this
// many positions (an element repeating one term 400+ times adds nothing to
// existence or window computation).
inline constexpr size_t kMaxPositionsPerPosting = 400;

// Physical location of a posting within a list: page index *within the
// list's page run* plus the slot on that page. Encoded into B+-tree values.
// `slot` is 32-bit in memory but the on-disk encoding packs it into 16 bits;
// EncodePostingLocation asserts the bound rather than truncating silently.
struct PostingLocation {
  uint32_t page_index = 0;
  uint32_t slot = 0;
};

inline constexpr uint32_t kMaxPostingSlot = 0xFFFF;

inline uint64_t EncodePostingLocation(PostingLocation loc) {
  XRANK_CHECK(loc.slot <= kMaxPostingSlot,
              "posting slot overflows the 16-bit location encoding");
  return (static_cast<uint64_t>(loc.page_index) << 16) | loc.slot;
}
inline PostingLocation DecodePostingLocation(uint64_t encoded) {
  return PostingLocation{static_cast<uint32_t>(encoded >> 16),
                         static_cast<uint32_t>(encoded & 0xFFFF)};
}

// One skip-block descriptor: the first Dewey ID stored on page `page_index`
// of a list's page run, plus the largest ElemRank of any posting on that
// page. The builder records one per page; a query cursor can then skip
// every page whose successor descriptor still precedes the merge target,
// without decoding the postings in between, and the top-k merge uses
// `max_rank` as a block-max score bound to skip page runs that cannot beat
// the current k-th result. Under quantized rank encodings `max_rank` is the
// maximum *decoded* rank of the page, so the bound stays exact for what a
// query cursor will actually observe.
struct SkipEntry {
  uint32_t page_index = 0;
  dewey::DeweyId first_id;
  float max_rank = 0.0f;

  bool operator==(const SkipEntry& other) const = default;
};

// Extent of one term's list within a page file.
struct ListExtent {
  storage::PageId first_page = storage::kInvalidPage;
  uint32_t page_count = 0;
  uint64_t entry_count = 0;
  // Encoded bytes actually used (page headers + postings). Space reporting
  // uses this; page_count * kPageSize additionally includes the trailing
  // padding of the last page of each list.
  uint64_t byte_count = 0;
};

}  // namespace xrank::index

#endif  // XRANK_INDEX_POSTING_TYPES_H_
