#include "index/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bitpack.h"
#include "common/check.h"
#include "common/varint.h"
#include "dewey/codec.h"
#include "index/reorder.h"

namespace xrank::index {

namespace {

constexpr size_t kListPageHeaderSize = 2;    // varint pages: u16 entry count
constexpr size_t kBlockPageHeaderSize = 12;  // block pages, see below
constexpr size_t kPackBlock = 128;           // values per bit-packed block
constexpr uint32_t kMaxDeweyDepth = 1u << 20;  // mirrors dewey/codec.cc
// Per-page cap on variable-stream lengths (suffix components, position
// deltas). Real pages stay far below this — the values themselves must fit
// in 4 KiB — but a bit-flipped header with zero-width blocks could other-
// wise demand a multi-gigabyte allocation before any bounds check fires.
constexpr uint32_t kMaxPageStreamValues = 1u << 20;

// Wrap-safe zigzag over u32 differences: bijective mod 2^32, so the
// non-monotone document heads of rank-ordered lists round-trip, while the
// small +/- deltas of Dewey-ordered lists map to small codes.
inline uint32_t ZigzagEncode(uint32_t delta) {
  return (delta << 1) ^ (0u - (delta >> 31));
}
inline uint32_t ZigzagDecode(uint32_t z) { return (z >> 1) ^ (0u - (z & 1)); }

// --------------------------------------------------------- rank helpers --

void AppendEncodedRank(float rank, const PostingFormat& format,
                       std::string* out) {
  switch (format.ranks) {
    case RankEncoding::kFloat32: {
      uint32_t bits;
      static_assert(sizeof(bits) == sizeof(rank));
      std::memcpy(&bits, &rank, sizeof(bits));
      out->append(reinterpret_cast<const char*>(&bits), sizeof(bits));
      return;
    }
    case RankEncoding::kQuantU8: {
      uint8_t q = static_cast<uint8_t>(
          QuantizeRank(rank, format.rank_scale, format.ranks));
      out->push_back(static_cast<char>(q));
      return;
    }
    case RankEncoding::kQuantU16: {
      uint16_t q = static_cast<uint16_t>(
          QuantizeRank(rank, format.rank_scale, format.ranks));
      char buf[2] = {static_cast<char>(q & 0xFF),
                     static_cast<char>(q >> 8)};
      out->append(buf, 2);
      return;
    }
  }
  XRANK_CHECK(false, "unknown rank encoding");
}

Result<float> DecodeRankBytes(const uint8_t* p, const PostingFormat& format) {
  switch (format.ranks) {
    case RankEncoding::kFloat32: {
      float rank;
      std::memcpy(&rank, p, sizeof(rank));
      return rank;
    }
    case RankEncoding::kQuantU8:
      return DequantizeRank(p[0], format.rank_scale, format.ranks);
    case RankEncoding::kQuantU16:
      return DequantizeRank(
          static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8),
          format.rank_scale, format.ranks);
  }
  return Status::Corruption("unknown rank encoding");
}

// ---------------------------------------------------------- varint codec --
//
// The pre-codec on-disk layout, kept byte-identical (under float ranks) as
// the compatibility baseline: u16 entry count, then back-to-back postings,
// each = Dewey ID (prefix-delta against the previous posting on the page,
// raw for the page's first posting or when delta coding is off) + rank +
// varint position count + varint position deltas.

void EncodeVarintPosting(const Posting& posting,
                         const dewey::DeweyId* previous,
                         const PostingFormat& format, std::string* out) {
  if (previous != nullptr) {
    dewey::EncodeDeweyIdDelta(*previous, posting.id, out);
  } else {
    dewey::EncodeDeweyId(posting.id, out);
  }
  AppendEncodedRank(posting.elem_rank, format, out);
  size_t count = std::min(posting.positions.size(), kMaxPositionsPerPosting);
  PutVarint32(out, static_cast<uint32_t>(count));
  uint32_t prev_pos = 0;
  for (size_t i = 0; i < count; ++i) {
    PutVarint32(out, posting.positions[i] - prev_pos);
    prev_pos = posting.positions[i];
  }
}

Result<Posting> DecodeVarintPosting(std::string_view data, size_t* offset,
                                    const dewey::DeweyId* previous,
                                    const PostingFormat& format) {
  Posting posting;
  if (previous != nullptr) {
    XRANK_ASSIGN_OR_RETURN(posting.id,
                           dewey::DecodeDeweyIdDelta(*previous, data, offset));
  } else {
    XRANK_ASSIGN_OR_RETURN(posting.id, dewey::DecodeDeweyId(data, offset));
  }
  size_t rank_bytes = RankEncodedBytes(format.ranks);
  if (*offset + rank_bytes > data.size()) {
    return Status::Corruption("truncated posting rank");
  }
  XRANK_ASSIGN_OR_RETURN(
      posting.elem_rank,
      DecodeRankBytes(reinterpret_cast<const uint8_t*>(data.data()) + *offset,
                      format));
  *offset += rank_bytes;
  XRANK_ASSIGN_OR_RETURN(uint32_t count, GetVarint32(data, offset));
  if (count > kMaxPositionsPerPosting) {
    return Status::Corruption("posting position count out of range");
  }
  posting.positions.reserve(count);
  uint32_t position = 0;
  for (uint32_t i = 0; i < count; ++i) {
    XRANK_ASSIGN_OR_RETURN(uint32_t delta, GetVarint32(data, offset));
    position += delta;
    posting.positions.push_back(position);
  }
  return posting;
}

class VarintPageEncoder final : public PostingPageEncoder {
 public:
  explicit VarintPageEncoder(const PostingFormat& format) : format_(format) {}

  Result<bool> Add(const Posting& posting) override {
    const dewey::DeweyId* previous =
        (format_.delta_encode_ids && count_ > 0) ? &previous_id_ : nullptr;
    size_t before = buffer_.size();
    EncodeVarintPosting(posting, previous, format_, &buffer_);
    if (kListPageHeaderSize + buffer_.size() > storage::kPageSize) {
      buffer_.resize(before);
      if (count_ == 0) {
        return Status::InvalidArgument("posting larger than a page");
      }
      return false;
    }
    previous_id_ = posting.id;
    ++count_;
    return true;
  }

  Result<size_t> Flush(storage::Page* page) override {
    page->WriteU16(0, count_);
    std::memcpy(page->data.data() + kListPageHeaderSize, buffer_.data(),
                buffer_.size());
    size_t used = kListPageHeaderSize + buffer_.size();
    buffer_.clear();
    count_ = 0;
    previous_id_ = dewey::DeweyId();
    return used;
  }

  uint32_t count() const override { return count_; }

 private:
  PostingFormat format_;
  std::string buffer_;
  uint16_t count_ = 0;
  dewey::DeweyId previous_id_;
};

class VarintPostingCodec final : public PostingCodec {
 public:
  uint32_t id() const override { return kPostingCodecVarint; }
  std::string_view name() const override { return "varint"; }

  std::unique_ptr<PostingPageEncoder> NewEncoder(
      const PostingFormat& format) const override {
    return std::make_unique<VarintPageEncoder>(format);
  }

  Status DecodePage(const storage::Page& page, const PostingFormat& format,
                    std::vector<Posting>* out) const override {
    uint16_t count = page.ReadU16(0);
    out->clear();
    out->reserve(count);
    size_t offset = kListPageHeaderSize;
    dewey::DeweyId previous;
    for (uint16_t i = 0; i < count; ++i) {
      const dewey::DeweyId* prev =
          (format.delta_encode_ids && i > 0) ? &previous : nullptr;
      XRANK_ASSIGN_OR_RETURN(
          Posting posting, DecodeVarintPosting(page.view(), &offset, prev,
                                               format));
      previous = posting.id;
      out->push_back(std::move(posting));
    }
    return Status::OK();
  }
};

// ----------------------------------------------------------- block codecs --
//
// bp128 and varint-GB share one page shape: the per-posting fields are
// transposed into six u32 streams, each compressed independently, followed
// by a flat rank array. Page layout:
//
//   offset 0   u16  entry count
//   offset 2   u16  reserved (0)
//   offset 4   u32  total suffix components on the page
//   offset 8   u32  total position deltas on the page
//   offset 12  streams (depth, lcp, head-gap, suffix, pos-count, pos-delta)
//   then       ranks: count * {4 (f32) | 1 (u8) | 2 (u16)} bytes
//
// Streams (one value per posting unless noted):
//   depth      Dewey depth
//   lcp        components shared with the previous posting on the page
//              (0 for the page's first posting and for rank-ordered lists)
//   head-gap   zigzag(comp0 - previous comp0), previous head 0 at page
//              start; for depth == 0 the chain value is 0
//   suffix     components [max(lcp,1), depth) of each posting, concatenated
//              (comp0 travels in the head-gap chain)
//   pos-count  number of positions (capped at kMaxPositionsPerPosting)
//   pos-delta  per posting: positions[0], then successive differences
//
// bp128 compresses each stream in blocks of 128 values: a 1-byte bit width
// (0..32, derived from the block maximum; width 0 has no payload bytes)
// followed by ceil(k * width / 8) bytes of LSB-first packed values.
// varint-GB compresses each stream in groups of 4 values: a control byte
// holding four 2-bit (byte length - 1) codes, then 1-4 little-endian bytes
// per value; a tail group stores bytes only for the values present.

enum StreamIx {
  kSDepth = 0,
  kSLcp,
  kSHead,
  kSSuffix,
  kSPosCount,
  kSPosDelta,
  kNumStreams,
};

inline unsigned VgbByteLen(uint32_t v) {
  return 1 + (v > 0xFF) + (v > 0xFFFF) + (v > 0xFFFFFF);
}

size_t PackBp128Stream(const std::vector<uint32_t>& values, uint8_t* out) {
  size_t off = 0;
  for (size_t i = 0; i < values.size(); i += kPackBlock) {
    size_t k = std::min(kPackBlock, values.size() - i);
    uint32_t bits = 0;
    for (size_t j = 0; j < k; ++j) bits |= values[i + j];
    unsigned width = bitpack::BitWidth(bits);
    out[off++] = static_cast<uint8_t>(width);
    bitpack::PackBits(values.data() + i, k, width, out + off);
    off += bitpack::PackedBytes(k, width);
  }
  return off;
}

size_t PackVgbStream(const std::vector<uint32_t>& values, uint8_t* out) {
  size_t off = 0;
  for (size_t i = 0; i < values.size(); i += 4) {
    size_t k = std::min<size_t>(4, values.size() - i);
    size_t ctrl_pos = off++;
    uint8_t ctrl = 0;
    for (size_t j = 0; j < k; ++j) {
      uint32_t v = values[i + j];
      unsigned len = VgbByteLen(v);
      ctrl |= static_cast<uint8_t>((len - 1) << (2 * j));
      for (unsigned b = 0; b < len; ++b) {
        out[off++] = static_cast<uint8_t>(v >> (8 * b));
      }
    }
    out[ctrl_pos] = ctrl;
  }
  return off;
}

bool ReadBp128Stream(const uint8_t* base, size_t* off, size_t n,
                     std::vector<uint32_t>* out) {
  out->resize(n);
  size_t i = 0;
  while (i < n) {
    if (*off >= storage::kPageSize) return false;
    unsigned width = base[(*off)++];
    if (width > 32) return false;
    size_t k = std::min(kPackBlock, n - i);
    size_t packed = bitpack::PackedBytes(k, width);
    if (*off + packed > storage::kPageSize) return false;
    if (!bitpack::UnpackBits(base + *off, base + *off + packed, k, width,
                             out->data() + i)) {
      return false;
    }
    *off += packed;
    i += k;
  }
  return true;
}

bool ReadVgbStream(const uint8_t* base, size_t* off, size_t n,
                   std::vector<uint32_t>* out) {
  // Dispatched shuffle-table decode (common/bitpack.h): SSSE3/NEON when the
  // host has them, scalar otherwise. The whole page is readable, so the
  // SIMD kernels' bounded overread past the encoded extent is safe.
  if (*off > storage::kPageSize) return false;
  out->resize(n);
  size_t consumed = 0;
  if (!bitpack::UnpackGroupVarint(base + *off, base + storage::kPageSize, n,
                                  out->data(), &consumed)) {
    return false;
  }
  *off += consumed;
  return true;
}

// Per-stream incremental size accounting so the encoder can decide page fit
// in O(1) per posting (the writer's page-at-a-time protocol forbids
// repacking across pages). Tracks both codecs' shapes; only the fields of
// the active codec are meaningful.
struct StreamSizer {
  // bp128: bytes of completed 128-value blocks + open-block state. The OR
  // of a block's values has the same bit width as its maximum.
  size_t full_bytes = 0;
  uint32_t tail_count = 0;
  uint32_t tail_or = 0;
  // varint-GB: payload bytes + value count (control bytes derived).
  size_t payload_bytes = 0;
  size_t value_count = 0;
};

class BlockPageEncoder final : public PostingPageEncoder {
 public:
  BlockPageEncoder(const PostingFormat& format, bool bitpacked)
      : format_(format), bitpacked_(bitpacked) {}

  Result<bool> Add(const Posting& posting) override;
  Result<size_t> Flush(storage::Page* page) override;
  uint32_t count() const override { return count_; }

 private:
  void SizerAppend(StreamSizer* sizer, uint32_t v) const {
    if (bitpacked_) {
      if (sizer->tail_count == 0) sizer->tail_or = 0;
      sizer->tail_or |= v;
      if (++sizer->tail_count == kPackBlock) {
        sizer->full_bytes +=
            1 + bitpack::PackedBytes(kPackBlock,
                                     bitpack::BitWidth(sizer->tail_or));
        sizer->tail_count = 0;
        sizer->tail_or = 0;
      }
    } else {
      sizer->payload_bytes += VgbByteLen(v);
      ++sizer->value_count;
    }
  }

  size_t SizerBytes(const StreamSizer& sizer) const {
    if (bitpacked_) {
      size_t bytes = sizer.full_bytes;
      if (sizer.tail_count > 0) {
        bytes += 1 + bitpack::PackedBytes(sizer.tail_count,
                                          bitpack::BitWidth(sizer.tail_or));
      }
      return bytes;
    }
    return sizer.payload_bytes + (sizer.value_count + 3) / 4;
  }

  void Append(StreamIx stream, uint32_t v) {
    streams_[stream].push_back(v);
    SizerAppend(&sizers_[stream], v);
  }

  PostingFormat format_;
  bool bitpacked_;
  std::vector<uint32_t> streams_[kNumStreams];
  StreamSizer sizers_[kNumStreams];
  std::vector<float> ranks_;
  uint32_t count_ = 0;
  dewey::DeweyId prev_id_;
  uint32_t prev_head_ = 0;
};

Result<bool> BlockPageEncoder::Add(const Posting& posting) {
  if (count_ > kMaxPostingSlot) return false;  // u16 count/slot ceiling

  // Snapshot so a posting that does not fit can be rolled back exactly.
  size_t saved_sizes[kNumStreams];
  StreamSizer saved_sizers[kNumStreams];
  for (int s = 0; s < kNumStreams; ++s) {
    saved_sizes[s] = streams_[s].size();
    saved_sizers[s] = sizers_[s];
  }

  const std::vector<uint32_t>& comps = posting.id.components();
  uint32_t depth = static_cast<uint32_t>(comps.size());
  uint32_t lcp = 0;
  if (format_.delta_encode_ids && count_ > 0) {
    lcp = static_cast<uint32_t>(posting.id.CommonPrefixLength(prev_id_));
  }
  uint32_t head = depth > 0 ? comps[0] : 0;

  Append(kSDepth, depth);
  Append(kSLcp, lcp);
  Append(kSHead, ZigzagEncode(head - prev_head_));
  if (depth > 0) {
    for (uint32_t j = std::max(lcp, 1u); j < depth; ++j) {
      Append(kSSuffix, comps[j]);
    }
  }
  size_t pos_count =
      std::min(posting.positions.size(), kMaxPositionsPerPosting);
  Append(kSPosCount, static_cast<uint32_t>(pos_count));
  uint32_t prev_pos = 0;
  for (size_t i = 0; i < pos_count; ++i) {
    Append(kSPosDelta, posting.positions[i] - prev_pos);
    prev_pos = posting.positions[i];
  }

  size_t total = kBlockPageHeaderSize +
                 (count_ + 1) * RankEncodedBytes(format_.ranks);
  for (int s = 0; s < kNumStreams; ++s) total += SizerBytes(sizers_[s]);

  bool overflow = total > storage::kPageSize ||
                  streams_[kSSuffix].size() > kMaxPageStreamValues ||
                  streams_[kSPosDelta].size() > kMaxPageStreamValues;
  if (overflow) {
    for (int s = 0; s < kNumStreams; ++s) {
      streams_[s].resize(saved_sizes[s]);
      sizers_[s] = saved_sizers[s];
    }
    if (count_ == 0) {
      return Status::InvalidArgument("posting larger than a page");
    }
    return false;
  }

  ranks_.push_back(posting.elem_rank);
  prev_id_ = posting.id;
  prev_head_ = head;
  ++count_;
  return true;
}

Result<size_t> BlockPageEncoder::Flush(storage::Page* page) {
  page->WriteU16(0, static_cast<uint16_t>(count_));
  page->WriteU16(2, 0);
  page->WriteU32(4, static_cast<uint32_t>(streams_[kSSuffix].size()));
  page->WriteU32(8, static_cast<uint32_t>(streams_[kSPosDelta].size()));
  uint8_t* base = reinterpret_cast<uint8_t*>(page->data.data());
  size_t off = kBlockPageHeaderSize;
  for (int s = 0; s < kNumStreams; ++s) {
    size_t packed = bitpacked_ ? PackBp128Stream(streams_[s], base + off)
                               : PackVgbStream(streams_[s], base + off);
    XRANK_CHECK(packed == SizerBytes(sizers_[s]),
                "block stream size accounting mismatch");
    off += packed;
  }
  size_t rank_bytes = RankEncodedBytes(format_.ranks);
  XRANK_CHECK(off + count_ * rank_bytes <= storage::kPageSize,
              "block page overflow");
  for (float rank : ranks_) {
    switch (format_.ranks) {
      case RankEncoding::kFloat32:
        std::memcpy(base + off, &rank, sizeof(rank));
        break;
      case RankEncoding::kQuantU8:
        base[off] = static_cast<uint8_t>(
            QuantizeRank(rank, format_.rank_scale, format_.ranks));
        break;
      case RankEncoding::kQuantU16: {
        uint32_t q = QuantizeRank(rank, format_.rank_scale, format_.ranks);
        base[off] = static_cast<uint8_t>(q & 0xFF);
        base[off + 1] = static_cast<uint8_t>(q >> 8);
        break;
      }
    }
    off += rank_bytes;
  }
  for (int s = 0; s < kNumStreams; ++s) {
    streams_[s].clear();
    sizers_[s] = StreamSizer{};
  }
  ranks_.clear();
  count_ = 0;
  prev_id_ = dewey::DeweyId();
  prev_head_ = 0;
  return off;
}

Status DecodeBlockPage(const storage::Page& page, const PostingFormat& format,
                       bool bitpacked, std::vector<Posting>* out) {
  const uint8_t* base = reinterpret_cast<const uint8_t*>(page.data.data());
  uint32_t count = page.ReadU16(0);
  if (count == 0) {
    out->clear();
    return Status::OK();
  }
  // No clear() before the resize below: surviving slots keep their heap
  // buffers (Dewey components, positions), so a recycled *out makes the
  // whole decode allocation-free once warm.
  uint32_t suffix_total = page.ReadU32(4);
  uint32_t pos_total = page.ReadU32(8);
  if (suffix_total > kMaxPageStreamValues ||
      pos_total > kMaxPageStreamValues) {
    return Status::Corruption("posting block stream totals out of range");
  }

  // Reused scratch keeps the hot decode path allocation-free once warm.
  thread_local std::vector<uint32_t> scratch[kNumStreams];
  const size_t counts[kNumStreams] = {count,        count, count,
                                      suffix_total, count, pos_total};
  size_t off = kBlockPageHeaderSize;
  for (int s = 0; s < kNumStreams; ++s) {
    bool ok = bitpacked
                  ? ReadBp128Stream(base, &off, counts[s], &scratch[s])
                  : ReadVgbStream(base, &off, counts[s], &scratch[s]);
    if (!ok) return Status::Corruption("truncated posting block stream");
  }
  size_t rank_bytes = RankEncodedBytes(format.ranks);
  if (off + static_cast<size_t>(count) * rank_bytes > storage::kPageSize) {
    return Status::Corruption("truncated posting block ranks");
  }

  out->resize(count);
  // Hoisted stream pointers (scratch is thread_local — keep TLS lookups out
  // of the per-posting loop) and bulk range checks over whole streams, so
  // the reconstruction loop only validates the cross-stream invariants.
  const uint32_t* depth_s = scratch[kSDepth].data();
  const uint32_t* lcp_s = scratch[kSLcp].data();
  const uint32_t* head_s = scratch[kSHead].data();
  const uint32_t* suffix_s = scratch[kSSuffix].data();
  const uint32_t* pos_count_s = scratch[kSPosCount].data();
  const uint32_t* pos_delta_s = scratch[kSPosDelta].data();
  uint32_t depth_max = 0;
  uint32_t pos_count_max = 0;
  for (uint32_t i = 0; i < count; ++i) {
    depth_max = std::max(depth_max, depth_s[i]);
    pos_count_max = std::max(pos_count_max, pos_count_s[i]);
  }
  if (depth_max > kMaxDeweyDepth) {
    return Status::Corruption("absurd Dewey depth in posting block");
  }
  if (pos_count_max > kMaxPositionsPerPosting) {
    return Status::Corruption("posting position count out of range");
  }
  const uint8_t* rank_base = base + off;
  const bool float_ranks = format.ranks == RankEncoding::kFloat32;
  uint32_t prev_head = 0;
  size_t suffix_idx = 0;
  size_t pos_idx = 0;
  for (uint32_t i = 0; i < count; ++i) {
    Posting& posting = (*out)[i];
    uint32_t depth = depth_s[i];
    uint32_t lcp = lcp_s[i];
    uint32_t head = prev_head + ZigzagDecode(head_s[i]);
    prev_head = head;
    if (lcp > depth || (i == 0 && lcp != 0)) {
      return Status::Corruption("posting block prefix length out of range");
    }
    if (depth > 0) {
      uint32_t start = std::max(lcp, 1u);
      uint32_t suffix_count = depth - start;
      if (suffix_idx + suffix_count > suffix_total) {
        return Status::Corruption("posting block suffix stream underrun");
      }
      const uint32_t* suffix = suffix_s + suffix_idx;
      if (lcp > 0) {
        // The previous posting lives in a different slot of *out, so its
        // component storage never aliases this posting's.
        const std::vector<uint32_t>& prev_comps =
            (*out)[i - 1].id.components();
        if (lcp > prev_comps.size()) {
          return Status::Corruption(
              "posting block prefix exceeds previous depth");
        }
        posting.id.AssignParts(prev_comps.data(), lcp, suffix, suffix_count);
      } else {
        posting.id.AssignParts(&head, 1, suffix, suffix_count);
      }
      suffix_idx += suffix_count;
    } else {
      posting.id.AssignComponents(nullptr, 0);
    }

    uint32_t pos_count = pos_count_s[i];
    if (pos_idx + pos_count > pos_total) {
      return Status::Corruption("posting block position stream underrun");
    }
    posting.positions.resize(pos_count);
    uint32_t position = 0;
    for (uint32_t j = 0; j < pos_count; ++j) {
      position += pos_delta_s[pos_idx + j];
      posting.positions[j] = position;
    }
    pos_idx += pos_count;

    if (float_ranks) {
      std::memcpy(&posting.elem_rank,
                  rank_base + static_cast<size_t>(i) * sizeof(float),
                  sizeof(float));
    } else {
      XRANK_ASSIGN_OR_RETURN(
          posting.elem_rank,
          DecodeRankBytes(rank_base + static_cast<size_t>(i) * rank_bytes,
                          format));
    }
  }
  if (suffix_idx != suffix_total || pos_idx != pos_total) {
    return Status::Corruption("posting block stream totals inconsistent");
  }
  return Status::OK();
}

class Bp128PostingCodec final : public PostingCodec {
 public:
  uint32_t id() const override { return kPostingCodecBp128; }
  std::string_view name() const override { return "bp128"; }
  std::unique_ptr<PostingPageEncoder> NewEncoder(
      const PostingFormat& format) const override {
    return std::make_unique<BlockPageEncoder>(format, /*bitpacked=*/true);
  }
  Status DecodePage(const storage::Page& page, const PostingFormat& format,
                    std::vector<Posting>* out) const override {
    return DecodeBlockPage(page, format, /*bitpacked=*/true, out);
  }
};

class VgbPostingCodec final : public PostingCodec {
 public:
  uint32_t id() const override { return kPostingCodecVarintGb; }
  std::string_view name() const override { return "vgb"; }
  std::unique_ptr<PostingPageEncoder> NewEncoder(
      const PostingFormat& format) const override {
    return std::make_unique<BlockPageEncoder>(format, /*bitpacked=*/false);
  }
  Status DecodePage(const storage::Page& page, const PostingFormat& format,
                    std::vector<Posting>* out) const override {
    return DecodeBlockPage(page, format, /*bitpacked=*/false, out);
  }
};

}  // namespace

// --------------------------------------------------------------- registry --

const std::vector<const PostingCodec*>& RegisteredPostingCodecs() {
  static const VarintPostingCodec varint;
  static const Bp128PostingCodec bp128;
  static const VgbPostingCodec vgb;
  static const std::vector<const PostingCodec*> registry = {&varint, &bp128,
                                                            &vgb};
  return registry;
}

const PostingCodec* FindPostingCodec(uint32_t id) {
  for (const PostingCodec* codec : RegisteredPostingCodecs()) {
    if (codec->id() == id) return codec;
  }
  return nullptr;
}

const PostingCodec* FindPostingCodecByName(std::string_view name) {
  for (const PostingCodec* codec : RegisteredPostingCodecs()) {
    if (codec->name() == name) return codec;
  }
  return nullptr;
}

Result<const PostingCodec*> ResolvePostingCodec(
    const PostingFormatSpec& spec) {
  const PostingCodec* codec = FindPostingCodec(spec.codec_id);
  if (codec == nullptr) {
    return Status::Corruption(
        "index built with unregistered posting codec id " +
        std::to_string(spec.codec_id));
  }
  if (static_cast<uint32_t>(spec.ranks) >= kRankEncodingCount) {
    return Status::Corruption(
        "index built with unknown rank encoding " +
        std::to_string(static_cast<uint32_t>(spec.ranks)));
  }
  if (spec.reorder_id > kMaxReorderId) {
    return Status::Corruption(
        "index built with unknown document-reorder pass id " +
        std::to_string(spec.reorder_id));
  }
  return codec;
}

PostingFormat DefaultPostingFormat(bool delta_encode_ids) {
  PostingFormat format;
  format.codec = FindPostingCodec(kPostingCodecVarint);
  format.ranks = RankEncoding::kFloat32;
  format.rank_scale = 1.0f;
  format.delta_encode_ids = delta_encode_ids;
  return format;
}

// ----------------------------------------------------------- rank helpers --

size_t RankEncodedBytes(RankEncoding encoding) {
  switch (encoding) {
    case RankEncoding::kFloat32:
      return 4;
    case RankEncoding::kQuantU8:
      return 1;
    case RankEncoding::kQuantU16:
      return 2;
  }
  XRANK_CHECK(false, "unknown rank encoding");
  return 4;
}

uint32_t RankQuantMax(RankEncoding encoding) {
  switch (encoding) {
    case RankEncoding::kFloat32:
      return 0;
    case RankEncoding::kQuantU8:
      return 255;
    case RankEncoding::kQuantU16:
      return 65535;
  }
  return 0;
}

std::string_view RankEncodingName(RankEncoding encoding) {
  switch (encoding) {
    case RankEncoding::kFloat32:
      return "f32";
    case RankEncoding::kQuantU8:
      return "q8";
    case RankEncoding::kQuantU16:
      return "q16";
  }
  return "?";
}

float DequantizeRank(uint32_t q, float scale, RankEncoding encoding) {
  uint32_t qmax = RankQuantMax(encoding);
  if (qmax == 0) return 0.0f;
  return scale * (static_cast<float>(q) / static_cast<float>(qmax));
}

uint32_t QuantizeRank(float rank, float scale, RankEncoding encoding) {
  uint32_t qmax = RankQuantMax(encoding);
  if (qmax == 0) return 0;
  if (!std::isfinite(rank) || !(rank > 0.0f) || !(scale > 0.0f)) return 0;
  float x = rank / scale;
  if (x > 1.0f) x = 1.0f;
  uint32_t q = static_cast<uint32_t>(x * static_cast<float>(qmax));
  if (q > qmax) q = qmax;
  // Float rounding can land one step off in either direction; nudge to the
  // exact floor so Dequantize(q) <= rank < Dequantize(q + 1).
  while (q < qmax && DequantizeRank(q + 1, scale, encoding) <= rank) ++q;
  while (q > 0 && DequantizeRank(q, scale, encoding) > rank) --q;
  return q;
}

float RankQuantizationBound(RankEncoding encoding, float scale) {
  uint32_t qmax = RankQuantMax(encoding);
  if (qmax == 0) return 0.0f;
  return scale / static_cast<float>(qmax);
}

PostingFormat MakeWriterFormat(const PostingCodec* codec,
                               const PostingFormatSpec& spec,
                               const std::vector<Posting>& postings,
                               bool delta_encode_ids) {
  PostingFormat format;
  format.codec = codec;
  format.ranks = spec.ranks;
  format.rank_scale = spec.ranks == RankEncoding::kFloat32
                          ? 1.0f
                          : ComputeRankScale(postings);
  format.delta_encode_ids = delta_encode_ids;
  format.vbmw_lambda_milli = spec.vbmw_lambda_milli;
  return format;
}

float ComputeRankScale(const std::vector<Posting>& postings) {
  float scale = 0.0f;
  for (const Posting& posting : postings) {
    if (std::isfinite(posting.elem_rank) && posting.elem_rank > scale) {
      scale = posting.elem_rank;
    }
  }
  return scale > 0.0f ? scale : 1.0f;
}

}  // namespace xrank::index
