#ifndef XRANK_INDEX_BLOCK_CACHE_H_
#define XRANK_INDEX_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "index/posting.h"
#include "storage/page.h"

namespace xrank::index {

// Decoded-posting-block cache: a sharded, byte-budgeted LRU over fully
// decoded posting pages, keyed by (PageFile::file_id, page id). Sits above
// the BufferPool on the Dewey fast path — the pool caches raw page bytes,
// this cache skips the varint + prefix-delta decode entirely for hot pages.
//
// Entries are immutable shared_ptr<const vector<Posting>>; a cursor can keep
// serving from a block after it has been evicted (the shared_ptr keeps it
// alive), so eviction never invalidates an in-flight reader.
//
// Consistency mirrors the result cache: index files are immutable after
// build, and every writer (DeleteDocument / CompactDeletions) clears the
// cache wholesale under the engine's exclusive state lock. Keys carry the
// process-unique file id, so blocks of a destroyed file can never alias a
// later file that reuses its page numbers.
class BlockCache {
 public:
  using Block = std::vector<Posting>;
  using BlockPtr = std::shared_ptr<const Block>;

  struct Key {
    uint64_t file_id = 0;
    storage::PageId page = 0;
    bool operator==(const Key& other) const = default;
  };

  // `capacity_bytes` == 0 builds a disabled cache (every Lookup misses,
  // Insert is a no-op); `num_shards` == 0 picks an automatic stripe count.
  explicit BlockCache(size_t capacity_bytes, size_t num_shards = 0);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // On hit, returns the cached block (promoted to most-recently-used);
  // nullptr on miss.
  BlockPtr Lookup(const Key& key);

  // Inserts the decoded block, evicting least-recently-used blocks of its
  // shard until the shard is back under its byte budget. Blocks larger than
  // a whole shard are not cached at all (they would evict everything for
  // one use).
  void Insert(const Key& key, BlockPtr block);

  // Drops every entry (writer-side wholesale invalidation).
  void Clear();

  // Drops only the entries of one page file — the per-segment invalidation
  // the live-update path uses when a flush or compaction retires a segment:
  // untouched segments (and the base index) keep their decoded blocks warm.
  // Counts the dropped blocks into cache.segment_invalidations and returns
  // the number dropped. File ids are process-unique, so a retired file's
  // keys can never alias a later file; erasing is about returning memory
  // promptly, not correctness.
  size_t EraseFile(uint64_t file_id);

  // Approximate memory charge of a decoded block: vector headers plus the
  // postings' inline and heap (positions) storage.
  static size_t BlockCharge(const Block& block);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t lookups() const { return lookups_.load(std::memory_order_relaxed); }
  uint64_t insertions() const {
    return insertions_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t shard_count() const { return shards_.size(); }
  size_t cached_blocks() const;
  size_t charged_bytes() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // Mix the two halves; file ids are small sequential integers.
      uint64_t h = key.file_id * 0x9e3779b97f4a7c15ull;
      h ^= static_cast<uint64_t>(key.page) + (h >> 29);
      return static_cast<size_t>(h * 0xbf58476d1ce4e5b9ull);
    }
  };

  struct Entry {
    Key key;
    BlockPtr block;
    size_t charge = 0;
  };

  struct Shard {
    std::mutex mutex;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t charged_bytes = 0;
  };

  Shard& ShardFor(const Key& key);

  size_t shard_capacity_bytes_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  // Process-wide aggregates mirroring the per-cache atomics above.
  metrics::Counter* registry_hits_;
  metrics::Counter* registry_misses_;
  metrics::Counter* registry_insertions_;
  metrics::Counter* registry_evictions_;
  metrics::Gauge* registry_bytes_;
  metrics::Counter* registry_invalidations_;
};

}  // namespace xrank::index

#endif  // XRANK_INDEX_BLOCK_CACHE_H_
