#ifndef XRANK_INDEX_INDEX_BUILDER_H_
#define XRANK_INDEX_INDEX_BUILDER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "index/analyzer.h"
#include "index/codec.h"
#include "index/lexicon.h"
#include "index/posting.h"
#include "index/reorder.h"
#include "storage/page_file.h"

namespace xrank::index {

// term -> postings, in the order the physical list will store them.
using TermPostingsMap = std::map<std::string, std::vector<Posting>>;

// The five physical index organizations evaluated in the paper (Section 5).
enum class IndexKind : uint8_t {
  kNaiveId = 1,   // element-granularity postings (ancestors replicated),
                  // ID order, equality merge join
  kNaiveRank = 2, // same postings, rank order + hash index on element ID
  kDil = 3,       // Dewey inverted list, Dewey order (Section 4.2)
  kRdil = 4,      // rank order + dense B+-tree on Dewey ID (Section 4.3)
  kHdil = 5,      // Dewey-ordered list reused as B+-tree leaf level +
                  // rank-ordered prefix (Section 4.4)
};

std::string_view IndexKindName(IndexKind kind);

// What the per-posting rank field carries. The paper's query processing is
// "applicable to other ways of ranking XML elements, such as those using
// text tf-idf measures" (Section 4) — both sources flow through identical
// index structures and algorithms.
enum class RankSource {
  kElemRank,  // the element's hyperlink/containment importance (Section 3)
  kTfIdf,     // (1 + ln tf) · ln(1 + N/df), normalized to (0, 1]
};

struct ExtractionOptions {
  AnalyzerOptions analyzer;
  RankSource rank_source = RankSource::kElemRank;
  // Also produce element-granularity postings with replicated ancestors
  // (required by the two naive baselines; skip to save memory).
  bool build_naive = true;
  // Document indexes to skip entirely. Used by document-granularity
  // deletion (paper Section 4.5): a compaction re-extracts postings with
  // the deleted documents masked out and rebuilds the physical indexes.
  std::vector<uint32_t> exclude_documents;
  // Worker threads for tokenization (documents are partitioned across
  // workers and the per-shard results merged in document order, so the
  // output is identical for every thread count). 0 = hardware concurrency,
  // 1 = sequential.
  int num_threads = 0;
};

// Threading knob shared by the physical-list builders (DIL/RDIL/HDIL).
// Terms are partitioned into contiguous shards; each worker encodes its
// shard's complete posting-list page runs into a scratch page file, and the
// coordinator splices the scratch pages back in term order — so the on-disk
// bytes are identical to the sequential build for every thread count.
struct BuildOptions {
  // 0 = hardware concurrency, 1 = sequential reference path.
  int num_threads = 0;
  // Posting-page codec and rank encoding for every list the build writes.
  // Recorded in the index header page and the MANIFEST; validated against
  // the codec registry at open. Default: the varint compatibility baseline
  // with lossless float ranks (byte-identical to pre-codec indexes).
  PostingFormatSpec format;
  // Build-time document reordering (index/reorder.h). When enabled the
  // engine computes a BP permutation of the global doc ids from the
  // extracted postings, applies it before any physical index is built, and
  // records the pass id in `format.reorder_id` (header + MANIFEST) so Open
  // re-derives the identical permutation. Live delta/segment builds always
  // run identity-ordered.
  ReorderOptions reorder;
};

// Output of the shared posting-extraction pass over the graph.
struct ExtractionResult {
  // Per term, postings of elements that DIRECTLY contain the term, in Dewey
  // order. Input to DIL / RDIL / HDIL builders.
  TermPostingsMap dewey_postings;
  // Per term, postings at element granularity with every ancestor
  // replicated (the naive adaptation of Section 4.1). Posting IDs are
  // single-component Dewey IDs holding the element's global preorder
  // ordinal. Input to the naive builders.
  TermPostingsMap naive_postings;
  // Maps element ordinals back to real Dewey IDs (naive result decoding).
  std::vector<dewey::DeweyId> ordinal_to_dewey;
  uint64_t element_count = 0;
  uint64_t direct_occurrence_count = 0;  // (term, element) pairs
};

// Walks the graph in document order, tokenizes all value text with
// document-global positions, and attaches each element's ElemRank
// (elem_ranks is indexed by NodeId, as produced by rank::ComputeElemRank).
Result<ExtractionResult> ExtractPostings(const graph::XmlGraph& graph,
                                         const std::vector<double>& elem_ranks,
                                         const ExtractionOptions& options);

// Size accounting for Table 1. Bytes = pages * kPageSize, i.e. the physical
// footprint of each structure.
struct IndexStats {
  uint64_t list_pages = 0;      // inverted-list pages (incl. HDIL rank prefix)
  uint64_t index_pages = 0;     // auxiliary pages: B+-trees, hash indexes
  uint64_t lexicon_pages = 0;
  uint64_t entry_count = 0;     // total postings across all lists
  // Encoded list bytes actually used; the page figures additionally count
  // the per-list trailing-page padding (each term's list starts on a fresh
  // page so sequential scans stay contiguous).
  uint64_t list_used_bytes = 0;

  uint64_t list_bytes() const { return list_used_bytes; }
  uint64_t list_file_bytes() const { return list_pages * storage::kPageSize; }
  uint64_t index_bytes() const { return index_pages * storage::kPageSize; }
};

// A finished physical index: one page file plus its in-memory lexicon.
struct BuiltIndex {
  IndexKind kind = IndexKind::kDil;
  std::unique_ptr<storage::PageFile> file;
  Lexicon lexicon;
  IndexStats stats;
};

// --- persistence shared by all index kinds ---

// Serializes the lexicon into trailing pages and fills in the header page
// (page 0, which the builder must have allocated first).
Status WriteIndexTrailer(storage::PageFile* file, IndexKind kind,
                         const Lexicon& lexicon, IndexStats* stats);

// Re-opens a previously built index file of any kind.
Result<BuiltIndex> OpenIndex(std::unique_ptr<storage::PageFile> file);

// Internal helper shared by builders: writes `blob` across fresh pages.
Result<ListExtent> WriteBlobToPages(storage::PageFile* file,
                                    std::string_view blob);

// --- helpers shared by the parallel builders ---

// Resolves a BuildOptions/ExtractionOptions thread knob (0 = hardware).
size_t ResolveBuildThreads(int num_threads);

// Appends every page of `scratch` to `file` in order (consecutively) and
// returns the page id in `file` where scratch page 0 landed; list extents
// recorded against the scratch file are rebased by that offset. Returns 0
// pages copied as first_page == file->page_count() (callers never rebase
// empty extents).
Result<storage::PageId> AppendScratchPages(storage::PageFile* file,
                                           const storage::PageFile& scratch);

// Splits `count` items into at most `num_shards` contiguous [begin, end)
// ranges, balanced by the per-item weights (each shard is one worker's
// unit of work, so balance matters more than an exact shard count).
std::vector<std::pair<size_t, size_t>> PartitionByWeight(
    const std::vector<uint64_t>& weights, size_t num_shards);

}  // namespace xrank::index

#endif  // XRANK_INDEX_INDEX_BUILDER_H_
