#include "index/hdil_index.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "storage/btree.h"

namespace xrank::index {

namespace {

// One worker's output for a contiguous term shard. The sequential layout
// places every full list before every rank-prefix list, so the two phases
// land in separate scratch files and the coordinator splices all phase-1
// runs first, then all phase-2 runs. Page separators store page indices
// relative to each list's run, so they need no rebasing.
struct HdilShardOutput {
  std::unique_ptr<storage::PageFile> dewey_scratch;
  std::unique_ptr<storage::PageFile> rank_scratch;
  std::vector<ListExtent> dewey_extents;  // one per term, shard order
  std::vector<ListExtent> rank_extents;   // one per term, shard order
  std::vector<std::vector<std::pair<dewey::DeweyId, uint64_t>>> separators;
  // Skip-block descriptors for the full Dewey lists (page indices relative
  // to each list's run).
  std::vector<std::vector<SkipEntry>> skips;
  std::vector<float> rank_scales;    // per-term quantization scale
  std::vector<float> max_doc_ranks;  // per-term sum-aggregation bound
  Status status = Status::OK();
};

Status EncodeHdilShard(
    const std::vector<const TermPostingsMap::value_type*>& terms,
    size_t begin, size_t end, const HdilOptions& options,
    const PostingCodec* codec, const PostingFormatSpec& spec,
    HdilShardOutput* out) {
  out->dewey_scratch = storage::PageFile::CreateInMemory();
  out->rank_scratch = storage::PageFile::CreateInMemory();
  out->dewey_extents.reserve(end - begin);
  out->rank_extents.reserve(end - begin);
  out->separators.reserve(end - begin);
  out->rank_scales.reserve(end - begin);
  out->max_doc_ranks.reserve(end - begin);
  for (size_t t = begin; t < end; ++t) {
    const std::vector<Posting>& postings = terms[t]->second;

    // Phase 1: the full Dewey-ordered list (same physical format as DIL),
    // capturing one separator per full-list page.
    PostingFormat format = MakeWriterFormat(codec, spec, postings,
                                            /*delta_encode_ids=*/true);
    PostingListWriter writer(out->dewey_scratch.get(), format);
    std::vector<std::pair<dewey::DeweyId, uint64_t>> separators;
    for (const Posting& posting : postings) {
      XRANK_ASSIGN_OR_RETURN(PostingLocation loc, writer.Add(posting));
      if (loc.slot == 0) {
        separators.emplace_back(posting.id, loc.page_index);
      }
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent extent, writer.Finish());
    out->dewey_extents.push_back(extent);
    out->separators.push_back(std::move(separators));
    out->skips.push_back(writer.TakeSkips());
    out->rank_scales.push_back(format.rank_scale);
    out->max_doc_ranks.push_back(writer.max_doc_rank());

    // Select the rank-ordered prefix: top max(min_rank_entries,
    // fraction * n) postings by ElemRank.
    size_t keep = std::max<size_t>(
        options.min_rank_entries,
        static_cast<size_t>(options.rank_fraction *
                            static_cast<double>(postings.size())));
    keep = std::min(keep, postings.size());
    std::vector<Posting> rank_prefix = postings;
    std::sort(rank_prefix.begin(), rank_prefix.end(),
              [](const Posting& a, const Posting& b) {
                if (a.elem_rank != b.elem_rank) {
                  return a.elem_rank > b.elem_rank;
                }
                return a.id < b.id;
              });
    rank_prefix.resize(keep);

    // Phase 2: the rank-ordered prefix list (raw IDs: rank order destroys
    // prefix locality). Reuses the full list's rank_scale — the prefix is
    // a subset, so the scale still dominates every rank, and readers look
    // up one scale per term.
    PostingFormat rank_format = format;
    rank_format.delta_encode_ids = false;
    PostingListWriter rank_writer(out->rank_scratch.get(), rank_format);
    for (const Posting& posting : rank_prefix) {
      XRANK_RETURN_NOT_OK(rank_writer.Add(posting).status());
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent rank_extent, rank_writer.Finish());
    out->rank_extents.push_back(rank_extent);
  }
  return Status::OK();
}

}  // namespace

Result<BuiltIndex> BuildHdilIndex(const TermPostingsMap& dewey_postings,
                                  std::unique_ptr<storage::PageFile> file,
                                  const HdilOptions& options,
                                  const BuildOptions& build) {
  BuiltIndex index;
  index.kind = IndexKind::kHdil;
  XRANK_ASSIGN_OR_RETURN(const PostingCodec* codec,
                         ResolvePostingCodec(build.format));
  XRANK_RETURN_NOT_OK(index.lexicon.SetFormatSpec(build.format));
  XRANK_ASSIGN_OR_RETURN(storage::PageId header_page, file->Allocate());
  if (header_page != 0) return Status::Internal("header page must be 0");

  std::vector<const TermPostingsMap::value_type*> terms;
  terms.reserve(dewey_postings.size());
  std::vector<uint64_t> weights;
  weights.reserve(dewey_postings.size());
  for (const auto& entry : dewey_postings) {
    terms.push_back(&entry);
    weights.push_back(entry.second.size() + 1);
  }

  size_t num_workers =
      std::min(ResolveBuildThreads(build.num_threads), terms.size());
  std::vector<std::pair<size_t, size_t>> shards =
      PartitionByWeight(weights, std::max<size_t>(num_workers, 1));

  std::vector<HdilShardOutput> outputs(shards.size());
  if (num_workers <= 1) {
    for (size_t s = 0; s < shards.size(); ++s) {
      outputs[s].status =
          EncodeHdilShard(terms, shards[s].first, shards[s].second, options,
                          codec, build.format, &outputs[s]);
    }
  } else {
    ThreadPool pool(static_cast<int>(num_workers));
    pool.ParallelFor(0, shards.size(), 1,
                     [&](size_t begin, size_t end, size_t) {
                       for (size_t s = begin; s < end; ++s) {
                         outputs[s].status = EncodeHdilShard(
                             terms, shards[s].first, shards[s].second,
                             options, codec, build.format, &outputs[s]);
                       }
                     });
  }

  // Phase 1 splice: the full Dewey-ordered lists of every shard, in term
  // order.
  for (size_t s = 0; s < shards.size(); ++s) {
    XRANK_RETURN_NOT_OK(outputs[s].status);
    XRANK_ASSIGN_OR_RETURN(
        storage::PageId offset,
        AppendScratchPages(file.get(), *outputs[s].dewey_scratch));
    for (size_t i = 0; i < outputs[s].dewey_extents.size(); ++i) {
      ListExtent extent = outputs[s].dewey_extents[i];
      if (extent.page_count > 0) extent.first_page += offset;
      index.stats.list_pages += extent.page_count;
      index.stats.list_used_bytes += extent.byte_count;
      index.stats.entry_count += extent.entry_count;
      TermInfo info;
      info.list = extent;
      info.skips = std::move(outputs[s].skips[i]);
      info.rank_scale = outputs[s].rank_scales[i];
      info.max_doc_rank = outputs[s].max_doc_ranks[i];
      index.lexicon.Add(terms[shards[s].first + i]->first, std::move(info));
    }
  }

  // Phase 2 splice: rank-ordered prefix lists (counted as list space: they
  // are inverted-list data, mirroring Table 1 where HDIL's "Inv. List"
  // column is slightly larger than DIL's).
  for (size_t s = 0; s < shards.size(); ++s) {
    XRANK_ASSIGN_OR_RETURN(
        storage::PageId offset,
        AppendScratchPages(file.get(), *outputs[s].rank_scratch));
    for (size_t i = 0; i < outputs[s].rank_extents.size(); ++i) {
      ListExtent extent = outputs[s].rank_extents[i];
      if (extent.page_count > 0) extent.first_page += offset;
      index.stats.list_pages += extent.page_count;
      index.stats.list_used_bytes += extent.byte_count;
      const std::string& term = terms[shards[s].first + i]->first;
      TermInfo info = *index.lexicon.Find(term);
      info.rank_list = extent;
      index.lexicon.Add(term, info);
    }
  }

  // Phase 3: sparse B+-trees — only the levels above the list pages are
  // stored (the full list acts as the leaf level, Section 4.4.1). Tree
  // loads allocate absolute page pointers, so this stays on the
  // coordinator.
  uint32_t index_pages_before = file->page_count();
  storage::SharedPagePacker packer(file.get());
  for (size_t s = 0; s < shards.size(); ++s) {
    for (size_t i = 0; i < outputs[s].separators.size(); ++i) {
      storage::BtreeBuilder builder(file.get(), &packer);
      for (const auto& [id, page_index] : outputs[s].separators[i]) {
        XRANK_RETURN_NOT_OK(builder.Add(id, page_index));
      }
      XRANK_ASSIGN_OR_RETURN(storage::BtreeBuilder::BuildStats tree_stats,
                             builder.Finish());
      const std::string& term = terms[shards[s].first + i]->first;
      TermInfo info = *index.lexicon.Find(term);
      info.btree_root = tree_stats.root;
      index.lexicon.Add(term, info);
    }
  }
  index.stats.index_pages = file->page_count() - index_pages_before;

  XRANK_RETURN_NOT_OK(WriteIndexTrailer(file.get(), IndexKind::kHdil,
                                        index.lexicon, &index.stats));
  index.file = std::move(file);
  return index;
}

}  // namespace xrank::index
