#include "index/hdil_index.h"

#include <algorithm>

#include "storage/btree.h"

namespace xrank::index {

Result<BuiltIndex> BuildHdilIndex(const TermPostingsMap& dewey_postings,
                                  std::unique_ptr<storage::PageFile> file,
                                  const HdilOptions& options) {
  BuiltIndex index;
  index.kind = IndexKind::kHdil;
  XRANK_ASSIGN_OR_RETURN(storage::PageId header_page, file->Allocate());
  if (header_page != 0) return Status::Internal("header page must be 0");

  struct StagedTerm {
    std::string term;
    // One separator per full-list page: (first Dewey ID on page, page index).
    std::vector<std::pair<dewey::DeweyId, uint64_t>> page_separators;
    // Rank-ordered prefix postings.
    std::vector<Posting> rank_prefix;
  };
  std::vector<StagedTerm> staged;

  // Phase 1: the full Dewey-ordered lists (same physical format as DIL).
  for (const auto& [term, postings] : dewey_postings) {
    PostingListWriter writer(file.get(), /*delta_encode_ids=*/true);
    StagedTerm stage;
    stage.term = term;
    for (const Posting& posting : postings) {
      XRANK_ASSIGN_OR_RETURN(PostingLocation loc, writer.Add(posting));
      if (loc.slot == 0) {
        stage.page_separators.emplace_back(posting.id, loc.page_index);
      }
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent extent, writer.Finish());
    index.stats.list_pages += extent.page_count;
    index.stats.list_used_bytes += extent.byte_count;
    index.stats.entry_count += extent.entry_count;
    TermInfo info;
    info.list = extent;
    index.lexicon.Add(term, info);

    // Select the rank-ordered prefix: top max(min_rank_entries,
    // fraction * n) postings by ElemRank.
    size_t keep = std::max<size_t>(
        options.min_rank_entries,
        static_cast<size_t>(options.rank_fraction *
                            static_cast<double>(postings.size())));
    keep = std::min(keep, postings.size());
    stage.rank_prefix = postings;
    std::sort(stage.rank_prefix.begin(), stage.rank_prefix.end(),
              [](const Posting& a, const Posting& b) {
                if (a.elem_rank != b.elem_rank) {
                  return a.elem_rank > b.elem_rank;
                }
                return a.id < b.id;
              });
    stage.rank_prefix.resize(keep);
    staged.push_back(std::move(stage));
  }

  // Phase 2: rank-ordered prefix lists (counted as list space: they are
  // inverted-list data, mirroring Table 1 where HDIL's "Inv. List" column
  // is slightly larger than DIL's).
  for (StagedTerm& stage : staged) {
    PostingListWriter writer(file.get(), /*delta_encode_ids=*/false);
    for (const Posting& posting : stage.rank_prefix) {
      XRANK_RETURN_NOT_OK(writer.Add(posting).status());
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent extent, writer.Finish());
    index.stats.list_pages += extent.page_count;
    index.stats.list_used_bytes += extent.byte_count;
    TermInfo info = *index.lexicon.Find(stage.term);
    info.rank_list = extent;
    index.lexicon.Add(stage.term, info);
  }

  // Phase 3: sparse B+-trees — only the levels above the list pages are
  // stored (the full list acts as the leaf level, Section 4.4.1).
  uint32_t index_pages_before = file->page_count();
  storage::SharedPagePacker packer(file.get());
  for (StagedTerm& stage : staged) {
    storage::BtreeBuilder builder(file.get(), &packer);
    for (const auto& [id, page_index] : stage.page_separators) {
      XRANK_RETURN_NOT_OK(builder.Add(id, page_index));
    }
    XRANK_ASSIGN_OR_RETURN(storage::BtreeBuilder::BuildStats tree_stats,
                           builder.Finish());
    TermInfo info = *index.lexicon.Find(stage.term);
    info.btree_root = tree_stats.root;
    index.lexicon.Add(stage.term, info);
  }
  index.stats.index_pages = file->page_count() - index_pages_before;

  XRANK_RETURN_NOT_OK(WriteIndexTrailer(file.get(), IndexKind::kHdil,
                                        index.lexicon, &index.stats));
  index.file = std::move(file);
  return index;
}

}  // namespace xrank::index
