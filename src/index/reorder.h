#ifndef XRANK_INDEX_REORDER_H_
#define XRANK_INDEX_REORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "index/posting_types.h"

namespace xrank::index {

struct ExtractionResult;

// --- build-time document reordering -----------------------------------------
//
// Every ranked-retrieval structure the engine serves from — prefix-delta
// Dewey postings, skip blocks, per-page max_rank, VBMW blocks, per-term
// max_doc_rank — improves when similar documents sit on adjacent global doc
// ids. The reorder pass computes a permutation of the global document ids
// by recursive graph bisection (BP; Dhulipala et al., "Compressing Graphs
// and Indexes with Recursive Graph Bisection") over the document–term
// bipartite graph, and the permutation is applied to the extracted postings
// before any physical index is built: the document graph and ElemRank stay
// in ingest order (the power iteration is float-summation-order sensitive),
// so the permutation is a pure gather over extraction output.
//
// Determinism contract: the pass is RNG-free — the initial split of every
// range is first-half/second-half of the current order, move gains use a
// fixed-order summation per document, ties break on ascending doc id, and
// recursion branches operate on disjoint ranges — so the permutation (and
// therefore every downstream index byte) is identical for every thread
// count.

// Reorder pass ids, recorded in the posting format (index header page +
// MANIFEST `reorder` token) and validated at open like codec ids. Legacy
// indexes carry zeros, which mean identity order.
enum class ReorderAlgorithm : uint32_t {
  kIdentity = 0,
  kBp = 1,  // recursive graph bisection
};

constexpr uint32_t kReorderIdentity = 0;
constexpr uint32_t kReorderBp = 1;
constexpr uint32_t kMaxReorderId = kReorderBp;

std::string_view ReorderAlgorithmName(uint32_t reorder_id);

struct ReorderOptions {
  ReorderAlgorithm algorithm = ReorderAlgorithm::kIdentity;
  // Recursion depth cap; the effective depth is also bounded by
  // log2(doc_count / min_partition).
  uint32_t max_depth = 16;
  // Ranges at or below this many documents are left in their current order.
  uint32_t min_partition = 16;
  // Swap rounds per bisection (each round recomputes move gains, sorts both
  // halves by gain and swaps while the paired gain sum is positive; a round
  // with no swaps terminates the bisection early).
  uint32_t iterations = 20;
  // Worker threads for the disjoint recursion branches (0 = hardware
  // concurrency). The output is byte-identical for every value.
  int num_threads = 0;

  bool enabled() const { return algorithm != ReorderAlgorithm::kIdentity; }
  uint32_t id() const { return static_cast<uint32_t>(algorithm); }
};

// A permutation of the global doc-id space [0, size). Empty vectors mean
// identity (the universal default; legacy indexes and live segments never
// carry a permutation).
//
// Terminology: "identity" ids are ingest-order document indexes (the graph
// and ElemRank spaces); "physical" ids are the permuted ids the reordered
// indexes store and queries return.
struct DocPermutation {
  std::vector<uint32_t> new_to_old;  // physical id -> identity id
  std::vector<uint32_t> old_to_new;  // identity id -> physical id

  bool empty() const { return new_to_old.empty(); }
  size_t size() const { return new_to_old.size(); }

  // Maps an identity doc id into the physical space (identity for ids past
  // the permuted range — live documents keep their ids).
  uint32_t ToPhysical(uint32_t identity_doc) const {
    return identity_doc < old_to_new.size() ? old_to_new[identity_doc]
                                            : identity_doc;
  }
  uint32_t ToIdentity(uint32_t physical_doc) const {
    return physical_doc < new_to_old.size() ? new_to_old[physical_doc]
                                            : physical_doc;
  }
};

// Computes the BP permutation from the extracted Dewey postings (the
// document of a posting is the first Dewey component; every document in
// [0, doc_count) is covered, including documents with no postings, which
// keep their relative order). Returns an empty (identity) permutation when
// the pass is disabled or doc_count < 2.
DocPermutation ComputeReorderPermutation(
    const std::map<std::string, std::vector<Posting>>& dewey_postings,
    uint32_t doc_count, const ReorderOptions& options);

// Applies the permutation to extraction output in place, before any
// physical index is built:
//   - dewey_postings: per-document runs are reordered by physical id and
//     the first Dewey component of every posting is remapped (word
//     positions are document-local and ranks are per-element, so both are
//     permutation-invariant);
//   - naive_postings / ordinal_to_dewey: element ordinals are renumbered so
//     documents stay contiguous in physical-id order, lists are reordered
//     accordingly, and the ordinal map is gathered into the new numbering
//     with its Dewey ids remapped.
// No-op for an empty permutation.
void ApplyDocPermutation(const DocPermutation& perm,
                         ExtractionResult* extracted);

}  // namespace xrank::index

#endif  // XRANK_INDEX_REORDER_H_
