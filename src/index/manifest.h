#ifndef XRANK_INDEX_MANIFEST_H_
#define XRANK_INDEX_MANIFEST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "storage/page_file.h"

namespace xrank::index {

// Crash-safe commit protocol for an on-disk index directory.
//
// Builders write every index to `<name>.xrank.tmp`, fsync it, and then
// commit the directory in one pass:
//   1. rename each `<name>.xrank.tmp` -> `<name>.xrank`
//   2. write MANIFEST.tmp (per-file page count + CRC32C + kind, with a
//      trailing whole-manifest CRC), fsync it
//   3. rename MANIFEST.tmp -> MANIFEST  (the atomic commit point)
//   4. fsync the directory
// A crash anywhere before step 3 leaves no MANIFEST (or the previous one);
// open refuses the directory with a precise error instead of serving
// partial state. A crash after step 3 is a completed commit.
constexpr char kManifestFileName[] = "MANIFEST";

struct ManifestEntry {
  std::string file;  // basename within the index directory
  IndexKind kind = IndexKind::kDil;
  uint32_t page_count = 0;
  uint32_t crc = 0;  // CRC32C over the logical page payloads, in order
  // Posting format the file was written with. Serialized as trailing
  // "codec <id> ranks <id>" tokens; legacy manifests without them parse as
  // the default (varint, float32). ParseManifest refuses unregistered
  // codec ids, so a mixed-version index directory fails at open with a
  // clean error instead of misdecoding pages.
  PostingFormatSpec format;
};

// One immutable flushed segment of the live-update path: a DIL index page
// file over the segment's documents plus a framed `.docs` source log (WAL
// record framing) that regenerates those documents on open or compaction.
// The seq range ties the segment back to the write-ahead log: WAL replay
// skips AddDocument records whose seq a committed segment already covers,
// which makes replay after a crash between segment commit and WAL rewrite
// idempotent.
struct SegmentManifestEntry {
  // The segment's index page file; `index.kind` is always kDil (the only
  // processor the segment merge path queries).
  ManifestEntry index;
  std::string docs_file;  // framed document log, basename within the dir
  uint64_t docs_bytes = 0;
  uint32_t docs_crc = 0;   // whole-file CRC32C of the docs log
  uint32_t doc_base = 0;   // first global document id in this segment
  uint32_t doc_count = 0;  // contiguous ids [doc_base, doc_base + doc_count)
  uint64_t first_seq = 0;  // WAL sequence range covered, inclusive
  uint64_t last_seq = 0;
};

struct Manifest {
  std::vector<ManifestEntry> entries;
  // Flushed live-update segments, in doc_base order. Empty for an index
  // directory that has never absorbed live updates (and for every legacy
  // manifest, which parses unchanged).
  std::vector<SegmentManifestEntry> segments;
};

// Text round-trip (format: "xrank-manifest v1" header, one "file ..." line
// per base-index entry and one "segment ..." line per flushed segment,
// "commit <crc>" trailer covering all preceding bytes).
std::string SerializeManifest(const Manifest& manifest);
Result<Manifest> ParseManifest(std::string_view text);

// Durably writes `<dir>/MANIFEST` via MANIFEST.tmp + fsync + rename +
// directory fsync.
Status WriteManifestFile(const std::string& dir, const Manifest& manifest);

// Reads and validates `<dir>/MANIFEST`. NotFound when the directory was
// never committed (or a commit was torn before its rename).
Result<Manifest> ReadManifestFile(const std::string& dir);

// CRC32C over every logical page payload of `file`, in page order. Reading
// through the disk backend also re-verifies each page's own checksum.
Result<uint32_t> ChecksumPageFile(const storage::PageFile& file);

// Full integrity check of one committed file: page count, per-page header
// checksums, and the whole-file CRC against the manifest entry. On
// corruption `first_bad_page` (when non-null) reports the first damaged
// page, or kInvalidPage when the mismatch is file-level.
Status VerifyManifestEntry(const std::string& dir, const ManifestEntry& entry,
                           storage::PageId* first_bad_page = nullptr);

// Full integrity check of one flushed segment: its index page file (as
// VerifyManifestEntry) plus the docs log's byte count and whole-file CRC.
Status VerifySegmentEntry(const std::string& dir,
                          const SegmentManifestEntry& entry,
                          storage::PageId* first_bad_page = nullptr);

// Renames `from` -> `to` (same filesystem), with strerror detail.
Status RenameFile(const std::string& from, const std::string& to);

// fsyncs a directory so committed renames survive power loss.
Status SyncDirectory(const std::string& dir);

}  // namespace xrank::index

#endif  // XRANK_INDEX_MANIFEST_H_
