#include "index/analyzer.h"

#include <algorithm>

#include "common/string_util.h"

namespace xrank::index {

namespace {

bool IsTokenChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

}  // namespace

Analyzer::Analyzer(AnalyzerOptions options) : options_(std::move(options)) {
  std::sort(options_.stopwords.begin(), options_.stopwords.end());
}

bool Analyzer::IsStopword(const std::string& term) const {
  return std::binary_search(options_.stopwords.begin(),
                            options_.stopwords.end(), term);
}

std::vector<Analyzer::Token> Analyzer::Tokenize(
    std::string_view text, uint32_t* next_position) const {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsTokenChar(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && IsTokenChar(text[i])) ++i;
    if (i == start) break;
    std::string term = AsciiToLower(text.substr(start, i - start));
    uint32_t position = (*next_position)++;
    if (term.size() < options_.min_token_length || IsStopword(term)) {
      continue;  // the position is still consumed, preserving distances
    }
    tokens.push_back(Token{std::move(term), position});
  }
  return tokens;
}

std::string Analyzer::NormalizeKeyword(std::string_view keyword) const {
  uint32_t position = 0;
  std::vector<Token> tokens = Tokenize(keyword, &position);
  if (tokens.size() != 1) return "";
  return tokens[0].term;
}

}  // namespace xrank::index
