#include "index/delta_segment.h"

#include <utility>

#include "index/dil_index.h"
#include "xml/parser.h"

namespace xrank::index {

namespace {

// Parses every source body. Local document i is sources[i]; the record's
// uri becomes the document uri (graph-level link resolution and result
// decoration both read it).
Result<std::vector<xml::Document>> ParseSources(
    const std::vector<storage::LogRecord>& sources) {
  std::vector<xml::Document> documents;
  documents.reserve(sources.size());
  for (const storage::LogRecord& record : sources) {
    if (record.type != storage::LogRecord::Type::kAddDocument) {
      return Status::InvalidArgument(
          "segment sources must be AddDocument records");
    }
    XRANK_ASSIGN_OR_RETURN(xml::Document doc,
                           xml::ParseDocument(record.body, record.uri));
    documents.push_back(std::move(doc));
  }
  return documents;
}

// The shared build steps of BuildLiveSegment and OpenLiveSegment: graph,
// per-document ranks, and the alignment check between the two. Fills in
// everything except the physical index and the pool.
Status BuildSegmentState(const std::vector<xml::Document>& documents,
                         const LiveSegmentOptions& options,
                         LiveSegment* segment) {
  // Per-document ElemRank: every document is ranked over its own graph in
  // isolation (see the header for why). Node ids within a single-document
  // graph are assigned by the same traversal as within the combined graph,
  // so the concatenation below lines up node-for-node.
  std::vector<std::vector<double>> per_doc_ranks;
  per_doc_ranks.reserve(documents.size());
  for (const xml::Document& doc : documents) {
    graph::GraphBuilder solo_builder(options.graph);
    XRANK_RETURN_NOT_OK(solo_builder.AddDocument(doc));
    XRANK_ASSIGN_OR_RETURN(graph::XmlGraph solo,
                           std::move(solo_builder).Finalize());
    XRANK_ASSIGN_OR_RETURN(rank::ElemRankResult ranked,
                           rank::ComputeElemRank(solo, options.elem_rank));
    per_doc_ranks.push_back(std::move(ranked.ranks));
  }

  graph::GraphBuilder builder(options.graph);
  for (const xml::Document& doc : documents) {
    XRANK_RETURN_NOT_OK(builder.AddDocument(doc));
  }
  XRANK_ASSIGN_OR_RETURN(segment->graph, std::move(builder).Finalize());

  // Concatenate the per-document vectors, verifying the combined graph's
  // numbering as we go: document d's nodes must occupy one contiguous run
  // whose length equals d's single-document node count. A mismatch means
  // the builder's numbering contract changed and the ranks below would be
  // attached to the wrong elements — corrupt silently — so refuse loudly.
  segment->elem_ranks.clear();
  segment->elem_ranks.reserve(segment->graph.node_count());
  graph::NodeId next = 0;
  for (size_t d = 0; d < documents.size(); ++d) {
    const std::vector<double>& ranks = per_doc_ranks[d];
    for (size_t i = 0; i < ranks.size(); ++i, ++next) {
      if (next >= segment->graph.node_count() ||
          segment->graph.node(next).document != d) {
        return Status::Internal(
            "segment graph node numbering does not align with per-document "
            "rank vectors (document " +
            std::to_string(d) + ", node " + std::to_string(next) + ")");
      }
      segment->elem_ranks.push_back(ranks[i]);
    }
  }
  if (next != segment->graph.node_count()) {
    return Status::Internal(
        "segment graph has " + std::to_string(segment->graph.node_count()) +
        " nodes but per-document graphs total " + std::to_string(next));
  }
  return Status::OK();
}

Status CheckSeqOrder(const std::vector<storage::LogRecord>& sources) {
  for (size_t i = 1; i < sources.size(); ++i) {
    if (sources[i].seq <= sources[i - 1].seq) {
      return Status::InvalidArgument(
          "segment source records out of seq order");
    }
  }
  return Status::OK();
}

void AttachPool(LiveSegment* segment, const LiveSegmentOptions& options) {
  segment->cost_model = std::make_unique<storage::CostModel>(options.cost);
  segment->pool = std::make_unique<storage::BufferPool>(
      segment->built.file.get(), options.buffer_pool_pages,
      segment->cost_model.get(), options.buffer_pool_shards);
}

}  // namespace

std::optional<uint32_t> LiveSegment::FindUri(std::string_view uri) const {
  for (uint32_t i = 0; i < sources.size(); ++i) {
    if (sources[i].uri == uri) return i;
  }
  return std::nullopt;
}

Result<std::shared_ptr<LiveSegment>> BuildLiveSegment(
    std::vector<storage::LogRecord> sources, uint32_t doc_base,
    const LiveSegmentOptions& options,
    std::unique_ptr<storage::PageFile> file) {
  if (sources.empty()) {
    return Status::InvalidArgument("cannot build an empty segment");
  }
  XRANK_RETURN_NOT_OK(CheckSeqOrder(sources));
  auto segment = std::make_shared<LiveSegment>();
  segment->doc_base = doc_base;
  segment->first_seq = sources.front().seq;
  segment->last_seq = sources.back().seq;
  segment->sources = std::move(sources);

  XRANK_ASSIGN_OR_RETURN(std::vector<xml::Document> documents,
                         ParseSources(segment->sources));
  XRANK_RETURN_NOT_OK(BuildSegmentState(documents, options, segment.get()));

  ExtractionOptions extraction = options.extraction;
  extraction.build_naive = false;  // segments serve through DIL only
  extraction.exclude_documents.clear();
  XRANK_ASSIGN_OR_RETURN(
      ExtractionResult extracted,
      ExtractPostings(segment->graph, segment->elem_ranks, extraction));
  XRANK_ASSIGN_OR_RETURN(segment->built,
                         BuildDilIndex(extracted.dewey_postings,
                                       std::move(file), options.build));
  AttachPool(segment.get(), options);
  return segment;
}

Result<std::shared_ptr<LiveSegment>> OpenLiveSegment(
    const std::string& dir, const SegmentManifestEntry& entry,
    const LiveSegmentOptions& options, bool verify) {
  if (verify) {
    XRANK_RETURN_NOT_OK(VerifySegmentEntry(dir, entry));
  }
  std::string docs_path = dir + "/" + entry.docs_file;
  // A committed docs file is never appended to after its MANIFEST commit,
  // so any damage — including a "torn tail" — is real corruption.
  XRANK_ASSIGN_OR_RETURN(storage::LogReadResult read,
                         storage::ReadLogFile(docs_path,
                                              /*allow_torn_tail=*/false));
  if (read.records.size() != entry.doc_count) {
    return Status::Corruption(
        "'" + docs_path + "' holds " + std::to_string(read.records.size()) +
        " documents, MANIFEST expects " + std::to_string(entry.doc_count));
  }
  XRANK_RETURN_NOT_OK(CheckSeqOrder(read.records));
  if (read.records.front().seq != entry.first_seq ||
      read.records.back().seq != entry.last_seq) {
    return Status::Corruption("'" + docs_path +
                              "' seq range does not match MANIFEST");
  }

  auto segment = std::make_shared<LiveSegment>();
  segment->doc_base = entry.doc_base;
  segment->first_seq = entry.first_seq;
  segment->last_seq = entry.last_seq;
  segment->sources = std::move(read.records);

  XRANK_ASSIGN_OR_RETURN(std::vector<xml::Document> documents,
                         ParseSources(segment->sources));
  XRANK_RETURN_NOT_OK(BuildSegmentState(documents, options, segment.get()));

  std::string index_path = dir + "/" + entry.index.file;
  XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageFile> file,
                         storage::PageFile::OpenOnDisk(index_path));
  if (file->page_count() != entry.index.page_count) {
    return Status::Corruption(
        "'" + index_path + "' has " + std::to_string(file->page_count()) +
        " pages, MANIFEST expects " +
        std::to_string(entry.index.page_count));
  }
  XRANK_ASSIGN_OR_RETURN(segment->built, OpenIndex(std::move(file)));
  if (segment->built.kind != IndexKind::kDil) {
    return Status::Corruption("'" + index_path + "' is not a DIL index");
  }
  if (!(segment->built.lexicon.format_spec() == entry.index.format)) {
    return Status::Corruption("'" + index_path +
                              "' posting format does not match MANIFEST");
  }
  AttachPool(segment.get(), options);
  return segment;
}

}  // namespace xrank::index
