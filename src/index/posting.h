#ifndef XRANK_INDEX_POSTING_H_
#define XRANK_INDEX_POSTING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "dewey/dewey_id.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace xrank::index {

// One inverted-list entry: the Dewey ID of an element that *directly*
// contains the keyword, the element's ElemRank, and the (document-global)
// word positions of the keyword inside that element (paper Section 4.2.1).
struct Posting {
  dewey::DeweyId id;
  float elem_rank = 0.0f;
  std::vector<uint32_t> positions;

  bool operator==(const Posting& other) const = default;
};

// Postings whose position list would overflow a page are truncated to this
// many positions (an element repeating one term 400+ times adds nothing to
// existence or window computation).
inline constexpr size_t kMaxPositionsPerPosting = 400;

// Physical location of a posting within a list: page index *within the
// list's page run* plus the slot on that page. Encoded into B+-tree values.
// `slot` is 32-bit in memory but the on-disk encoding packs it into 16 bits;
// EncodePostingLocation asserts the bound rather than truncating silently.
struct PostingLocation {
  uint32_t page_index = 0;
  uint32_t slot = 0;
};

inline constexpr uint32_t kMaxPostingSlot = 0xFFFF;

inline uint64_t EncodePostingLocation(PostingLocation loc) {
  XRANK_CHECK(loc.slot <= kMaxPostingSlot,
              "posting slot overflows the 16-bit location encoding");
  return (static_cast<uint64_t>(loc.page_index) << 16) | loc.slot;
}
inline PostingLocation DecodePostingLocation(uint64_t encoded) {
  return PostingLocation{static_cast<uint32_t>(encoded >> 16),
                         static_cast<uint32_t>(encoded & 0xFFFF)};
}

// One skip-block descriptor: the first Dewey ID stored on page `page_index`
// of a list's page run, plus the largest ElemRank of any posting on that
// page. The builder records one per page; a query cursor can then skip
// every page whose successor descriptor still precedes the merge target,
// without decoding the postings in between, and the top-k merge uses
// `max_rank` as a block-max score bound to skip page runs that cannot beat
// the current k-th result.
struct SkipEntry {
  uint32_t page_index = 0;
  dewey::DeweyId first_id;
  float max_rank = 0.0f;

  bool operator==(const SkipEntry& other) const = default;
};

// Extent of one term's list within a page file.
struct ListExtent {
  storage::PageId first_page = storage::kInvalidPage;
  uint32_t page_count = 0;
  uint64_t entry_count = 0;
  // Encoded bytes actually used (page headers + postings). Space reporting
  // uses this; page_count * kPageSize additionally includes the trailing
  // padding of the last page of each list.
  uint64_t byte_count = 0;
};

// Appends postings to consecutive pages of a PageFile. Page layout:
//   u16 entry count, then back-to-back encoded postings. With
// `delta_encode_ids` (Dewey-ordered lists) each posting's ID is
// prefix-delta-coded against the previous posting on the same page (the
// first posting on a page is raw, so pages are self-decoding).
class PostingListWriter {
 public:
  PostingListWriter(storage::PageFile* file, bool delta_encode_ids);

  // Returns the location the posting was placed at.
  Result<PostingLocation> Add(const Posting& posting);

  Result<ListExtent> Finish();

  // One entry per flushed page (the page's first posting ID). Complete
  // after Finish(); callers move it into the lexicon's TermInfo.
  const std::vector<SkipEntry>& skips() const { return skips_; }
  std::vector<SkipEntry> TakeSkips() { return std::move(skips_); }

 private:
  Status FlushPage();

  storage::PageFile* file_;
  bool delta_encode_ids_;
  std::string page_entries_;
  uint16_t page_count_in_page_ = 0;
  dewey::DeweyId previous_id_;
  ListExtent extent_;
  std::vector<storage::PageId> pages_;
  std::vector<SkipEntry> skips_;
  bool finished_ = false;
};

class BlockCache;

// Sequential cursor over a list's page run (through the buffer pool, so
// reads are charged to the cost model).
class PostingListCursor {
 public:
  PostingListCursor(storage::BufferPool* pool, const ListExtent& extent,
                    bool delta_encode_ids);

  // Attaches a decoded-block cache. Pages are then decoded whole: a cache
  // hit serves every posting of the page without touching the buffer pool
  // or the decoder; a miss decodes the page once and publishes it. Must be
  // called before the first Next/SeekToPage. Null (the default) keeps the
  // incremental decode path.
  void set_block_cache(BlockCache* cache) { block_cache_ = cache; }

  // Reads the next posting; returns false at end of list.
  Result<bool> Next(Posting* out);

  bool AtEnd() const;

  // Repositions at the start of the list page with the given index within
  // the run (used by HDIL to jump via its sparse B+-tree).
  Status SeekToPage(uint32_t page_index);

  uint32_t current_page_index() const { return page_index_; }
  const ListExtent& extent() const { return extent_; }

  // Pages served from the decoded-block cache (0 without a cache).
  uint64_t block_cache_hits() const { return block_cache_hits_; }

 private:
  Status LoadPage();
  // Cache-aware page load: lookup, or decode-whole-page + insert on miss.
  Status LoadCachedPage();

  storage::BufferPool* pool_;
  ListExtent extent_;
  bool delta_encode_ids_;
  uint32_t page_index_ = 0;
  uint16_t entries_in_page_ = 0;
  uint16_t entry_index_ = 0;
  size_t byte_offset_ = 0;
  storage::Page page_;
  dewey::DeweyId previous_id_;
  bool page_loaded_ = false;
  BlockCache* block_cache_ = nullptr;
  // Pin on the current page's decoded block when serving from the cache
  // (outlives eviction; null on the incremental path).
  std::shared_ptr<const std::vector<Posting>> cached_block_;
  uint64_t block_cache_hits_ = 0;
};

// Random access to one posting (used by RDIL after a B+-tree lookup; decodes
// the page up to the requested slot).
Result<Posting> ReadPostingAt(storage::BufferPool* pool,
                              const ListExtent& extent, PostingLocation loc,
                              bool delta_encode_ids);

// Serialized size of `posting` when encoded after `previous` (raw when
// delta encoding is off or the posting starts a page).
size_t EncodedPostingSize(const Posting& posting,
                          const dewey::DeweyId* previous);

}  // namespace xrank::index

#endif  // XRANK_INDEX_POSTING_H_
