#ifndef XRANK_INDEX_POSTING_H_
#define XRANK_INDEX_POSTING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "dewey/dewey_id.h"
#include "index/codec.h"
#include "index/posting_types.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace xrank::index {

// Appends postings to consecutive pages of a PageFile. The page layout is
// delegated to the format's PostingCodec (index/codec.h); the writer owns
// page allocation, skip-descriptor maintenance and space accounting, and
// guarantees the (page, slot) location returned by Add is final — codecs
// decide page fit per posting and never repack across pages.
class PostingListWriter {
 public:
  PostingListWriter(storage::PageFile* file, const PostingFormat& format);
  // Legacy convenience: the varint compatibility baseline with float ranks.
  PostingListWriter(storage::PageFile* file, bool delta_encode_ids);

  // Returns the location the posting was placed at.
  Result<PostingLocation> Add(const Posting& posting);

  Result<ListExtent> Finish();

  // One entry per flushed page (the page's first posting ID). Complete
  // after Finish(); callers move it into the lexicon's TermInfo.
  const std::vector<SkipEntry>& skips() const { return skips_; }
  std::vector<SkipEntry> TakeSkips() { return std::move(skips_); }

  // The largest per-document sum of decoded ranks seen so far: an upper
  // bound on any element's sum-aggregated keyword rank for this term
  // (decay <= 1 and subtree occurrences are a subset of the document's).
  // Exact only when postings arrive grouped by document — true for the
  // Dewey-ordered DIL/HDIL lists that disjunctive pruning runs on.
  // Callers store it in TermInfo::max_doc_rank.
  float max_doc_rank() const;

 private:
  Status FlushPage();

  storage::PageFile* file_;
  PostingFormat format_;
  std::unique_ptr<PostingPageEncoder> encoder_;
  ListExtent extent_;
  std::vector<storage::PageId> pages_;
  std::vector<SkipEntry> skips_;
  bool finished_ = false;
  // VBMW block sizing: decoded-rank waste accumulated in the open page.
  float page_max_rank_ = 0.0f;
  double page_waste_ = 0.0;
  // Streaming per-document decoded-rank sum for max_doc_rank().
  bool have_doc_ = false;
  uint64_t current_doc_ = 0;
  double current_doc_sum_ = 0.0;
  double max_doc_sum_ = 0.0;
};

class BlockCache;

// Sequential cursor over a list's page run (through the buffer pool, so
// reads are charged to the cost model). Pages are decoded whole via the
// format's codec into a reused buffer — the uniform contract every codec
// supports (bp128/vgb pages only decode as a unit).
class PostingListCursor {
 public:
  PostingListCursor(storage::BufferPool* pool, const ListExtent& extent,
                    const PostingFormat& format);
  // Legacy convenience: the varint compatibility baseline with float ranks.
  PostingListCursor(storage::BufferPool* pool, const ListExtent& extent,
                    bool delta_encode_ids);

  // Attaches a decoded-block cache: a cache hit serves every posting of the
  // page without touching the buffer pool or the decoder; a miss decodes
  // the page once and publishes it. Must be called before the first
  // Next/SeekToPage. Null (the default) decodes into a cursor-local buffer.
  void set_block_cache(BlockCache* cache) { block_cache_ = cache; }

  // Reads the next posting; returns false at end of list.
  Result<bool> Next(Posting* out);

  bool AtEnd() const;

  // Repositions at the start of the list page with the given index within
  // the run (used by HDIL to jump via its sparse B+-tree).
  Status SeekToPage(uint32_t page_index);

  uint32_t current_page_index() const { return page_index_; }
  const ListExtent& extent() const { return extent_; }

  // Pages served from the decoded-block cache (0 without a cache).
  uint64_t block_cache_hits() const { return block_cache_hits_; }

 private:
  Status LoadPage();

  storage::BufferPool* pool_;
  ListExtent extent_;
  PostingFormat format_;
  uint32_t page_index_ = 0;
  uint32_t entries_in_page_ = 0;
  uint32_t entry_index_ = 0;
  storage::Page page_;
  bool page_loaded_ = false;
  BlockCache* block_cache_ = nullptr;
  // Decoded postings of the current page: `block_` points at either the
  // cursor-local buffer or a pinned cache block (pin outlives eviction).
  std::vector<Posting> local_block_;
  std::shared_ptr<const std::vector<Posting>> cached_block_;
  const std::vector<Posting>* block_ = nullptr;
  uint64_t block_cache_hits_ = 0;
};

// Random access to one posting (used by RDIL after a B+-tree lookup;
// decodes the posting's page and indexes the slot).
Result<Posting> ReadPostingAt(storage::BufferPool* pool,
                              const ListExtent& extent, PostingLocation loc,
                              const PostingFormat& format);
Result<Posting> ReadPostingAt(storage::BufferPool* pool,
                              const ListExtent& extent, PostingLocation loc,
                              bool delta_encode_ids);

}  // namespace xrank::index

#endif  // XRANK_INDEX_POSTING_H_
