#ifndef XRANK_INDEX_HDIL_INDEX_H_
#define XRANK_INDEX_HDIL_INDEX_H_

#include <memory>

#include "index/index_builder.h"

namespace xrank::index {

struct HdilOptions {
  // Fraction of each list duplicated in rank order (paper Section 4.4.1
  // stores "only a small fraction of the inverted list sorted by rank").
  double rank_fraction = 0.10;
  // Short lists keep at least this many rank-ordered entries (never more
  // than the whole list).
  uint32_t min_rank_entries = 64;
};

// Builds the Hybrid Dewey Inverted List (paper Section 4.4): the full list
// in Dewey order (serving both DIL scans and the leaf level of the B+-tree),
// a sparse B+-tree holding one separator per list page (the explicitly
// stored non-leaf levels), and a small rank-ordered prefix per term.
// List encoding and prefix selection are parallelized across contiguous
// term shards (see BuildOptions); the B+-tree load stays on the
// coordinator, so the output file is byte-identical for every thread count.
Result<BuiltIndex> BuildHdilIndex(const TermPostingsMap& dewey_postings,
                                  std::unique_ptr<storage::PageFile> file,
                                  const HdilOptions& options = {},
                                  const BuildOptions& build = {});

}  // namespace xrank::index

#endif  // XRANK_INDEX_HDIL_INDEX_H_
