#include "index/reorder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "index/index_builder.h"

namespace xrank::index {

std::string_view ReorderAlgorithmName(uint32_t reorder_id) {
  switch (reorder_id) {
    case kReorderIdentity:
      return "identity";
    case kReorderBp:
      return "bp";
    default:
      return "unknown";
  }
}

namespace {

// Document -> distinct-term adjacency in CSR form. Term ids are dense
// indexes in lexicographic term order (the TermPostingsMap iteration
// order), so the adjacency — and everything downstream — is independent of
// construction thread count.
struct DocTermGraph {
  uint32_t doc_count = 0;
  uint32_t term_count = 0;
  std::vector<size_t> doc_begin;   // doc_count + 1 offsets into terms
  std::vector<uint32_t> terms;     // concatenated per-doc distinct term ids
};

DocTermGraph BuildDocTermGraph(
    const std::map<std::string, std::vector<Posting>>& dewey_postings,
    uint32_t doc_count) {
  DocTermGraph graph;
  graph.doc_count = doc_count;
  std::vector<uint32_t> degree(doc_count, 0);
  // Pass 1: per-document distinct-term degrees. Postings are in Dewey
  // order, so a term's documents appear as non-decreasing runs of the first
  // component — distinct docs are run starts.
  uint32_t term_id = 0;
  for (const auto& [term, postings] : dewey_postings) {
    (void)term;
    uint32_t last_doc = UINT32_MAX;
    for (const Posting& posting : postings) {
      uint32_t doc = posting.id.component(0);
      if (doc == last_doc) continue;
      last_doc = doc;
      if (doc < doc_count) ++degree[doc];
    }
    ++term_id;
  }
  graph.term_count = term_id;
  graph.doc_begin.assign(doc_count + 1, 0);
  for (uint32_t d = 0; d < doc_count; ++d) {
    graph.doc_begin[d + 1] = graph.doc_begin[d] + degree[d];
  }
  graph.terms.resize(graph.doc_begin[doc_count]);
  std::vector<size_t> fill(graph.doc_begin.begin(),
                           graph.doc_begin.end() - 1);
  term_id = 0;
  for (const auto& [term, postings] : dewey_postings) {
    (void)term;
    uint32_t last_doc = UINT32_MAX;
    for (const Posting& posting : postings) {
      uint32_t doc = posting.id.component(0);
      if (doc == last_doc) continue;
      last_doc = doc;
      if (doc < doc_count) graph.terms[fill[doc]++] = term_id;
    }
    ++term_id;
  }
  return graph;
}

// Expected per-posting gap cost of a term with `deg` documents in a
// partition of `n` documents: deg * log2(n / (deg + 1)) — the BP objective.
inline double MoveCost(double deg, double n) {
  return deg <= 0.0 ? 0.0 : deg * std::log2(n / (deg + 1.0));
}

struct Range {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

// Per-worker scratch reused across the ranges a worker processes at one
// recursion level. Term-degree arrays are cleared through the touched list,
// so the per-range cost is proportional to the range's postings, not to the
// vocabulary.
struct BisectScratch {
  std::vector<int32_t> deg_left;
  std::vector<int32_t> deg_right;
  std::vector<uint32_t> touched;
  std::vector<std::pair<double, size_t>> gains_left;   // (gain, order pos)
  std::vector<std::pair<double, size_t>> gains_right;
};

// One bisection of order[range]: swap-optimize the first-half/second-half
// split for up to `iterations` rounds. Deterministic: gains are summed in
// each document's fixed CSR term order and sorted with an ascending-doc-id
// tie-break.
void BisectRange(const DocTermGraph& graph, const ReorderOptions& options,
                 std::vector<uint32_t>* order, const Range& range,
                 BisectScratch* scratch) {
  const size_t mid = range.begin + range.size() / 2;
  const double n1 = static_cast<double>(mid - range.begin);
  const double n2 = static_cast<double>(range.end - mid);
  if (n1 < 1.0 || n2 < 1.0) return;
  if (scratch->deg_left.size() < graph.term_count) {
    scratch->deg_left.assign(graph.term_count, 0);
    scratch->deg_right.assign(graph.term_count, 0);
  }
  std::vector<uint32_t>& ord = *order;
  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    // Per-term degrees in each half, over this range's terms only.
    scratch->touched.clear();
    for (size_t p = range.begin; p < range.end; ++p) {
      uint32_t doc = ord[p];
      int32_t* deg = p < mid ? scratch->deg_left.data()
                             : scratch->deg_right.data();
      for (size_t i = graph.doc_begin[doc]; i < graph.doc_begin[doc + 1];
           ++i) {
        uint32_t t = graph.terms[i];
        if (scratch->deg_left[t] == 0 && scratch->deg_right[t] == 0) {
          scratch->touched.push_back(t);
        }
        ++deg[t];
      }
    }
    // Move gains: how much the objective improves if the document switches
    // sides (positive = wants to move).
    scratch->gains_left.clear();
    scratch->gains_right.clear();
    for (size_t p = range.begin; p < range.end; ++p) {
      uint32_t doc = ord[p];
      double gain = 0.0;
      for (size_t i = graph.doc_begin[doc]; i < graph.doc_begin[doc + 1];
           ++i) {
        uint32_t t = graph.terms[i];
        double dl = scratch->deg_left[t];
        double dr = scratch->deg_right[t];
        double from = MoveCost(dl, n1) + MoveCost(dr, n2);
        double to = p < mid
                        ? MoveCost(dl - 1.0, n1) + MoveCost(dr + 1.0, n2)
                        : MoveCost(dl + 1.0, n1) + MoveCost(dr - 1.0, n2);
        gain += from - to;
      }
      (p < mid ? scratch->gains_left : scratch->gains_right)
          .emplace_back(gain, p);
    }
    auto by_gain = [&ord](const std::pair<double, size_t>& a,
                          const std::pair<double, size_t>& b) {
      if (a.first != b.first) return a.first > b.first;
      return ord[a.second] < ord[b.second];
    };
    std::sort(scratch->gains_left.begin(), scratch->gains_left.end(),
              by_gain);
    std::sort(scratch->gains_right.begin(), scratch->gains_right.end(),
              by_gain);
    size_t swaps = 0;
    size_t pairs =
        std::min(scratch->gains_left.size(), scratch->gains_right.size());
    for (size_t i = 0; i < pairs; ++i) {
      if (scratch->gains_left[i].first + scratch->gains_right[i].first <=
          0.0) {
        break;
      }
      std::swap(ord[scratch->gains_left[i].second],
                ord[scratch->gains_right[i].second]);
      ++swaps;
    }
    // Reset the touched degree slots for the next round / next range.
    for (uint32_t t : scratch->touched) {
      scratch->deg_left[t] = 0;
      scratch->deg_right[t] = 0;
    }
    if (swaps == 0) break;
  }
}

}  // namespace

DocPermutation ComputeReorderPermutation(
    const std::map<std::string, std::vector<Posting>>& dewey_postings,
    uint32_t doc_count, const ReorderOptions& options) {
  DocPermutation perm;
  if (!options.enabled() || doc_count < 2) return perm;
  XRANK_CHECK(options.algorithm == ReorderAlgorithm::kBp,
              "unknown reorder algorithm");
  DocTermGraph graph = BuildDocTermGraph(dewey_postings, doc_count);
  std::vector<uint32_t> order(doc_count);
  std::iota(order.begin(), order.end(), 0);

  const size_t min_partition =
      std::max<size_t>(2, options.min_partition);
  ThreadPool pool(options.num_threads);
  // Level-by-level recursion: every level's ranges are disjoint slices of
  // `order`, so they can run in parallel on the (non-reentrant) pool, and
  // each range's computation is self-contained — the result does not depend
  // on which worker ran it.
  std::vector<Range> active = {{0, doc_count}};
  for (uint32_t depth = 0; depth < options.max_depth && !active.empty();
       ++depth) {
    // Chunk grain 1: chunk index == range index, statically assigned to
    // worker (chunk % thread_count) — each worker reuses its own scratch.
    const size_t thread_count = pool.thread_count();
    std::vector<BisectScratch> worker_scratch(thread_count);
    pool.ParallelFor(0, active.size(), 1,
                     [&](size_t begin, size_t end, size_t chunk) {
                       BisectScratch* scratch =
                           &worker_scratch[chunk % thread_count];
                       for (size_t r = begin; r < end; ++r) {
                         BisectRange(graph, options, &order, active[r],
                                     scratch);
                       }
                     });
    std::vector<Range> next;
    next.reserve(active.size() * 2);
    for (const Range& range : active) {
      if (range.size() <= min_partition) continue;
      size_t mid = range.begin + range.size() / 2;
      next.push_back({range.begin, mid});
      next.push_back({mid, range.end});
    }
    active = std::move(next);
  }

  perm.new_to_old = std::move(order);
  perm.old_to_new.assign(doc_count, 0);
  for (uint32_t p = 0; p < doc_count; ++p) {
    perm.old_to_new[perm.new_to_old[p]] = p;
  }
  return perm;
}

namespace {

// Remaps the first Dewey component of `id` in place.
void RemapDocComponent(dewey::DeweyId* id, uint32_t new_doc) {
  std::vector<uint32_t> components = id->components();
  components[0] = new_doc;
  id->AssignComponents(components.data(), components.size());
}

// Reorders one Dewey-ordered posting list: per-document runs move to their
// physical-id position and every posting's first component is remapped.
void PermuteDeweyList(const DocPermutation& perm,
                      std::vector<Posting>* postings) {
  struct Run {
    uint32_t new_doc;
    size_t begin;
    size_t end;
  };
  std::vector<Run> runs;
  for (size_t i = 0; i < postings->size();) {
    uint32_t doc = (*postings)[i].id.component(0);
    size_t j = i;
    while (j < postings->size() && (*postings)[j].id.component(0) == doc) {
      ++j;
    }
    runs.push_back({perm.ToPhysical(doc), i, j});
    i = j;
  }
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.new_doc < b.new_doc; });
  std::vector<Posting> out;
  out.reserve(postings->size());
  for (const Run& run : runs) {
    for (size_t i = run.begin; i < run.end; ++i) {
      Posting posting = std::move((*postings)[i]);
      RemapDocComponent(&posting.id, run.new_doc);
      out.push_back(std::move(posting));
    }
  }
  *postings = std::move(out);
}

}  // namespace

void ApplyDocPermutation(const DocPermutation& perm,
                         ExtractionResult* extracted) {
  if (perm.empty()) return;
  for (auto& [term, postings] : extracted->dewey_postings) {
    (void)term;
    PermuteDeweyList(perm, &postings);
  }
  if (extracted->ordinal_to_dewey.empty()) return;

  // Naive postings address elements by global preorder ordinal; renumber so
  // documents stay contiguous in physical-id order. Documents excluded from
  // extraction simply have no ordinals.
  struct DocRun {
    uint32_t new_doc;
    size_t begin;
    size_t end;
  };
  const std::vector<dewey::DeweyId>& ordinals = extracted->ordinal_to_dewey;
  std::vector<DocRun> runs;
  for (size_t i = 0; i < ordinals.size();) {
    uint32_t doc = ordinals[i].component(0);
    size_t j = i;
    while (j < ordinals.size() && ordinals[j].component(0) == doc) ++j;
    runs.push_back({perm.ToPhysical(doc), i, j});
    i = j;
  }
  std::vector<DocRun> permuted_runs = runs;
  std::sort(permuted_runs.begin(), permuted_runs.end(),
            [](const DocRun& a, const DocRun& b) {
              return a.new_doc < b.new_doc;
            });
  // old ordinal -> new ordinal.
  std::vector<uint32_t> ordinal_map(ordinals.size(), 0);
  std::vector<dewey::DeweyId> new_ordinals(ordinals.size());
  size_t next = 0;
  for (const DocRun& run : permuted_runs) {
    for (size_t i = run.begin; i < run.end; ++i, ++next) {
      ordinal_map[i] = static_cast<uint32_t>(next);
      dewey::DeweyId id = ordinals[i];
      RemapDocComponent(&id, run.new_doc);
      new_ordinals[next] = std::move(id);
    }
  }
  extracted->ordinal_to_dewey = std::move(new_ordinals);

  for (auto& [term, postings] : extracted->naive_postings) {
    (void)term;
    for (Posting& posting : postings) {
      uint32_t old_ordinal = posting.id.component(0);
      XRANK_CHECK(old_ordinal < ordinal_map.size(),
                  "naive ordinal out of range during reorder");
      RemapDocComponent(&posting.id, ordinal_map[old_ordinal]);
    }
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                return a.id.component(0) < b.id.component(0);
              });
  }
}

}  // namespace xrank::index
