#ifndef XRANK_INDEX_LEXICON_H_
#define XRANK_INDEX_LEXICON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "index/codec.h"
#include "index/posting.h"
#include "storage/btree.h"

namespace xrank::index {

// Version of the serialized lexicon blob layout, recorded in the index
// header page. Pre-versioning header pages are zero-initialized at this
// offset, so old index files read as version 0 — exactly the layout they
// were written with — and OpenIndex refuses versions from the future.
//   0: legacy layout (through PR 6): no per-term max_doc_rank field.
//   1: adds the 4-byte TermInfo::max_doc_rank bound after the hash fields.
inline constexpr uint32_t kLexiconFormatVersion = 1;

// Per-term index metadata. Which fields are populated depends on the index
// kind: DIL uses only `list`; RDIL adds `btree_root` (dense B+-tree on Dewey
// IDs); HDIL adds `rank_list` (rank-ordered prefix) and a sparse
// `btree_root`; Naive-Rank uses the `hash_*` fields.
struct TermInfo {
  ListExtent list;
  ListExtent rank_list;
  storage::NodeRef btree_root = storage::kInvalidRef;
  storage::PageId hash_first_page = storage::kInvalidPage;
  uint32_t hash_page_count = 0;
  uint32_t hash_slot_count = 0;
  // Byte offset of the table within hash_first_page; small tables share
  // pages (same space optimization as short B+-trees, Section 4.3.1).
  // Multi-page tables always start at offset 0.
  uint32_t hash_offset = 0;
  // Codec-specific payload: the per-list linear-quantization scale (the
  // list's maximum ElemRank) under quantized rank encodings. 1.0 and not
  // serialized under the default float encoding. Shared by `list` and
  // `rank_list` (the rank prefix holds a subset of the same postings).
  float rank_scale = 1.0f;
  // Upper bound on any single document's sum of decoded posting ranks for
  // this term (PostingListWriter::max_doc_rank). Disjunctive pruning uses
  // it as the term's list-level score bound under sum aggregation, where
  // the per-page max_rank maxima alone would be unsound. Serialized only
  // since lexicon format version 1; version-0 blobs lack the field and
  // deserialize to the default 0 here. Query code treats non-positive or
  // non-finite values as "no bound" (prune nothing) rather than an error.
  float max_doc_rank = 0.0f;
  // Skip-block descriptors for `list` (one per page: the page's first Dewey
  // ID), in page order. Lets query cursors jump over pages whose ID range
  // precedes the merge frontier. Empty for index kinds that never scan the
  // Dewey-ordered list with a merge (Naive-Rank).
  std::vector<SkipEntry> skips;
};

// Term dictionary. Held in memory at query time (as in most IR engines);
// serialized into the index file's trailing pages. Also carries the
// index-wide posting format: builders stamp it before serialization and
// OpenIndex restores it from the header page, so query processors derive
// every cursor's PostingFormat from here.
class Lexicon {
 public:
  void Add(std::string term, TermInfo info);

  // nullptr if the term does not occur in the collection.
  const TermInfo* Find(std::string_view term) const;

  size_t term_count() const { return terms_.size(); }
  const std::map<std::string, TermInfo, std::less<>>& terms() const {
    return terms_;
  }

  // Index-wide posting format. SetFormatSpec resolves the codec against the
  // registry (Corruption for unknown ids). Defaults to varint + float.
  Status SetFormatSpec(const PostingFormatSpec& spec);
  const PostingFormatSpec& format_spec() const { return spec_; }
  const PostingCodec* codec() const { return codec_; }
  std::string_view codec_name() const { return codec_->name(); }

  // The resolved per-list format for a term's `list`/`rank_list`.
  PostingFormat ListFormat(const TermInfo& info, bool delta_encode_ids) const {
    PostingFormat format;
    format.codec = codec_;
    format.ranks = spec_.ranks;
    format.rank_scale = info.rank_scale;
    format.delta_encode_ids = delta_encode_ids;
    format.vbmw_lambda_milli = spec_.vbmw_lambda_milli;
    return format;
  }

  // `format_version` selects the blob layout to emit; anything but the
  // current version exists only so tests can produce genuine legacy blobs.
  void Serialize(std::string* out,
                 uint32_t format_version = kLexiconFormatVersion) const;
  // `spec` and `format_version` must be what the blob was serialized under
  // (they gate the presence of per-term fields); callers read both from the
  // index header page before deserializing. The defaults match a blob
  // written by this build; pre-codec index files carry the default spec and
  // a zero (legacy) version in their zero-initialized header slots.
  static Result<Lexicon> Deserialize(
      std::string_view data, const PostingFormatSpec& spec = {},
      uint32_t format_version = kLexiconFormatVersion);

 private:
  std::map<std::string, TermInfo, std::less<>> terms_;
  PostingFormatSpec spec_;
  const PostingCodec* codec_ = FindPostingCodec(kPostingCodecVarint);
};

}  // namespace xrank::index

#endif  // XRANK_INDEX_LEXICON_H_
