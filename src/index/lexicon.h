#ifndef XRANK_INDEX_LEXICON_H_
#define XRANK_INDEX_LEXICON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "index/posting.h"
#include "storage/btree.h"

namespace xrank::index {

// Per-term index metadata. Which fields are populated depends on the index
// kind: DIL uses only `list`; RDIL adds `btree_root` (dense B+-tree on Dewey
// IDs); HDIL adds `rank_list` (rank-ordered prefix) and a sparse
// `btree_root`; Naive-Rank uses the `hash_*` fields.
struct TermInfo {
  ListExtent list;
  ListExtent rank_list;
  storage::NodeRef btree_root = storage::kInvalidRef;
  storage::PageId hash_first_page = storage::kInvalidPage;
  uint32_t hash_page_count = 0;
  uint32_t hash_slot_count = 0;
  // Byte offset of the table within hash_first_page; small tables share
  // pages (same space optimization as short B+-trees, Section 4.3.1).
  // Multi-page tables always start at offset 0.
  uint32_t hash_offset = 0;
  // Skip-block descriptors for `list` (one per page: the page's first Dewey
  // ID), in page order. Lets query cursors jump over pages whose ID range
  // precedes the merge frontier. Empty for index kinds that never scan the
  // Dewey-ordered list with a merge (Naive-Rank).
  std::vector<SkipEntry> skips;
};

// Term dictionary. Held in memory at query time (as in most IR engines);
// serialized into the index file's trailing pages.
class Lexicon {
 public:
  void Add(std::string term, TermInfo info);

  // nullptr if the term does not occur in the collection.
  const TermInfo* Find(std::string_view term) const;

  size_t term_count() const { return terms_.size(); }
  const std::map<std::string, TermInfo, std::less<>>& terms() const {
    return terms_;
  }

  void Serialize(std::string* out) const;
  static Result<Lexicon> Deserialize(std::string_view data);

 private:
  std::map<std::string, TermInfo, std::less<>> terms_;
};

}  // namespace xrank::index

#endif  // XRANK_INDEX_LEXICON_H_
