#ifndef XRANK_INDEX_RDIL_INDEX_H_
#define XRANK_INDEX_RDIL_INDEX_H_

#include <memory>

#include "index/index_builder.h"

namespace xrank::index {

// Builds the Ranked Dewey Inverted List (paper Section 4.3): per term, the
// postings sorted by descending ElemRank, plus a dense disk-resident
// B+-tree on the Dewey ID whose values locate postings inside the
// rank-ordered list. Single-leaf B+-trees of short lists are packed onto
// shared pages (the space optimization of Section 4.3.1). Sorting and list
// encoding are parallelized across contiguous term shards (see
// BuildOptions); the B+-tree load stays on the coordinator, so the output
// file is byte-identical for every thread count.
Result<BuiltIndex> BuildRdilIndex(const TermPostingsMap& dewey_postings,
                                  std::unique_ptr<storage::PageFile> file,
                                  const BuildOptions& build = {});

}  // namespace xrank::index

#endif  // XRANK_INDEX_RDIL_INDEX_H_
