#ifndef XRANK_INDEX_ANALYZER_H_
#define XRANK_INDEX_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace xrank::index {

// Tokenization used at both index and query time. Terms are maximal runs of
// ASCII alphanumerics, lower-cased. Position numbering is supplied by the
// caller (document-global word offsets, so the minimal-window proximity of
// Section 2.3.2.2 is well defined across sibling elements).
struct AnalyzerOptions {
  // Tokens shorter than this are dropped (keeps single letters out).
  size_t min_token_length = 1;
  // Common-word filtering; empty by default because synthetic vocabularies
  // control frequency explicitly.
  std::vector<std::string> stopwords;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  struct Token {
    std::string term;
    uint32_t position;  // word offset assigned from *next_position
  };

  // Tokenizes `text`, assigning consecutive positions starting at
  // *next_position and leaving *next_position one past the last token.
  std::vector<Token> Tokenize(std::string_view text,
                              uint32_t* next_position) const;

  // Normalizes a single query keyword (lower-case); returns empty if the
  // keyword normalizes away (stopword / too short / no alphanumerics).
  std::string NormalizeKeyword(std::string_view keyword) const;

 private:
  bool IsStopword(const std::string& term) const;

  AnalyzerOptions options_;
};

}  // namespace xrank::index

#endif  // XRANK_INDEX_ANALYZER_H_
