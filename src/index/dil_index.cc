#include "index/dil_index.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace xrank::index {

namespace {

// One worker's output: a scratch page file holding the complete page runs
// of a contiguous term shard, plus the extent of each term's list relative
// to the scratch file.
struct DilShardOutput {
  std::unique_ptr<storage::PageFile> scratch;
  std::vector<ListExtent> extents;  // one per term, shard order
  // Skip-block descriptors per term; page indices are relative to each
  // list's run, so they need no rebasing after the splice.
  std::vector<std::vector<SkipEntry>> skips;
  std::vector<float> rank_scales;    // per-term quantization scale
  std::vector<float> max_doc_ranks;  // per-term sum-aggregation bound
  Status status = Status::OK();
};

Status EncodeDilShard(
    const std::vector<const TermPostingsMap::value_type*>& terms,
    size_t begin, size_t end, const PostingCodec* codec,
    const PostingFormatSpec& spec, DilShardOutput* out) {
  out->scratch = storage::PageFile::CreateInMemory();
  out->extents.reserve(end - begin);
  out->skips.reserve(end - begin);
  out->rank_scales.reserve(end - begin);
  out->max_doc_ranks.reserve(end - begin);
  for (size_t t = begin; t < end; ++t) {
    PostingFormat format = MakeWriterFormat(codec, spec, terms[t]->second,
                                            /*delta_encode_ids=*/true);
    PostingListWriter writer(out->scratch.get(), format);
    for (const Posting& posting : terms[t]->second) {
      XRANK_RETURN_NOT_OK(writer.Add(posting).status());
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent extent, writer.Finish());
    out->extents.push_back(extent);
    out->skips.push_back(writer.TakeSkips());
    out->rank_scales.push_back(format.rank_scale);
    out->max_doc_ranks.push_back(writer.max_doc_rank());
  }
  return Status::OK();
}

}  // namespace

Result<BuiltIndex> BuildDilIndex(const TermPostingsMap& dewey_postings,
                                 std::unique_ptr<storage::PageFile> file,
                                 const BuildOptions& build) {
  BuiltIndex index;
  index.kind = IndexKind::kDil;
  XRANK_ASSIGN_OR_RETURN(const PostingCodec* codec,
                         ResolvePostingCodec(build.format));
  XRANK_RETURN_NOT_OK(index.lexicon.SetFormatSpec(build.format));
  // Page 0 is the header, filled in by WriteIndexTrailer.
  XRANK_ASSIGN_OR_RETURN(storage::PageId header_page, file->Allocate());
  if (header_page != 0) return Status::Internal("header page must be 0");

  std::vector<const TermPostingsMap::value_type*> terms;
  terms.reserve(dewey_postings.size());
  std::vector<uint64_t> weights;
  weights.reserve(dewey_postings.size());
  for (const auto& entry : dewey_postings) {
    terms.push_back(&entry);
    weights.push_back(entry.second.size() + 1);
  }

  size_t num_workers =
      std::min(ResolveBuildThreads(build.num_threads), terms.size());
  std::vector<std::pair<size_t, size_t>> shards =
      PartitionByWeight(weights, std::max<size_t>(num_workers, 1));

  // Workers encode complete per-term page runs into scratch files; the
  // coordinator splices them back in term order, so the file bytes match
  // the sequential build exactly.
  std::vector<DilShardOutput> outputs(shards.size());
  if (num_workers <= 1) {
    for (size_t s = 0; s < shards.size(); ++s) {
      outputs[s].status =
          EncodeDilShard(terms, shards[s].first, shards[s].second, codec,
                         build.format, &outputs[s]);
    }
  } else {
    ThreadPool pool(static_cast<int>(num_workers));
    pool.ParallelFor(0, shards.size(), 1,
                     [&](size_t begin, size_t end, size_t) {
                       for (size_t s = begin; s < end; ++s) {
                         outputs[s].status = EncodeDilShard(
                             terms, shards[s].first, shards[s].second, codec,
                             build.format, &outputs[s]);
                       }
                     });
  }

  for (size_t s = 0; s < shards.size(); ++s) {
    XRANK_RETURN_NOT_OK(outputs[s].status);
    XRANK_ASSIGN_OR_RETURN(storage::PageId offset,
                           AppendScratchPages(file.get(), *outputs[s].scratch));
    for (size_t i = 0; i < outputs[s].extents.size(); ++i) {
      ListExtent extent = outputs[s].extents[i];
      if (extent.page_count > 0) extent.first_page += offset;
      index.stats.list_pages += extent.page_count;
      index.stats.list_used_bytes += extent.byte_count;
      index.stats.entry_count += extent.entry_count;
      TermInfo info;
      info.list = extent;
      info.skips = std::move(outputs[s].skips[i]);
      info.rank_scale = outputs[s].rank_scales[i];
      info.max_doc_rank = outputs[s].max_doc_ranks[i];
      index.lexicon.Add(terms[shards[s].first + i]->first, std::move(info));
    }
  }

  XRANK_RETURN_NOT_OK(WriteIndexTrailer(file.get(), IndexKind::kDil,
                                        index.lexicon, &index.stats));
  index.file = std::move(file);
  return index;
}

}  // namespace xrank::index
