#include "index/dil_index.h"

namespace xrank::index {

Result<BuiltIndex> BuildDilIndex(const TermPostingsMap& dewey_postings,
                                 std::unique_ptr<storage::PageFile> file) {
  BuiltIndex index;
  index.kind = IndexKind::kDil;
  // Page 0 is the header, filled in by WriteIndexTrailer.
  XRANK_ASSIGN_OR_RETURN(storage::PageId header_page, file->Allocate());
  if (header_page != 0) return Status::Internal("header page must be 0");

  for (const auto& [term, postings] : dewey_postings) {
    PostingListWriter writer(file.get(), /*delta_encode_ids=*/true);
    for (const Posting& posting : postings) {
      XRANK_RETURN_NOT_OK(writer.Add(posting).status());
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent extent, writer.Finish());
    index.stats.list_pages += extent.page_count;
    index.stats.list_used_bytes += extent.byte_count;
    index.stats.entry_count += extent.entry_count;
    TermInfo info;
    info.list = extent;
    index.lexicon.Add(term, info);
  }

  XRANK_RETURN_NOT_OK(WriteIndexTrailer(file.get(), IndexKind::kDil,
                                        index.lexicon, &index.stats));
  index.file = std::move(file);
  return index;
}

}  // namespace xrank::index
