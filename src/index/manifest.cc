#include "index/manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/safe_strerror.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "storage/wal.h"

namespace xrank::index {

namespace {

constexpr char kManifestHeader[] = "xrank-manifest v1";

Result<uint64_t> ParseU64(std::string_view token, const char* what) {
  uint64_t value = 0;
  if (token.empty()) return Status::Corruption(std::string(what) + " missing");
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::Corruption("bad " + std::string(what) + " '" +
                                std::string(token) + "' in MANIFEST");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

std::string SerializeManifest(const Manifest& manifest) {
  std::string out(kManifestHeader);
  out += "\n";
  for (const ManifestEntry& entry : manifest.entries) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "file %s kind %u pages %u crc %u codec %u ranks %u vbmw %u "
                  "reorder %u\n",
                  entry.file.c_str(), static_cast<unsigned>(entry.kind),
                  entry.page_count, entry.crc, entry.format.codec_id,
                  static_cast<unsigned>(entry.format.ranks),
                  entry.format.vbmw_lambda_milli, entry.format.reorder_id);
    out += line;
  }
  for (const SegmentManifestEntry& seg : manifest.segments) {
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "segment file %s kind %u pages %u crc %u codec %u ranks %u vbmw %u "
        "docs %s bytes %" PRIu64 " dcrc %u base %u count %u seq %" PRIu64
        " %" PRIu64 "\n",
        seg.index.file.c_str(), static_cast<unsigned>(seg.index.kind),
        seg.index.page_count, seg.index.crc, seg.index.format.codec_id,
        static_cast<unsigned>(seg.index.format.ranks),
        seg.index.format.vbmw_lambda_milli, seg.docs_file.c_str(),
        seg.docs_bytes, seg.docs_crc, seg.doc_base, seg.doc_count,
        seg.first_seq, seg.last_seq);
    out += line;
  }
  char commit[64];
  std::snprintf(commit, sizeof(commit), "commit %u\n", Crc32c(out));
  out += commit;
  return out;
}

namespace {

// Parses one "segment ..." line (tokens[0] == "segment"). The layout is a
// fixed sequence of key/value tokens so a truncated or reordered line is
// rejected with the offending key named.
Result<SegmentManifestEntry> ParseSegmentLine(
    const std::vector<std::string_view>& tokens, std::string_view line) {
  constexpr std::string_view kKeys[] = {"file", "kind", "pages",  "crc",
                                        "codec", "ranks", "vbmw", "docs",
                                        "bytes", "dcrc",  "base",  "count"};
  constexpr size_t kNumKeys = sizeof(kKeys) / sizeof(kKeys[0]);
  // 1 ("segment") + 12 key/value pairs + "seq <first> <last>".
  if (tokens.size() != 1 + 2 * kNumKeys + 3) {
    return Status::Corruption("malformed MANIFEST segment line '" +
                              std::string(line) + "'");
  }
  for (size_t i = 0; i < kNumKeys; ++i) {
    if (tokens[1 + 2 * i] != kKeys[i]) {
      return Status::Corruption("MANIFEST segment line expects '" +
                                std::string(kKeys[i]) + "', got '" +
                                std::string(tokens[1 + 2 * i]) + "'");
    }
  }
  if (tokens[1 + 2 * kNumKeys] != "seq") {
    return Status::Corruption("MANIFEST segment line missing seq range");
  }
  SegmentManifestEntry seg;
  seg.index.file = std::string(tokens[2]);
  XRANK_ASSIGN_OR_RETURN(uint64_t kind, ParseU64(tokens[4], "segment kind"));
  if (kind < 1 || kind > 5) {
    return Status::Corruption("bad segment index kind " +
                              std::to_string(kind) + " in MANIFEST");
  }
  seg.index.kind = static_cast<IndexKind>(kind);
  XRANK_ASSIGN_OR_RETURN(uint64_t pages,
                         ParseU64(tokens[6], "segment page count"));
  seg.index.page_count = static_cast<uint32_t>(pages);
  XRANK_ASSIGN_OR_RETURN(uint64_t crc, ParseU64(tokens[8], "segment crc"));
  seg.index.crc = static_cast<uint32_t>(crc);
  XRANK_ASSIGN_OR_RETURN(uint64_t codec_id,
                         ParseU64(tokens[10], "segment codec"));
  seg.index.format.codec_id = static_cast<uint32_t>(codec_id);
  XRANK_ASSIGN_OR_RETURN(uint64_t ranks,
                         ParseU64(tokens[12], "segment rank encoding"));
  seg.index.format.ranks = static_cast<RankEncoding>(ranks);
  XRANK_ASSIGN_OR_RETURN(uint64_t lambda,
                         ParseU64(tokens[14], "segment vbmw lambda"));
  seg.index.format.vbmw_lambda_milli = static_cast<uint32_t>(lambda);
  seg.docs_file = std::string(tokens[16]);
  XRANK_ASSIGN_OR_RETURN(seg.docs_bytes,
                         ParseU64(tokens[18], "segment docs bytes"));
  XRANK_ASSIGN_OR_RETURN(uint64_t dcrc, ParseU64(tokens[20], "docs crc"));
  seg.docs_crc = static_cast<uint32_t>(dcrc);
  XRANK_ASSIGN_OR_RETURN(uint64_t base, ParseU64(tokens[22], "doc base"));
  seg.doc_base = static_cast<uint32_t>(base);
  XRANK_ASSIGN_OR_RETURN(uint64_t count, ParseU64(tokens[24], "doc count"));
  seg.doc_count = static_cast<uint32_t>(count);
  XRANK_ASSIGN_OR_RETURN(seg.first_seq, ParseU64(tokens[26], "first seq"));
  XRANK_ASSIGN_OR_RETURN(seg.last_seq, ParseU64(tokens[27], "last seq"));
  if (seg.last_seq < seg.first_seq) {
    return Status::Corruption("MANIFEST segment seq range inverted");
  }
  XRANK_RETURN_NOT_OK(ResolvePostingCodec(seg.index.format).status());
  return seg;
}

}  // namespace

Result<Manifest> ParseManifest(std::string_view text) {
  // The trailer CRC covers everything before the "commit " line; find it
  // first so a torn or bit-rotted manifest is rejected wholesale.
  size_t commit_pos = text.rfind("\ncommit ");
  if (commit_pos == std::string_view::npos) {
    return Status::Corruption("MANIFEST has no commit trailer");
  }
  std::string_view body = text.substr(0, commit_pos + 1);
  std::string_view trailer = text.substr(commit_pos + 1);
  // trailer: "commit <u32>\n"
  if (!StartsWith(trailer, "commit ") || trailer.back() != '\n') {
    return Status::Corruption("malformed MANIFEST commit trailer");
  }
  XRANK_ASSIGN_OR_RETURN(
      uint64_t stored_crc,
      ParseU64(trailer.substr(7, trailer.size() - 8), "commit crc"));
  uint32_t computed = Crc32c(body);
  if (stored_crc != computed) {
    return Status::Corruption("MANIFEST checksum mismatch (stored " +
                              std::to_string(stored_crc) + ", computed " +
                              std::to_string(computed) + ")");
  }

  Manifest manifest;
  bool saw_header = false;
  for (std::string_view line : SplitString(body, "\n")) {
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kManifestHeader) {
        return Status::Corruption("bad MANIFEST header '" + std::string(line) +
                                  "'");
      }
      saw_header = true;
      continue;
    }
    std::vector<std::string_view> tokens = SplitString(line, " ");
    if (!tokens.empty() && tokens[0] == "segment") {
      XRANK_ASSIGN_OR_RETURN(SegmentManifestEntry seg,
                             ParseSegmentLine(tokens, line));
      manifest.segments.push_back(std::move(seg));
      continue;
    }
    // 8 tokens: legacy (pre-codec) line, posting format defaults to
    // (varint, float32). 12 tokens: explicit codec/ranks suffix.
    // 14 tokens: adds the VBMW block-sizing lambda. 16 tokens: adds the
    // document-reorder pass id (absent = identity order).
    if ((tokens.size() != 8 && tokens.size() != 12 && tokens.size() != 14 &&
         tokens.size() != 16) ||
        tokens[0] != "file" || tokens[2] != "kind" || tokens[4] != "pages" ||
        tokens[6] != "crc") {
      return Status::Corruption("malformed MANIFEST line '" +
                                std::string(line) + "'");
    }
    ManifestEntry entry;
    entry.file = std::string(tokens[1]);
    XRANK_ASSIGN_OR_RETURN(uint64_t kind, ParseU64(tokens[3], "index kind"));
    if (kind < 1 || kind > 5) {
      return Status::Corruption("bad index kind " + std::to_string(kind) +
                                " in MANIFEST");
    }
    entry.kind = static_cast<IndexKind>(kind);
    XRANK_ASSIGN_OR_RETURN(uint64_t pages, ParseU64(tokens[5], "page count"));
    entry.page_count = static_cast<uint32_t>(pages);
    XRANK_ASSIGN_OR_RETURN(uint64_t crc, ParseU64(tokens[7], "file crc"));
    entry.crc = static_cast<uint32_t>(crc);
    if (tokens.size() >= 12) {
      if (tokens[8] != "codec" || tokens[10] != "ranks") {
        return Status::Corruption("malformed MANIFEST line '" +
                                  std::string(line) + "'");
      }
      XRANK_ASSIGN_OR_RETURN(uint64_t codec_id,
                             ParseU64(tokens[9], "posting codec"));
      entry.format.codec_id = static_cast<uint32_t>(codec_id);
      XRANK_ASSIGN_OR_RETURN(uint64_t ranks,
                             ParseU64(tokens[11], "rank encoding"));
      entry.format.ranks = static_cast<RankEncoding>(ranks);
    }
    if (tokens.size() >= 14) {
      if (tokens[12] != "vbmw") {
        return Status::Corruption("malformed MANIFEST line '" +
                                  std::string(line) + "'");
      }
      XRANK_ASSIGN_OR_RETURN(uint64_t lambda,
                             ParseU64(tokens[13], "vbmw lambda"));
      entry.format.vbmw_lambda_milli = static_cast<uint32_t>(lambda);
    }
    if (tokens.size() == 16) {
      if (tokens[14] != "reorder") {
        return Status::Corruption("malformed MANIFEST line '" +
                                  std::string(line) + "'");
      }
      XRANK_ASSIGN_OR_RETURN(uint64_t reorder,
                             ParseU64(tokens[15], "reorder pass"));
      entry.format.reorder_id = static_cast<uint32_t>(reorder);
    }
    XRANK_RETURN_NOT_OK(ResolvePostingCodec(entry.format).status());
    manifest.entries.push_back(std::move(entry));
  }
  if (!saw_header) return Status::Corruption("empty MANIFEST");
  return manifest;
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (auto hit = fail::FailPoints::Instance().Evaluate("manifest.rename")) {
    fail::DieIfCrashRequested(hit);
    return Status::IOError("injected rename failure '" + from + "' -> '" +
                           to + "'");
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename '" + from + "' -> '" + to +
                           "' failed: " + SafeStrError(errno));
  }
  return Status::OK();
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("cannot open directory '" + dir +
                           "': " + SafeStrError(errno));
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IOError("fsync of directory '" + dir +
                                    "' failed: " + SafeStrError(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::OK();
}

Status WriteManifestFile(const std::string& dir, const Manifest& manifest) {
  std::string blob = SerializeManifest(manifest);
  std::string tmp_path = dir + "/" + kManifestFileName + ".tmp";
  std::string final_path = dir + "/" + kManifestFileName;

  int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create '" + tmp_path +
                           "': " + SafeStrError(errno));
  }
  size_t written = 0;
  while (written < blob.size()) {
    ssize_t n = ::write(fd, blob.data() + written, blob.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IOError("write of '" + tmp_path +
                                      "' failed: " + SafeStrError(errno));
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IOError("fsync of '" + tmp_path +
                                    "' failed: " + SafeStrError(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  XRANK_RETURN_NOT_OK(RenameFile(tmp_path, final_path));
  return SyncDirectory(dir);
}

Result<Manifest> ReadManifestFile(const std::string& dir) {
  std::string path = dir + "/" + kManifestFileName;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(
          "no MANIFEST in '" + dir +
          "': the index directory was never committed (or a crash "
          "interrupted the build before its commit point)");
    }
    return Status::IOError("cannot open '" + path +
                           "': " + SafeStrError(errno));
  }
  std::string blob;
  char buffer[4096];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IOError("read of '" + path +
                                      "' failed: " + SafeStrError(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    blob.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return ParseManifest(blob);
}

Result<uint32_t> ChecksumPageFile(const storage::PageFile& file) {
  uint32_t crc = 0;
  storage::Page page;
  for (storage::PageId p = 0; p < file.page_count(); ++p) {
    XRANK_RETURN_NOT_OK(file.Read(p, &page));
    crc = Crc32c(page.data.data(), storage::kPageSize, crc);
  }
  return crc;
}

Status VerifyManifestEntry(const std::string& dir, const ManifestEntry& entry,
                           storage::PageId* first_bad_page) {
  if (first_bad_page != nullptr) *first_bad_page = storage::kInvalidPage;
  std::string path = dir + "/" + entry.file;
  XRANK_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageFile> file,
                         storage::PageFile::OpenOnDisk(path));
  if (file->page_count() != entry.page_count) {
    return Status::Corruption(
        "'" + path + "' has " + std::to_string(file->page_count()) +
        " pages, MANIFEST expects " + std::to_string(entry.page_count));
  }
  uint32_t crc = 0;
  storage::Page page;
  for (storage::PageId p = 0; p < file->page_count(); ++p) {
    Status status = file->Read(p, &page);
    if (!status.ok()) {
      if (first_bad_page != nullptr) *first_bad_page = p;
      return status;
    }
    crc = Crc32c(page.data.data(), storage::kPageSize, crc);
  }
  if (crc != entry.crc) {
    return Status::Corruption("'" + path + "' content checksum " +
                              std::to_string(crc) +
                              " does not match MANIFEST (" +
                              std::to_string(entry.crc) + ")");
  }
  return Status::OK();
}

Status VerifySegmentEntry(const std::string& dir,
                          const SegmentManifestEntry& entry,
                          storage::PageId* first_bad_page) {
  XRANK_RETURN_NOT_OK(VerifyManifestEntry(dir, entry.index, first_bad_page));
  std::string docs_path = dir + "/" + entry.docs_file;
  XRANK_ASSIGN_OR_RETURN(auto checksum, storage::ChecksumFile(docs_path));
  if (checksum.first != entry.docs_bytes) {
    return Status::Corruption(
        "'" + docs_path + "' is " + std::to_string(checksum.first) +
        " bytes, MANIFEST expects " + std::to_string(entry.docs_bytes));
  }
  if (checksum.second != entry.docs_crc) {
    return Status::Corruption("'" + docs_path + "' content checksum " +
                              std::to_string(checksum.second) +
                              " does not match MANIFEST (" +
                              std::to_string(entry.docs_crc) + ")");
  }
  return Status::OK();
}

}  // namespace xrank::index
